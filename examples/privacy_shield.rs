//! The privacy shield (§4.6): provisioning and enforcement.
//!
//! Alice provisions the paper's own example policies through the PAP:
//!
//! * any co-worker can access her presence during working hours;
//! * her boss and her family can access her presence at any time;
//! * her family can access her personal address book and calendar.
//!
//! GUPster then acts as repository, decision point and enforcement
//! point: requests are rewritten (narrowed) or refused, and every
//! referral carries a signed, time-stamped query that the stores verify.
//!
//! ```text
//! cargo run --example privacy_shield
//! ```

use gupster::core::{fetch_merge, Gupster, GupsterError, StorePool};
use gupster::policy::{Effect, Purpose, WeekTime};
use gupster::schema::{gup_schema, sample_profile};
use gupster::store::{StoreId, XmlStore};
use gupster::xml::MergeKeys;
use gupster::xpath::Path;

fn main() {
    let mut gupster = Gupster::new(gup_schema(), b"shield-key");
    let mut store = XmlStore::new("gup.yahoo.com");
    store.put_profile(sample_profile("alice")).unwrap();
    gupster
        .register_component(
            "alice",
            Path::parse("/user[@id='alice']/address-book").unwrap(),
            StoreId::new("gup.yahoo.com"),
        )
        .unwrap();
    for comp in ["presence", "calendar", "devices", "identity"] {
        gupster
            .register_component(
                "alice",
                Path::parse(&format!("/user[@id='alice']/{comp}")).unwrap(),
                StoreId::new("gup.yahoo.com"),
            )
            .unwrap();
    }
    let mut pool = StorePool::new();
    pool.add(Box::new(store));

    // Alice declares who is who (relationships drive the conditions).
    gupster.set_relationship("alice", "rick", "co-worker");
    gupster.set_relationship("alice", "dan", "boss");
    gupster.set_relationship("alice", "mom", "family");

    // Provision the §4.6 policies through the administration point.
    gupster
        .pap
        .provision(
            "alice",
            "coworkers-presence",
            Effect::Permit,
            "/user/presence",
            "relationship='co-worker' and time in Mon-Fri 09:00-18:00",
            0,
        )
        .unwrap();
    gupster
        .pap
        .provision(
            "alice",
            "boss-family-presence",
            Effect::Permit,
            "/user/presence",
            "relationship='boss' or relationship='family'",
            0,
        )
        .unwrap();
    gupster
        .pap
        .provision(
            "alice",
            "family-personal-book",
            Effect::Permit,
            "/user/address-book/item[@type='personal']",
            "relationship='family'",
            0,
        )
        .unwrap();
    gupster
        .pap
        .provision("alice", "family-calendar", Effect::Permit, "/user/calendar", "relationship='family'", 0)
        .unwrap();

    println!("Alice's privacy shield:");
    for line in gupster.pap.list("alice") {
        println!("  {line}");
    }

    let keys = MergeKeys::new().with_key("item", "id");
    let signer = gupster.signer();
    let mut ask = |who: &str, what: &str, when: WeekTime, label: &str| {
        let path = Path::parse(what).unwrap();
        print!("\n{label}\n  {who} asks for {what} → ");
        match gupster.lookup("alice", &path, who, Purpose::Query, when, 100) {
            Ok(out) => {
                let narrowed = if out.narrowed { " (narrowed by the shield)" } else { "" };
                println!("referral{narrowed}: {}", out.referral);
                let r = fetch_merge(&pool, &out.referral, &signer, 100, &keys).unwrap();
                for frag in &r {
                    println!("  fetched: {}", frag.to_xml());
                }
            }
            Err(GupsterError::AccessDenied { .. }) => println!("REFUSED by the privacy shield"),
            Err(e) => println!("error: {e}"),
        }
    };

    ask("rick", "/user[@id='alice']/presence", WeekTime::at(1, 11, 0), "co-worker, Tuesday 11:00");
    ask("rick", "/user[@id='alice']/presence", WeekTime::at(1, 22, 0), "co-worker, Tuesday 22:00");
    ask("dan", "/user[@id='alice']/presence", WeekTime::at(6, 3, 0), "boss, Sunday 03:00");
    ask("mom", "/user[@id='alice']/address-book", WeekTime::at(3, 15, 0), "family asks for the WHOLE book");
    ask("mallory", "/user[@id='alice']/presence", WeekTime::at(1, 11, 0), "a stranger");
    ask("rick", "/user[@id='alice']/calendar", WeekTime::at(1, 11, 0), "co-worker asks for the calendar");

    // The signed-query protocol: a tampered or stale token is refused by
    // the data store (§5.3 Security).
    let path = Path::parse("/user[@id='alice']/presence").unwrap();
    let out = gupster
        .lookup("alice", &path, "dan", Purpose::Query, WeekTime::at(1, 11, 0), 200)
        .unwrap();
    let mut forged = out.referral.clone();
    forged.token.paths = vec!["/user[@id='alice']/wallet".to_string()];
    println!("\nforged token accepted by store? {:?}", fetch_merge(&pool, &forged, &signer, 200, &keys).is_ok());
    println!("stale token (61s later) accepted? {:?}", fetch_merge(&pool, &out.referral, &signer, 261, &keys).is_ok());
    println!("fresh, untampered token accepted? {:?}", fetch_merge(&pool, &out.referral, &signer, 210, &keys).is_ok());
}
