//! The mirrored GUPster constellation (§4.2) and provenance auditing
//! (§7): outage injection, anti-entropy recovery, and the owner's
//! disclosure audit trail.
//!
//! ```text
//! cargo run --example constellation
//! ```

use gupster::core::Constellation;
use gupster::policy::{Effect, Purpose, WeekTime};
use gupster::schema::gup_schema;
use gupster::store::StoreId;
use gupster::xpath::Path;

fn main() {
    // A three-mirror constellation, UDDI-style.
    let mut c = Constellation::new(gup_schema(), b"constellation-key", 3);
    c.register_component(
        "alice",
        Path::parse("/user[@id='alice']/presence").unwrap(),
        StoreId::new("gup.spcs.com"),
    )
    .unwrap();
    c.set_relationship("alice", "rick", "co-worker");
    c.provision_rule(
        "alice",
        "cw",
        Effect::Permit,
        "/user/presence",
        "relationship='co-worker' and time in Mon-Fri 09:00-18:00",
        0,
    )
    .unwrap();
    println!("constellation up: {} mirrors, {} healthy", c.len(), c.healthy());

    let path = Path::parse("/user[@id='alice']/presence").unwrap();
    let at = WeekTime::at(1, 10, 0);

    // Normal operation.
    let out = c.lookup("alice", &path, "rick", Purpose::Query, at, 1).unwrap();
    println!("\nlookup served: {}", out.referral);

    // Mirror 0 dies; a write happens while it is down.
    c.set_down(0);
    c.register_component(
        "alice",
        Path::parse("/user[@id='alice']/calendar").unwrap(),
        StoreId::new("gup.yahoo.com"),
    )
    .unwrap();
    println!("\nmirror 0 down; calendar registered on the survivors");
    let out = c.lookup("alice", &path, "rick", Purpose::Query, at, 2);
    println!("lookups still served: {}", out.is_ok());

    // Mirror 0 comes back: anti-entropy copies the missed registration.
    println!(
        "mirror 0 coverage before recovery: {} registrations",
        c.mirror(0).coverage_of("alice").map(|m| m.registration_count()).unwrap_or(0)
    );
    c.recover(0);
    println!(
        "mirror 0 coverage after  recovery: {} registrations",
        c.mirror(0).coverage_of("alice").map(|m| m.registration_count()).unwrap_or(0)
    );

    // Kill everything but the recovered mirror: it serves, with the
    // replicated shield still enforced.
    c.set_down(1);
    c.set_down(2);
    let ok = c.lookup("alice", &path, "rick", Purpose::Query, at, 3);
    let denied = c.lookup("alice", &path, "mallory", Purpose::Query, at, 3);
    println!(
        "\nonly the recovered mirror left: co-worker served = {}, stranger denied = {}",
        ok.is_ok(),
        denied.is_err()
    );

    // Provenance: Alice audits who was ever referred to her data.
    println!("\nAlice's disclosure audit (mirror 0):");
    for d in c.mirror(0).provenance.disclosures_of("alice") {
        println!(
            "  t={} {} got {:?} (purpose {:?}, narrowed={})",
            d.when,
            d.requester,
            d.paths.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
            d.purpose,
            d.narrowed
        );
    }
    println!(
        "who ever saw presence? {:?}",
        c.mirror(0)
            .provenance
            .accessors_of("alice", &Path::parse("/user/presence").unwrap())
    );
}
