//! "Enter once, use everywhere" (Requirement 11): self-provisioning.
//!
//! Alice changes her phone number *once*, through GUPster. The update is
//! validated against the GUP schema, routed to the store that owns the
//! component, and propagated to every subscriber (her phone, the
//! enterprise directory's cache) through push subscriptions — no
//! re-entry anywhere.
//!
//! ```text
//! cargo run --example enter_once
//! ```

use gupster::core::subs::SubscriptionManager;
use gupster::core::{fetch_merge, Gupster, StorePool};
use gupster::policy::{Purpose, WeekTime};
use gupster::schema::{gup_schema, sample_profile};
use gupster::store::{StoreId, UpdateOp, XmlStore};
use gupster::xml::MergeKeys;
use gupster::xpath::Path;

fn main() {
    let mut gupster = Gupster::new(gup_schema(), b"enter-once");
    let mut portal = XmlStore::new("gup.yahoo.com");
    portal.put_profile(sample_profile("alice")).unwrap();
    for comp in ["address-book", "devices", "identity", "presence", "calendar"] {
        gupster
            .register_component(
                "alice",
                Path::parse(&format!("/user[@id='alice']/{comp}")).unwrap(),
                StoreId::new("gup.yahoo.com"),
            )
            .unwrap();
    }
    let mut pool = StorePool::new();
    pool.add(Box::new(portal));
    pool.drain_all_events().for_each(drop);

    // Her phone and the enterprise both subscribe to device changes.
    let mut subs = SubscriptionManager::new();
    let devices = Path::parse("/user[@id='alice']/devices").unwrap();
    subs.subscribe(&mut gupster, "alice", &devices, "alice", WeekTime::at(0, 9, 0), 0)
        .expect("owner may subscribe");
    // (Subscribers other than the owner would need shield rules; the
    // owner's own devices subscribe as her.)
    subs.subscribe(&mut gupster, "alice", &devices, "alice", WeekTime::at(0, 9, 0), 0)
        .expect("second device");
    println!("{} subscriptions active", subs.len());

    // 1. Schema-checked provisioning: an ill-typed update is refused
    //    before it reaches any store.
    let bad = Path::parse("/user[@id='alice']/devices/device[@id='d1']/numbers").unwrap();
    match gupster.route_update("alice", &bad, "alice", WeekTime::at(0, 10, 0), 1) {
        Err(e) => println!("\nmis-typed path refused at GUPster: {e}"),
        Ok(_) => unreachable!("schema filter must reject"),
    }

    // 2. The real update, entered once.
    let target = Path::parse("/user[@id='alice']/devices/device[@id='d1']/number").unwrap();
    let routing = gupster
        .route_update("alice", &target, "alice", WeekTime::at(0, 10, 0), 2)
        .expect("owner provisions");
    println!("\nupdate routed to: {}", routing.referral);
    for entry in &routing.referral.entries {
        pool.update(
            &entry.store,
            "alice",
            &UpdateOp::SetText(entry.path.clone(), "908-555-9999".into()),
        )
        .expect("store applies");
    }

    // Validate the updated profile against the GUP schema (Req. 11's
    // "provisioning should provide some guarantees").
    let schema = gup_schema();
    let full = pool
        .get(&StoreId::new("gup.yahoo.com"))
        .unwrap()
        .query(&Path::parse("/user[@id='alice']").unwrap())
        .unwrap();
    let errs = schema.validate(&full[0]);
    println!("post-update schema validation: {} error(s)", errs.len());

    // 3. Everyone learns about it — push notifications, no re-entry.
    let notes = subs.pump(&mut pool);
    println!("\npush notifications delivered: {}", notes.len());
    for n in &notes {
        println!("  → subscriber {} notified of change at {}", n.subscriber, n.path);
    }

    // 4. Any application now reads the new value through the normal
    //    referral flow.
    let keys = MergeKeys::new();
    let signer = gupster.signer();
    let out = gupster
        .lookup("alice", &target, "alice", Purpose::Query, WeekTime::at(0, 10, 5), 3)
        .unwrap();
    let r = fetch_merge(&pool, &out.referral, &signer, 3, &keys).unwrap();
    let numbers: Vec<String> = r.iter().map(|e| e.text().into_owned()).collect();
    println!("\nread back everywhere: device number = {numbers:?}");
    assert_eq!(numbers, vec!["908-555-9999"]);
}
