//! Example 1 of the paper (§2.1): Alice's roaming profile.
//!
//! Alice's data is spread across SprintPCS (US cell), Vodafone (GSM SIM
//! abroad), Yahoo! (personal address book + calendar) and Lucent
//! (corporate address book). This example shows the three things the
//! paper says are "difficult or impossible" without GUPster:
//!
//! 1. accessing her corporate calendar while traveling in Europe,
//! 2. sharing her address book among SprintPCS, Vodafone and Yahoo!,
//! 3. keeping her data when she switches from SprintPCS to AT&T.
//!
//! ```text
//! cargo run --example roaming_profile
//! ```

use gupster::core::{fetch_merge, Gupster, StorePool};
use gupster::netsim::topology::ConvergedNetwork;
use gupster::policy::{Purpose, WeekTime};
use gupster::schema::gup_schema;
use gupster::store::{StoreId, UpdateOp, XmlStore};
use gupster::sync::{two_way_sync, ReconcilePolicy, Replica};
use gupster::xml::{parse, MergeKeys};
use gupster::xpath::Path;

fn main() {
    // The converged network of Figure 1, populated with Alice's data.
    let mut world = ConvergedNetwork::build(2003);
    world.populate_alice();
    println!("Figure-5 inventory of Alice's data:");
    for row in world.placement_table() {
        println!("  {:<9} {:<22} {} ({} records)", row.network, row.element, row.data, row.records);
    }

    // GUPster over the web-side stores (the HLRs stay behind their
    // carriers; presence is GUP-enabled through the carrier store in a
    // real deployment).
    let mut gupster = Gupster::new(gup_schema(), b"alice-key");
    let reg = |g: &mut Gupster, path: &str, store: &str| {
        g.register_component("alice", Path::parse(path).unwrap(), StoreId::new(store)).unwrap();
    };
    reg(&mut gupster, "/user[@id='alice']/address-book/item[@type='personal']", "gup.yahoo.com");
    reg(&mut gupster, "/user[@id='alice']/address-book/item[@type='corporate']", "gup.lucent.com");
    reg(&mut gupster, "/user[@id='alice']/calendar", "gup.yahoo.com");
    reg(&mut gupster, "/user[@id='alice']/identity", "gup.yahoo.com");

    // Move the stores into a pool (in deployment they stay remote).
    let mut pool = StorePool::new();
    let ConvergedNetwork { portal, enterprise, .. } = world;
    pool.add(Box::new(portal.store));
    pool.add(Box::new(enterprise.adapter));

    let keys = MergeKeys::new().with_key("item", "id");
    let signer = gupster.signer();

    // 1. Corporate calendar access from Europe: the referral mechanism
    //    doesn't care where Alice roams — the meta-data lookup finds
    //    Yahoo! regardless of her serving network.
    let cal = Path::parse("/user[@id='alice']/calendar").unwrap();
    let out = gupster
        .lookup("alice", &cal, "alice", Purpose::Query, WeekTime::at(2, 9, 0), 10)
        .unwrap();
    let r = fetch_merge(&pool, &out.referral, &signer, 10, &keys).unwrap();
    println!("\n1. calendar while roaming → {} event(s) via {}", r[0].children_named("event").count(), out.referral.entries[0].store);

    // 2. One address book across providers: personal (Yahoo!) plus
    //    corporate (Lucent) merged by the client.
    let book = Path::parse("/user[@id='alice']/address-book").unwrap();
    let out = gupster
        .lookup("alice", &book, "alice", Purpose::Query, WeekTime::at(2, 9, 0), 11)
        .unwrap();
    let merged = fetch_merge(&pool, &out.referral, &signer, 11, &keys).unwrap();
    println!("\n2. unified address book ({} entries):", merged[0].children_named("item").count());
    for item in merged[0].children_named("item") {
        println!(
            "   [{}] {} — {}",
            item.attr("type").unwrap_or("?"),
            item.child("name").map(|n| n.text()).unwrap_or_default(),
            item.child("phone").map(|n| n.text()).unwrap_or_default()
        );
    }

    // The phone keeps a synchronized replica of the personal book
    // (Req. 4/7): edit on the phone, sync back to Yahoo!.
    let portal_book = pool
        .get(&StoreId::new("gup.yahoo.com"))
        .unwrap()
        .query(&Path::parse("/user[@id='alice']/address-book").unwrap())
        .unwrap()
        .remove(0);
    let mut phone = Replica::new("alice-phone", portal_book.clone(), keys.clone());
    let mut portal_replica = Replica::new("gup.yahoo.com", portal_book, keys.clone());
    phone
        .edit(gupster::xml::EditOp::Insert {
            parent: gupster::xml::NodePath::root(),
            element: parse(r#"<item id="99" type="personal"><name>Hans</name><phone>+49-30-1234</phone></item>"#).unwrap(),
        })
        .unwrap();
    let report = two_way_sync(&mut phone, &mut portal_replica, ReconcilePolicy::LastWriterWins).unwrap();
    println!(
        "\n   phone↔portal sync: shipped {} edit(s), converged={}, {} bytes",
        report.shipped_to_second, report.converged, report.bytes_exchanged
    );
    // Push the synced copy back into the portal store.
    pool.update(
        &StoreId::new("gup.yahoo.com"),
        "alice",
        &UpdateOp::Replace(Path::parse("/user/address-book").unwrap(), portal_replica.doc.clone()),
    )
    .unwrap();

    // 3. Carrier switch without data loss: SprintPCS's registrations
    //    vanish; everything Alice kept at the portal/enterprise stays.
    let mut att = XmlStore::new("gup.att.com");
    att.put_profile(parse(r#"<user id="alice"><presence>online</presence></user>"#).unwrap())
        .unwrap();
    pool.add(Box::new(att));
    let dropped = gupster.unregister_store("alice", &StoreId::new("gup.spcs.com"));
    gupster
        .register_component(
            "alice",
            Path::parse("/user[@id='alice']/presence").unwrap(),
            StoreId::new("gup.att.com"),
        )
        .unwrap();
    let out = gupster
        .lookup("alice", &book, "alice", Purpose::Query, WeekTime::at(2, 9, 0), 12)
        .unwrap();
    let merged = fetch_merge(&pool, &out.referral, &signer, 12, &keys).unwrap();
    println!(
        "\n3. after switching carriers (dropped {dropped} SprintPCS registrations): book still has {} entries (incl. Hans), presence now at gup.att.com",
        merged[0].children_named("item").count()
    );
}
