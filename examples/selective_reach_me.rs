//! Example 2 of the paper (§2.2): the selective reach-me service.
//!
//! An incoming call for Alice must be routed to the best medium. The
//! service aggregates, across four networks: location and on/off-air
//! state (wireless HLR), call status (PSTN), IM presence (Internet),
//! calendar (portal) and her device list — then applies her rules:
//!
//! * 9am–6pm weekdays, presence "available": office phone, then softphone
//! * 8–9am and 6–7pm: commuting → cell phone
//! * Fridays: working from home → home phone
//!
//! ```text
//! cargo run --example selective_reach_me
//! ```

use gupster::netsim::topology::ConvergedNetwork;
use gupster::netsim::{Journey, SimTime};
use gupster::policy::WeekTime;
use gupster::xpath::Path;

#[derive(Debug)]
enum Medium {
    OfficePhone,
    SoftPhone,
    CellPhone,
    HomePhone,
    VoiceMail,
}

fn main() {
    let mut world = ConvergedNetwork::build(22);
    world.populate_alice();

    let scenarios = [
        ("Tuesday 10:30 — at her desk", WeekTime::at(1, 10, 30), "available", false),
        ("Tuesday 10:30 — office line busy", WeekTime::at(1, 10, 30), "available", true),
        ("Tuesday 08:15 — commuting", WeekTime::at(1, 8, 15), "available", false),
        ("Friday 14:00 — home-office day", WeekTime::at(4, 14, 0), "available", false),
        ("Sunday 02:00 — offline", WeekTime::at(6, 2, 0), "offline", false),
    ];

    for (label, when, presence_override, office_busy) in scenarios {
        world.presence.set_status("alice", presence_override);
        world.pstn.set_busy("908-582-3000", office_busy);

        // Aggregate the five sources in parallel (the latency budget is
        // "a few seconds"; parallel fan-out keeps it well under).
        let mut j = Journey::start();
        j.parallel_rpcs(
            &world.net,
            world.gupster,
            &[
                (world.sprintpcs.hlr.node, 96, 256), // location / on-air
                (world.pstn.node, 96, 128),          // call status
                (world.presence.node, 96, 128),      // IM presence
                (world.portal.node, 128, 2048),      // calendar
                (world.enterprise.node, 128, 1024),  // corporate data
            ],
        );

        // Read the actual state the referrals would fetch.
        let presence = world.presence.status("alice").to_string();
        let office_line = world.pstn.line("908-582-3000").expect("provisioned");
        let on_air = world.sprintpcs.hlr.lookup_routing("908-555-0199").is_some();
        let devices = world
            .portal
            .store
            .profile("alice")
            .map(|p| Path::parse("/user/devices/device").unwrap().select(p).len())
            .unwrap_or(0);

        let decision = decide(when, &presence, office_line.busy, on_air);
        j.compute(SimTime::millis(1));
        println!("{label}");
        println!(
            "   presence={presence} office_busy={} on_air={on_air} devices_known={devices}",
            office_line.busy
        );
        println!("   → route to {decision:?}   (decided in {})", j.elapsed());
        assert!(j.elapsed() < SimTime::secs(3), "must stay within 'a few seconds'");
        println!();
    }
}

fn decide(when: WeekTime, presence: &str, office_busy: bool, on_air: bool) -> Medium {
    let m = when.minute_of_day();
    let working = when.day() < 5 && (9 * 60..18 * 60).contains(&m);
    let commuting = when.day() < 5
        && ((8 * 60..9 * 60).contains(&m) || (18 * 60..19 * 60).contains(&m));
    if when.day() == 4 && working {
        return Medium::HomePhone;
    }
    if working {
        if presence == "available" {
            return if office_busy { Medium::SoftPhone } else { Medium::OfficePhone };
        }
        return if on_air { Medium::CellPhone } else { Medium::VoiceMail };
    }
    if commuting && on_air {
        return Medium::CellPhone;
    }
    if presence == "offline" && !on_air {
        return Medium::VoiceMail;
    }
    Medium::CellPhone
}
