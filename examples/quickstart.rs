//! Quickstart: a two-store federation in ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Yahoo! holds Arnaud's address book and game scores; SprintPCS holds
//! his address book and presence (the exact §4.3 walk-through). We
//! register the coverage, ask GUPster, follow the referral, and merge.

use gupster::core::{fetch_merge, Gupster, StorePool};
use gupster::policy::{Purpose, WeekTime};
use gupster::schema::gup_schema;
use gupster::store::{StoreId, XmlStore};
use gupster::xml::{parse, MergeKeys};
use gupster::xpath::Path;

fn main() {
    // 1. Data stores join the GUPster community (§4.3).
    let mut yahoo = XmlStore::new("gup.yahoo.com");
    yahoo
        .put_profile(
            parse(
                r#"<user id="arnaud">
                     <address-book>
                       <item id="1" type="personal"><name>Mom</name><phone>908-555-0101</phone></item>
                     </address-book>
                     <applications><Gaming><game-score game="chess">1450</game-score></Gaming></applications>
                   </user>"#,
            )
            .unwrap(),
        )
        .unwrap();
    let mut lucent = XmlStore::new("gup.lucent.com");
    lucent
        .put_profile(
            parse(
                r#"<user id="arnaud">
                     <address-book>
                       <item id="2" type="corporate"><name>Rick</name><phone>908-582-4393</phone></item>
                     </address-book>
                     <presence>online</presence>
                   </user>"#,
            )
            .unwrap(),
        )
        .unwrap();

    // 2. The GUPster server: register what each store holds — the Fig. 9
    //    split: personal entries at Yahoo!, corporate ones at Lucent.
    let mut gupster = Gupster::new(gup_schema(), b"quickstart-key");
    let reg = |g: &mut Gupster, path: &str, store: &str| {
        g.register_component("arnaud", Path::parse(path).unwrap(), StoreId::new(store)).unwrap();
    };
    reg(&mut gupster, "/user[@id='arnaud']/address-book/item[@type='personal']", "gup.yahoo.com");
    reg(&mut gupster, "/user[@id='arnaud']/address-book/item[@type='corporate']", "gup.lucent.com");
    reg(&mut gupster, "/user[@id='arnaud']/presence", "gup.lucent.com");
    reg(&mut gupster, "/user[@id='arnaud']/applications/Gaming", "gup.yahoo.com");

    let mut pool = StorePool::new();
    pool.add(Box::new(yahoo));
    pool.add(Box::new(lucent));

    // 3. A client asks for the address book and gets a *referral*, not
    //    data: "gup.yahoo.com/... || gup.spcs.com/..." (§4.3).
    let request = Path::parse("/user[@id='arnaud']/address-book").unwrap();
    let out = gupster
        .lookup("arnaud", &request, "arnaud", Purpose::Query, WeekTime::at(0, 10, 0), 100)
        .unwrap();
    println!("referral from GUPster:\n  {}", out.referral);

    // 4. Fetch directly from the stores and merge the fragments.
    let signer = gupster.signer();
    let keys = MergeKeys::new().with_key("item", "id");
    let merged = fetch_merge(&pool, &out.referral, &signer, 101, &keys).unwrap();
    println!("\nmerged result:");
    for frag in &merged {
        println!("{}", frag.to_pretty_xml());
    }

    // 5. Presence is covered by one store alone: a plain referral.
    let presence = Path::parse("/user[@id='arnaud']/presence").unwrap();
    let out = gupster
        .lookup("arnaud", &presence, "arnaud", Purpose::Query, WeekTime::at(0, 10, 0), 102)
        .unwrap();
    let r = fetch_merge(&pool, &out.referral, &signer, 102, &keys).unwrap();
    println!("\npresence = {}", r[0].text());
    println!("\nregistry stats: {:?}", gupster.stats);
}
