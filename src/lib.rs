//! # GUPster
//!
//! A reproduction of *"Enter Once, Share Everywhere: User Profile
//! Management in Converged Networks"* (Sahuguet, Hull, Lieuwen, Xiong —
//! CIDR 2003): a Napster-style meta-data manager plus federated-database
//! machinery for end-user profile data spread across PSTN, wireless,
//! VoIP and Web networks.
//!
//! This facade crate re-exports every subsystem. Start with
//! [`core`] for the GUPster server itself, or run
//! `cargo run --example quickstart`.

#![forbid(unsafe_code)]

pub use gupster_core as core;
pub use gupster_directory as directory;
pub use gupster_netsim as netsim;
pub use gupster_policy as policy;
pub use gupster_schema as schema;
pub use gupster_store as store;
pub use gupster_sync as sync;
pub use gupster_telemetry as telemetry;
pub use gupster_xml as xml;
pub use gupster_xpath as xpath;
