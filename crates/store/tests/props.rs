//! Randomized invariant tests local to the store crate: adapter
//! view/query consistency, relational index coherence, and update/event
//! laws. Deterministic — see `gupster_rng::check`.

use gupster_rng::check::{self, cases};
use gupster_rng::{Rng, StdRng};
use gupster_store::relational::{Table, Value};
use gupster_store::{DataStore, LdapAdapter, RelationalAdapter, StoreId, UpdateOp, XmlStore};
use gupster_xml::Element;
use gupster_xpath::Path;

fn name(rng: &mut StdRng) -> String {
    let letters: Vec<char> = ('A'..='Z').chain('a'..='z').collect();
    check::string_of(rng, &letters, 1, 8)
}

fn phone(rng: &mut StdRng) -> String {
    let digits: Vec<char> = ('0'..='9').collect();
    format!("{}-{}", check::string_of(rng, &digits, 3, 3), check::string_of(rng, &digits, 4, 4))
}

fn contacts(rng: &mut StdRng) -> Vec<(String, String)> {
    check::vec_of(rng, 0, 7, |r| (name(r), phone(r)))
}

/// Querying through the relational adapter equals selecting over its
/// own virtual view — the adapter adds no phantom data.
#[test]
fn relational_adapter_query_matches_view() {
    cases(128, 0x57_01, |rng| {
        let cs = contacts(rng);
        let mut a = RelationalAdapter::new("gup.spcs.com");
        a.add_subscriber("alice", "Alice", "908-555-0199");
        for (name, phone) in &cs {
            a.add_contact("alice", "personal", name, phone);
        }
        let view = a.gup_view("alice").unwrap();
        for expr in [
            "/user[@id='alice']/address-book/item",
            "/user[@id='alice']/presence",
            "/user[@id='alice']/devices/device/number",
        ] {
            let path = Path::parse(expr).unwrap();
            let through: Vec<String> =
                a.query(&path).unwrap().iter().map(Element::to_xml).collect();
            let direct: Vec<String> = path.select(&view).iter().map(|e| e.to_xml()).collect();
            assert_eq!(through, direct, "{expr}");
        }
        assert_eq!(
            a.query(&Path::parse("/user[@id='alice']/address-book/item").unwrap())
                .unwrap()
                .len(),
            cs.len()
        );
    });
}

/// The LDAP adapter round-trips contacts added through the GUP
/// update interface.
#[test]
fn ldap_adapter_insert_then_query() {
    cases(128, 0x57_02, |rng| {
        let cs = contacts(rng);
        let mut a = LdapAdapter::new("gup.lucent.com", "lucent");
        a.add_user("alice", "Alice", "Smith").unwrap();
        for (name, phone) in &cs {
            let item = Element::new("item")
                .with_attr("type", "corporate")
                .with_child(Element::new("name").with_text(name.clone()))
                .with_child(Element::new("phone").with_text(phone.clone()));
            a.update(
                "alice",
                &UpdateOp::InsertChild(Path::parse("/user/address-book").unwrap(), item),
            )
            .unwrap();
        }
        let items =
            a.query(&Path::parse("/user[@id='alice']/address-book/item").unwrap()).unwrap();
        assert_eq!(items.len(), cs.len());
        for (name, phone) in &cs {
            let q = Path::parse(&format!("/user/address-book/item[name='{name}']/phone"))
                .unwrap();
            let phones = a.query(&q).unwrap();
            assert!(
                phones.iter().any(|p| p.text() == *phone),
                "contact {name} lost its phone"
            );
        }
    });
}

/// Secondary-index lookups agree with full scans after arbitrary
/// upsert/delete interleavings.
#[test]
fn relational_index_coherent() {
    cases(256, 0x57_03, |rng| {
        let ops = check::vec_of(rng, 0, 29, |r| {
            (r.gen_range(0i64..20), check::lowercase(r, 1, 1), r.gen_bool(0.5))
        });
        let mut indexed = Table::new(&["id", "city"]);
        indexed.index_on("city");
        let mut plain = Table::new(&["id", "city"]);
        for (id, city, del) in &ops {
            // Clamp the city alphabet to a-c so lookups below hit.
            let city = match city.as_str() {
                s if s <= "i" => "a",
                s if s <= "r" => "b",
                _ => "c",
            };
            if *del {
                indexed.delete(&Value::Int(*id));
                plain.delete(&Value::Int(*id));
            } else {
                indexed.upsert(vec![Value::Int(*id), Value::text(city)]).unwrap();
                plain.upsert(vec![Value::Int(*id), Value::text(city)]).unwrap();
            }
        }
        for city in ["a", "b", "c"] {
            let via_index: Vec<_> = indexed.lookup("city", &Value::text(city));
            let via_scan: Vec<_> = plain.lookup("city", &Value::text(city));
            let mut ix: Vec<String> = via_index.iter().map(|r| r[0].render()).collect();
            let mut sc: Vec<String> = via_scan.iter().map(|r| r[0].render()).collect();
            ix.sort();
            sc.sort();
            assert_eq!(ix, sc, "city={city}");
        }
    });
}

/// Every successful XmlStore update emits exactly one event carrying
/// the op's path, and failed updates emit none.
#[test]
fn xmlstore_event_per_update() {
    cases(256, 0x57_04, |rng| {
        let texts = check::vec_of(rng, 1, 5, |r| check::lowercase(r, 1, 6));
        let mut s = XmlStore::new("t");
        s.put_profile(
            Element::new("user")
                .with_attr("id", "u")
                .with_child(Element::new("presence").with_text("init")),
        )
        .unwrap();
        s.drain_events();
        let path = Path::parse("/user/presence").unwrap();
        for t in &texts {
            s.update("u", &UpdateOp::SetText(path.clone(), t.clone())).unwrap();
        }
        let bad =
            s.update("u", &UpdateOp::SetText(Path::parse("/user/ghost").unwrap(), "x".into()));
        assert!(bad.is_err());
        let events = s.drain_events();
        assert_eq!(events.len(), texts.len());
        assert!(events.iter().all(|e| e.path == path && e.user == "u"));
        // Generations strictly increase.
        for w in events.windows(2) {
            assert!(w[0].generation < w[1].generation);
        }
        assert_eq!(s.id(), &StoreId::new("t"));
    });
}
