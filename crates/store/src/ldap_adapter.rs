//! GUP-enabling an LDAP directory (§6: "we plan to leverage the
//! LDAP/DEN schemas … and to provide tools to wrap LDAP sites").
//!
//! The adapter maps `inetOrgPerson` entries under
//! `ou=contacts,uid=<user>,ou=profiles,o=<org>` to GUP `address-book`
//! items, and the user's own entry to the `identity` component. Reads
//! are virtual views; writes translate to directory modifications.

use gupster_directory::{Directory, Dn, Entry, Filter, Scope};
use gupster_xml::Element;
use gupster_xpath::{Path, Predicate};

use crate::error::StoreError;
use crate::store_trait::{Capabilities, ChangeEvent, DataStore, StoreId, UpdateOp};

/// A GUP adapter over an LDAP [`Directory`].
#[derive(Debug, Clone)]
pub struct LdapAdapter {
    id: StoreId,
    dir: Directory,
    base: Dn,
    generation: u64,
    events: Vec<ChangeEvent>,
    next_item: u32,
}

impl LdapAdapter {
    /// Creates an adapter with base `ou=profiles,o=<org>`.
    pub fn new(id: impl Into<String>, org: &str) -> Self {
        let mut dir = Directory::new();
        let o = Dn::parse(&format!("o={org}")).expect("static");
        dir.add(Entry::new(o.clone(), &["organization"]).with("o", org)).expect("fresh");
        let base = o.child("ou", "profiles");
        dir.add(Entry::new(base.clone(), &["organizationalUnit"]).with("ou", "profiles"))
            .expect("fresh");
        LdapAdapter {
            id: StoreId::new(id),
            dir,
            base,
            generation: 0,
            events: Vec::new(),
            next_item: 1,
        }
    }

    fn user_dn(&self, user: &str) -> Dn {
        self.base.child("uid", user)
    }

    fn contacts_dn(&self, user: &str) -> Dn {
        self.user_dn(user).child("ou", "contacts")
    }

    /// Provisions a user entry (with identity data) and their contacts
    /// container.
    pub fn add_user(&mut self, user: &str, cn: &str, sn: &str) -> Result<(), StoreError> {
        self.dir
            .add(
                Entry::new(self.user_dn(user), &["inetOrgPerson"])
                    .with("uid", user)
                    .with("cn", cn)
                    .with("sn", sn),
            )
            .map_err(|e| StoreError::Backend(e.to_string()))?;
        self.dir
            .add(Entry::new(self.contacts_dn(user), &["organizationalUnit"]).with("ou", "contacts"))
            .map_err(|e| StoreError::Backend(e.to_string()))?;
        self.generation += 1;
        Ok(())
    }

    /// Adds a contact entry for a user.
    pub fn add_contact(
        &mut self,
        user: &str,
        kind: &str,
        name: &str,
        phone: &str,
    ) -> Result<String, StoreError> {
        let id = format!("c{}", self.next_item);
        self.next_item += 1;
        let dn = self.contacts_dn(user).child("cn", &id);
        self.dir
            .add(
                Entry::new(dn, &["inetOrgPerson"])
                    .with("cn", id.clone())
                    .with("sn", name)
                    .with("telephoneNumber", phone)
                    .with("description", kind),
            )
            .map_err(|e| StoreError::Backend(e.to_string()))?;
        self.generation += 1;
        Ok(id)
    }

    /// Builds the virtual GUP view of one user.
    pub fn gup_view(&self, user: &str) -> Option<Element> {
        let entry = self.dir.get(&self.user_dn(user)).ok()?;
        let mut doc = Element::new("user").with_attr("id", user);
        let mut identity = Element::new("identity");
        if let Some(cn) = entry.first("cn") {
            identity.push_child(Element::new("name").with_text(cn));
        }
        for mail in entry.get("mail") {
            identity.push_child(Element::new("email").with_text(mail.clone()));
        }
        doc.push_child(identity);
        let mut book = Element::new("address-book");
        let hits = self.dir.search(
            &self.contacts_dn(user),
            Scope::OneLevel,
            &Filter::Present("cn".into()),
        );
        for h in hits.hits {
            let e = &h.entry;
            book.push_child(
                Element::new("item")
                    .with_attr("id", e.first("cn").unwrap_or_default_str())
                    .with_attr("type", e.first("description").unwrap_or("personal"))
                    .with_child(
                        Element::new("name").with_text(e.first("sn").unwrap_or_default_str()),
                    )
                    .with_child(
                        Element::new("phone")
                            .with_text(e.first("telephoneNumber").unwrap_or_default_str()),
                    ),
            );
        }
        doc.push_child(book);
        Some(doc)
    }

    fn path_user(path: &Path) -> Option<String> {
        path.steps.first().and_then(|s| {
            s.predicates.iter().find_map(|p| match p {
                Predicate::AttrEq(a, v) if a == "id" => Some(v.clone()),
                _ => None,
            })
        })
    }

    /// The wrapped directory, for inspection.
    pub fn directory(&self) -> &Directory {
        &self.dir
    }
}

trait OrDefaultStr<'a> {
    fn unwrap_or_default_str(self) -> &'a str;
}

impl<'a> OrDefaultStr<'a> for Option<&'a str> {
    fn unwrap_or_default_str(self) -> &'a str {
        self.unwrap_or("")
    }
}

impl DataStore for LdapAdapter {
    fn id(&self) -> &StoreId {
        &self.id
    }

    fn query(&self, path: &Path) -> Result<Vec<Element>, StoreError> {
        let users = match Self::path_user(path) {
            Some(u) => vec![u],
            None => self.users(),
        };
        let mut out = Vec::new();
        for u in users {
            if let Some(view) = self.gup_view(&u) {
                out.extend(path.select(&view).into_iter().cloned());
            }
        }
        Ok(out)
    }

    fn update(&mut self, user: &str, op: &UpdateOp) -> Result<(), StoreError> {
        let names: Vec<&str> = op
            .path()
            .steps
            .iter()
            .filter_map(|s| match &s.test {
                gupster_xpath::NameTest::Name(n) => Some(n.as_str()),
                gupster_xpath::NameTest::Any => None,
            })
            .collect();
        match (op, names.as_slice()) {
            (UpdateOp::InsertChild(_, item), ["user", "address-book"]) => {
                let kind = item.attr("type").unwrap_or("personal").to_string();
                let name = item.child("name").map(|n| n.text()).unwrap_or_default();
                let phone = item.child("phone").map(|n| n.text()).unwrap_or_default();
                self.add_contact(user, &kind, &name, &phone)?;
            }
            (UpdateOp::Delete(p), ["user", "address-book", "item"]) => {
                let id = p
                    .steps
                    .last()
                    .and_then(|s| {
                        s.predicates.iter().find_map(|pr| match pr {
                            Predicate::AttrEq(a, v) if a == "id" => Some(v.clone()),
                            _ => None,
                        })
                    })
                    .ok_or_else(|| {
                        StoreError::Untranslatable("delete needs an item id".into())
                    })?;
                let dn = self.contacts_dn(user).child("cn", &id);
                self.dir.delete(&dn).map_err(|e| StoreError::Backend(e.to_string()))?;
            }
            (UpdateOp::SetText(p, text), ["user", "address-book", "item", "phone"]) => {
                // Update a contact's phone number.
                let id = p.steps[2]
                    .predicates
                    .iter()
                    .find_map(|pr| match pr {
                        Predicate::AttrEq(a, v) if a == "id" => Some(v.clone()),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        StoreError::Untranslatable("phone update needs an item id".into())
                    })?;
                let dn = self.contacts_dn(user).child("cn", &id);
                self.dir
                    .modify(&dn, |e| e.replace("telephoneNumber", vec![text.clone()]))
                    .map_err(|e| StoreError::Backend(e.to_string()))?;
            }
            _ => {
                return Err(StoreError::Untranslatable(format!(
                    "no LDAP translation for {op:?}"
                )))
            }
        }
        self.generation += 1;
        self.events.push(ChangeEvent {
            user: user.to_string(),
            path: op.path().clone(),
            generation: self.generation,
        });
        Ok(())
    }

    fn users(&self) -> Vec<String> {
        self.dir
            .search(&self.base, Scope::OneLevel, &Filter::Present("uid".into()))
            .hits
            .into_iter()
            .filter_map(|h| h.entry.first("uid").map(str::to_string))
            .collect()
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { can_update: true, can_subscribe: true, can_chain: false }
    }

    fn drain_events(&mut self) -> Vec<ChangeEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn adapter() -> LdapAdapter {
        let mut a = LdapAdapter::new("gup.lucent.com", "lucent");
        a.add_user("arnaud", "Arnaud Sahuguet", "Sahuguet").unwrap();
        a.add_contact("arnaud", "corporate", "Rick Hull", "908-582-4393").unwrap();
        a.add_contact("arnaud", "corporate", "Dan Lieuwen", "908-582-5555").unwrap();
        a
    }

    #[test]
    fn gup_view_from_ldap_entries() {
        let a = adapter();
        let v = a.gup_view("arnaud").unwrap();
        assert_eq!(v.child("identity").unwrap().child("name").unwrap().text(), "Arnaud Sahuguet");
        assert_eq!(v.child("address-book").unwrap().children_named("item").count(), 2);
    }

    #[test]
    fn query_selects_in_view() {
        let a = adapter();
        let r = a.query(&p("/user[@id='arnaud']/address-book/item[name='Rick Hull']/phone"))
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].text(), "908-582-4393");
    }

    #[test]
    fn insert_contact_via_gup_update() {
        let mut a = adapter();
        let item = Element::new("item")
            .with_attr("type", "corporate")
            .with_child(Element::new("name").with_text("Ming Xiong"))
            .with_child(Element::new("phone").with_text("908-582-7777"));
        a.update("arnaud", &UpdateOp::InsertChild(p("/user/address-book"), item)).unwrap();
        assert_eq!(
            a.query(&p("/user[@id='arnaud']/address-book/item")).unwrap().len(),
            3
        );
    }

    #[test]
    fn delete_contact_via_gup_update() {
        let mut a = adapter();
        a.update("arnaud", &UpdateOp::Delete(p("/user/address-book/item[@id='c1']"))).unwrap();
        assert_eq!(
            a.query(&p("/user[@id='arnaud']/address-book/item")).unwrap().len(),
            1
        );
    }

    #[test]
    fn phone_update_via_gup_path() {
        let mut a = adapter();
        a.update(
            "arnaud",
            &UpdateOp::SetText(
                p("/user/address-book/item[@id='c1']/phone"),
                "908-582-0000".into(),
            ),
        )
        .unwrap();
        let r = a.query(&p("/user[@id='arnaud']/address-book/item[@id='c1']/phone")).unwrap();
        assert_eq!(r[0].text(), "908-582-0000");
    }

    #[test]
    fn untranslatable_update_rejected() {
        let mut a = adapter();
        let err = a.update("arnaud", &UpdateOp::SetText(p("/user/presence"), "x".into()));
        assert!(matches!(err, Err(StoreError::Untranslatable(_))));
    }

    #[test]
    fn users_listed() {
        let a = adapter();
        assert_eq!(a.users(), vec!["arnaud"]);
    }
}
