//! A native XML profile store.
//!
//! This is what a GUP-native host (an internet portal, a presence
//! server) runs: per-user profile documents, XPath query/update, change
//! events for subscriptions.

use std::collections::BTreeMap;

use gupster_xml::Element;
use gupster_xpath::Path;

use crate::error::StoreError;
use crate::store_trait::{Capabilities, ChangeEvent, DataStore, StoreId, UpdateOp};

/// In-memory XML data store holding one profile document per user.
#[derive(Debug, Clone)]
pub struct XmlStore {
    id: StoreId,
    docs: BTreeMap<String, Element>,
    generation: u64,
    events: Vec<ChangeEvent>,
}

impl XmlStore {
    /// Creates an empty store.
    pub fn new(id: impl Into<String>) -> Self {
        XmlStore { id: StoreId::new(id), docs: BTreeMap::new(), generation: 0, events: Vec::new() }
    }

    /// Inserts or replaces a user's whole profile document. The document
    /// root must carry the user id (`<user id="…">`).
    pub fn put_profile(&mut self, doc: Element) -> Result<(), StoreError> {
        let user = doc
            .attr("id")
            .ok_or_else(|| StoreError::Backend("profile root lacks an id attribute".into()))?
            .to_string();
        self.docs.insert(user.clone(), doc);
        self.generation += 1;
        self.events.push(ChangeEvent {
            user,
            path: Path::from_names(&["user"]),
            generation: self.generation,
        });
        Ok(())
    }

    /// Removes a user's profile (used when a subscriber churns away —
    /// the §2.1 carrier-switch scenario).
    pub fn remove_profile(&mut self, user: &str) -> Option<Element> {
        let doc = self.docs.remove(user);
        if doc.is_some() {
            self.generation += 1;
            self.events.push(ChangeEvent {
                user: user.to_string(),
                path: Path::from_names(&["user"]),
                generation: self.generation,
            });
        }
        doc
    }

    /// Direct read access to a profile document.
    pub fn profile(&self, user: &str) -> Option<&Element> {
        self.docs.get(user)
    }

    /// Number of profiles held.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if the store holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The user a query path addresses: the value of the `[@id='…']`
    /// predicate on the first step, if present.
    fn target_users<'a>(&'a self, path: &Path) -> Vec<(&'a String, &'a Element)> {
        use gupster_xpath::Predicate;
        let id_pred = path.steps.first().and_then(|s| {
            s.predicates.iter().find_map(|p| match p {
                Predicate::AttrEq(a, v) if a == "id" => Some(v.clone()),
                _ => None,
            })
        });
        match id_pred {
            Some(uid) => self.docs.get_key_value(&uid).into_iter().collect(),
            None => self.docs.iter().collect(),
        }
    }
}

impl DataStore for XmlStore {
    fn id(&self) -> &StoreId {
        &self.id
    }

    fn query(&self, path: &Path) -> Result<Vec<Element>, StoreError> {
        let mut out = Vec::new();
        for (_, doc) in self.target_users(path) {
            out.extend(path.select(doc).into_iter().cloned());
        }
        Ok(out)
    }

    fn update(&mut self, user: &str, op: &UpdateOp) -> Result<(), StoreError> {
        let doc = self
            .docs
            .get_mut(user)
            .ok_or_else(|| StoreError::UnknownUser(user.to_string()))?;
        let addrs = op.path().select_node_paths(doc);
        if addrs.is_empty() {
            // InsertChild may target a container that doesn't exist yet
            // for container-less ops we fail.
            return Err(StoreError::NoSuchTarget(op.path().to_string()));
        }
        match op {
            UpdateOp::SetText(_, text) => {
                for a in &addrs {
                    a.resolve_mut(doc).expect("addressed").set_text(text.clone());
                }
            }
            UpdateOp::SetAttr(_, name, value) => {
                for a in &addrs {
                    a.resolve_mut(doc).expect("addressed").set_attr(name.clone(), value.clone());
                }
            }
            UpdateOp::InsertChild(_, child) => {
                for a in &addrs {
                    a.resolve_mut(doc).expect("addressed").push_child(child.clone());
                }
            }
            UpdateOp::Delete(_) => {
                // Remove in reverse document order so earlier removals
                // don't shift the occurrence indices of later addresses
                // (indices count same-named siblings only, so comparing
                // the index sequences lexicographically is sufficient).
                let mut sorted = addrs.clone();
                sorted.sort_by(|a, b| {
                    let ka: Vec<usize> = a.steps.iter().map(|s| s.index).collect();
                    let kb: Vec<usize> = b.steps.iter().map(|s| s.index).collect();
                    kb.cmp(&ka)
                });
                for a in &sorted {
                    a.remove(doc).map_err(|e| StoreError::Backend(e.to_string()))?;
                }
            }
            UpdateOp::Replace(_, new) => {
                for a in &addrs {
                    *a.resolve_mut(doc).expect("addressed") = new.clone();
                }
            }
        }
        self.generation += 1;
        self.events.push(ChangeEvent {
            user: user.to_string(),
            path: op.path().clone(),
            generation: self.generation,
        });
        Ok(())
    }

    fn users(&self) -> Vec<String> {
        self.docs.keys().cloned().collect()
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::FULL
    }

    fn drain_events(&mut self) -> Vec<ChangeEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::parse;

    fn store() -> XmlStore {
        let mut s = XmlStore::new("gup.yahoo.com");
        s.put_profile(
            parse(
                r#"<user id="arnaud"><address-book><item id="1" type="personal"><name>Mom</name></item></address-book><presence>online</presence></user>"#,
            )
            .unwrap(),
        )
        .unwrap();
        s.put_profile(parse(r#"<user id="rick"><presence>away</presence></user>"#).unwrap())
            .unwrap();
        s.drain_events();
        s
    }

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn query_single_user() {
        let s = store();
        let r = s.query(&p("/user[@id='arnaud']/presence")).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].text(), "online");
    }

    #[test]
    fn query_across_users_without_id_predicate() {
        let s = store();
        let r = s.query(&p("/user/presence")).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn query_unknown_user_is_empty() {
        let s = store();
        assert!(s.query(&p("/user[@id='ghost']/presence")).unwrap().is_empty());
    }

    #[test]
    fn set_text_update() {
        let mut s = store();
        s.update("arnaud", &UpdateOp::SetText(p("/user/presence"), "busy".into())).unwrap();
        assert_eq!(s.query(&p("/user[@id='arnaud']/presence")).unwrap()[0].text(), "busy");
        // Only arnaud changed.
        assert_eq!(s.query(&p("/user[@id='rick']/presence")).unwrap()[0].text(), "away");
    }

    #[test]
    fn insert_and_delete_children() {
        let mut s = store();
        let item = parse(r#"<item id="2" type="corporate"><name>Rick</name></item>"#).unwrap();
        s.update("arnaud", &UpdateOp::InsertChild(p("/user/address-book"), item)).unwrap();
        assert_eq!(s.query(&p("/user[@id='arnaud']/address-book/item")).unwrap().len(), 2);
        s.update("arnaud", &UpdateOp::Delete(p("/user/address-book/item[@id='1']"))).unwrap();
        let left = s.query(&p("/user[@id='arnaud']/address-book/item")).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].attr("id"), Some("2"));
    }

    #[test]
    fn delete_multiple_targets_handles_index_shift() {
        let mut s = XmlStore::new("t");
        s.put_profile(
            parse(r#"<user id="u"><l><v>1</v><v>2</v><v>3</v></l></user>"#).unwrap(),
        )
        .unwrap();
        s.update("u", &UpdateOp::Delete(p("/user/l/v"))).unwrap();
        assert!(s.query(&p("/user/l/v")).unwrap().is_empty());
    }

    #[test]
    fn update_missing_target_errors() {
        let mut s = store();
        let err = s.update("arnaud", &UpdateOp::SetText(p("/user/calendar"), "x".into()));
        assert!(matches!(err, Err(StoreError::NoSuchTarget(_))));
        let err = s.update("ghost", &UpdateOp::SetText(p("/user/presence"), "x".into()));
        assert!(matches!(err, Err(StoreError::UnknownUser(_))));
    }

    #[test]
    fn events_emitted_on_writes() {
        let mut s = store();
        s.update("arnaud", &UpdateOp::SetText(p("/user/presence"), "busy".into())).unwrap();
        let ev = s.drain_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].user, "arnaud");
        assert_eq!(ev[0].path.to_string(), "/user/presence");
        assert!(s.drain_events().is_empty());
    }

    #[test]
    fn profile_without_id_rejected() {
        let mut s = XmlStore::new("t");
        assert!(s.put_profile(parse("<user/>").unwrap()).is_err());
    }

    #[test]
    fn remove_profile_for_churn() {
        let mut s = store();
        assert!(s.remove_profile("rick").is_some());
        assert!(s.remove_profile("rick").is_none());
        assert_eq!(s.users(), vec!["arnaud"]);
    }

    #[test]
    fn result_bytes_counts_serialized_size() {
        let s = store();
        let n = s.result_bytes(&p("/user[@id='arnaud']/address-book"));
        assert!(n > 20, "{n}");
        assert_eq!(s.result_bytes(&p("/user[@id='arnaud']/calendar")), 0);
    }
}
