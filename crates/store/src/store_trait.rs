//! The GUP-compliant data-store interface.

use std::fmt;

use gupster_xml::Element;
use gupster_xpath::Path;

use crate::error::StoreError;

/// Identifier of a data store, e.g. `gup.yahoo.com` — the referral
/// targets the paper returns from the GUPster server (§4.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreId(pub String);

impl StoreId {
    /// Creates a store id.
    pub fn new(s: impl Into<String>) -> Self {
        StoreId(s.into())
    }
}

impl fmt::Display for StoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a store can do; the registry consults this when choosing query
/// patterns (§5.2: thin clients cannot merge, some stores cannot chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Supports XPath-targeted updates.
    pub can_update: bool,
    /// Supports change subscriptions.
    pub can_subscribe: bool,
    /// Can execute a forwarded (chained) query against *other* stores.
    pub can_chain: bool,
}

impl Capabilities {
    /// Full capabilities.
    pub const FULL: Capabilities =
        Capabilities { can_update: true, can_subscribe: true, can_chain: true };
    /// Read-only source (e.g. a presence feed).
    pub const READ_ONLY: Capabilities =
        Capabilities { can_update: false, can_subscribe: true, can_chain: false };
}

/// An update operation, targeted by an XPath expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Replace the text content of every node the path selects.
    SetText(Path, String),
    /// Set an attribute on every node the path selects.
    SetAttr(Path, String, String),
    /// Append `element` as a child of every node the path selects.
    InsertChild(Path, Element),
    /// Delete every node the path selects.
    Delete(Path),
    /// Replace every node the path selects with `element`.
    Replace(Path, Element),
}

impl UpdateOp {
    /// The target path of the operation.
    pub fn path(&self) -> &Path {
        match self {
            UpdateOp::SetText(p, _)
            | UpdateOp::SetAttr(p, _, _)
            | UpdateOp::InsertChild(p, _)
            | UpdateOp::Delete(p)
            | UpdateOp::Replace(p, _) => p,
        }
    }
}

/// A change notification emitted by a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeEvent {
    /// The user whose profile changed.
    pub user: String,
    /// The path that was written.
    pub path: Path,
    /// The store's generation after the write.
    pub generation: u64,
}

/// The GUP-compliant interface every participating store exposes
/// (natively or through an adapter).
///
/// `Send + Sync` is a supertrait: stores are plain owned data (no
/// interior mutability anywhere in the workspace), and the sharded
/// front end fans scoped workers out over a shared `&StorePool`, which
/// requires the trait objects inside to be shareable.
pub trait DataStore: Send + Sync {
    /// The store's identity (referral target).
    fn id(&self) -> &StoreId;

    /// Evaluates a query path and returns the selected fragments
    /// (copies). A request like `/user[@id='arnaud']/address-book`
    /// returns the address-book subtree(s).
    fn query(&self, path: &Path) -> Result<Vec<Element>, StoreError>;

    /// Applies an update for the given user.
    fn update(&mut self, user: &str, op: &UpdateOp) -> Result<(), StoreError>;

    /// Users this store holds data for.
    fn users(&self) -> Vec<String>;

    /// Monotone modification counter.
    fn generation(&self) -> u64;

    /// Capability discovery.
    fn capabilities(&self) -> Capabilities;

    /// Drains pending change events (empty if subscriptions are
    /// unsupported). GUPster's subscription manager polls or forwards
    /// these (§5.2).
    fn drain_events(&mut self) -> Vec<ChangeEvent>;

    /// Approximate serialized size of the result a query would return —
    /// used by the network simulator to charge transfer time without
    /// materializing twice.
    fn result_bytes(&self, path: &Path) -> usize {
        self.query(path).map(|es| es.iter().map(Element::byte_size).sum()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_id_display() {
        assert_eq!(StoreId::new("gup.yahoo.com").to_string(), "gup.yahoo.com");
    }

    #[test]
    fn update_op_paths() {
        let p = Path::parse("/user/presence").unwrap();
        let op = UpdateOp::SetText(p.clone(), "busy".into());
        assert_eq!(op.path(), &p);
        let op = UpdateOp::Delete(p.clone());
        assert_eq!(op.path(), &p);
    }

    #[test]
    fn capability_presets() {
        let presets = [Capabilities::FULL, Capabilities::READ_ONLY];
        let updatable: Vec<bool> = presets.iter().map(|c| c.can_update).collect();
        assert_eq!(updatable, vec![true, false]);
        assert!(presets.iter().all(|c| c.can_subscribe));
    }
}
