//! # gupster-store
//!
//! GUP-enabled data stores (§4.2 of the paper): "an adapter is put on top
//! of the data store to offer a GUP-compliant interface (protocol and
//! data model)". This crate provides:
//!
//! * the [`DataStore`] trait — the GUP-compliant interface: XPath query,
//!   XPath-targeted update, change subscription, capability discovery;
//! * [`XmlStore`] — a native XML profile store (what a portal like
//!   Yahoo! would run);
//! * a miniature relational substrate ([`relational::RelationalDb`]) and
//!   [`RelationalAdapter`] publishing it as GUP XML — the HLR-style
//!   "main memory relational database" of §3.1.2, wrapped;
//! * [`LdapAdapter`] — GUP-enabling an LDAP directory ("tools to wrap
//!   LDAP sites", §6);
//! * declarative [`transform`]s used by adapters (renames, nesting,
//!   value normalization) — the "wrappers/mediators in charge of
//!   transforming the data into the right structure" of §5.3.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod ldap_adapter;
pub mod relational;
mod store_trait;
pub mod transform;
mod xmlstore;

pub use error::StoreError;
pub use ldap_adapter::LdapAdapter;
pub use relational::RelationalAdapter;
pub use store_trait::{Capabilities, ChangeEvent, DataStore, StoreId, UpdateOp};
pub use xmlstore::XmlStore;
