//! A miniature main-memory relational substrate plus a GUP adapter.
//!
//! §3.1.2: "A typical HLR stores information for millions of users in
//! main memory relational databases. Most read-only queries performed by
//! HLR are simple lookup queries". This module provides exactly that
//! class of store — typed tables with primary keys and index lookups —
//! and [`RelationalAdapter`], the wrapper that publishes it through the
//! GUP-compliant [`DataStore`] interface as XML (the "adapter on top of
//! any data store" of §5.3).

use std::collections::{BTreeMap, HashMap};

use gupster_xml::Element;
use gupster_xpath::{Path, Predicate};

use crate::error::StoreError;
use crate::store_trait::{Capabilities, ChangeEvent, DataStore, StoreId, UpdateOp};

/// A column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// NULL.
    Null,
    /// Text.
    Text(String),
    /// Integer.
    Int(i64),
}

impl Value {
    /// Renders the value for XML output (`Null` renders empty).
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Text(s) => s.clone(),
            Value::Int(i) => i.to_string(),
        }
    }

    /// Text constructor convenience.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }
}

/// A table: named columns, rows indexed by primary key (first column).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column names; column 0 is the primary key.
    pub columns: Vec<String>,
    rows: BTreeMap<Value, Vec<Value>>,
    /// Secondary hash index: column → value → primary keys.
    indexes: HashMap<usize, HashMap<Value, Vec<Value>>>,
}

impl Table {
    /// Creates a table with the given columns (first is the PK).
    pub fn new(columns: &[&str]) -> Self {
        Table {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: BTreeMap::new(),
            indexes: HashMap::new(),
        }
    }

    /// Declares a secondary index on a column.
    pub fn index_on(&mut self, column: &str) {
        if let Some(i) = self.col(column) {
            let mut ix: HashMap<Value, Vec<Value>> = HashMap::new();
            for (pk, row) in &self.rows {
                ix.entry(row[i].clone()).or_default().push(pk.clone());
            }
            self.indexes.insert(i, ix);
        }
    }

    fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Inserts (or replaces) a row. Row length must match the columns.
    pub fn upsert(&mut self, row: Vec<Value>) -> Result<(), StoreError> {
        if row.len() != self.columns.len() {
            return Err(StoreError::Backend(format!(
                "row arity {} != {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        let pk = row[0].clone();
        if let Some(old) = self.rows.get(&pk) {
            for (i, ix) in self.indexes.iter_mut() {
                if let Some(list) = ix.get_mut(&old[*i]) {
                    list.retain(|k| k != &pk);
                }
            }
        }
        for (i, ix) in self.indexes.iter_mut() {
            ix.entry(row[*i].clone()).or_default().push(pk.clone());
        }
        self.rows.insert(pk, row);
        Ok(())
    }

    /// Deletes a row by primary key.
    pub fn delete(&mut self, pk: &Value) -> Option<Vec<Value>> {
        let row = self.rows.remove(pk)?;
        for (i, ix) in self.indexes.iter_mut() {
            if let Some(list) = ix.get_mut(&row[*i]) {
                list.retain(|k| k != pk);
            }
        }
        Some(row)
    }

    /// Point lookup by primary key.
    pub fn get(&self, pk: &Value) -> Option<&Vec<Value>> {
        self.rows.get(pk)
    }

    /// Lookup by any column; uses the secondary index if one exists,
    /// otherwise scans.
    pub fn lookup(&self, column: &str, value: &Value) -> Vec<&Vec<Value>> {
        let Some(i) = self.col(column) else { return Vec::new() };
        if let Some(ix) = self.indexes.get(&i) {
            ix.get(value)
                .map(|pks| pks.iter().filter_map(|pk| self.rows.get(pk)).collect())
                .unwrap_or_default()
        } else {
            self.rows.values().filter(|r| &r[i] == value).collect()
        }
    }

    /// Updates one column of the row with the given primary key.
    pub fn update_column(
        &mut self,
        pk: &Value,
        column: &str,
        value: Value,
    ) -> Result<(), StoreError> {
        let i = self
            .col(column)
            .ok_or_else(|| StoreError::Backend(format!("no column '{column}'")))?;
        let row = self
            .rows
            .get_mut(pk)
            .ok_or_else(|| StoreError::Backend(format!("no row with pk {pk:?}")))?;
        if let Some(ix) = self.indexes.get_mut(&i) {
            if let Some(list) = ix.get_mut(&row[i]) {
                list.retain(|k| k != pk);
            }
            ix.entry(value.clone()).or_default().push(pk.clone());
        }
        row[i] = value;
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates all rows.
    pub fn rows(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.rows.values()
    }
}

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct RelationalDb {
    tables: BTreeMap<String, Table>,
}

impl RelationalDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, columns: &[&str]) {
        self.tables.insert(name.to_string(), Table::new(columns));
    }

    /// Table accessor.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable table accessor.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }
}

/// GUP adapter over a subscriber-shaped relational schema.
///
/// Expected tables:
///
/// * `subscriber(id, name, msisdn, presence, forward_to)`
/// * `contact(cid, user_id, kind, name, phone)` — indexed on `user_id`
///
/// The adapter publishes, per user, the GUP components `identity`
/// (virtual view over `subscriber`), `presence`, `devices` (msisdn as
/// the phone device) and `address-book` (view over `contact`). Updates
/// to `presence` and address-book items are translated back to
/// relational operations; anything else is rejected as untranslatable —
/// exactly the partial-capability situation adapters have in practice.
#[derive(Debug, Clone)]
pub struct RelationalAdapter {
    id: StoreId,
    /// The wrapped database.
    pub db: RelationalDb,
    generation: u64,
    events: Vec<ChangeEvent>,
    next_cid: i64,
}

impl RelationalAdapter {
    /// Creates the adapter with the expected empty schema.
    pub fn new(id: impl Into<String>) -> Self {
        let mut db = RelationalDb::new();
        db.create_table("subscriber", &["id", "name", "msisdn", "presence", "forward_to"]);
        db.create_table("contact", &["cid", "user_id", "kind", "name", "phone"]);
        db.table_mut("contact").expect("created").index_on("user_id");
        RelationalAdapter {
            id: StoreId::new(id),
            db,
            generation: 0,
            events: Vec::new(),
            next_cid: 1,
        }
    }

    /// Provisions a subscriber row.
    pub fn add_subscriber(&mut self, id: &str, name: &str, msisdn: &str) {
        self.db
            .table_mut("subscriber")
            .expect("schema")
            .upsert(vec![
                Value::text(id),
                Value::text(name),
                Value::text(msisdn),
                Value::text("unknown"),
                Value::Null,
            ])
            .expect("arity");
        self.generation += 1;
    }

    /// Adds a contact row for a user; returns the contact id.
    pub fn add_contact(&mut self, user: &str, kind: &str, name: &str, phone: &str) -> i64 {
        let cid = self.next_cid;
        self.next_cid += 1;
        self.db
            .table_mut("contact")
            .expect("schema")
            .upsert(vec![
                Value::Int(cid),
                Value::text(user),
                Value::text(kind),
                Value::text(name),
                Value::text(phone),
            ])
            .expect("arity");
        self.generation += 1;
        cid
    }

    /// Builds the virtual GUP view of one user (the paper's "virtual"
    /// transformation — nothing is materialized in the store).
    pub fn gup_view(&self, user: &str) -> Option<Element> {
        let sub = self.db.table("subscriber")?.get(&Value::text(user))?.clone();
        let mut doc = Element::new("user").with_attr("id", user);
        // identity
        doc.push_child(
            Element::new("identity")
                .with_child(Element::new("name").with_text(sub[1].render())),
        );
        // presence
        doc.push_child(Element::new("presence").with_text(sub[3].render()));
        // devices (the MSISDN is the wireless phone)
        doc.push_child(
            Element::new("devices").with_child(
                Element::new("device")
                    .with_attr("id", "msisdn")
                    .with_attr("kind", "phone")
                    .with_child(Element::new("number").with_text(sub[2].render())),
            ),
        );
        // address-book from the contact table
        let mut book = Element::new("address-book");
        for row in self.db.table("contact")?.lookup("user_id", &Value::text(user)) {
            book.push_child(
                Element::new("item")
                    .with_attr("id", row[0].render())
                    .with_attr("type", row[2].render())
                    .with_child(Element::new("name").with_text(row[3].render()))
                    .with_child(Element::new("phone").with_text(row[4].render())),
            );
        }
        doc.push_child(book);
        Some(doc)
    }

    fn path_user(path: &Path) -> Option<String> {
        path.steps.first().and_then(|s| {
            s.predicates.iter().find_map(|p| match p {
                Predicate::AttrEq(a, v) if a == "id" => Some(v.clone()),
                _ => None,
            })
        })
    }
}

impl DataStore for RelationalAdapter {
    fn id(&self) -> &StoreId {
        &self.id
    }

    fn query(&self, path: &Path) -> Result<Vec<Element>, StoreError> {
        let users: Vec<String> = match Self::path_user(path) {
            Some(u) => vec![u],
            None => self
                .db
                .table("subscriber")
                .map(|t| t.rows().map(|r| r[0].render()).collect())
                .unwrap_or_default(),
        };
        let mut out = Vec::new();
        for u in users {
            if let Some(view) = self.gup_view(&u) {
                out.extend(path.select(&view).into_iter().cloned());
            }
        }
        Ok(out)
    }

    fn update(&mut self, user: &str, op: &UpdateOp) -> Result<(), StoreError> {
        let path_str = op.path().to_string();
        let names: Vec<&str> = op
            .path()
            .steps
            .iter()
            .filter_map(|s| match &s.test {
                gupster_xpath::NameTest::Name(n) => Some(n.as_str()),
                gupster_xpath::NameTest::Any => None,
            })
            .collect();
        match (op, names.as_slice()) {
            (UpdateOp::SetText(_, text), ["user", "presence"]) => {
                self.db
                    .table_mut("subscriber")
                    .expect("schema")
                    .update_column(&Value::text(user), "presence", Value::text(text.clone()))
                    .map_err(|_| StoreError::UnknownUser(user.to_string()))?;
            }
            (UpdateOp::InsertChild(_, item), ["user", "address-book"]) => {
                let kind = item.attr("type").unwrap_or("personal").to_string();
                let name =
                    item.child("name").map(|n| n.text()).unwrap_or_default();
                let phone =
                    item.child("phone").map(|n| n.text()).unwrap_or_default();
                self.add_contact(user, &kind, &name, &phone);
                // add_contact bumped the generation; don't double-bump.
                self.generation -= 1;
            }
            (UpdateOp::Delete(p), ["user", "address-book", "item"]) => {
                // Find the item id predicate.
                let cid = p.steps.last().and_then(|s| {
                    s.predicates.iter().find_map(|pr| match pr {
                        Predicate::AttrEq(a, v) if a == "id" => v.parse::<i64>().ok(),
                        _ => None,
                    })
                });
                let cid = cid.ok_or_else(|| {
                    StoreError::Untranslatable(format!(
                        "delete needs an item id predicate: {path_str}"
                    ))
                })?;
                self.db
                    .table_mut("contact")
                    .expect("schema")
                    .delete(&Value::Int(cid))
                    .ok_or_else(|| StoreError::NoSuchTarget(path_str.clone()))?;
            }
            _ => {
                return Err(StoreError::Untranslatable(format!(
                    "no relational translation for {op:?}"
                )))
            }
        }
        self.generation += 1;
        self.events.push(ChangeEvent {
            user: user.to_string(),
            path: op.path().clone(),
            generation: self.generation,
        });
        Ok(())
    }

    fn users(&self) -> Vec<String> {
        self.db
            .table("subscriber")
            .map(|t| t.rows().map(|r| r[0].render()).collect())
            .unwrap_or_default()
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { can_update: true, can_subscribe: true, can_chain: false }
    }

    fn drain_events(&mut self) -> Vec<ChangeEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn adapter() -> RelationalAdapter {
        let mut a = RelationalAdapter::new("gup.spcs.com");
        a.add_subscriber("arnaud", "Arnaud Sahuguet", "908-555-0199");
        a.add_contact("arnaud", "personal", "Mom", "908-555-0101");
        a.add_contact("arnaud", "corporate", "Rick", "908-582-4393");
        a.add_subscriber("rick", "Rick Hull", "908-555-0200");
        a
    }

    #[test]
    fn table_pk_and_index() {
        let mut t = Table::new(&["id", "city"]);
        t.index_on("city");
        t.upsert(vec![Value::Int(1), Value::text("NYC")]).unwrap();
        t.upsert(vec![Value::Int(2), Value::text("NYC")]).unwrap();
        t.upsert(vec![Value::Int(3), Value::text("SF")]).unwrap();
        assert_eq!(t.lookup("city", &Value::text("NYC")).len(), 2);
        // Upsert moves index entries.
        t.upsert(vec![Value::Int(2), Value::text("SF")]).unwrap();
        assert_eq!(t.lookup("city", &Value::text("NYC")).len(), 1);
        assert_eq!(t.lookup("city", &Value::text("SF")).len(), 2);
        // Delete cleans indexes.
        t.delete(&Value::Int(3));
        assert_eq!(t.lookup("city", &Value::text("SF")).len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(&["id", "x"]);
        assert!(t.upsert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn virtual_view_has_gup_shape() {
        let a = adapter();
        let v = a.gup_view("arnaud").unwrap();
        assert_eq!(v.attr("id"), Some("arnaud"));
        assert_eq!(v.child("address-book").unwrap().children_named("item").count(), 2);
        assert_eq!(
            p("/user/devices/device/number").select_strings(&v),
            vec!["908-555-0199"]
        );
    }

    #[test]
    fn query_through_adapter() {
        let a = adapter();
        let r = a.query(&p("/user[@id='arnaud']/address-book/item[@type='corporate']/name"))
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].text(), "Rick");
        // Cross-user query without predicate.
        assert_eq!(a.query(&p("/user/presence")).unwrap().len(), 2);
    }

    #[test]
    fn presence_update_translates() {
        let mut a = adapter();
        a.update("arnaud", &UpdateOp::SetText(p("/user/presence"), "busy".into())).unwrap();
        assert_eq!(
            a.query(&p("/user[@id='arnaud']/presence")).unwrap()[0].text(),
            "busy"
        );
        let ev = a.drain_events();
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn contact_insert_and_delete_translate() {
        let mut a = adapter();
        let item = Element::new("item")
            .with_attr("type", "personal")
            .with_child(Element::new("name").with_text("Bob"))
            .with_child(Element::new("phone").with_text("908-111-2222"));
        a.update("arnaud", &UpdateOp::InsertChild(p("/user/address-book"), item)).unwrap();
        assert_eq!(
            a.query(&p("/user[@id='arnaud']/address-book/item")).unwrap().len(),
            3
        );
        a.update("arnaud", &UpdateOp::Delete(p("/user/address-book/item[@id='1']"))).unwrap();
        assert_eq!(
            a.query(&p("/user[@id='arnaud']/address-book/item")).unwrap().len(),
            2
        );
    }

    #[test]
    fn untranslatable_rejected() {
        let mut a = adapter();
        let err = a.update("arnaud", &UpdateOp::SetText(p("/user/calendar"), "x".into()));
        assert!(matches!(err, Err(StoreError::Untranslatable(_))));
        let err = a.update("arnaud", &UpdateOp::Delete(p("/user/address-book/item")));
        assert!(matches!(err, Err(StoreError::Untranslatable(_))));
    }

    #[test]
    fn unknown_user_presence_update_fails() {
        let mut a = adapter();
        let err = a.update("ghost", &UpdateOp::SetText(p("/user/presence"), "x".into()));
        assert!(matches!(err, Err(StoreError::UnknownUser(_))));
    }
}
