//! Error type for data-store operations.

use std::fmt;

/// Errors raised by data stores and adapters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store holds no profile for this user.
    UnknownUser(String),
    /// The update target did not resolve to any node.
    NoSuchTarget(String),
    /// The store cannot perform this operation (capability mismatch).
    Unsupported(String),
    /// An adapter could not translate the request onto its backend.
    Untranslatable(String),
    /// The backend rejected the operation.
    Backend(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownUser(u) => write!(f, "unknown user '{u}'"),
            StoreError::NoSuchTarget(p) => write!(f, "update target matched nothing: {p}"),
            StoreError::Unsupported(what) => write!(f, "operation not supported: {what}"),
            StoreError::Untranslatable(what) => {
                write!(f, "adapter cannot translate request: {what}")
            }
            StoreError::Backend(why) => write!(f, "backend error: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}
