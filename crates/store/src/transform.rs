//! Declarative structural transformations for adapters.
//!
//! §5.3 Data transformation: "we assume the existence of some
//! wrappers/mediators in charge of transforming the data into the right
//! structure. The transformation can be virtual or physical." A
//! [`Transform`] pipeline is the mediator's rule set; adapters apply it
//! on the way out (publish as GUP) and, where invertible, on the way in.

use gupster_xml::{ArenaDoc, Element, Node};

/// One transformation rule applied to every element of a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transform {
    /// Rename elements with tag `from` to `to`.
    RenameTag {
        /// Old tag.
        from: String,
        /// New tag.
        to: String,
    },
    /// Rename attribute `from` to `to` on elements with tag `on`.
    RenameAttr {
        /// Element tag the rule applies to.
        on: String,
        /// Old attribute name.
        from: String,
        /// New attribute name.
        to: String,
    },
    /// Move the text of elements with tag `on` into an attribute.
    TextToAttr {
        /// Element tag.
        on: String,
        /// Attribute to create.
        attr: String,
    },
    /// Wrap every element with tag `each` in a new parent tag.
    WrapEach {
        /// Tag to wrap.
        each: String,
        /// Wrapper tag.
        wrapper: String,
    },
    /// Drop elements with the given tag (and their subtrees).
    Drop {
        /// Tag to remove.
        tag: String,
    },
    /// Apply a named value normalization to the text of elements with
    /// the given tag (e.g. phone-number canonicalization).
    NormalizeText {
        /// Element tag.
        on: String,
        /// Normalizer name: `phone`, `lowercase` or `trim`.
        normalizer: String,
    },
}

/// A pipeline of transformation rules applied in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pipeline {
    /// Rules, applied first to last.
    pub rules: Vec<Transform>,
}

impl Pipeline {
    /// An empty (identity) pipeline.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Builder: appends a rule.
    pub fn then(mut self, rule: Transform) -> Self {
        self.rules.push(rule);
        self
    }

    /// Applies the pipeline to a tree, returning the transformed copy.
    pub fn apply(&self, input: &Element) -> Element {
        let mut e = input.clone();
        for rule in &self.rules {
            e = apply_rule(rule, e);
        }
        e
    }

    /// Applies the pipeline to an arena document.
    ///
    /// The rename rules — the common virtual-mediation case of §5.3 —
    /// are pure interned-name rewrites over the arena's flat tables: no
    /// tree is walked and no subtree is cloned. The structural rules
    /// (wrap/drop/text moves) fall back to the owned mediator and
    /// re-adopt the result; either way the output is exactly what
    /// [`Pipeline::apply`] produces on the equivalent owned tree.
    pub fn apply_arena(&self, input: &ArenaDoc) -> ArenaDoc {
        let mut doc = input.clone();
        for (i, rule) in self.rules.iter().enumerate() {
            match rule {
                Transform::RenameTag { from, to } => doc.rename_tags(from, to),
                Transform::RenameAttr { on, from, to } => doc.rename_attr(on, from, to),
                _ => {
                    let mut e = doc.root_element();
                    for r in &self.rules[i..] {
                        e = apply_rule(r, e);
                    }
                    return ArenaDoc::from_element(&e);
                }
            }
        }
        doc
    }
}

fn apply_rule(rule: &Transform, mut e: Element) -> Element {
    // Recurse first so wrapping at this level doesn't re-trigger below.
    let children = std::mem::take(&mut e.children);
    e.children = children
        .into_iter()
        .filter_map(|c| match c {
            Node::Element(ce) => {
                if let Transform::Drop { tag } = rule {
                    if ce.name == *tag {
                        return None;
                    }
                }
                let transformed = apply_rule(rule, ce);
                Some(Node::Element(transformed))
            }
            t @ Node::Text(_) => Some(t),
        })
        .collect();

    match rule {
        Transform::RenameTag { from, to } => {
            if e.name == *from {
                e.name = to.clone();
            }
        }
        Transform::RenameAttr { on, from, to } => {
            if e.name == *on {
                if let Some(v) = e.remove_attr(from) {
                    e.set_attr(to.clone(), v);
                }
            }
        }
        Transform::TextToAttr { on, attr } => {
            if e.name == *on {
                let t = e.text().trim().to_string();
                if !t.is_empty() {
                    e.children.retain(|c| matches!(c, Node::Element(_)));
                    e.set_attr(attr.clone(), t);
                }
            }
        }
        Transform::WrapEach { each, wrapper } => {
            let children = std::mem::take(&mut e.children);
            e.children = children
                .into_iter()
                .map(|c| match c {
                    Node::Element(ce) if ce.name == *each => {
                        let mut w = Element::new(wrapper.clone());
                        w.push_child(ce);
                        Node::Element(w)
                    }
                    other => other,
                })
                .collect();
        }
        Transform::Drop { .. } => {} // handled during recursion
        Transform::NormalizeText { on, normalizer } => {
            if e.name == *on {
                let t = e.text();
                let n = match normalizer.as_str() {
                    "phone" => {
                        let plus = t.trim_start().starts_with('+');
                        let digits: String = t.chars().filter(char::is_ascii_digit).collect();
                        if plus {
                            format!("+{digits}")
                        } else {
                            digits
                        }
                    }
                    "lowercase" => t.trim().to_lowercase(),
                    _ => t.trim().to_string(),
                };
                if !n.is_empty() || !t.trim().is_empty() {
                    e.set_text(n);
                }
            }
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::parse;

    #[test]
    fn rename_tag_recursive() {
        let input = parse("<entry><entry/><other/></entry>").unwrap();
        let out = Pipeline::new()
            .then(Transform::RenameTag { from: "entry".into(), to: "item".into() })
            .apply(&input);
        assert_eq!(out.to_xml(), "<item><item/><other/></item>");
    }

    #[test]
    fn rename_attr_on_specific_tag() {
        let input = parse(r#"<book><item uid="1"/><note uid="2"/></book>"#).unwrap();
        let out = Pipeline::new()
            .then(Transform::RenameAttr { on: "item".into(), from: "uid".into(), to: "id".into() })
            .apply(&input);
        assert_eq!(out.child("item").unwrap().attr("id"), Some("1"));
        assert_eq!(out.child("note").unwrap().attr("uid"), Some("2"));
    }

    #[test]
    fn text_to_attr() {
        let input = parse("<item><kind>personal</kind><name>Mom</name></item>").unwrap();
        let out = Pipeline::new()
            .then(Transform::TextToAttr { on: "kind".into(), attr: "value".into() })
            .apply(&input);
        assert_eq!(out.child("kind").unwrap().attr("value"), Some("personal"));
        assert_eq!(out.child("kind").unwrap().text(), "");
    }

    #[test]
    fn wrap_each() {
        let input = parse("<book><row/><row/></book>").unwrap();
        let out = Pipeline::new()
            .then(Transform::WrapEach { each: "row".into(), wrapper: "item".into() })
            .apply(&input);
        assert_eq!(out.children_named("item").count(), 2);
        assert!(out.children_named("item").next().unwrap().child("row").is_some());
    }

    #[test]
    fn drop_subtrees() {
        let input = parse("<u><secret><deep/></secret><ok/></u>").unwrap();
        let out =
            Pipeline::new().then(Transform::Drop { tag: "secret".into() }).apply(&input);
        assert_eq!(out.to_xml(), "<u><ok/></u>");
    }

    #[test]
    fn normalize_phone_text() {
        let input = parse("<phone>(908) 582-4393</phone>").unwrap();
        let out = Pipeline::new()
            .then(Transform::NormalizeText { on: "phone".into(), normalizer: "phone".into() })
            .apply(&input);
        assert_eq!(out.text(), "9085824393");
    }

    #[test]
    fn pipeline_order_matters() {
        // Rename then wrap: the wrapper sees the new name.
        let input = parse("<b><row/></b>").unwrap();
        let out = Pipeline::new()
            .then(Transform::RenameTag { from: "row".into(), to: "item".into() })
            .then(Transform::WrapEach { each: "item".into(), wrapper: "cell".into() })
            .apply(&input);
        assert_eq!(out.to_xml(), "<b><cell><item/></cell></b>");
    }

    #[test]
    fn identity_pipeline() {
        let input = parse(r#"<a x="1"><b>t</b></a>"#).unwrap();
        assert_eq!(Pipeline::new().apply(&input), input);
    }

    /// `apply_arena` must produce exactly what `apply` produces on the
    /// equivalent owned tree — both for the in-place rename fast path
    /// and for the structural fallback.
    #[test]
    fn arena_pipeline_matches_owned() {
        let src = r#"<book flavor="x"><entry uid="1" kind="a">Mom</entry><entry uid="2"><deep uid="9"/></entry><secret><x/></secret><phone>(908) 582-4393</phone></book>"#;
        let pipelines = [
            Pipeline::new().then(Transform::RenameTag { from: "entry".into(), to: "item".into() }),
            Pipeline::new().then(Transform::RenameAttr {
                on: "entry".into(),
                from: "uid".into(),
                to: "id".into(),
            }),
            // Rename onto an existing attribute collapses the pair.
            Pipeline::new().then(Transform::RenameAttr {
                on: "entry".into(),
                from: "uid".into(),
                to: "kind".into(),
            }),
            // Rules never interned anywhere are no-ops on both paths.
            Pipeline::new()
                .then(Transform::RenameTag { from: "never-seen".into(), to: "x".into() })
                .then(Transform::RenameAttr {
                    on: "entry".into(),
                    from: "never-seen".into(),
                    to: "x".into(),
                }),
            // Renames followed by a structural rule: fast path hands off
            // to the owned fallback mid-pipeline.
            Pipeline::new()
                .then(Transform::RenameTag { from: "entry".into(), to: "item".into() })
                .then(Transform::WrapEach { each: "item".into(), wrapper: "cell".into() })
                .then(Transform::Drop { tag: "secret".into() })
                .then(Transform::NormalizeText { on: "phone".into(), normalizer: "phone".into() }),
        ];
        for p in &pipelines {
            let owned = parse(src).unwrap();
            let doc = ArenaDoc::parse(src).unwrap();
            let want = p.apply(&owned);
            let got = p.apply_arena(&doc);
            assert_eq!(got.root_element(), want, "pipeline {p:?}");
            assert_eq!(got.to_xml(), want.to_xml(), "pipeline {p:?}");
        }
    }
}
