//! Plain-text table rendering for experiment output.

/// Renders a titled table with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

/// [`print_table`], but returned as a string — experiments that must
/// produce byte-identical output across same-seed runs render through
/// this so tests can compare the exact text.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(out);
    let _ = writeln!(out, "== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        let _ = writeln!(out, "  {}", parts.join("  ").trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
    out
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count human-readably.
pub fn bytes(n: usize) -> String {
    if n >= 1_048_576 {
        format!("{:.2}MB", n as f64 / 1_048_576.0)
    } else if n >= 1024 {
        format!("{:.1}KB", n as f64 / 1024.0)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.239), "1.24");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KB");
        assert_eq!(bytes(3 * 1_048_576), "3.00MB");
    }

    #[test]
    fn table_renders_without_panic() {
        print_table(
            "smoke",
            &["a", "b"],
            &[vec!["1".into(), "hello".into()], vec!["22".into(), "x".into()]],
        );
    }
}
