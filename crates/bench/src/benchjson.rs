//! The machine-readable benchmark artifact (`BENCH_registry.json`).
//!
//! E16 writes one comparison row per line; the `bench_compare` binary
//! reads two such files (a checked-in baseline and a fresh run) and
//! fails the build when the *simulated* referral-path throughput
//! regresses. The format is deliberately line-oriented JSON — the
//! workspace is dependency-free, so both sides use the hand-rolled
//! writer/scanner here instead of a serde stack.
//!
//! Only the `*_sim_ops` columns participate in the CI gate: simulated
//! ops/sec is derived from the deterministic stage cost model (µs per
//! entry/candidate examined), so it is byte-identical across machines.
//! Wall-clock columns are informative only.

use std::fmt::Write as _;

/// One benchmark comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// What was measured: `coverage`, `policy` or `pipeline`.
    pub kind: String,
    /// The sweep position: registered components (coverage/pipeline) or
    /// provisioned rules (policy).
    pub scale: u64,
    /// Simulated ops/sec of the naive scan (0 when not measured).
    pub naive_sim_ops: f64,
    /// Simulated ops/sec of the indexed fast path.
    pub indexed_sim_ops: f64,
    /// Wall-clock ops/sec of the naive scan (0 when not measured).
    pub naive_wall_ops: f64,
    /// Wall-clock ops/sec of the indexed fast path.
    pub indexed_wall_ops: f64,
    /// Mean entries the indexed path actually examined per op.
    pub mean_candidates: f64,
}

/// Serializes rows as line-oriented JSON (one row object per line)
/// under the historical `e16_registry_scale` experiment name.
pub fn render(mode: &str, rows: &[BenchRow]) -> String {
    render_named("e16_registry_scale", mode, rows)
}

/// Serializes rows for an arbitrary experiment (`e17_shards` writes
/// `BENCH_shards.json` through this). The parser ignores the
/// experiment line, so all artifacts share one row format.
pub fn render_named(experiment: &str, mode: &str, rows: &[BenchRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"{experiment}\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"kind\": \"{}\", \"scale\": {}, \"naive_sim_ops\": {:.1}, \
             \"indexed_sim_ops\": {:.1}, \"naive_wall_ops\": {:.1}, \
             \"indexed_wall_ops\": {:.1}, \"mean_candidates\": {:.2}}}{comma}",
            r.kind,
            r.scale,
            r.naive_sim_ops,
            r.indexed_sim_ops,
            r.naive_wall_ops,
            r.indexed_wall_ops,
            r.mean_candidates,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Parses the rows back out of [`render`]'s output. Lines without a
/// `"kind"` field are structural and skipped; a malformed row line is
/// an error (a truncated artifact must fail the gate loudly).
pub fn parse(text: &str) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    for line in text.lines() {
        if !line.contains("\"kind\"") {
            continue;
        }
        let kind = scan_str(line, "kind").ok_or_else(|| format!("no kind in: {line}"))?;
        let row = BenchRow {
            kind,
            scale: scan_num(line, "scale").ok_or_else(|| format!("no scale in: {line}"))?
                as u64,
            naive_sim_ops: scan_num(line, "naive_sim_ops")
                .ok_or_else(|| format!("no naive_sim_ops in: {line}"))?,
            indexed_sim_ops: scan_num(line, "indexed_sim_ops")
                .ok_or_else(|| format!("no indexed_sim_ops in: {line}"))?,
            naive_wall_ops: scan_num(line, "naive_wall_ops").unwrap_or(0.0),
            indexed_wall_ops: scan_num(line, "indexed_wall_ops").unwrap_or(0.0),
            mean_candidates: scan_num(line, "mean_candidates").unwrap_or(0.0),
        };
        rows.push(row);
    }
    Ok(rows)
}

fn scan_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    Some(line[at..].trim_start())
}

fn scan_num(line: &str, key: &str) -> Option<f64> {
    let rest = scan_after(line, key)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn scan_str(line: &str, key: &str) -> Option<String> {
    let rest = scan_after(line, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kind: &str, scale: u64) -> BenchRow {
        BenchRow {
            kind: kind.to_string(),
            scale,
            naive_sim_ops: 999.9,
            indexed_sim_ops: 333333.3,
            naive_wall_ops: 1_234_567.8,
            indexed_wall_ops: 9_876_543.2,
            mean_candidates: 2.01,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let rows = vec![row("coverage", 1000), row("policy", 64), row("pipeline", 100_000)];
        let text = render("full", &rows);
        assert!(text.contains("\"mode\": \"full\""));
        let back = parse(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn parse_rejects_truncated_rows() {
        let err = parse("{\"kind\": \"coverage\", \"scale\": 5}").unwrap_err();
        assert!(err.contains("naive_sim_ops"), "{err}");
        assert!(parse("no rows at all\n{ }\n").unwrap().is_empty());
    }
}
