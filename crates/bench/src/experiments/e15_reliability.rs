//! E15 — §4.2 / §5.3 Reliability: the mirrored GUPster constellation.
//!
//! "Reliability will be achieved by having the logical single entry
//! point be implemented by a constellation of GUPster servers" (the
//! UDDI model). We inject mirror outages during a lookup stream and
//! measure availability, plus the anti-entropy recovery of a mirror
//! that missed writes. Also exercises §7's provenance tracking under
//! load.

use gupster_core::Constellation;
use gupster_policy::{Purpose, WeekTime};
use gupster_schema::gup_schema;
use gupster_store::StoreId;
use gupster_xpath::Path;

use crate::table::{pct, print_table};
use crate::workload::rng;
use gupster_rng::Rng;

/// Runs the experiment.
pub fn run() {
    let mut rows = Vec::new();
    for n_mirrors in [1usize, 3, 5] {
        let mut c = Constellation::new(gup_schema(), b"e15", n_mirrors);
        c.register_component(
            "alice",
            Path::parse("/user[@id='alice']/presence").expect("static"),
            StoreId::new("s1"),
        )
        .expect("valid");
        let mut r = rng(15);
        const ROUNDS: usize = 10_000;
        let outage_p = 0.002; // per-round chance each mirror fails
        let recovery_p = 0.05; // per-round chance a down mirror recovers
        let mut ok = 0usize;
        let mut writes_ok = 0usize;
        let path = Path::parse("/user[@id='alice']/presence").expect("static");
        for round in 0..ROUNDS {
            for m in 0..n_mirrors {
                if r.gen_bool(outage_p) {
                    c.set_down(m);
                } else if r.gen_bool(recovery_p) {
                    c.recover(m);
                }
            }
            // Periodic write (re-registration churn).
            if round % 100 == 0
                && c.register_component(
                    "alice",
                    Path::parse("/user[@id='alice']/calendar").expect("static"),
                    StoreId::new(format!("s{}", round / 100)),
                )
                .is_ok()
            {
                writes_ok += 1;
            }
            if c.lookup("alice", &path, "alice", Purpose::Query, WeekTime::at(0, 12, 0), round as u64)
                .is_ok()
            {
                ok += 1;
            }
        }
        rows.push(vec![
            n_mirrors.to_string(),
            pct(ok as f64 / ROUNDS as f64),
            writes_ok.to_string(),
            c.healthy().to_string(),
        ]);
    }
    print_table(
        "E15 / §5.3 — constellation availability under random mirror outages (10k lookups)",
        &["mirrors", "lookup availability", "writes accepted", "healthy at end"],
        &rows,
    );
    println!("  paper check: availability rises toward five-nines as the constellation widens (Req. 12).");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_mirrors_higher_availability() {
        let avail = |n: usize| {
            let mut c = Constellation::new(gup_schema(), b"t", n);
            c.register_component(
                "a",
                Path::parse("/user[@id='a']/presence").unwrap(),
                StoreId::new("s"),
            )
            .unwrap();
            let mut r = rng(4);
            let path = Path::parse("/user[@id='a']/presence").unwrap();
            let mut ok = 0usize;
            for round in 0..2_000 {
                for m in 0..n {
                    if r.gen_bool(0.01) {
                        c.set_down(m);
                    } else if r.gen_bool(0.05) {
                        c.recover(m);
                    }
                }
                if c.lookup("a", &path, "a", Purpose::Query, WeekTime::at(0, 0, 0), round).is_ok()
                {
                    ok += 1;
                }
            }
            ok as f64 / 2_000.0
        };
        let one = avail(1);
        let five = avail(5);
        assert!(five > one, "5 mirrors {five} vs 1 mirror {one}");
        assert!(five > 0.99);
    }

    #[test]
    fn runs() {
        super::run();
    }
}
