//! E15 — §4.2 / §5.3 Reliability (Req. 12).
//!
//! Two sections:
//!
//! 1. **Constellation** — "reliability will be achieved by having the
//!    logical single entry point be implemented by a constellation of
//!    GUPster servers" (the UDDI model). Mirror outages during a
//!    lookup stream; availability plus anti-entropy recovery.
//! 2. **Fault injection + resilience ladder** — a seeded
//!    [`FaultSchedule`] flaps links and darkens nodes while a stream
//!    of requests runs through the [`ResilientExecutor`]'s
//!    referral → chaining → recruiting → stale-cache ladder. Reports
//!    availability, staleness, retries, fallbacks and p99 wall clock
//!    per fault rate. Fully deterministic: the same seed renders a
//!    byte-identical report.

use std::collections::HashMap;
use std::sync::Arc;

use gupster_core::patterns::PatternExecutor;
use gupster_core::{Constellation, Gupster, ResilientExecutor, StorePool};
use gupster_netsim::{Domain, FaultRates, FaultSchedule, Network, NodeId, SimTime};
use gupster_policy::{Purpose, WeekTime};
use gupster_schema::gup_schema;
use gupster_store::{StoreId, XmlStore};
use gupster_telemetry::TelemetryHub;
use gupster_xml::{Element, MergeKeys};
use gupster_xpath::Path;

use crate::table::{pct, print_table, render_table};
use crate::workload::rng;
use gupster_rng::Rng;

/// Outcomes of one fault-rate cell of the sweep.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Per-link per-tick fault probability driven through the schedule.
    pub rate: f64,
    /// Requests issued.
    pub requests: usize,
    /// Answered fresh by a ladder rung.
    pub fresh: usize,
    /// Answered from the stale cache.
    pub stale: usize,
    /// Not answered at all.
    pub failed: usize,
    /// Retry waits spent.
    pub retries: u64,
    /// Ladder rungs fallen through.
    pub fallbacks: u64,
    /// Requests that ran out of deadline budget.
    pub deadline_exceeded: u64,
    /// p99 wall clock of answered requests.
    pub p99: SimTime,
}

impl FaultRow {
    /// Fraction of requests answered (fresh or stale).
    pub fn availability(&self) -> f64 {
        (self.fresh + self.stale) as f64 / self.requests.max(1) as f64
    }
}

/// The rendered fault section plus its structured rows.
#[derive(Debug)]
pub struct FaultSweep {
    /// One row per fault rate.
    pub rows: Vec<FaultRow>,
    /// The exact report text (byte-identical for a given seed).
    pub report: String,
    /// One telemetry hub per rate, for trace export.
    pub hubs: Vec<Arc<TelemetryHub>>,
}

struct World {
    net: Network,
    client: NodeId,
    gupster_node: NodeId,
    fault_nodes: Vec<NodeId>,
    store_nodes: HashMap<StoreId, NodeId>,
    gupster: Gupster,
    pool: StorePool,
}

/// A 3-store split address book (same shape as E5's world).
fn build(seed: u64) -> World {
    const K: usize = 3;
    let mut net = Network::new(seed);
    let client = net.add_node("client", Domain::Client);
    let gupster_node = net.add_node("gupster.net", Domain::Internet);
    let mut gupster = Gupster::new(gup_schema(), b"e15");
    let mut pool = StorePool::new();
    let mut store_nodes = HashMap::new();
    let mut fault_nodes = vec![client, gupster_node];
    for s in 0..K {
        let label = format!("store{s}.net");
        let node = net.add_node(label.clone(), Domain::Internet);
        fault_nodes.push(node);
        let mut store = XmlStore::new(label.clone());
        let mut doc = Element::new("user").with_attr("id", "alice");
        let mut book = Element::new("address-book");
        for i in (s..60).step_by(K) {
            book.push_child(
                Element::new("item")
                    .with_attr("id", i.to_string())
                    .with_attr("type", format!("slice{s}"))
                    .with_child(Element::new("name").with_text(format!("Contact number {i}"))),
            );
        }
        doc.push_child(book);
        store.put_profile(doc).expect("id");
        gupster
            .register_component(
                "alice",
                Path::parse(&format!("/user[@id='alice']/address-book/item[@type='slice{s}']"))
                    .expect("static"),
                StoreId::new(label.clone()),
            )
            .expect("valid");
        store_nodes.insert(StoreId::new(label), node);
        pool.add(Box::new(store));
    }
    World { net, client, gupster_node, fault_nodes, store_nodes, gupster, pool }
}

/// Runs the fault-rate sweep. Everything — network jitter, the fault
/// schedule, retry backoff — derives from `seed`, so two calls with
/// the same seed produce identical [`FaultSweep::report`] bytes.
pub fn fault_sweep(seed: u64) -> FaultSweep {
    const REQUESTS: usize = 200;
    let gap = SimTime::millis(200);
    let keys = MergeKeys::new().with_key("item", "id");
    let request = Path::parse("/user[@id='alice']/address-book").expect("static");
    let mut rows = Vec::new();
    let mut hubs = Vec::new();
    for (idx, rate) in [0.0f64, 0.05, 0.10, 0.20].into_iter().enumerate() {
        let hub = Arc::new(TelemetryHub::new());
        let mut w = build(seed ^ 0xE15);
        w.gupster.set_telemetry(Arc::clone(&hub));
        let exec = PatternExecutor {
            net: &w.net,
            client: w.client,
            gupster_node: w.gupster_node,
            store_nodes: w.store_nodes.clone(),
            batch_fetches: false,
        };
        let mut rex = ResilientExecutor::new(exec, seed).with_budget(SimTime::secs(2));
        // Warm the stale cache before the faults start — a store that
        // has never answered has nothing to degrade to.
        rex.fetch(&mut w.gupster, &w.pool, "alice", &request, "alice", WeekTime::at(0, 12, 0), 0, &keys)
            .expect("fault-free warm-up");
        let rates = FaultRates::links(rate)
            .with_node_outages(rate / 5.0)
            .with_latency_spikes(rate / 10.0);
        let horizon = SimTime(gap.0 * (REQUESTS as u64 + 5));
        w.net.install_faults(FaultSchedule::generate(
            seed.wrapping_add(idx as u64),
            &rates,
            &w.fault_nodes,
            horizon,
        ));
        let (mut fresh, mut stale, mut failed) = (0usize, 0usize, 0usize);
        let mut walls: Vec<SimTime> = Vec::new();
        for i in 0..REQUESTS {
            w.net.advance(gap);
            match rex.fetch(
                &mut w.gupster,
                &w.pool,
                "alice",
                &request,
                "alice",
                WeekTime::at(0, 12, 0),
                1 + i as u64,
                &keys,
            ) {
                Ok(run) => {
                    if run.stale {
                        stale += 1;
                    } else {
                        fresh += 1;
                    }
                    walls.push(run.wall);
                }
                Err(_) => failed += 1,
            }
        }
        walls.sort();
        let p99 = walls
            .get((walls.len().saturating_mul(99) / 100).min(walls.len().saturating_sub(1)))
            .copied()
            .unwrap_or(SimTime::ZERO);
        let c = hub.counter_snapshot();
        rows.push(FaultRow {
            rate,
            requests: REQUESTS,
            fresh,
            stale,
            failed,
            retries: c.retries,
            fallbacks: c.fallbacks,
            deadline_exceeded: c.deadline_exceeded,
            p99,
        });
        hubs.push(hub);
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                pct(r.rate),
                r.requests.to_string(),
                pct(r.availability()),
                r.fresh.to_string(),
                r.stale.to_string(),
                r.failed.to_string(),
                r.retries.to_string(),
                r.fallbacks.to_string(),
                r.deadline_exceeded.to_string(),
                r.p99.to_string(),
            ]
        })
        .collect();
    let mut report = render_table(
        "E15 / Req. 12 — availability under injected faults (200 requests, resilience ladder)",
        &["link fault rate", "reqs", "availability", "fresh", "stale", "failed", "retries", "fallbacks", "deadline", "p99 wall"],
        &table_rows,
    );
    report.push_str(
        "  paper check: the referral→chaining→recruiting→stale ladder holds availability ≥99% while faults climb.\n",
    );
    FaultSweep { rows, report, hubs }
}

/// Runs the experiment.
pub fn run() {
    run_constellation();
    let sweep = fault_sweep(15);
    print!("{}", sweep.report);
    for hub in &sweep.hubs {
        super::dump_traces(hub);
    }
}

/// The original constellation section: mirrored GUPster servers.
fn run_constellation() {
    let mut rows = Vec::new();
    for n_mirrors in [1usize, 3, 5] {
        let mut c = Constellation::new(gup_schema(), b"e15", n_mirrors);
        c.register_component(
            "alice",
            Path::parse("/user[@id='alice']/presence").expect("static"),
            StoreId::new("s1"),
        )
        .expect("valid");
        let mut r = rng(15);
        const ROUNDS: usize = 10_000;
        let outage_p = 0.002; // per-round chance each mirror fails
        let recovery_p = 0.05; // per-round chance a down mirror recovers
        let mut ok = 0usize;
        let mut writes_ok = 0usize;
        let path = Path::parse("/user[@id='alice']/presence").expect("static");
        for round in 0..ROUNDS {
            for m in 0..n_mirrors {
                if r.gen_bool(outage_p) {
                    c.set_down(m);
                } else if r.gen_bool(recovery_p) {
                    c.recover(m);
                }
            }
            // Periodic write (re-registration churn).
            if round % 100 == 0
                && c.register_component(
                    "alice",
                    Path::parse("/user[@id='alice']/calendar").expect("static"),
                    StoreId::new(format!("s{}", round / 100)),
                )
                .is_ok()
            {
                writes_ok += 1;
            }
            if c.lookup("alice", &path, "alice", Purpose::Query, WeekTime::at(0, 12, 0), round as u64)
                .is_ok()
            {
                ok += 1;
            }
        }
        rows.push(vec![
            n_mirrors.to_string(),
            pct(ok as f64 / ROUNDS as f64),
            writes_ok.to_string(),
            c.healthy().to_string(),
        ]);
    }
    print_table(
        "E15 / §5.3 — constellation availability under random mirror outages (10k lookups)",
        &["mirrors", "lookup availability", "writes accepted", "healthy at end"],
        &rows,
    );
    println!("  paper check: availability rises toward five-nines as the constellation widens (Req. 12).");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_mirrors_higher_availability() {
        let avail = |n: usize| {
            let mut c = Constellation::new(gup_schema(), b"t", n);
            c.register_component(
                "a",
                Path::parse("/user[@id='a']/presence").unwrap(),
                StoreId::new("s"),
            )
            .unwrap();
            let mut r = rng(4);
            let path = Path::parse("/user[@id='a']/presence").unwrap();
            let mut ok = 0usize;
            for round in 0..2_000 {
                for m in 0..n {
                    if r.gen_bool(0.01) {
                        c.set_down(m);
                    } else if r.gen_bool(0.05) {
                        c.recover(m);
                    }
                }
                if c.lookup("a", &path, "a", Purpose::Query, WeekTime::at(0, 0, 0), round).is_ok()
                {
                    ok += 1;
                }
            }
            ok as f64 / 2_000.0
        };
        let one = avail(1);
        let five = avail(5);
        assert!(five > one, "5 mirrors {five} vs 1 mirror {one}");
        assert!(five > 0.99);
    }

    #[test]
    fn ladder_holds_availability_under_ten_percent_faults() {
        let sweep = fault_sweep(15);
        let row = sweep.rows.iter().find(|r| (r.rate - 0.10).abs() < 1e-9).unwrap();
        assert!(
            row.availability() >= 0.99,
            "availability {} under 10% faults",
            row.availability()
        );
        // Faults actually bit: the ladder did real work.
        assert!(row.retries + row.fallbacks > 0, "{row:?}");
        // The fault-free baseline is fully fresh.
        let base = &sweep.rows[0];
        assert_eq!(base.fresh, base.requests);
        assert_eq!(base.stale, 0);
    }

    #[test]
    fn same_seed_renders_byte_identical_report() {
        let a = fault_sweep(99);
        let b = fault_sweep(99);
        assert_eq!(a.report, b.report);
        let c = fault_sweep(100);
        assert_ne!(a.report, c.report, "different seed, different report");
    }

    #[test]
    fn runs() {
        super::run();
    }
}
