//! E21 — push fanout at scale: the inverted subscription index and
//! coalesced delivery windows (DESIGN.md §12).
//!
//! Two sections:
//!
//! 1. **Match sweep** — social-graph-shaped subscription sets (Zipf
//!    watcher counts over the owner population, including wildcard
//!    self-scopes in the trie's fallback bucket) at growing
//!    subscription counts. Every store write is matched through the
//!    inverted index *and* the retained naive scan; the notification
//!    streams are asserted byte-identical event by event before any
//!    number is reported. Simulated cost is the §12 model: 1µs per
//!    walk plus 1µs per candidate examined — the naive matcher
//!    examines every subscription in the system, the index only the
//!    trie's pruned candidate set. The acceptance bar (≥10× simulated
//!    throughput at the top scale) is asserted in-run.
//! 2. **Hub delivery** — one hub owner watched by 100k+ subscribers
//!    (quick mode shrinks the hub). A delivery window of several
//!    writes stages through the policy filter, then flushes as
//!    per-subscriber coalesced batches over netsim (one message pair
//!    per subscriber, duplicate payloads dropped) next to an unbatched
//!    plane that sends one pair per staged notification. Reports hub
//!    fanout latency, message pairs per staged notification, and the
//!    push-vs-poll message cost; coalesced < unbatched and the
//!    messages-per-notification ceiling are asserted in-run.
//!
//! Every row lands in `BENCH_subs.json`; CI re-runs the reduced sweep
//! (`GUPSTER_E21_QUICK=1`) and `bench_compare`'s `check_subs` gates
//! the index-vs-naive speedup floor and the messages-per-notification
//! ceiling. Wall-clock columns are informative only.

use std::time::Instant;

use gupster_core::{Gupster, StorePool, SubscriptionManager};
use gupster_netsim::{Domain, Journey, Network, NodeId, SimTime};
use gupster_policy::{Effect, WeekTime};
use gupster_rng::Rng;
use gupster_schema::gup_schema;
use gupster_store::{ChangeEvent, DataStore, StoreId, UpdateOp, XmlStore};
use gupster_xml::Element;
use gupster_xpath::Path;

use crate::benchjson::{render_named, BenchRow};
use crate::table::{f2, print_table};
use crate::workload::{rng, social_watchers, user_id, Zipf};

/// Subscription counts swept in section A.
const SCALES_FULL: [usize; 3] = [1_000, 10_000, 100_000];
const SCALES_QUICK: [usize; 2] = [1_000, 10_000];
/// Owner population of section A (watchers spread over these).
const N_OWNERS: usize = 512;
/// Writes matched per scale in section A.
const EVENTS_FULL: usize = 1_024;
const EVENTS_QUICK: usize = 256;
/// Acceptance floor: simulated index speedup at the top scale.
const SPEEDUP_FLOOR: f64 = 10.0;
/// Hub watcher count in section B (the 100k+ social-overlay stress
/// shape; quick mode shrinks it but keeps the same window shape).
const HUB_FULL: usize = 120_000;
const HUB_QUICK: usize = 8_192;
/// Sender-side occupancy per message pair (serialization + syscall).
const SEND_PAIR_US: u64 = 2;
/// In-run ceiling on coalesced message pairs per staged notification
/// (mirrored by `check_subs` in `bench_compare`).
const MPN_CEILING: f64 = 0.5;

fn quick_mode() -> bool {
    std::env::var("GUPSTER_E21_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn at() -> WeekTime {
    WeekTime::at(1, 10, 0)
}

// ---------------------------------------------------------------- A —

/// A registry whose owners all accept third-party subscriptions, so
/// the one-time shield check at subscribe time passes for strangers.
fn open_registry(owners: &[String]) -> Gupster {
    let mut g = Gupster::new(gup_schema(), b"e21");
    g.telemetry().set_span_limit(0); // histograms only

    for o in owners {
        for comp in ["presence", "address-book", "devices"] {
            g.register_component(
                o,
                Path::parse(&format!("/user[@id='{o}']/{comp}")).expect("static"),
                StoreId::new("store.net"),
            )
            .expect("valid");
        }
        g.pap
            .provision(o, "open", Effect::Permit, "/user", "relationship='third-party'", 0)
            .expect("valid rule");
    }
    g
}

/// Builds `n_subs` subscriptions over `owners` with Zipf-skewed
/// watcher counts. Most scopes are concrete component paths; a slice
/// are wildcard `//presence` self-subscriptions, exercising the
/// trie's always-scanned fallback bucket.
fn subscribe_population(
    g: &mut Gupster,
    subs: &mut SubscriptionManager,
    owners: &[String],
    n_subs: usize,
    seed: u64,
) {
    let mut r = rng(seed);
    let owner_of = social_watchers(owners.len(), n_subs, 0.99, &mut r);
    for (w, &oi) in owner_of.iter().enumerate() {
        let owner = &owners[oi];
        if w % 20 == 19 {
            // Wildcard self-scope: owners watching their whole profile
            // from any store ("self" always passes the shield).
            subs.subscribe(g, owner, &Path::parse("//presence").expect("static"), owner, at(), 0)
                .expect("self may subscribe");
            continue;
        }
        let comp = match r.gen_range(0..10u32) {
            0..=5 => "presence",
            6..=8 => "address-book",
            _ => "devices",
        };
        let scope = Path::parse(&format!("/user[@id='{owner}']/{comp}")).expect("static");
        subs.subscribe(g, owner, &scope, &format!("watcher{w:06}"), at(), 0)
            .expect("open shield");
    }
}

/// A pre-built write stream: change events over the owner population
/// (mildly skewed — hot users get written to more, but the write mix
/// is flatter than the watch mix, as profile edits are).
fn write_stream(owners: &[String], n_events: usize, seed: u64) -> Vec<ChangeEvent> {
    let zipf = Zipf::new(owners.len(), 0.6);
    let mut r = rng(seed);
    (0..n_events)
        .map(|i| {
            let owner = &owners[zipf.sample(&mut r)];
            let comp = match r.gen_range(0..10u32) {
                0..=5 => "presence",
                6..=8 => "address-book",
                _ => "devices",
            };
            ChangeEvent {
                user: owner.clone(),
                path: Path::parse(&format!("/user/{comp}")).expect("static"),
                generation: i as u64,
            }
        })
        .collect()
}

fn match_sweep(quick: bool, rows_out: &mut Vec<BenchRow>) {
    let scales: &[usize] = if quick { &SCALES_QUICK } else { &SCALES_FULL };
    let n_events = if quick { EVENTS_QUICK } else { EVENTS_FULL };
    let owners: Vec<String> = (0..N_OWNERS).map(user_id).collect();
    let events = write_stream(&owners, n_events, 2101);

    let mut table = Vec::new();
    for &n_subs in scales {
        let mut g = open_registry(&owners);
        let mut subs = SubscriptionManager::new();
        subscribe_population(&mut g, &mut subs, &owners, n_subs, 2102);
        assert_eq!(subs.len(), n_subs);

        // One pass: match each event both ways, assert the streams are
        // byte-identical, and accumulate the §12 cost model (1µs walk
        // + 1µs per candidate examined) plus wall time.
        let mut naive_us = 0u64;
        let mut indexed_us = 0u64;
        let mut examined_sum = 0u64;
        let mut matched = 0u64;
        let mut naive_wall = std::time::Duration::ZERO;
        let mut indexed_wall = std::time::Duration::ZERO;
        for e in &events {
            let t0 = Instant::now();
            let fast = subs.on_event(e);
            indexed_wall += t0.elapsed();
            let t1 = Instant::now();
            let slow = subs.on_event_naive(e);
            naive_wall += t1.elapsed();
            assert_eq!(
                fast.notifications, slow.notifications,
                "index diverged from the naive oracle at {n_subs} subs"
            );
            naive_us += 1 + slow.examined as u64;
            indexed_us += 1 + fast.examined as u64;
            examined_sum += fast.examined as u64;
            matched += fast.notifications.len() as u64;
        }
        let naive_sim_ops = 1e6 * n_events as f64 / naive_us.max(1) as f64;
        let indexed_sim_ops = 1e6 * n_events as f64 / indexed_us.max(1) as f64;
        let speedup = indexed_sim_ops / naive_sim_ops;
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "acceptance: ≥{SPEEDUP_FLOOR}× simulated match throughput at {n_subs} subs, \
             got {speedup:.1}×"
        );
        let mean_examined = examined_sum as f64 / n_events as f64;
        table.push(vec![
            n_subs.to_string(),
            format!("{naive_sim_ops:.0}"),
            format!("{indexed_sim_ops:.0}"),
            format!("{speedup:.0}x"),
            f2(mean_examined),
            format!("{:.1}", matched as f64 / n_events as f64),
        ]);
        rows_out.push(BenchRow {
            kind: "subs".to_string(),
            scale: n_subs as u64,
            naive_sim_ops,
            indexed_sim_ops,
            naive_wall_ops: n_events as f64 / naive_wall.as_secs_f64().max(1e-9),
            indexed_wall_ops: n_events as f64 / indexed_wall.as_secs_f64().max(1e-9),
            mean_candidates: mean_examined,
        });
    }
    print_table(
        &format!(
            "E21a — write-vs-watchers match throughput ({n_events} writes over {N_OWNERS} \
             owners, Zipf 0.99 watcher sets)"
        ),
        &["subs", "naive sim ops/s", "indexed sim ops/s", "speedup", "mean cand", "notes/write"],
        &table,
    );
    println!(
        "  paper check: the inverted trie prunes a write to one owner's relevant watchers — \
         the naive matcher pays for every subscription in the system on every write."
    );
}

// ---------------------------------------------------------------- B —

/// The hub world: one owner with a real store, `n_watchers`
/// subscribers (a slice of them double-subscribed to the whole
/// profile, so coalescing has duplicates to drop).
fn hub_world(n_watchers: usize) -> (Gupster, StorePool, SubscriptionManager) {
    let hub = "hubuser";
    let mut g = Gupster::new(gup_schema(), b"e21");
    g.telemetry().set_span_limit(0); // histograms only
    let mut store = XmlStore::new("store.net");
    let mut doc = Element::new("user").with_attr("id", hub);
    doc.push_child(Element::new("presence").with_text("online"));
    doc.push_child(Element::new("devices"));
    store.put_profile(doc).expect("has id");
    store.drain_events();
    for comp in ["presence", "devices"] {
        g.register_component(
            hub,
            Path::parse(&format!("/user[@id='{hub}']/{comp}")).expect("static"),
            StoreId::new("store.net"),
        )
        .expect("valid");
    }
    g.pap
        .provision(hub, "open", Effect::Permit, "/user", "relationship='third-party'", 0)
        .expect("valid rule");
    let mut pool = StorePool::new();
    pool.add(Box::new(store));

    let mut subs = SubscriptionManager::new();
    let presence = Path::parse(&format!("/user[@id='{hub}']/presence")).expect("static");
    let whole = Path::parse(&format!("/user[@id='{hub}']")).expect("static");
    for w in 0..n_watchers {
        let watcher = format!("watcher{w:06}");
        subs.subscribe(&mut g, hub, &presence, &watcher, at(), 0).expect("open shield");
        if w % 10 == 0 {
            // Every tenth watcher also watches the whole profile: both
            // subscriptions match a presence write, and the duplicate
            // payload must coalesce away.
            subs.subscribe(&mut g, hub, &whole, &watcher, at(), 0).expect("open shield");
        }
    }
    (g, pool, subs)
}

/// One delivery plane: a registry node fanning out to one node per
/// subscriber over internet links.
struct Plane {
    net: Network,
    registry: NodeId,
    watchers: Vec<NodeId>,
}

fn plane(n_watchers: usize, seed: u64) -> Plane {
    let mut net = Network::new(seed);
    let registry = net.add_node("gupster", Domain::Internet);
    let watchers = (0..n_watchers)
        .map(|w| net.add_node(format!("watcher{w:06}"), Domain::Client))
        .collect();
    Plane { net, registry, watchers }
}

fn watcher_index(subscriber: &str) -> usize {
    subscriber["watcher".len()..].parse().expect("watcherNNNNNN")
}

fn hub_delivery(quick: bool, rows_out: &mut Vec<BenchRow>) {
    let n_watchers = if quick { HUB_QUICK } else { HUB_FULL };
    let (g, mut pool, mut subs) = hub_world(n_watchers);
    let hub_id = StoreId::new("store.net");

    // One delivery window: three writes land before the flush — two
    // touch presence (same payload path → dedup fodder), one devices.
    for (path, text) in [
        ("/user/presence", "busy"),
        ("/user/presence", "away"),
        ("/user/devices", ""),
    ] {
        let op = if text.is_empty() {
            UpdateOp::InsertChild(
                Path::parse(path).expect("static"),
                Element::new("device").with_attr("id", "d9"),
            )
        } else {
            UpdateOp::SetText(Path::parse(path).expect("static"), text.into())
        };
        pool.update(&hub_id, "hubuser", &op).expect("writes apply");
    }

    let t0 = Instant::now();
    let staged = subs.stage_window(&g, &mut pool, at());
    let stage_wall = t0.elapsed();
    assert!(staged.suppressed.is_empty(), "the open shield permits every watcher");
    let raw = staged.staged;
    // What unbatched delivery would send: one pair per staged
    // notification, captured before the flush drains the window.
    let unbatched_targets: Vec<usize> =
        subs.pending().iter().map(|n| watcher_index(&n.subscriber)).collect();
    let batches = subs.flush_window(&g);

    // Coalesced plane: one batch RPC pair per subscriber, fragments =
    // notifications carried; sender occupancy is per pair.
    let coalesced = plane(n_watchers, 21);
    let calls: Vec<(NodeId, usize, usize, u64)> = batches
        .iter()
        .map(|b| {
            let to = coalesced.watchers[watcher_index(&b.subscriber)];
            (to, 64 + 96 * b.notifications.len(), 16, b.notifications.len() as u64)
        })
        .collect();
    let mut journey = Journey::start();
    journey.compute(SimTime::micros(SEND_PAIR_US * calls.len() as u64));
    journey
        .try_batch_rpcs(&coalesced.net, coalesced.registry, &calls)
        .expect("no faults scheduled");
    let coalesced_latency = journey.elapsed();
    let coalesced_pairs = calls.len() as u64;
    let delivered: usize = batches.iter().map(|b| b.notifications.len()).sum();

    // Unbatched plane: one pair per *staged* notification (no window,
    // no dedup) — what per-notification push would have sent.
    let unbatched = plane(n_watchers, 21);
    let repeat: Vec<(NodeId, usize, usize)> =
        unbatched_targets.iter().map(|&wi| (unbatched.watchers[wi], 160, 16)).collect();
    let mut unbatched_journey = Journey::start();
    unbatched_journey.compute(SimTime::micros(SEND_PAIR_US * repeat.len() as u64));
    unbatched_journey
        .try_parallel_rpcs(&unbatched.net, unbatched.registry, &repeat)
        .expect("no faults scheduled");
    let unbatched_latency = unbatched_journey.elapsed();
    let unbatched_pairs = repeat.len() as u64;

    // In-run acceptance: coalescing must reduce messages per staged
    // notification, and stay under the gated ceiling.
    assert!(
        coalesced_pairs < unbatched_pairs,
        "coalesced delivery must send fewer message pairs ({coalesced_pairs} vs {unbatched_pairs})"
    );
    let mpn = coalesced_pairs as f64 / raw.max(1) as f64;
    assert!(
        mpn <= MPN_CEILING,
        "acceptance: ≤{MPN_CEILING} message pairs per staged notification, got {mpn:.2}"
    );

    // Push vs. poll: a polling round is one lookup pair per watcher
    // per window — and every poll pays the shield again, while the
    // push plane checked it once at subscribe time.
    let poll_pairs = n_watchers as u64;

    let coalesced_metrics = coalesced.net.metrics();
    print_table(
        &format!("E21b — hub fanout ({n_watchers} watchers, 3-write delivery window)"),
        &["plane", "msg pairs", "pairs/notification", "fanout latency", "sim sender µs"],
        &[
            vec![
                "coalesced".into(),
                coalesced_pairs.to_string(),
                f2(mpn),
                coalesced_latency.to_string(),
                (SEND_PAIR_US * coalesced_pairs).to_string(),
            ],
            vec![
                "unbatched".into(),
                unbatched_pairs.to_string(),
                f2(unbatched_pairs as f64 / raw.max(1) as f64),
                unbatched_latency.to_string(),
                (SEND_PAIR_US * unbatched_pairs).to_string(),
            ],
            vec!["poll round".into(), poll_pairs.to_string(), "-".into(), "-".into(), "-".into()],
        ],
    );
    println!(
        "  staged {raw} notifications → {delivered} delivered in {} batches \
         ({} payload duplicates coalesced away); staging wall {:?}",
        batches.len(),
        raw - delivered,
        stage_wall,
    );
    println!(
        "  batch counters: {} batched rpcs, {} coalesced fragments",
        coalesced_metrics.batched_rpcs, coalesced_metrics.coalesced_fragments
    );
    println!(
        "  paper check: push pays the shield once per subscribe; a poll round costs \
         {poll_pairs} lookup pairs *and* {poll_pairs} fresh shield checks every window."
    );

    rows_out.push(BenchRow {
        kind: "fanout".to_string(),
        scale: n_watchers as u64,
        naive_sim_ops: 1e6 * raw as f64 / unbatched_latency.0.max(1) as f64,
        indexed_sim_ops: 1e6 * raw as f64 / coalesced_latency.0.max(1) as f64,
        naive_wall_ops: 0.0,
        indexed_wall_ops: 0.0,
        mean_candidates: mpn,
    });
}

/// Runs the experiment.
pub fn run() {
    let quick = quick_mode();
    let mode = if quick { "quick" } else { "full" };
    println!("\nE21 — push fanout at scale ({mode} sweep)");
    let mut rows: Vec<BenchRow> = Vec::new();
    match_sweep(quick, &mut rows);
    hub_delivery(quick, &mut rows);

    let out = std::env::var("GUPSTER_BENCH_OUT").unwrap_or_else(|_| "BENCH_subs.json".into());
    match std::fs::write(&out, render_named("e21_fanout", mode, &rows)) {
        Ok(()) => println!("\n  wrote {} rows to {out}", rows.len()),
        Err(e) => eprintln!("  cannot write {out}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_match_sweep_is_identical_and_pruned() {
        let owners: Vec<String> = (0..16).map(user_id).collect();
        let mut g = open_registry(&owners);
        let mut subs = SubscriptionManager::new();
        subscribe_population(&mut g, &mut subs, &owners, 400, 5);
        assert_eq!(subs.len(), 400);
        for e in write_stream(&owners, 64, 6) {
            let fast = subs.on_event(&e);
            let slow = subs.on_event_naive(&e);
            assert_eq!(fast.notifications, slow.notifications);
            assert!(fast.examined <= slow.examined);
        }
    }

    #[test]
    fn hub_window_coalesces_and_stays_under_ceiling() {
        let (g, mut pool, mut subs) = hub_world(50);
        pool.update(
            &StoreId::new("store.net"),
            "hubuser",
            &UpdateOp::SetText(Path::parse("/user/presence").expect("static"), "busy".into()),
        )
        .expect("applies");
        pool.update(
            &StoreId::new("store.net"),
            "hubuser",
            &UpdateOp::SetText(Path::parse("/user/presence").expect("static"), "away".into()),
        )
        .expect("applies");
        let staged = subs.stage_window(&g, &mut pool, at());
        // 50 presence watchers + 5 whole-profile doubles, two writes.
        assert_eq!(staged.staged, 55 * 2);
        let batches = subs.flush_window(&g);
        assert_eq!(batches.len(), 50, "one batch per subscriber");
        let delivered: usize = batches.iter().map(|b| b.notifications.len()).sum();
        assert_eq!(delivered, 50, "same-path payloads dedup to one per watcher");
        assert!((batches.len() as f64 / staged.staged as f64) <= MPN_CEILING);
    }
}
