//! E14 — §5.3 data placement: GUPster result caching under Zipf access
//! skew (hit ratios, zero-staleness via invalidation-on-update) and
//! replicated-store routing to the closest replica.

use gupster_core::cache::{CachedClient, ResultCache};
use gupster_core::{Gupster, StorePool};
use gupster_netsim::{Domain, LatencyModel, Network, SimTime};
use gupster_policy::WeekTime;
use gupster_schema::gup_schema;
use gupster_store::{DataStore, StoreId, XmlStore};
use gupster_xml::{Element, MergeKeys};
use gupster_xpath::Path;

use crate::table::{pct, print_table};
use crate::workload::{rng, user_id, Zipf};
use gupster_rng::Rng;

/// Runs the experiment.
pub fn run() {
    // Hit ratio vs. skew and capacity; staleness stays zero because an
    // update invalidates before the next read.
    const USERS: usize = 10_000;
    const OPS: usize = 100_000;
    let path = Path::parse("/user/presence").expect("static");
    let mut rows = Vec::new();
    for theta in [0.6f64, 0.9, 0.99] {
        for capacity in [100usize, 1_000, 5_000] {
            let zipf = Zipf::new(USERS, theta);
            let mut r = rng(14);
            let mut cache = ResultCache::new(capacity);
            let mut versions = vec![0u32; USERS];
            let mut stale_reads = 0usize;
            for _ in 0..OPS {
                let u = zipf.sample(&mut r);
                let user = user_id(u);
                if r.gen_bool(0.05) {
                    // An update: bump the truth, invalidate.
                    versions[u] += 1;
                    cache.invalidate(&user, &path);
                } else {
                    match cache.get(&user, &path) {
                        Some(hit) => {
                            let got: u32 =
                                hit[0].text().parse().expect("numeric payload");
                            if got != versions[u] {
                                stale_reads += 1;
                            }
                        }
                        None => {
                            cache.put(
                                &user,
                                &path,
                                vec![Element::new("presence")
                                    .with_text(versions[u].to_string())],
                            );
                        }
                    }
                }
            }
            rows.push(vec![
                format!("{theta}"),
                capacity.to_string(),
                pct(cache.hit_ratio()),
                cache.invalidations.to_string(),
                stale_reads.to_string(),
            ]);
        }
    }
    print_table(
        "E14a / §5.3 — GUPster result cache (10k users, 5% updates, Zipf skew)",
        &["theta", "capacity", "hit ratio", "invalidations", "stale reads"],
        &rows,
    );

    // Replica routing: "requests sent to www.yahoo.com will be routed to
    // the closest Yahoo! store available".
    let mut net = Network::new(3);
    let client = net.add_node("client-nj", Domain::Client);
    let us_east = net.add_node("us-east.yahoo.com", Domain::Internet);
    let us_west = net.add_node("us-west.yahoo.com", Domain::Internet);
    let uk = net.add_node("www.yahoo.co.uk", Domain::Internet);
    net.set_link(client, us_east, LatencyModel::fixed(SimTime::millis(15)));
    net.set_link(client, us_west, LatencyModel::fixed(SimTime::millis(45)));
    net.set_link(client, uk, LatencyModel::fixed(SimTime::millis(90)));
    let replicas = [us_east, us_west, uk];
    let closest = *replicas
        .iter()
        .min_by_key(|r| net.rpc(client, **r, 64, 512))
        .expect("non-empty");
    let t_best = net.rpc(client, closest, 64, 4096);
    let t_worst = net.rpc(client, uk, 64, 4096);
    print_table(
        "E14b — replicated-store routing (closest of 3 Yahoo! replicas)",
        &["strategy", "fetch latency"],
        &[
            vec![
                format!("route to closest ({})", net.node(closest).label),
                t_best.to_string(),
            ],
            vec!["route to farthest (UK)".into(), t_worst.to_string()],
        ],
    );

    // E14c — the caching front end over the *full* pipeline (shield
    // check, referral, fetch, merge), observed through the telemetry
    // hub: hit/miss counters plus per-stage latency of the miss path.
    const CC_USERS: usize = 50;
    const CC_OPS: usize = 2_000;
    let mut gupster = Gupster::new(gup_schema(), b"e14");
    let mut store = XmlStore::new("gup.spcs.com");
    for u in 0..CC_USERS {
        let user = user_id(u);
        store
            .put_profile(
                Element::new("user")
                    .with_attr("id", user.clone())
                    .with_child(Element::new("presence").with_text("online")),
            )
            .expect("has id");
        gupster
            .register_component(
                &user,
                Path::parse(&format!("/user[@id='{user}']/presence")).expect("static"),
                StoreId::new("gup.spcs.com"),
            )
            .expect("valid");
    }
    store.drain_events();
    let mut pool = StorePool::new();
    pool.add(Box::new(store));
    let mut client = CachedClient::new(200, 3_600);
    let keys = MergeKeys::new();
    let zipf = Zipf::new(CC_USERS, 0.9);
    let mut r = rng(1414);
    for op in 0..CC_OPS {
        let user = user_id(zipf.sample(&mut r));
        let req = Path::parse(&format!("/user[@id='{user}']/presence")).expect("static");
        client
            .fetch(&mut gupster, &pool, &user, &req, &user, WeekTime::at(1, 10, 0), op as u64, &keys)
            .expect("covered");
    }
    let hub = gupster.telemetry();
    let c = hub.counter_snapshot();
    let hit_ratio = c.cache_hits as f64 / (c.cache_hits + c.cache_misses) as f64;
    print_table(
        "E14c — caching front end, full pipeline (50 users, Zipf 0.9, 2k fetches)",
        &["counter", "value"],
        &[
            vec!["cache hits".into(), c.cache_hits.to_string()],
            vec!["cache misses".into(), c.cache_misses.to_string()],
            vec!["hit ratio".into(), pct(hit_ratio)],
            vec!["registry lookups".into(), c.lookups.to_string()],
            vec!["referrals issued".into(), c.referrals.to_string()],
            vec!["policy denials".into(), c.policy_denials.to_string()],
            vec!["signature verifications".into(), c.signature_verifications.to_string()],
        ],
    );
    println!();
    println!(
        "{}",
        hub.render_stage_table("E14c — per-stage latency through the caching front end")
    );
    super::dump_traces(&hub);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_raises_hit_ratio() {
        let run_theta = |theta: f64| {
            let zipf = Zipf::new(1_000, theta);
            let mut r = rng(2);
            let mut cache = ResultCache::new(50);
            let path = Path::parse("/user/presence").unwrap();
            for _ in 0..20_000 {
                let user = user_id(zipf.sample(&mut r));
                if cache.get(&user, &path).is_none() {
                    cache.put(&user, &path, vec![Element::new("presence")]);
                }
            }
            cache.hit_ratio()
        };
        assert!(run_theta(0.99) > run_theta(0.3) + 0.1);
    }

    #[test]
    fn invalidation_prevents_stale_reads() {
        let mut cache = ResultCache::new(10);
        let path = Path::parse("/user/presence").unwrap();
        cache.put("u", &path, vec![Element::new("presence").with_text("0")]);
        cache.invalidate("u", &path);
        assert!(cache.get("u", &path).is_none(), "stale entry must be gone");
    }

    #[test]
    fn runs() {
        super::run();
    }
}
