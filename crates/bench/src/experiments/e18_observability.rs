//! E18 — the fleet observability plane (DESIGN.md §9): per-shard
//! metrics, tail-latency attribution and SLO burn-rate gates.
//!
//! Three sections, all over the E17 shard workload so the numbers are
//! comparable:
//!
//! 1. **Snapshot sweep** — the same seeded stream runs at 1, 2, 4 and
//!    8 shards with exemplar capture armed at the calibrated p99. The
//!    merged fleet section of every [`ObsSnapshot`]
//!    ([`ObsSnapshot::fleet_json`]) is asserted byte-identical across
//!    shard counts — histograms merge bucket-wise, counters sum,
//!    exemplar top-k selection runs under a total order — while the
//!    per-shard gauges show the actual deployment shape.
//! 2. **SLO evaluation** — two objectives in the SRE error-budget
//!    style: the call-path p99 against a fixed simulated budget, and
//!    availability under the E15 fault sweep's headline 10% fault
//!    rate. Burn rate is `(bad fraction) / (error budget)`; both
//!    objectives must hold (burn ≤ 1.0) for the experiment to pass.
//! 3. **Dashboard** — the widest run's snapshot rendered as the text
//!    dashboard (per-shard utilization bars, queue depths, hit rates,
//!    ladder counts, hottest users/paths, tail exemplars).
//!
//! Artifacts: `BENCH_slo.json` (SLO outcomes + per-shard p99
//! attribution, gated in CI by `bench_compare --slo`) and
//! `OBS_snapshot.json` (the full snapshot; re-render it any time with
//! `experiments dashboard OBS_snapshot.json`). `GUPSTER_E18_QUICK=1`
//! shrinks the stream for CI; the SLO verdicts and the identity
//! assertions are checked in both modes.

use gupster_core::ShardedRegistry;
use gupster_netsim::SimTime;
use gupster_telemetry::slo::{
    evaluate_availability, evaluate_latency, render_slo_json, AttributionRow, SloOutcome, SloSpec,
};
use gupster_telemetry::{stage, Histogram, ObsSnapshot};
use gupster_xml::MergeKeys;

use crate::table::{f2, pct, print_table};

use super::e15_reliability::fault_sweep;
use super::e17_shards::{build_workload, provision, ShardWorkload};

/// Shard counts swept for the identity assertion.
const SHARDS: [usize; 4] = [1, 2, 4, 8];
/// Requests per scatter window (matches E17).
const WINDOW: usize = 512;
/// Fleet-wide tail exemplars kept (top-k by duration).
const EXEMPLAR_CAP: usize = 8;
/// Simulated p99 budget for the sharded call path. The merged
/// `shard.request` p99 of the seeded stream sits at 171µs (the
/// log₂-bucketed histogram reports the bucket top); 256µs leaves 50%
/// headroom before the gate trips — and is still three orders of
/// magnitude inside the paper's "hundreds of milliseconds" delivery
/// class.
const P99_BUDGET: SimTime = SimTime::micros(256);
/// Availability target under the E15 fault ladder (Req. 12's bar).
const AVAILABILITY_TARGET: f64 = 0.99;
/// The E15 fault rate the availability objective is evaluated at.
const FAULT_RATE: f64 = 0.10;

fn quick_mode() -> bool {
    std::env::var("GUPSTER_E18_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// One full pass of the stream at `shards` shards with the exemplar
/// policy armed, returning the registry (for histogram access) and its
/// snapshot.
fn obs_pass(
    w: &ShardWorkload,
    shards: usize,
    threshold: SimTime,
    cap: usize,
) -> (ShardedRegistry, ObsSnapshot) {
    let keys = MergeKeys::new().with_key("item", "id");
    let mut reg = provision(w, shards);
    reg.set_span_limit(0); // exemplars keep their own span trees
    reg.set_exemplar_policy(threshold, cap);
    for window in w.requests.chunks(WINDOW) {
        let (_, _) = reg.answer_batch(&w.pool, window, &keys, true);
    }
    let snap = reg.obs_snapshot();
    (reg, snap)
}

/// The fleet-wide merged histogram for one stage (bucket-wise merge,
/// so shard-count invariant).
fn merged_histogram(reg: &ShardedRegistry, label: &str) -> Histogram {
    let mut merged = Histogram::new();
    for g in reg.shards() {
        for (name, h) in g.telemetry().stage_histograms() {
            if name == label {
                merged.merge(&h);
            }
        }
    }
    merged
}

/// Evaluates both SLOs for one pass. The outcomes derive only from
/// merged (shard-count-invariant) data, so the rendered rows are
/// byte-identical at every shard count.
fn evaluate_slos(reg: &ShardedRegistry, snap: &ObsSnapshot) -> Vec<SloOutcome> {
    let call_path = evaluate_latency(
        SloSpec {
            name: "call-path-p99".to_string(),
            stage: stage::SHARD_REQUEST.to_string(),
            p99_budget: P99_BUDGET,
            target: AVAILABILITY_TARGET,
        },
        &merged_histogram(reg, stage::SHARD_REQUEST),
        snap.fleet.busy,
    );

    // Availability rides the E15 resilience ladder at its headline
    // fault rate: same seed as E15, so this is the number the E15
    // report prints.
    let sweep = fault_sweep(15);
    let row = sweep
        .rows
        .iter()
        .find(|r| (r.rate - FAULT_RATE).abs() < 1e-9)
        .expect("E15 sweeps the headline rate");
    let window = SimTime::millis(200 * (row.requests as u64 + 5)); // the sweep's horizon
    let availability = evaluate_availability(
        SloSpec {
            name: "fault-availability".to_string(),
            stage: stage::RESILIENCE_REQUEST.to_string(),
            p99_budget: SimTime::ZERO,
            target: AVAILABILITY_TARGET,
        },
        (row.fresh + row.stale) as u64,
        row.failed as u64,
        row.p99,
        window,
    );
    vec![call_path, availability]
}

/// Per-shard p99 attribution rows from the deployment-shaped part of
/// the snapshot: who carries the tail, and what share of fleet busy
/// time each shard holds.
fn attribution(snap: &ObsSnapshot) -> Vec<AttributionRow> {
    snap.shards
        .iter()
        .map(|s| AttributionRow {
            shard: s.shard,
            stage: stage::SHARD_REQUEST.to_string(),
            count: s.requests,
            p99: s.p99_request,
            share: if snap.fleet.busy.0 == 0 {
                0.0
            } else {
                s.busy.0 as f64 / snap.fleet.busy.0 as f64
            },
        })
        .collect()
}

/// Runs the experiment.
pub fn run() {
    let quick = quick_mode();
    let mode = if quick { "quick" } else { "full" };
    let (n_users, n_requests) = if quick { (300, 4_096) } else { (1_200, 20_480) };
    println!("\nE18 — fleet observability plane ({mode} sweep)");
    let w = build_workload(n_users, n_requests, 17);

    // Calibration: one pass with exemplars off fixes the tail
    // threshold at the observed call-path p99, identically for every
    // shard count (per-request simulated costs don't depend on the
    // layout).
    let (calib_reg, _) = obs_pass(&w, 1, SimTime(u64::MAX), 0);
    let threshold = merged_histogram(&calib_reg, stage::SHARD_REQUEST).p99();
    drop(calib_reg);

    let mut table = Vec::new();
    let mut baseline: Option<(String, String)> = None;
    let mut widest: Option<(ShardedRegistry, ObsSnapshot)> = None;
    for &shards in &SHARDS {
        let (reg, snap) = obs_pass(&w, shards, threshold, EXEMPLAR_CAP);
        let fleet = snap.fleet_json();
        let slos = evaluate_slos(&reg, &snap);
        let slo_rows = render_slo_json("e18_observability", mode, &slos, &[]);
        let (base_fleet, base_slos) = baseline.get_or_insert((fleet.clone(), slo_rows.clone()));
        assert_eq!(
            *base_fleet, fleet,
            "fleet snapshot diverged from the 1-shard run at {shards} shards"
        );
        assert_eq!(
            *base_slos, slo_rows,
            "SLO outcomes diverged from the 1-shard run at {shards} shards"
        );
        let util_min =
            snap.shards.iter().map(|s| s.utilization).fold(f64::INFINITY, f64::min);
        let util_max = snap.shards.iter().map(|s| s.utilization).fold(0.0, f64::max);
        let exemplar_max =
            snap.fleet.exemplars.first().map(|e| e.duration).unwrap_or(SimTime::ZERO);
        table.push(vec![
            shards.to_string(),
            snap.makespan.to_string(),
            format!("{}..{}", f2(util_min), f2(util_max)),
            snap.fleet.exemplars.len().to_string(),
            exemplar_max.to_string(),
        ]);
        widest = Some((reg, snap));
    }
    let (reg, snap) = widest.expect("sweep ran");
    print_table(
        &format!(
            "E18a — snapshot sweep ({n_requests} requests over {n_users} users, exemplar \
             threshold {threshold})"
        ),
        &["shards", "sim makespan", "utilization", "exemplars", "slowest"],
        &table,
    );
    println!(
        "  paper check: the merged fleet section (counters, stage histograms, exemplar top-k, \
         hot keys) is byte-identical at every shard count — observability does not depend on \
         the deployment layout."
    );

    // -------------------------------------------------------- SLOs —
    let slos = evaluate_slos(&reg, &snap);
    let attr = attribution(&snap);
    let slo_table: Vec<Vec<String>> = slos
        .iter()
        .map(|o| {
            vec![
                o.spec.name.clone(),
                o.count.to_string(),
                o.p99.to_string(),
                if o.spec.p99_budget == SimTime::ZERO {
                    "-".to_string()
                } else {
                    o.spec.p99_budget.to_string()
                },
                pct(o.availability),
                if o.spec.target <= 0.0 { "-".to_string() } else { pct(o.spec.target) },
                f2(o.burn_rate),
                if o.ok { "ok".to_string() } else { "VIOLATED".to_string() },
            ]
        })
        .collect();
    print_table(
        "E18b — SLO error budgets and burn rates (burn 1.0 = budget exactly spent)",
        &["objective", "events", "p99", "budget", "availability", "target", "burn", "verdict"],
        &slo_table,
    );
    for o in &slos {
        assert!(o.ok, "SLO {} violated: {o:?}", o.spec.name);
    }
    let attr_table: Vec<Vec<String>> = attr
        .iter()
        .map(|a| {
            vec![
                a.shard.to_string(),
                a.count.to_string(),
                a.p99.to_string(),
                pct(a.share),
            ]
        })
        .collect();
    print_table(
        "E18c — per-shard p99 attribution (share of fleet busy time)",
        &["shard", "requests", "p99(shard.request)", "busy share"],
        &attr_table,
    );

    // --------------------------------------------------- dashboard —
    println!("{}", snap.render_dashboard());

    let slo_out = std::env::var("GUPSTER_SLO_OUT").unwrap_or_else(|_| "BENCH_slo.json".into());
    match std::fs::write(&slo_out, render_slo_json("e18_observability", mode, &slos, &attr)) {
        Ok(()) => println!("  wrote {} SLOs + {} attribution rows to {slo_out}", slos.len(), attr.len()),
        Err(e) => eprintln!("  cannot write {slo_out}: {e}"),
    }
    let obs_out = std::env::var("GUPSTER_OBS_OUT").unwrap_or_else(|_| "OBS_snapshot.json".into());
    match std::fs::write(&obs_out, snap.render_json()) {
        Ok(()) => println!("  wrote the {}-shard snapshot to {obs_out}", snap.shards.len()),
        Err(e) => eprintln!("  cannot write {obs_out}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_fleet_identical_with_exemplars() {
        let w = build_workload(60, 1_024, 5);
        let (calib, _) = obs_pass(&w, 1, SimTime(u64::MAX), 0);
        let threshold = merged_histogram(&calib, stage::SHARD_REQUEST).p99();
        let (_, base) = obs_pass(&w, 1, threshold, 4);
        assert!(!base.fleet.exemplars.is_empty(), "p99 threshold must catch the tail");
        for shards in [2usize, 4] {
            let (_, snap) = obs_pass(&w, shards, threshold, 4);
            assert_eq!(base.fleet_json(), snap.fleet_json(), "diverged at {shards} shards");
            assert_eq!(snap.shards.len(), shards);
        }
    }

    #[test]
    fn slo_rows_hold_and_round_trip() {
        let w = build_workload(60, 1_024, 5);
        let (reg, snap) = obs_pass(&w, 2, SimTime(u64::MAX), 0);
        let slos = evaluate_slos(&reg, &snap);
        assert_eq!(slos.len(), 2);
        for o in &slos {
            assert!(o.ok, "{o:?}");
            assert!(o.burn_rate <= 1.0);
        }
        let attr = attribution(&snap);
        assert_eq!(attr.len(), 2);
        let total_share: f64 = attr.iter().map(|a| a.share).sum();
        assert!((total_share - 1.0).abs() < 1e-9, "busy shares must partition: {total_share}");
        let text = render_slo_json("e18_observability", "test", &slos, &attr);
        let (back, back_attr) = gupster_telemetry::slo::parse_slo_json(&text).unwrap();
        assert_eq!(back, slos);
        // Shares are serialized at 4 decimals, so compare through the
        // quantization: re-rendering the parse is byte-identical.
        for (b, a) in back_attr.iter().zip(&attr) {
            assert_eq!((b.shard, &b.stage, b.count, b.p99), (a.shard, &a.stage, a.count, a.p99));
            assert!((b.share - a.share).abs() < 1e-4, "{} vs {}", b.share, a.share);
        }
        assert_eq!(render_slo_json("e18_observability", "test", &back, &back_attr), text);
    }
}
