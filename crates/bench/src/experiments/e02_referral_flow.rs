//! E2 — Figure 7 / §4.3: the end-to-end referral flow, with a latency
//! breakdown per phase (register → lookup → direct fetch → merge).

use gupster_core::{fetch_merge_traced, Gupster, StorePool};
use gupster_netsim::{Domain, Network, SimTime};
use gupster_policy::{Purpose, WeekTime};
use gupster_schema::gup_schema;
use gupster_store::{DataStore, StoreId, XmlStore};
use gupster_telemetry::stage;
use gupster_xml::MergeKeys;
use gupster_xpath::Path;

use crate::table::print_table;
use crate::workload::profile_with_contacts;

/// Runs the experiment.
pub fn run() {
    let mut net = Network::new(2003);
    let client = net.add_node("alice-phone", Domain::Client);
    let gupster_node = net.add_node("gupster.net", Domain::Internet);
    let yahoo_node = net.add_node("gup.yahoo.com", Domain::Internet);

    let mut gupster = Gupster::new(gup_schema(), b"e2");
    let mut yahoo = XmlStore::new("gup.yahoo.com");
    yahoo.put_profile(profile_with_contacts("alice", 40)).expect("has id");
    yahoo.drain_events();
    gupster
        .register_component(
            "alice",
            Path::parse("/user[@id='alice']/address-book").expect("static"),
            StoreId::new("gup.yahoo.com"),
        )
        .expect("valid");
    let mut pool = StorePool::new();
    pool.add(Box::new(yahoo));

    let request = Path::parse("/user[@id='alice']/address-book").expect("static");
    let keys = MergeKeys::new().with_key("item", "id");
    const TRIALS: usize = 200;
    let mut lookup_t = Vec::new();
    let mut fetch_t = Vec::new();
    let mut totals = Vec::new();

    let hub = gupster.telemetry();
    for trial in 0..TRIALS {
        let now = trial as u64;
        let mut tracer = hub.tracer("e2.referral_flow");
        net.begin_request(tracer.request().0);
        let out = gupster
            .lookup_traced(
                "alice",
                &request,
                "alice",
                Purpose::Query,
                WeekTime::at(1, 10, 0),
                now,
                &mut tracer,
            )
            .expect("covered");
        let t_lookup =
            net.rpc(client, gupster_node, 96, out.referral.byte_size());
        tracer.span(stage::NET_LOOKUP, t_lookup);
        let store = pool.get(&StoreId::new("gup.yahoo.com")).expect("added");
        let frag_bytes = store.result_bytes(&out.referral.entries[0].path);
        let t_fetch = net.rpc(client, yahoo_node, out.referral.token.byte_size() + 32, frag_bytes);
        tracer.span(stage::NET_FETCH, t_fetch);
        let signer = gupster.signer();
        let result =
            fetch_merge_traced(&pool, &out.referral, &signer, now, &keys, &mut tracer)
                .expect("fetches");
        net.end_request();
        assert_eq!(result.len(), 1);
        lookup_t.push(t_lookup);
        fetch_t.push(t_fetch);
        totals.push(t_lookup + t_fetch);
    }

    let stat = |v: &mut Vec<SimTime>| {
        v.sort();
        let mean = SimTime((v.iter().map(|t| t.0).sum::<u64>()) / v.len() as u64);
        let p95 = v[(v.len() * 95) / 100 - 1];
        (mean, p95)
    };
    let (lm, lp) = stat(&mut lookup_t);
    let (fm, fp) = stat(&mut fetch_t);
    let (tm, tp) = stat(&mut totals);

    print_table(
        "E2 / Figure 7 — referral flow latency breakdown (200 trials, 40-entry book)",
        &["Phase", "mean", "p95"],
        &[
            vec!["lookup (client → GUPster, referral back)".into(), lm.to_string(), lp.to_string()],
            vec!["direct fetch (client → data store)".into(), fm.to_string(), fp.to_string()],
            vec!["end-to-end".into(), tm.to_string(), tp.to_string()],
        ],
    );
    println!(
        "  paper check: call-delivery class budget (Req. 13, 'hundreds of milliseconds') holds = {}",
        tp < SimTime::millis(500)
    );
    println!();
    println!(
        "{}",
        hub.render_stage_table("E2 — per-stage latency, 200 traced referral requests")
    );
    super::dump_traces(&hub);
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
