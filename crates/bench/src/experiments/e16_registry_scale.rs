//! E16 — registry at scale: the indexed lookup fast path (DESIGN.md §7)
//! against the retained naive scans.
//!
//! Three sweeps over one mega-user whose address book splits into N
//! per-item components (the worst case §4.5 allows — every item its own
//! data-store registration):
//!
//! 1. **coverage** — point lookups through the path trie vs. the naive
//!    entry scan, 1k→100k components (plus an indexed-only 1M row);
//!    outputs are asserted byte-identical.
//! 2. **policy** — `Pdp::decide` over the bucketed rule index vs. the
//!    full rule scan as the rule count grows.
//! 3. **pipeline** — full `Gupster::lookup` referrals at scale, with
//!    the per-stage p50/p95/p99 table and the `index.*` counters from
//!    the telemetry hub.
//!
//! Every row lands in `BENCH_registry.json` (see [`crate::benchjson`]);
//! CI re-runs the reduced sweep (`GUPSTER_E16_QUICK=1`) and
//! `bench_compare` fails the build when simulated referral-path
//! throughput regresses. Simulated ops/sec mirrors the registry's
//! deterministic stage cost model (~1µs per entry examined), so the
//! gate is machine-independent; wall-clock columns are informative.

use std::time::Instant;

use gupster_core::{CoverageMap, Gupster};
use gupster_policy::{Condition, Effect, Pdp, PolicyRepository, Purpose, RequestContext, Rule, WeekTime};
use gupster_rng::Rng;
use gupster_schema::gup_schema;
use gupster_store::StoreId;
use gupster_xpath::{Path, PathCache};

use crate::benchjson::{render, BenchRow};
use crate::table::{f2, print_table};
use crate::workload::{rng, Zipf};

const TRIALS: usize = 500;

fn quick_mode() -> bool {
    std::env::var("GUPSTER_E16_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn item_path(i: usize) -> String {
    format!("/user[@id='scale']/address-book/item[@id='{i}']")
}

fn build_coverage(n: usize) -> CoverageMap {
    let mut cov = CoverageMap::new();
    for i in 0..n {
        cov.register(
            Path::parse(&item_path(i)).expect("static"),
            StoreId::new(format!("store-{}", i % 16)),
        );
    }
    cov
}

/// Zipf-sampled point requests, parsed through the client's
/// [`PathCache`] so repeated textual queries skip the parser.
fn sample_requests(n: usize, trials: usize, seed: u64, cache: &mut PathCache) -> Vec<Path> {
    let zipf = Zipf::new(n, 0.99);
    let mut r = rng(seed);
    (0..trials)
        .map(|_| cache.parse(&item_path(zipf.sample(&mut r))).expect("static"))
        .collect()
}

fn ops(count: usize, dt: std::time::Duration) -> f64 {
    count as f64 / dt.as_secs_f64()
}

/// Coverage sweep: trie-indexed match vs. naive scan.
fn coverage_sweep(quick: bool, rows_out: &mut Vec<BenchRow>) {
    let sizes: &[usize] = if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000] };
    let mut table = Vec::new();
    for &n in sizes {
        let cov = build_coverage(n);
        let mut cache = PathCache::new(1024);
        let reqs = sample_requests(n, TRIALS, 16, &mut cache);

        let t0 = Instant::now();
        let naive: Vec<_> = reqs.iter().map(|q| cov.match_request_naive(q)).collect();
        let naive_dt = t0.elapsed();

        let mut candidates_total = 0u64;
        let t1 = Instant::now();
        let indexed: Vec<_> = reqs
            .iter()
            .map(|q| {
                let (m, s) = cov.match_request_with_stats(q);
                assert!(s.used_index, "point lookups must ride the trie");
                candidates_total += s.candidates as u64;
                m
            })
            .collect();
        let indexed_dt = t1.elapsed();
        assert_eq!(naive, indexed, "indexed coverage match diverged at n={n}");

        // The registry's stage cost model: ~1µs per entry examined + 1.
        let mean_candidates = candidates_total as f64 / TRIALS as f64;
        let naive_sim_ops = 1e6 / (1.0 + n as f64);
        let indexed_sim_ops = 1e6 / (1.0 + mean_candidates);
        let sim_speedup = indexed_sim_ops / naive_sim_ops;
        if n >= 10_000 {
            assert!(
                sim_speedup >= 10.0,
                "acceptance: ≥10× referral-lookup throughput at n={n}, got {sim_speedup:.1}×"
            );
        }
        table.push(vec![
            n.to_string(),
            format!("{:.0}", ops(TRIALS, naive_dt)),
            format!("{:.0}", ops(TRIALS, indexed_dt)),
            format!("{:.1}x", ops(TRIALS, indexed_dt) / ops(TRIALS, naive_dt)),
            format!("{naive_sim_ops:.0}"),
            format!("{indexed_sim_ops:.0}"),
            format!("{sim_speedup:.0}x"),
            f2(mean_candidates),
        ]);
        rows_out.push(BenchRow {
            kind: "coverage".to_string(),
            scale: n as u64,
            naive_sim_ops,
            indexed_sim_ops,
            naive_wall_ops: ops(TRIALS, naive_dt),
            indexed_wall_ops: ops(TRIALS, indexed_dt),
            mean_candidates,
        });
        println!(
            "  n={n}: path cache {} hits / {} misses over {TRIALS} parses",
            cache.hits, cache.misses
        );
    }

    if !quick {
        // 1M components: indexed-only (a naive scan at this size is the
        // point of the index), spot-checked against the oracle.
        let n = 1_000_000;
        let cov = build_coverage(n);
        let mut cache = PathCache::new(1024);
        let reqs = sample_requests(n, TRIALS, 16, &mut cache);
        let mut candidates_total = 0u64;
        let t0 = Instant::now();
        let indexed: Vec<_> = reqs
            .iter()
            .map(|q| {
                let (m, s) = cov.match_request_with_stats(q);
                candidates_total += s.candidates as u64;
                m
            })
            .collect();
        let dt = t0.elapsed();
        for k in [0usize, 117, 499] {
            assert_eq!(indexed[k], cov.match_request_naive(&reqs[k]), "1M spot check {k}");
        }
        let mean_candidates = candidates_total as f64 / TRIALS as f64;
        let indexed_sim_ops = 1e6 / (1.0 + mean_candidates);
        table.push(vec![
            n.to_string(),
            "-".into(),
            format!("{:.0}", ops(TRIALS, dt)),
            "-".into(),
            format!("{:.0}", 1e6 / (1.0 + n as f64)),
            format!("{indexed_sim_ops:.0}"),
            format!("{:.0}x", indexed_sim_ops * (1.0 + n as f64) / 1e6),
            f2(mean_candidates),
        ]);
        rows_out.push(BenchRow {
            kind: "coverage".to_string(),
            scale: n as u64,
            naive_sim_ops: 0.0,
            indexed_sim_ops,
            naive_wall_ops: 0.0,
            indexed_wall_ops: ops(TRIALS, dt),
            mean_candidates,
        });
    }

    print_table(
        "E16a — coverage match: naive scan vs. path-trie index (Zipf 0.99 point lookups)",
        &[
            "components",
            "naive ops/s",
            "indexed ops/s",
            "wall speedup",
            "naive sim ops/s",
            "indexed sim ops/s",
            "sim speedup",
            "mean candidates",
        ],
        &table,
    );
}

/// One synthetic shield: `n_rules` rules spread over 32 components with
/// mixed effects, conditions and priorities.
fn build_rules(n_rules: usize) -> PolicyRepository {
    let mut repo = PolicyRepository::new();
    for j in 0..n_rules {
        let scope = format!("/user/component{:02}/part{}", j % 32, j / 32);
        let cond = match j % 3 {
            0 => "relationship='family'",
            1 => "relationship='co-worker' and time in Mon-Fri 09:00-18:00",
            _ => "true",
        };
        let rule = Rule {
            id: format!("r{j}"),
            scope: Path::parse(&scope).expect("static"),
            condition: Condition::parse(cond).expect("static"),
            effect: if j % 5 == 0 { Effect::Deny } else { Effect::Permit },
            priority: (j % 7) as i32,
        };
        repo.put("scale", rule);
    }
    repo
}

/// Policy sweep: bucketed rule index vs. full rule scan.
fn policy_sweep(quick: bool, rows_out: &mut Vec<BenchRow>) {
    let counts: &[usize] = if quick { &[16, 64] } else { &[16, 64, 256] };
    const DECIDE_TRIALS: usize = 2_000;
    let pdp = Pdp::new();
    let mut table = Vec::new();
    for &n_rules in counts {
        let repo = build_rules(n_rules);
        let mut r = rng(23);
        let reqs: Vec<(Path, RequestContext)> = (0..DECIDE_TRIALS)
            .map(|_| {
                let path = format!("/user/component{:02}/part{}", r.gen_range(0..40), r.gen_range(0..4));
                let rel = ["family", "co-worker", "boss", "third-party"][r.gen_range(0..4)];
                let ctx = RequestContext::query(
                    "rick",
                    rel,
                    WeekTime::at(r.gen_range(0..7), r.gen_range(0..24), 0),
                );
                (Path::parse(&path).expect("static"), ctx)
            })
            .collect();

        let mut naive_considered = 0u64;
        let t0 = Instant::now();
        let naive: Vec<_> = reqs
            .iter()
            .map(|(p, c)| {
                let (d, cost) = pdp.decide_with_cost_naive(&repo, "scale", p, c);
                naive_considered += cost.rules_considered;
                d
            })
            .collect();
        let naive_dt = t0.elapsed();

        let mut indexed_considered = 0u64;
        let t1 = Instant::now();
        let indexed: Vec<_> = reqs
            .iter()
            .map(|(p, c)| {
                let (d, cost) = pdp.decide_with_cost(&repo, "scale", p, c);
                indexed_considered += cost.rules_considered;
                d
            })
            .collect();
        let indexed_dt = t1.elapsed();
        assert_eq!(naive, indexed, "indexed decide diverged at {n_rules} rules");

        // Stage cost model: 1µs + 2µs per rule considered.
        let naive_sim_ops =
            1e6 * DECIDE_TRIALS as f64 / (DECIDE_TRIALS as f64 + 2.0 * naive_considered as f64);
        let indexed_sim_ops = 1e6 * DECIDE_TRIALS as f64
            / (DECIDE_TRIALS as f64 + 2.0 * indexed_considered as f64);
        table.push(vec![
            n_rules.to_string(),
            format!("{:.1}", naive_considered as f64 / DECIDE_TRIALS as f64),
            format!("{:.1}", indexed_considered as f64 / DECIDE_TRIALS as f64),
            format!("{:.0}", ops(DECIDE_TRIALS, naive_dt)),
            format!("{:.0}", ops(DECIDE_TRIALS, indexed_dt)),
            format!("{naive_sim_ops:.0}"),
            format!("{indexed_sim_ops:.0}"),
        ]);
        rows_out.push(BenchRow {
            kind: "policy".to_string(),
            scale: n_rules as u64,
            naive_sim_ops,
            indexed_sim_ops,
            naive_wall_ops: ops(DECIDE_TRIALS, naive_dt),
            indexed_wall_ops: ops(DECIDE_TRIALS, indexed_dt),
            mean_candidates: indexed_considered as f64 / DECIDE_TRIALS as f64,
        });
    }
    print_table(
        "E16b — Pdp::decide: full rule scan vs. bucketed rule index",
        &[
            "rules",
            "naive considered/op",
            "indexed considered/op",
            "naive ops/s",
            "indexed ops/s",
            "naive sim ops/s",
            "indexed sim ops/s",
        ],
        &table,
    );
}

/// Full-pipeline referrals at scale, with the per-stage latency table
/// and the index counters.
fn pipeline_at(n: usize, ops_count: usize, rows_out: &mut Vec<BenchRow>) {
    let mut g = Gupster::new(gup_schema(), b"bench-key");
    for i in 0..n {
        g.register_component(
            "scale",
            Path::parse(&item_path(i)).expect("static"),
            StoreId::new(format!("store-{}", i % 16)),
        )
        .expect("schema-valid");
    }
    g.set_relationship("scale", "friend", "family");
    g.pap
        .provision("scale", "fam-book", Effect::Permit, "/user/address-book", "relationship='family'", 0)
        .expect("valid");
    g.pap
        .provision("scale", "no-cache", Effect::Deny, "/user/address-book", "purpose='cache'", 5)
        .expect("valid");
    g.pap
        .provision("scale", "fam-presence", Effect::Permit, "/user/presence", "relationship='family'", 0)
        .expect("valid");

    let zipf = Zipf::new(n, 0.99);
    let mut r = rng(17);
    let mut cache = PathCache::new(4096);
    let t0 = Instant::now();
    for op in 0..ops_count {
        let q = cache.parse(&item_path(zipf.sample(&mut r))).expect("static");
        g.lookup("scale", &q, "friend", Purpose::Query, WeekTime::at(1, 10, 0), op as u64)
            .expect("family is permitted");
    }
    let dt = t0.elapsed();

    let hub = g.telemetry();
    print!(
        "{}",
        hub.render_stage_table(&format!(
            "E16c — referral pipeline stage latencies at {n} components ({ops_count} lookups)"
        ))
    );
    let c = hub.counter_snapshot();
    let (memo_len, memo_hits, memo_misses) = g.memo_stats();
    println!(
        "  index counters: trie_hits={} memo_hits={} fallback_scans={}",
        c.trie_hits, c.memo_hits, c.fallback_scans
    );
    println!(
        "  decision memo: {memo_len} live entries, {memo_hits} hits / {memo_misses} misses; \
         path cache: {} hits / {} misses",
        cache.hits, cache.misses
    );
    println!(
        "  wall: {:.0} referrals/s ({:.1}µs/op)",
        ops(ops_count, dt),
        dt.as_micros() as f64 / ops_count as f64
    );
    assert_eq!(c.fallback_scans, 0, "point lookups must never fall back");
    assert!(c.memo_hits > 0, "Zipf repeats must hit the decision memo");

    // Simulated pipeline throughput from the deterministic stage model.
    let lookup = hub.stage_stats(gupster_telemetry::stage::REGISTRY_LOOKUP).expect("traced");
    let sim_ops = 1e6 / lookup.mean.as_micros().max(1) as f64;
    rows_out.push(BenchRow {
        kind: "pipeline".to_string(),
        scale: n as u64,
        naive_sim_ops: 0.0,
        indexed_sim_ops: sim_ops,
        naive_wall_ops: 0.0,
        indexed_wall_ops: ops(ops_count, dt),
        mean_candidates: 0.0,
    });
    super::dump_traces(&hub);
}

/// Runs the experiment.
pub fn run() {
    let quick = quick_mode();
    let mode = if quick { "quick" } else { "full" };
    println!("\nE16 — registry at scale ({mode} sweep)");
    let mut rows: Vec<BenchRow> = Vec::new();

    coverage_sweep(quick, &mut rows);
    policy_sweep(quick, &mut rows);
    // The 10k pipeline row runs in BOTH modes with identical seeds and
    // op counts, so the quick CI run intersects the checked-in full
    // baseline on it.
    pipeline_at(10_000, 5_000, &mut rows);
    if !quick {
        pipeline_at(100_000, 5_000, &mut rows);
    }

    let out = std::env::var("GUPSTER_BENCH_OUT").unwrap_or_else(|_| "BENCH_registry.json".into());
    match std::fs::write(&out, render(mode, &rows)) {
        Ok(()) => println!("\n  wrote {} rows to {out}", rows.len()),
        Err(e) => eprintln!("  cannot write {out}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_head_to_head_small() {
        let cov = build_coverage(200);
        let mut cache = PathCache::new(64);
        for q in sample_requests(200, 50, 3, &mut cache) {
            let (m, s) = cov.match_request_with_stats(&q);
            assert!(s.used_index);
            assert_eq!(m, cov.match_request_naive(&q));
        }
    }

    #[test]
    fn policy_head_to_head_small() {
        let repo = build_rules(48);
        let pdp = Pdp::new();
        let mut r = rng(9);
        for _ in 0..50 {
            let p = Path::parse(&format!("/user/component{:02}/part0", r.gen_range(0..40))).unwrap();
            let ctx = RequestContext::query("rick", "family", WeekTime::at(2, 10, 0));
            assert_eq!(
                pdp.decide_with_cost(&repo, "scale", &p, &ctx).0,
                pdp.decide_with_cost_naive(&repo, "scale", &p, &ctx).0
            );
        }
    }
}
