//! E20 — open-loop overload: offered load past saturation (DESIGN.md
//! §11).
//!
//! Closed-loop E17 can only report throughput *at* capacity; this
//! experiment drives the sharded registry with an open Poisson arrival
//! process from 0.25× to 4× the measured saturation rate and watches
//! what admission control does past the knee:
//!
//! * **Goodput plateaus instead of collapsing** — bounded ingress
//!   queues shed excess bulk work, so fresh answers per simulated
//!   second level off near capacity rather than drowning in queueing
//!   delay.
//! * **The call path holds its budget** — `CallDelivery` (presence
//!   lookups, the paper's "hundreds of milliseconds" call-setup path)
//!   preempts `ProfileEdit` at every queue; its p99 sojourn stays
//!   under the 256µs simulated budget even at 4× offered load, while
//!   the bulk class absorbs the entire shed.
//!
//! Section B replays the same 1× mean load through the bursty on/off
//! and diurnal arrival shapes: bursts inflate bulk latency and force
//! shedding during on-windows, but the call p99 budget still holds.
//!
//! Rows land in `BENCH_overload.json`; CI re-runs the reduced sweep
//! (`GUPSTER_E20_QUICK=1`) and `bench_compare` gates the knee point
//! (peak goodput, >15% regression fails) and the call-path p99 SLO at
//! ≤1× load. The sweep is fully simulated and seeded, so the fresh
//! rows must reproduce the checked-in baseline byte-for-byte.

use gupster_core::{
    AdmissionConfig, OpenLoopRequest, Priority, ShardRequest, ShardedRegistry, StorePool,
};
use gupster_netsim::SimTime;
use gupster_policy::{Purpose, WeekTime};
use gupster_rng::Rng;
use gupster_store::XmlStore;
use gupster_xml::{Element, MergeKeys};
use gupster_xpath::Path;

use crate::arrivals::ArrivalProcess;
use crate::benchjson::{render_named, BenchRow};
use crate::experiments::e17_shards::{provision, ShardWorkload};
use crate::table::{pct, print_table};
use crate::workload::{rng, Zipf};

/// Offered-load points, in percent of the measured saturation rate.
const LOADS_FULL: [u64; 7] = [25, 50, 100, 150, 200, 300, 400];
const LOADS_QUICK: [u64; 4] = [50, 100, 200, 400];
/// Arrivals per load point — identical in both modes so the quick CI
/// sweep reproduces the checked-in rows exactly.
const N_ARRIVALS: usize = 4_096;
/// Users behind the arrival stream.
const N_USERS: usize = 1_024;
/// Physical shards (the admission plane is invariant to this; see
/// tests/overload.rs for the proof at other counts).
const N_SHARDS: usize = 4;
/// Requests used to calibrate the mean service cost.
const N_CALIBRATE: usize = 512;
/// The call-path p99 budget (simulated) the sweep must hold at ≥2×.
const CALL_P99_BUDGET: SimTime = SimTime::micros(256);
/// Share of arrivals on the call-delivery class.
const CALL_SHARE: f64 = 0.25;
/// Address-book bulk: items per user in the personal / corporate
/// slices. Profile edits drag whole merged books through the pipeline
/// (~0.4ms each), while a presence read stays a two-digit-µs referral —
/// the cost asymmetry the priority classes exist for.
const PERSONAL_ITEMS: usize = 120;
const CORPORATE_ITEMS: usize = 80;
/// Call-class trunk count per ingress queue: an admitted call's sojourn
/// is bounded by `E20_CALL_SLOTS × max call service`, which must sit
/// under [`CALL_P99_BUDGET`] (asserted against the measured calibration
/// cost in `run`).
const E20_CALL_SLOTS: usize = 3;
/// Token freshness window (profile-clock seconds) for the sweep: long
/// enough that warmed referral tokens stay reusable across the whole
/// arrival span.
const TOKEN_WINDOW: u64 = 1 << 16;

fn quick_mode() -> bool {
    std::env::var("GUPSTER_E20_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The E20 store layout: the same six multi-tenant stores and
/// round-robin placement as E17 (so `e17::provision` registers the
/// matching coverage), but with bulk address books — `PERSONAL_ITEMS` +
/// `CORPORATE_ITEMS` entries per user instead of E17's five.
fn build_bulk_workload(n_users: usize) -> ShardWorkload {
    const N_STORES: usize = 6;
    let users: Vec<String> = (0..n_users).map(|i| format!("user{i:05}")).collect();
    let mut stores: Vec<XmlStore> =
        (0..N_STORES).map(|j| XmlStore::new(format!("store{j}.net"))).collect();
    for (i, u) in users.iter().enumerate() {
        let mut presence = Element::new("user").with_attr("id", u.clone());
        presence.push_child(Element::new("presence").with_text(format!("online-{i}")));
        stores[i % N_STORES].put_profile(presence).expect("id");

        for (slice, prefix, count, target) in [
            ("personal", 'p', PERSONAL_ITEMS, (i + 1) % N_STORES),
            ("corporate", 'c', CORPORATE_ITEMS, (i + 2) % N_STORES),
        ] {
            let mut doc = Element::new("user").with_attr("id", u.clone());
            let mut book = Element::new("address-book");
            for k in 0..count {
                book.push_child(
                    Element::new("item")
                        .with_attr("id", format!("{prefix}{k}"))
                        .with_attr("type", slice)
                        .with_child(Element::new("name").with_text(format!("Entry {k} of {u}"))),
                );
            }
            doc.push_child(book);
            stores[target].put_profile(doc).expect("id");
        }
    }
    let mut pool = StorePool::new();
    for s in stores {
        pool.add(Box::new(s));
    }
    ShardWorkload { users, pool, requests: Vec::new() }
}

/// The E20 request stream: 25% presence reads tagged `CallDelivery`,
/// 75% merged address-book reads tagged `ProfileEdit`, Zipf-skewed
/// owners — bulk traffic dominates, as in the paper's profile-edit vs.
/// call-delivery split.
fn request_stream(w: &ShardWorkload, n: usize, seed: u64) -> Vec<(ShardRequest, Priority)> {
    let zipf = Zipf::new(w.users.len(), 0.4);
    let mut r = rng(seed);
    (0..n)
        .map(|op| {
            let u = &w.users[zipf.sample(&mut r)];
            let call = r.gen_bool(CALL_SHARE);
            let path = if call {
                format!("/user[@id='{u}']/presence")
            } else {
                format!("/user[@id='{u}']/address-book")
            };
            let class = if call { Priority::CallDelivery } else { Priority::ProfileEdit };
            (
                ShardRequest {
                    owner: u.clone(),
                    path: Path::parse(&path).expect("static"),
                    requester: u.clone(),
                    purpose: Purpose::Query,
                    time: WeekTime::at(1, 10, 0),
                    now: op as u64,
                },
                class,
            )
        })
        .collect()
}

fn to_arrivals(
    stream: &[(ShardRequest, Priority)],
    instants: &[SimTime],
) -> Vec<OpenLoopRequest> {
    stream
        .iter()
        .zip(instants)
        .map(|((request, class), &arrival)| OpenLoopRequest {
            request: request.clone(),
            arrival,
            class: *class,
        })
        .collect()
}

/// Measures the mean per-request pipeline cost by running a prefix of
/// the stream far below saturation (10ms gaps — every queue idle).
fn calibrate(w: &ShardWorkload, stream: &[(ShardRequest, Priority)], keys: &MergeKeys) -> SimTime {
    let mut reg = provision_e20(w, keys);
    let instants: Vec<SimTime> =
        (1..=N_CALIBRATE).map(|i| SimTime::millis(10) * i as u64).collect();
    let arrivals = to_arrivals(&stream[..N_CALIBRATE], &instants);
    let config = AdmissionConfig::default();
    let (_, report) = reg.answer_open_loop(&w.pool, &arrivals, keys, &config, None);
    assert_eq!(report.fresh as usize, N_CALIBRATE, "calibration must not shed");
    // The structural call-latency guarantee (`call_slots × max call
    // service ≤ budget`) only holds if a call's service really fits
    // `budget / call_slots` — check it against measured reality here,
    // where the queues are idle and sojourn == service.
    let worst = SimTime(E20_CALL_SLOTS as u64 * report.call_latency.max().0);
    assert!(
        worst <= CALL_P99_BUDGET,
        "call service {} × {E20_CALL_SLOTS} trunks = {worst} does not fit the \
         {CALL_P99_BUDGET} budget",
        report.call_latency.max()
    );
    SimTime(report.busy.0 / N_CALIBRATE as u64)
}

/// A provisioned registry with warm decision memos and referral-token
/// cache: every (user, presence) and (user, address-book) pair runs
/// once before measurement. Overload behavior is a steady-state
/// question — a cold fleet's first-touch policy decisions and token
/// signings would otherwise dominate the call-class tail.
fn provision_e20(w: &ShardWorkload, keys: &MergeKeys) -> ShardedRegistry {
    let mut reg = provision(w, N_SHARDS);
    reg.set_token_freshness(TOKEN_WINDOW);
    reg.enable_token_cache();
    let warmup: Vec<ShardRequest> = w
        .users
        .iter()
        .flat_map(|u| {
            ["presence", "address-book"].into_iter().map(move |leaf| ShardRequest {
                owner: u.clone(),
                path: Path::parse(&format!("/user[@id='{u}']/{leaf}")).expect("static"),
                requester: u.clone(),
                purpose: Purpose::Query,
                time: WeekTime::at(1, 10, 0),
                now: 0,
            })
        })
        .collect();
    for window in warmup.chunks(512) {
        let (results, _) = reg.answer_batch(&w.pool, window, keys, true);
        assert!(results.iter().all(Result::is_ok), "warmup must answer cleanly");
    }
    reg
}

struct SweepPoint {
    label: String,
    offered_per_sec: f64,
    report: gupster_core::OverloadReport,
}

fn run_point(
    w: &ShardWorkload,
    stream: &[(ShardRequest, Priority)],
    keys: &MergeKeys,
    config: &AdmissionConfig,
    process: &ArrivalProcess,
    seed: u64,
    label: &str,
) -> SweepPoint {
    let instants = process.generate(stream.len(), &mut rng(seed));
    let arrivals = to_arrivals(stream, &instants);
    let offered_per_sec =
        stream.len() as f64 / (instants.last().expect("non-empty").0 as f64 / 1e6);
    let mut reg = provision_e20(w, keys);
    let (outcomes, report) = reg.answer_open_loop(&w.pool, &arrivals, keys, config, None);
    assert_eq!(outcomes.len(), stream.len(), "every arrival resolves exactly once");
    SweepPoint { label: label.to_string(), offered_per_sec, report }
}

fn point_row(p: &SweepPoint) -> Vec<String> {
    let r = &p.report;
    vec![
        p.label.clone(),
        format!("{:.0}", p.offered_per_sec),
        format!("{:.0}", r.goodput_per_sec()),
        pct(r.call_shed_rate()),
        pct(r.edit_shed_rate()),
        r.call_latency.p99().to_string(),
        r.edit_latency.p99().to_string(),
        r.max_queue_depth.to_string(),
        r.stale_served.to_string(),
    ]
}

const HEADERS: [&str; 9] = [
    "load",
    "offered/s",
    "goodput/s",
    "call shed",
    "edit shed",
    "call p99",
    "edit p99",
    "max depth",
    "stale",
];

/// Runs the experiment.
pub fn run() {
    let quick = quick_mode();
    let mode = if quick { "quick" } else { "full" };
    println!("\nE20 — open-loop overload and admission control ({mode} sweep)");

    let w = build_bulk_workload(N_USERS);
    let stream = request_stream(&w, N_ARRIVALS, 2020);
    let keys = MergeKeys::new().with_key("item", "id");
    let config = AdmissionConfig { call_slots: E20_CALL_SLOTS, ..AdmissionConfig::default() };

    let mean_cost = calibrate(&w, &stream, &keys);
    // Ideal capacity: `queues` independent servers, one request each
    // per mean service time. Queue imbalance puts the real knee below
    // this — which is exactly what the sweep shows.
    let saturation_per_sec = config.queues as f64 * 1e6 / mean_cost.0.max(1) as f64;
    println!(
        "  calibration: mean pipeline cost {mean_cost}, ideal saturation \
         {saturation_per_sec:.0} req/s over {} ingress queues",
        config.queues
    );

    let loads: &[u64] = if quick { &LOADS_QUICK } else { &LOADS_FULL };
    let mut rows: Vec<BenchRow> = Vec::new();
    let mut table = Vec::new();
    let mut points = Vec::new();
    for &load in loads {
        let rate = saturation_per_sec * load as f64 / 100.0;
        let p = run_point(
            &w,
            &stream,
            &keys,
            &config,
            &ArrivalProcess::Poisson { rate_per_sec: rate },
            9000 + load,
            &format!("{load}%"),
        );
        let r = &p.report;
        table.push(point_row(&p));
        rows.push(BenchRow {
            kind: "overload".to_string(),
            scale: load,
            naive_sim_ops: p.offered_per_sec,
            indexed_sim_ops: r.goodput_per_sec(),
            naive_wall_ops: 100.0 * r.edit_shed_rate(),
            indexed_wall_ops: r.edit_latency.p99().0 as f64,
            mean_candidates: r.call_latency.p99().0 as f64,
        });
        points.push(p);
    }
    print_table(
        &format!(
            "E20a — Poisson load sweep ({N_ARRIVALS} arrivals, {N_USERS} users, \
             {} queues × capacity {}, {N_SHARDS} shards)",
            config.queues, config.capacity
        ),
        &HEADERS,
        &table,
    );
    for (p, &load) in points.iter().zip(loads) {
        let r = &p.report;
        assert!(
            r.call_shed_rate() <= r.edit_shed_rate() + 1e-12,
            "at {load}%: call shed {} must not exceed edit shed {}",
            r.call_shed_rate(),
            r.edit_shed_rate()
        );
        assert!(
            r.call_latency.p99() <= CALL_P99_BUDGET,
            "at {load}%: call p99 {} blew the {CALL_P99_BUDGET} budget",
            r.call_latency.p99()
        );
    }

    // Knee sanity: goodput past saturation must plateau, not collapse.
    let peak = points.iter().map(|p| p.report.goodput_per_sec()).fold(0.0, f64::max);
    let last = points.last().expect("swept").report.goodput_per_sec();
    assert!(
        last >= 0.8 * peak,
        "goodput collapsed past the knee: {last:.0}/s at max load vs {peak:.0}/s peak"
    );
    println!(
        "  knee: peak goodput {peak:.0}/s; at {}% offered the registry still serves \
         {last:.0}/s ({:.0}% of peak) — overload sheds bulk work, it does not melt down.",
        loads.last().expect("swept"),
        100.0 * last / peak
    );

    // -------------------------------------------------- B: shapes —
    // Same 1× mean load, bursty and diurnal envelopes. These stress
    // the queues during bursts; the call budget must still hold.
    let mut shape_table = Vec::new();
    for (label, process) in [
        (
            "on/off 1x",
            ArrivalProcess::OnOff {
                rate_per_sec: saturation_per_sec * 2.0,
                on: SimTime::millis(40),
                off: SimTime::millis(40),
            },
        ),
        (
            "diurnal 1x",
            ArrivalProcess::Diurnal {
                rate_per_sec: saturation_per_sec,
                amplitude: 0.6,
                period: SimTime::millis(200),
            },
        ),
    ] {
        let p = run_point(&w, &stream, &keys, &config, &process, 7_777, label);
        assert!(
            p.report.call_latency.p99() <= CALL_P99_BUDGET,
            "{label}: call p99 {} blew the {CALL_P99_BUDGET} budget",
            p.report.call_latency.p99()
        );
        shape_table.push(point_row(&p));
        points.push(p);
    }
    print_table("E20b — bursty and diurnal envelopes at 1× mean load", &HEADERS, &shape_table);
    println!(
        "  paper check: the call-setup path is protected *by construction* — preemptive \
         priority plus bounded queues keep call p99 under {CALL_P99_BUDGET} at every swept \
         load and shape, while profile-edit traffic absorbs the shed."
    );

    let out = std::env::var("GUPSTER_BENCH_OUT").unwrap_or_else(|_| "BENCH_overload.json".into());
    match std::fs::write(&out, render_named("e20_overload", mode, &rows)) {
        Ok(()) => println!("\n  wrote {} rows to {out}", rows.len()),
        Err(e) => eprintln!("  cannot write {out}: {e}"),
    }
}
