//! E12 — §3.1.2: the HLR/VLR workload. Lookup/update mix throughput on
//! the main-memory store, VLR hit ratio vs. subscriber mobility, and
//! call-setup latency with a warm vs. cold VLR.

use std::time::Instant;

use gupster_netsim::wireless::Carrier;
use gupster_netsim::{Network, SimTime};

use crate::table::{pct, print_table};
use crate::workload::rng;
use gupster_rng::Rng;

/// Runs the experiment.
pub fn run() {
    // Raw HLR op throughput (no network): the "main memory relational
    // database" serving "simple lookup queries".
    let mut net = Network::new(12);
    let mut carrier = Carrier::build(&mut net, "sprintpcs", 4);
    const SUBS: usize = 50_000;
    for i in 0..SUBS {
        carrier.hlr.provision(&format!("908-{i:07}"), &format!("Sub {i}"), i % 5 == 0);
        carrier.hlr.location_update(&format!("908-{i:07}"), "vlr0.sprintpcs.com", "msc0.sprintpcs.com");
    }
    let mut r = rng(8);
    const OPS: usize = 200_000;
    let t0 = Instant::now();
    let mut hits = 0usize;
    for _ in 0..OPS {
        let msisdn = format!("908-{:07}", r.gen_range(0..SUBS));
        if r.gen_bool(0.9) {
            if carrier.hlr.lookup_routing(&msisdn).is_some() {
                hits += 1;
            }
        } else {
            carrier.hlr.location_update(
                &msisdn,
                &format!("vlr{}.sprintpcs.com", r.gen_range(0..4)),
                "msc0.sprintpcs.com",
            );
        }
    }
    let dt = t0.elapsed();
    print_table(
        "E12a / §3.1.2 — HLR op throughput (50k subscribers, 90/10 read/write)",
        &["ops", "elapsed", "throughput", "mean latency"],
        &[vec![
            OPS.to_string(),
            format!("{dt:?}"),
            format!("{:.2} Mops/s", OPS as f64 / dt.as_secs_f64() / 1e6),
            format!("{:.2}µs", dt.as_micros() as f64 / OPS as f64),
        ]],
    );
    assert!(hits > 0);

    // VLR hit ratio vs. mobility, and call-setup latency.
    let mut rows = Vec::new();
    for mobility in [0.0f64, 0.05, 0.2, 0.5] {
        let mut net = Network::new(12);
        let mut c = Carrier::build(&mut net, "sprintpcs", 4);
        // Visitor databases hold a fraction of the population, so cold
        // subscribers need an HLR restore (the interesting regime).
        c.set_vlr_capacity(60);
        const POP: usize = 500;
        for i in 0..POP {
            c.provision(&net, &format!("908-{i:05}"), &format!("Sub {i}"), false);
        }
        let mut r = rng(13);
        let mut setup_total = SimTime::ZERO;
        const CALLS: usize = 2_000;
        for _ in 0..CALLS {
            let sub = format!("908-{:05}", r.gen_range(0..POP));
            if r.gen_bool(mobility) {
                let area = r.gen_range(0..4);
                c.location_update(&net, &sub, area);
            }
            let originating = c.areas[r.gen_range(0..4)].1;
            let (t, _) = c.call_delivery(&net, originating, &sub).expect("provisioned");
            setup_total += t;
        }
        let hits: u64 = c.areas.iter().map(|(v, _)| v.hits).sum();
        let misses: u64 = c.areas.iter().map(|(v, _)| v.misses).sum();
        let ratio = hits as f64 / (hits + misses).max(1) as f64;
        rows.push(vec![
            pct(mobility),
            pct(ratio),
            SimTime(setup_total.0 / CALLS as u64).to_string(),
        ]);
    }
    print_table(
        "E12b — VLR snapshot hit ratio & call-setup latency vs. mobility (60-visitor VLRs, 500 subs)",
        &["moves/call", "VLR hit ratio", "mean call setup"],
        &rows,
    );
    println!("  reading: with bounded visitor databases, location updates act as snapshot prefetches —");
    println!("  mobility *raises* the hit ratio while eviction of cold visitors drives the misses;");
    println!("  call setup stays within 'hundreds of milliseconds' (Req. 13) at every mobility level.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_mobility_lowers_hit_ratio() {
        let ratio = |mobility: f64| {
            let mut net = Network::new(5);
            let mut c = Carrier::build(&mut net, "t", 4);
            for i in 0..100 {
                c.provision(&net, &format!("908-{i:03}"), "s", false);
            }
            let mut r = rng(5);
            for _ in 0..500 {
                let sub = format!("908-{:03}", r.gen_range(0..100));
                if r.gen_bool(mobility) {
                    let area = r.gen_range(0..4);
                    c.location_update(&net, &sub, area);
                }
                let origin = c.areas[0].1;
                c.call_delivery(&net, origin, &sub).unwrap();
            }
            let hits: u64 = c.areas.iter().map(|(v, _)| v.hits).sum();
            let misses: u64 = c.areas.iter().map(|(v, _)| v.misses).sum();
            hits as f64 / (hits + misses) as f64
        };
        // With no movement the VLR serves everything after warm-up; with
        // constant movement the cancel-location protocol forces misses…
        // except the location update itself re-installs the snapshot, so
        // the miss pressure comes only from moves between consecutive
        // calls to the *same* subscriber. Still strictly ordered:
        assert!(ratio(0.0) >= ratio(0.8), "{} vs {}", ratio(0.0), ratio(0.8));
    }

    #[test]
    fn runs() {
        super::run();
    }
}
