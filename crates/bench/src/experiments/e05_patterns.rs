//! E5 — §5.2: referral vs. chaining vs. recruiting. Reports wall-clock,
//! bytes over the client's access link and bytes through GUPster, for a
//! thin (slow access link) and a thick client, across split fan-outs.

use std::collections::HashMap;
use std::sync::Arc;

use gupster_core::patterns::{PatternExecutor, QueryPattern};
use gupster_core::{Gupster, StorePool};
use gupster_netsim::{Domain, LatencyModel, Network, NodeId, SimTime};
use gupster_policy::WeekTime;
use gupster_schema::gup_schema;
use gupster_store::{StoreId, XmlStore};
use gupster_telemetry::TelemetryHub;
use gupster_xml::{Element, MergeKeys};
use gupster_xpath::Path;

use crate::table::{bytes, print_table};

struct World {
    net: Network,
    client: NodeId,
    gupster_node: NodeId,
    store_nodes: HashMap<StoreId, NodeId>,
    gupster: Gupster,
    pool: StorePool,
}

fn build(k: usize, entries: usize, thin_client: bool) -> World {
    let mut net = Network::new(55);
    let client = net.add_node("client", Domain::Client);
    let gupster_node = net.add_node("gupster.net", Domain::Internet);
    let mut gupster = Gupster::new(gup_schema(), b"e5");
    let mut pool = StorePool::new();
    let mut store_nodes = HashMap::new();
    for s in 0..k {
        let label = format!("store{s}.net");
        let node = net.add_node(label.clone(), Domain::Internet);
        if thin_client {
            // A 2003 cell phone's access link: slow and lossy.
            net.set_link(
                client,
                node,
                LatencyModel {
                    base: SimTime::millis(150),
                    jitter: SimTime::millis(50),
                    per_kb: SimTime::millis(8),
                },
            );
        }
        let mut store = XmlStore::new(label.clone());
        let mut doc = Element::new("user").with_attr("id", "alice");
        let mut book = Element::new("address-book");
        for i in (s..entries).step_by(k) {
            book.push_child(
                Element::new("item")
                    .with_attr("id", i.to_string())
                    .with_attr("type", format!("slice{s}"))
                    .with_child(Element::new("name").with_text(format!("Contact number {i}")))
                    .with_child(Element::new("phone").with_text(format!("908-555-{i:04}"))),
            );
        }
        doc.push_child(book);
        store.put_profile(doc).expect("id");
        gupster
            .register_component(
                "alice",
                Path::parse(&format!("/user[@id='alice']/address-book/item[@type='slice{s}']"))
                    .expect("static"),
                StoreId::new(label.clone()),
            )
            .expect("valid");
        store_nodes.insert(StoreId::new(label), node);
        pool.add(Box::new(store));
    }
    if thin_client {
        net.set_link(
            client,
            gupster_node,
            LatencyModel {
                base: SimTime::millis(150),
                jitter: SimTime::millis(50),
                per_kb: SimTime::millis(8),
            },
        );
    }
    World { net, client, gupster_node, store_nodes, gupster, pool }
}

/// Runs the experiment.
pub fn run() {
    let keys = MergeKeys::new().with_key("item", "id");
    let request = Path::parse("/user[@id='alice']/address-book").expect("static");
    let mut rows = Vec::new();
    // One hub per pattern, shared across every world, so the stage
    // tables below aggregate all runs of that pattern.
    let referral_hub = Arc::new(TelemetryHub::new());
    let chaining_hub = Arc::new(TelemetryHub::new());
    let recruiting_hub = Arc::new(TelemetryHub::new());
    for thin in [false, true] {
        for k in [2usize, 4, 8] {
            for pattern in
                [QueryPattern::Referral, QueryPattern::Chaining, QueryPattern::Recruiting]
            {
                let mut w = build(k, 200, thin);
                let hub = match pattern {
                    QueryPattern::Referral => &referral_hub,
                    QueryPattern::Chaining => &chaining_hub,
                    QueryPattern::Recruiting => &recruiting_hub,
                };
                w.gupster.set_telemetry(Arc::clone(hub));
                let exec = PatternExecutor {
                    net: &w.net,
                    client: w.client,
                    gupster_node: w.gupster_node,
                    store_nodes: w.store_nodes.clone(),
                    batch_fetches: false,
                };
                let run = exec
                    .execute(
                        pattern,
                        &mut w.gupster,
                        &w.pool,
                        "alice",
                        &request,
                        "alice",
                        WeekTime::at(0, 12, 0),
                        0,
                        &keys,
                    )
                    .expect("covered");
                rows.push(vec![
                    if thin { "thin (phone)" } else { "thick (PC)" }.to_string(),
                    k.to_string(),
                    format!("{pattern:?}"),
                    run.wall.to_string(),
                    bytes(run.client_bytes),
                    bytes(run.gupster_bytes),
                    run.messages.to_string(),
                ]);
            }
        }
    }
    print_table(
        "E5 / §5.2 — distributed query patterns (200-entry book, k-way split)",
        &["client", "k", "pattern", "wall", "client bytes", "GUPster bytes", "msgs"],
        &rows,
    );
    println!("  paper check: referral keeps GUPster data-free; chaining/recruiting suit thin clients.");
    for (name, hub) in [
        ("referral", &referral_hub),
        ("chaining", &chaining_hub),
        ("recruiting", &recruiting_hub),
    ] {
        println!();
        println!(
            "{}",
            hub.render_stage_table(&format!("E5 — {name} per-stage latency (all runs)"))
        );
        super::dump_traces(hub);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thin_client_prefers_offload() {
        let keys = MergeKeys::new().with_key("item", "id");
        let request = Path::parse("/user[@id='alice']/address-book").unwrap();
        let mut walls = HashMap::new();
        for pattern in [QueryPattern::Referral, QueryPattern::Chaining] {
            let mut w = build(4, 200, true);
            let exec = PatternExecutor {
                net: &w.net,
                client: w.client,
                gupster_node: w.gupster_node,
                store_nodes: w.store_nodes.clone(),
                    batch_fetches: false,
            };
            let run = exec
                .execute(
                    pattern,
                    &mut w.gupster,
                    &w.pool,
                    "alice",
                    &request,
                    "alice",
                    WeekTime::at(0, 12, 0),
                    0,
                    &keys,
                )
                .unwrap();
            walls.insert(format!("{pattern:?}"), (run.wall, run.client_bytes));
        }
        // On a thin client the chaining pattern moves fewer bytes over
        // the access link than fetching all fragments directly.
        assert!(walls["Chaining"].1 <= walls["Referral"].1);
    }

    #[test]
    fn runs() {
        super::run();
    }
}
