//! E19 — the zero-copy XML hot path: owned trees vs. arena documents
//! (DESIGN.md §10).
//!
//! Three stages of the referral hot path are measured head-to-head on
//! the same seeded fragment sets, at three document scales:
//!
//! * **parse** — adopting fetched fragment text into a tree. The owned
//!   parser allocates a `String` per name, attribute and text run and a
//!   `Vec` per element; the arena parser pushes fixed-width records
//!   onto flat tables and keeps values as byte ranges over the retained
//!   input, copying only entity-escaped runs.
//! * **merge_all** — deep-unioning the fragments of one referral. The
//!   owned fold clones every node of the accumulated result each round;
//!   the structural-sharing merge builds a fresh spine and grafts
//!   unchanged subtrees by id.
//! * **serialize** — rendering the merged result. The owned writer
//!   escapes per character into per-node strings; the arena writer
//!   scan-first-copies whole clean runs.
//!
//! Both paths are asserted byte-identical before anything is timed —
//! the speedup is only worth reporting if the answers agree.
//!
//! The CI-gated columns are **simulated ops/sec** from the
//! deterministic work-unit model below (units ≈ ns on the reference
//! cost model: 16 units per allocated node, 1 per copied or per-char
//! escaped byte, 2 per flat-table record or grafted subtree). Wall
//! columns are informative only. Rows land in `BENCH_xml.json`;
//! `bench_compare` fails the build when the arena path's simulated
//! throughput regresses below 0.85× the checked-in baseline, and
//! `run()` asserts the acceptance bar directly: ≥2× on `merge_all` at
//! the largest scale swept.

use std::time::Instant;

use gupster_xml::{
    merge, merge_arena_all, parse, ArenaDoc, Element, MergeKeys, MergeOut, MergeStats,
};

use crate::benchjson::{render_named, BenchRow};
use crate::table::{f2, print_table};
use crate::workload::rng;
use gupster_rng::Rng;

/// Fragments per referral (stores a profile is scattered across).
const FRAGMENTS: usize = 8;
/// Address-book items per profile, swept smallest to largest.
const SCALES: [usize; 3] = [64, 512, 4096];

/// Work units per freshly allocated owned node (strings + vecs).
const UNIT_ALLOC_NODE: u64 = 16;
/// Work units per flat arena record or grafted shared subtree.
const UNIT_FLAT_RECORD: u64 = 2;

fn quick_mode() -> bool {
    std::env::var("GUPSTER_E19_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn scales(quick: bool) -> &'static [usize] {
    if quick {
        &SCALES[..2]
    } else {
        &SCALES[..]
    }
}

/// One referral's worth of fragment sources: `n` keyed items scattered
/// round-robin over [`FRAGMENTS`] per-store slices of one user's
/// address book, with enough entity-escaped text to exercise the
/// escape scanners on both sides.
fn fragment_sources(n: usize, seed: u64) -> Vec<String> {
    let mut r = rng(seed);
    let mut frags: Vec<Element> = (0..FRAGMENTS)
        .map(|_| {
            Element::new("user")
                .with_attr("id", "alice")
                .with_child(Element::new("address-book"))
        })
        .collect();
    for i in 0..n {
        let name = if r.gen_bool(0.2) {
            format!("Dupont & Dupond <{i}>")
        } else {
            format!("Contact {i}")
        };
        let item = Element::new("item")
            .with_attr("id", i.to_string())
            .with_attr("type", if r.gen_bool(0.5) { "personal" } else { "work" })
            .with_child(Element::new("name").with_text(name))
            .with_child(
                Element::new("phone").with_text(format!("+1-908-582-{:04}", r.gen_range(0u32..10_000))),
            );
        match &mut frags[i % FRAGMENTS].children[0] {
            gupster_xml::Node::Element(book) => book.push_child(item),
            gupster_xml::Node::Text(_) => unreachable!("book is an element"),
        }
    }
    frags.iter().map(Element::to_xml).collect()
}

fn keys() -> MergeKeys {
    MergeKeys::new().with_key("item", "id")
}

/// Wall-clock ops/sec of `body` over `reps` repetitions.
fn wall_ops(reps: usize, mut body: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        body();
    }
    let dt = t0.elapsed().as_secs_f64();
    if dt > 0.0 {
        reps as f64 / dt
    } else {
        0.0
    }
}

struct StageCells {
    /// (owned_units, arena_units, owned_wall, arena_wall, mean_candidates)
    parse: (u64, u64, f64, f64, f64),
    merge_all: (u64, u64, f64, f64, f64),
    serialize: (u64, u64, f64, f64, f64),
}

/// Runs all three stages at one scale and checks the two paths agree
/// byte-for-byte before costing anything.
fn stage_pass(n: usize, seed: u64) -> StageCells {
    let srcs = fragment_sources(n, seed);
    let keys = keys();
    let reps = (200_000 / n.max(1)).clamp(2, 400);

    // -- parse ---------------------------------------------------------
    let owned: Vec<Element> = srcs.iter().map(|s| parse(s).expect("valid")).collect();
    let docs: Vec<ArenaDoc> = srcs.iter().map(|s| ArenaDoc::parse(s).expect("valid")).collect();
    for (e, d) in owned.iter().zip(&docs) {
        assert_eq!(&d.root_element(), e, "arena parse diverged from owned");
    }
    let src_bytes: u64 = srcs.iter().map(|s| s.len() as u64).sum();
    let owned_nodes: u64 = owned.iter().map(|e| e.subtree_size() as u64).sum();
    let parse_owned_units = UNIT_ALLOC_NODE * owned_nodes + src_bytes;
    let copied: u64 = docs.iter().map(|d| d.owned_value_bytes() as u64).sum();
    let arena_nodes: u64 = docs.iter().map(|d| d.node_count() as u64).sum();
    let parse_arena_units = UNIT_FLAT_RECORD * arena_nodes + copied;
    let parse_owned_wall = wall_ops(reps, || {
        for s in &srcs {
            std::hint::black_box(parse(s).expect("valid"));
        }
    });
    let parse_arena_wall = wall_ops(reps, || {
        for s in &srcs {
            std::hint::black_box(ArenaDoc::parse(s).expect("valid"));
        }
    });
    let copied_fraction = copied as f64 / src_bytes.max(1) as f64;

    // -- merge_all -----------------------------------------------------
    // The owned fold's cost is what it clones: the whole accumulated
    // result, every round.
    let mut acc = owned[0].clone();
    let mut merge_owned_units: u64 = 0;
    for f in &owned[1..] {
        acc = merge(&acc, f, &keys).expect("mergeable");
        merge_owned_units += UNIT_ALLOC_NODE * acc.subtree_size() as u64;
    }
    let refs: Vec<&ArenaDoc> = docs.iter().collect();
    let merged: MergeOut<'_> = merge_arena_all(&refs, &keys).expect("mergeable");
    let stats: MergeStats = merged.stats();
    let merge_arena_units =
        UNIT_ALLOC_NODE * stats.fresh_nodes + UNIT_FLAT_RECORD * stats.shared_subtrees;
    assert_eq!(merged.to_element(), acc, "arena merge diverged from owned fold");
    let merge_owned_wall = wall_ops(reps, || {
        let mut acc = owned[0].clone();
        for f in &owned[1..] {
            acc = merge(&acc, f, &keys).expect("mergeable");
        }
        std::hint::black_box(acc);
    });
    let merge_arena_wall = wall_ops(reps, || {
        std::hint::black_box(merge_arena_all(&refs, &keys).expect("mergeable"));
    });
    let shared_per_fresh = stats.shared_nodes as f64 / stats.fresh_nodes.max(1) as f64;

    // -- serialize -----------------------------------------------------
    let owned_out = acc.to_xml();
    let arena_out = merged.to_xml();
    assert_eq!(arena_out, owned_out, "arena serializer diverged from owned");
    let out_bytes = owned_out.len() as u64;
    let out_nodes = acc.subtree_size() as u64;
    let ser_owned_units = UNIT_ALLOC_NODE * out_nodes + 4 * out_bytes;
    let ser_arena_units = UNIT_FLAT_RECORD * out_nodes + out_bytes;
    let ser_owned_wall = wall_ops(reps, || {
        std::hint::black_box(acc.to_xml());
    });
    let ser_arena_wall = wall_ops(reps, || {
        std::hint::black_box(merged.to_xml());
    });

    StageCells {
        parse: (parse_owned_units, parse_arena_units, parse_owned_wall, parse_arena_wall, copied_fraction),
        merge_all: (merge_owned_units, merge_arena_units, merge_owned_wall, merge_arena_wall, shared_per_fresh),
        serialize: (ser_owned_units, ser_arena_units, ser_owned_wall, ser_arena_wall, out_bytes as f64 / out_nodes.max(1) as f64),
    }
}

/// Simulated ops/sec from work units (1 unit ≈ 1ns of model time).
fn sim_ops(units: u64) -> f64 {
    1e9 / units.max(1) as f64
}

fn sweep(quick: bool, rows: &mut Vec<BenchRow>) {
    let mut table: Vec<Vec<String>> = Vec::new();
    for &n in scales(quick) {
        let cells = stage_pass(n, 0xe19);
        for (kind, (ou, au, ow, aw, mc)) in [
            ("parse", cells.parse),
            ("merge_all", cells.merge_all),
            ("serialize", cells.serialize),
        ] {
            let (naive, indexed) = (sim_ops(ou), sim_ops(au));
            table.push(vec![
                kind.to_string(),
                n.to_string(),
                f2(naive),
                f2(indexed),
                f2(indexed / naive),
                f2(aw / ow.max(f64::MIN_POSITIVE)),
                f2(mc),
            ]);
            rows.push(BenchRow {
                kind: kind.to_string(),
                scale: n as u64,
                naive_sim_ops: naive,
                indexed_sim_ops: indexed,
                naive_wall_ops: ow,
                indexed_wall_ops: aw,
                mean_candidates: mc,
            });
        }
    }
    print_table(
        &format!("E19 — owned vs. arena XML hot path ({FRAGMENTS} fragments per referral)"),
        &["stage", "items", "owned sim ops/s", "arena sim ops/s", "sim speedup", "wall speedup", "detail"],
        &table,
    );
    println!(
        "  paper check: the registry's answer is assembled from per-store fragments on every \
         request — a zero-copy merge path keeps 'share everywhere' from costing a deep copy \
         everywhere. (detail: parse = copied-byte fraction, merge_all = shared nodes per fresh \
         node, serialize = bytes per node)"
    );
}

/// Runs the experiment.
pub fn run() {
    let quick = quick_mode();
    let mode = if quick { "quick" } else { "full" };
    println!("\nE19 — zero-copy XML hot path ({mode} sweep)");
    let mut rows: Vec<BenchRow> = Vec::new();
    sweep(quick, &mut rows);

    // Acceptance bar: ≥2× simulated merge throughput at the largest
    // scale swept in this mode.
    let largest = rows
        .iter()
        .filter(|r| r.kind == "merge_all")
        .max_by_key(|r| r.scale)
        .expect("merge rows");
    let ratio = largest.indexed_sim_ops / largest.naive_sim_ops;
    assert!(
        ratio >= 2.0,
        "structural-sharing merge below acceptance bar at scale {}: {ratio:.2}x",
        largest.scale
    );
    println!("  acceptance: merge_all at {} items: {:.1}x simulated speedup", largest.scale, ratio);

    let out = std::env::var("GUPSTER_BENCH_OUT").unwrap_or_else(|_| "BENCH_xml.json".into());
    match std::fs::write(&out, render_named("e19_xml_hotpath", mode, &rows)) {
        Ok(()) => println!("\n  wrote {} rows to {out}", rows.len()),
        Err(e) => eprintln!("  cannot write {out}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_agree_and_merge_clears_bar_at_small_scale() {
        let cells = stage_pass(64, 7);
        // stage_pass already asserts byte-identity; check the model
        // favors the arena on every stage at even the smallest scale.
        let (ou, au, ..) = cells.merge_all;
        assert!(sim_ops(au) / sim_ops(ou) >= 2.0, "merge sharing ratio collapsed");
        let (pou, pau, ..) = cells.parse;
        assert!(pau < pou, "arena parse should cost fewer work units");
        let (sou, sau, ..) = cells.serialize;
        assert!(sau < sou, "arena serialize should cost fewer work units");
    }

    #[test]
    fn fragment_sources_are_deterministic_and_disjoint() {
        let a = fragment_sources(64, 7);
        let b = fragment_sources(64, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), FRAGMENTS);
        // Every item id lands in exactly one fragment.
        let total: usize = a
            .iter()
            .map(|s| parse(s).expect("valid"))
            .map(|e| {
                e.children_named("address-book")
                    .next()
                    .expect("book")
                    .children_named("item")
                    .count()
            })
            .sum();
        assert_eq!(total, 64);
    }
}
