//! E13 — §6: XPath containment cost (the registry's hot path). Decision
//! latency vs. expression depth and predicate count, and coverage-match
//! throughput vs. registrations per user.

use std::time::Instant;

use gupster_core::CoverageMap;
use gupster_store::StoreId;
use gupster_xpath::{contains, Path};

use crate::table::print_table;

fn chain(depth: usize, preds: usize, descend: bool) -> Path {
    let mut s = String::new();
    for d in 0..depth {
        s.push_str(if descend && d == depth / 2 { "//" } else { "/" });
        s.push_str(&format!("n{d}"));
        for p in 0..preds {
            s.push_str(&format!("[@a{p}='v{p}']"));
        }
    }
    Path::parse(&s).expect("generated")
}

/// Runs the experiment.
pub fn run() {
    let mut rows = Vec::new();
    for depth in [2usize, 4, 8, 16, 32] {
        for preds in [0usize, 2, 4] {
            let p = chain(depth, preds, false);
            let q = chain(depth, 0, false); // weaker: p ⊑ q
            let pd = chain(depth, preds, true);
            const OPS: usize = 50_000;
            let t0 = Instant::now();
            for _ in 0..OPS {
                assert!(contains(&p, &q));
            }
            let core_dt = t0.elapsed();
            let t1 = Instant::now();
            for _ in 0..OPS {
                let _ = contains(&pd, &q);
            }
            let desc_dt = t1.elapsed();
            rows.push(vec![
                depth.to_string(),
                preds.to_string(),
                format!("{:.0}ns", core_dt.as_nanos() as f64 / OPS as f64),
                format!("{:.0}ns", desc_dt.as_nanos() as f64 / OPS as f64),
            ]);
        }
    }
    print_table(
        "E13 / §6 — containment decision cost (core fragment vs. with //)",
        &["depth", "preds/step", "core", "descendant"],
        &rows,
    );

    // Coverage matching throughput vs. registrations.
    let mut rows = Vec::new();
    for n_entries in [4usize, 16, 64, 256] {
        let mut cov = CoverageMap::new();
        for i in 0..n_entries {
            cov.register(
                Path::parse(&format!("/user[@id='a']/address-book/item[@type='t{i}']"))
                    .expect("generated"),
                StoreId::new(format!("store{i}")),
            );
        }
        let request = Path::parse("/user[@id='a']/address-book").expect("static");
        const OPS: usize = 20_000;
        let t0 = Instant::now();
        let mut matched = 0usize;
        for _ in 0..OPS {
            matched += cov.match_request(&request).partial.len();
        }
        let dt = t0.elapsed();
        assert_eq!(matched, n_entries * OPS);
        rows.push(vec![
            n_entries.to_string(),
            format!("{:.1}µs", dt.as_micros() as f64 / OPS as f64),
            format!("{:.0} kmatch/s", OPS as f64 / dt.as_secs_f64() / 1000.0),
        ]);
    }
    print_table(
        "E13b — coverage matching vs. registrations per user",
        &["registrations", "per request", "throughput"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xpath::covers;

    #[test]
    fn generated_chains_behave() {
        let p = chain(6, 2, false);
        let q = chain(6, 0, false);
        assert!(contains(&p, &q));
        assert!(!contains(&q, &p));
        assert!(covers(&q, &p));
        let d = chain(6, 0, true);
        assert!(contains(&q, &d), "child chain contained in its // weakening");
    }

    #[test]
    fn runs_small() {
        let p = chain(3, 1, false);
        assert_eq!(p.steps.len(), 3);
    }
}
