//! E10 — §5.2: push subscriptions vs. polling at equal staleness
//! targets. The paper's point: "every polling request needs to be
//! checked to enforce the end-user's privacy shield. Having the
//! subscription handled by GUPster internally would save this extra
//! work."

use gupster_core::subs::SubscriptionManager;
use gupster_core::{Gupster, StorePool};
use gupster_policy::{Effect, Purpose, WeekTime};
use gupster_schema::gup_schema;
use gupster_store::{DataStore, StoreId, UpdateOp, XmlStore};
use gupster_xml::parse;
use gupster_xpath::Path;

use crate::table::print_table;
use crate::workload::rng;
use gupster_rng::Rng;

struct SimResult {
    shield_checks: u64,
    messages: u64,
    mean_staleness_rounds: f64,
}

/// Simulates `rounds` rounds with per-round update probability
/// `update_p`; `poll_every` = None means push.
fn simulate(rounds: u32, update_p: f64, poll_every: Option<u32>, seed: u64) -> SimResult {
    let mut g = Gupster::new(gup_schema(), b"e10");
    let mut store = XmlStore::new("gup.spcs.com");
    store
        .put_profile(parse(r#"<user id="alice"><presence>v0</presence></user>"#).expect("static"))
        .expect("id");
    store.drain_events();
    g.register_component(
        "alice",
        Path::parse("/user[@id='alice']/presence").expect("static"),
        StoreId::new("gup.spcs.com"),
    )
    .expect("valid");
    g.set_relationship("alice", "rick", "co-worker");
    g.pap
        .provision("alice", "cw", Effect::Permit, "/user/presence", "relationship='co-worker'", 0)
        .expect("valid rule");
    let mut pool = StorePool::new();
    pool.add(Box::new(store));

    let path = Path::parse("/user[@id='alice']/presence").expect("static");
    let mut r = rng(seed);
    let mut subs = SubscriptionManager::new();
    let mut shield_checks = 0u64;
    let mut messages = 0u64;
    let mut staleness_sum = 0u64;
    let mut staleness_samples = 0u64;
    let mut last_change: Option<u32> = None;

    if poll_every.is_none() {
        subs.subscribe(&mut g, "alice", &path, "rick", WeekTime::at(0, 12, 0), 0)
            .expect("permitted");
        shield_checks += 1;
        messages += 1; // the subscribe itself
    }

    for round in 0..rounds {
        if r.gen_bool(update_p) {
            pool.update(
                &StoreId::new("gup.spcs.com"),
                "alice",
                &UpdateOp::SetText(Path::parse("/user/presence").expect("static"), format!("v{round}")),
            )
            .expect("applies");
            last_change = Some(round);
        }
        match poll_every {
            None => {
                let notes = subs.pump(&mut pool);
                messages += notes.len() as u64;
                if !notes.is_empty() {
                    // Push delivers within the same round.
                    staleness_sum += 0;
                    staleness_samples += 1;
                    last_change = None;
                }
            }
            Some(k) => {
                if round % k == 0 {
                    // A poll is a full lookup: shield check included.
                    let out = g.lookup(
                        "alice",
                        &path,
                        "rick",
                        Purpose::Query,
                        WeekTime::at(0, 12, 0),
                        round as u64,
                    );
                    shield_checks += 1;
                    messages += 2; // request + response
                    if out.is_ok() {
                        if let Some(changed_at) = last_change.take() {
                            staleness_sum += (round - changed_at) as u64;
                            staleness_samples += 1;
                        }
                    }
                }
            }
        }
    }
    SimResult {
        shield_checks,
        messages,
        mean_staleness_rounds: if staleness_samples == 0 {
            0.0
        } else {
            staleness_sum as f64 / staleness_samples as f64
        },
    }
}

/// Runs the experiment.
pub fn run() {
    const ROUNDS: u32 = 10_000;
    let mut rows = Vec::new();
    for update_p in [0.01f64, 0.1] {
        let push = simulate(ROUNDS, update_p, None, 42);
        rows.push(vec![
            format!("{update_p}"),
            "push (internal subscription)".into(),
            push.shield_checks.to_string(),
            push.messages.to_string(),
            format!("{:.2}", push.mean_staleness_rounds),
        ]);
        for k in [1u32, 10, 100] {
            let poll = simulate(ROUNDS, update_p, Some(k), 42);
            rows.push(vec![
                format!("{update_p}"),
                format!("poll every {k}"),
                poll.shield_checks.to_string(),
                poll.messages.to_string(),
                format!("{:.2}", poll.mean_staleness_rounds),
            ]);
        }
    }
    print_table(
        &format!("E10 / §5.2 — push vs. poll over {ROUNDS} rounds"),
        &["update rate", "mode", "shield checks", "messages", "mean staleness (rounds)"],
        &rows,
    );
    println!("  paper check: push does one shield check total; polling pays one per poll and still lags.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_saves_shield_checks() {
        let push = simulate(1_000, 0.05, None, 1);
        let poll = simulate(1_000, 0.05, Some(10), 1);
        assert_eq!(push.shield_checks, 1);
        assert!(poll.shield_checks >= 100);
        // Push staleness is zero rounds by construction.
        assert_eq!(push.mean_staleness_rounds, 0.0);
        assert!(poll.mean_staleness_rounds >= 0.0);
    }

    #[test]
    fn frequent_polling_sends_more_messages_than_push_at_low_update_rates() {
        let push = simulate(2_000, 0.01, None, 2);
        let poll = simulate(2_000, 0.01, Some(1), 2);
        assert!(poll.messages > push.messages * 5, "poll={} push={}", poll.messages, push.messages);
    }
}
