//! E4 — §2.2: the selective reach-me service. Aggregates location, call
//! status, presence, calendar and device data across four networks and
//! renders a routing decision; the paper's budget is "just a few
//! seconds", with call-delivery-class interactions in "hundreds of
//! milliseconds" (Req. 13).

use gupster_netsim::topology::ConvergedNetwork;
use gupster_netsim::{Journey, SimTime};
use gupster_policy::WeekTime;

use crate::table::print_table;

/// The routing decision for one incoming call.
#[derive(Debug, PartialEq, Eq)]
pub enum Route {
    /// Ring the office phone first.
    OfficePhone,
    /// Ring the softphone.
    SoftPhone,
    /// Ring the cell phone.
    CellPhone,
    /// Ring the home phone.
    HomePhone,
    /// Take a message.
    VoiceMail,
}

/// Alice's §2.2 decision rules, evaluated over aggregated profile data.
pub fn decide(time: WeekTime, presence: &str, office_busy: bool) -> Route {
    let m = time.minute_of_day();
    let workday = time.day() < 5;
    let friday = time.day() == 4;
    if friday && (9 * 60..18 * 60).contains(&m) {
        return Route::HomePhone; // Fridays Alice works from home
    }
    if workday && (9 * 60..18 * 60).contains(&m) {
        if presence == "available" {
            return if office_busy { Route::SoftPhone } else { Route::OfficePhone };
        }
        return Route::CellPhone;
    }
    if workday && ((8 * 60..9 * 60).contains(&m) || (18 * 60..19 * 60).contains(&m)) {
        return Route::CellPhone; // commuting
    }
    if presence == "offline" {
        return Route::VoiceMail;
    }
    Route::CellPhone
}

/// One reach-me decision: fetch the five sources (sequentially or in
/// parallel), then decide. Returns the wall clock.
fn aggregate(world: &ConvergedNetwork, parallel: bool) -> SimTime {
    let net = &world.net;
    let from = world.gupster;
    // (target node, request bytes, response bytes)
    let sources = [
        (world.sprintpcs.hlr.node, 96, 256),  // location / on-off air
        (world.pstn.node, 96, 128),           // PSTN call status
        (world.presence.node, 96, 128),       // IM presence
        (world.portal.node, 128, 2048),       // calendar
        (world.enterprise.node, 128, 1024),   // devices / corporate data
    ];
    let mut j = Journey::start();
    if parallel {
        j.parallel_rpcs(net, from, &sources);
    } else {
        for (to, req, resp) in sources {
            j.rpc(net, from, to, req, resp);
        }
    }
    j.compute(SimTime::millis(1)); // rule evaluation
    j.elapsed()
}

/// Runs the experiment.
pub fn run() {
    let mut world = ConvergedNetwork::build(7);
    world.populate_alice();

    // Decision-latency table: sequential vs parallel aggregation.
    const TRIALS: usize = 100;
    let mut rows = Vec::new();
    for (label, parallel) in [("sequential fetch", false), ("parallel fetch", true)] {
        let mut ts: Vec<SimTime> = (0..TRIALS).map(|_| aggregate(&world, parallel)).collect();
        ts.sort();
        let mean = SimTime(ts.iter().map(|t| t.0).sum::<u64>() / ts.len() as u64);
        let p95 = ts[(ts.len() * 95) / 100 - 1];
        let within = p95 < SimTime::secs(3);
        rows.push(vec![
            label.to_string(),
            mean.to_string(),
            p95.to_string(),
            within.to_string(),
        ]);
    }
    print_table(
        "E4 / §2.2 — selective reach-me decision latency (5 sources, 4 networks)",
        &["strategy", "mean", "p95", "within 'a few seconds'"],
        &rows,
    );

    // Decision correctness across the paper's scenarios.
    let scenarios = [
        ("Tue 11:00, available, office free", WeekTime::at(1, 11, 0), "available", false, "OfficePhone"),
        ("Tue 11:00, available, office busy", WeekTime::at(1, 11, 0), "available", true, "SoftPhone"),
        ("Tue 11:00, away", WeekTime::at(1, 11, 0), "away", false, "CellPhone"),
        ("Tue 08:30 (commute)", WeekTime::at(1, 8, 30), "available", false, "CellPhone"),
        ("Fri 14:00 (home day)", WeekTime::at(4, 14, 0), "available", false, "HomePhone"),
        ("Sun 23:00, offline", WeekTime::at(6, 23, 0), "offline", false, "VoiceMail"),
    ];
    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|(label, t, presence, busy, expect)| {
            let got = decide(*t, presence, *busy);
            vec![label.to_string(), format!("{got:?}"), expect.to_string(), (format!("{got:?}") == *expect).to_string()]
        })
        .collect();
    print_table(
        "E4 — routing decisions for the §2.2 scenarios",
        &["scenario", "decision", "expected", "ok"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_match_paper_rules() {
        assert_eq!(decide(WeekTime::at(1, 11, 0), "available", false), Route::OfficePhone);
        assert_eq!(decide(WeekTime::at(1, 11, 0), "available", true), Route::SoftPhone);
        assert_eq!(decide(WeekTime::at(1, 8, 30), "available", false), Route::CellPhone);
        assert_eq!(decide(WeekTime::at(4, 14, 0), "available", false), Route::HomePhone);
        assert_eq!(decide(WeekTime::at(6, 23, 0), "offline", false), Route::VoiceMail);
    }

    #[test]
    fn parallel_is_faster_and_within_budget() {
        let mut world = ConvergedNetwork::build(9);
        world.populate_alice();
        let seq = aggregate(&world, false);
        let par = aggregate(&world, true);
        assert!(par < seq);
        assert!(par < SimTime::secs(3), "{par}");
    }

    #[test]
    fn runs() {
        super::run();
    }
}
