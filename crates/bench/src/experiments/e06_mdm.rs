//! E6 — §5.1.2: meta-data-manager topologies. Lookup hops & latency and
//! the per-organization meta-data exposure (the Hailstorm argument).


use gupster_core::mdm::MdmTopology;
use gupster_netsim::{Domain, Network, SimTime};
use gupster_xpath::Path;

use crate::table::{f2, print_table};

/// Runs the experiment.
pub fn run() {
    let mut net = Network::new(6);
    let client = net.add_node("client", Domain::Client);
    let central = net.add_node("gupster.net", Domain::Internet);
    let wp = net.add_node("whitepages.net", Domain::Internet);
    let carrier = net.add_node("mdm.carrier.com", Domain::Wireless);
    let bank = net.add_node("mdm.bank.com", Domain::Internet);
    let portal = net.add_node("mdm.portal.com", Domain::Internet);

    let p = |s: &str| Path::parse(s).expect("static");
    let components = vec![
        p("/user/identity"),
        p("/user/address-book"),
        p("/user/presence"),
        p("/user/calendar"),
        p("/user/wallet"),
        p("/user/applications"),
    ];

    let topologies: Vec<(&str, MdmTopology)> = vec![
        ("centralized", MdmTopology::Centralized { node: central }),
        (
            "user-distributed (listed)",
            MdmTopology::UserDistributed {
                white_pages: wp,
                manager_of: [("alice".to_string(), carrier)].into(),
                unlisted: vec![],
            },
        ),
        (
            "user-distributed (unlisted+hint)",
            MdmTopology::UserDistributed {
                white_pages: wp,
                manager_of: [("alice".to_string(), carrier)].into(),
                unlisted: vec!["alice".to_string()],
            },
        ),
        (
            "hierarchical (wallet→bank, apps→portal)",
            MdmTopology::Hierarchical {
                white_pages: wp,
                primary_of: [("alice".to_string(), carrier)].into(),
                delegations: [(
                    "alice".to_string(),
                    vec![(p("/user/wallet"), bank), (p("/user/applications"), portal)],
                )]
                .into(),
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, topo) in &topologies {
        const TRIALS: usize = 50;
        let mut hops = 0u32;
        let mut total = SimTime::ZERO;
        for _ in 0..TRIALS {
            let hint = if name.contains("unlisted") { Some(carrier) } else { None };
            let r = topo
                .resolve(&net, client, "alice", &p("/user/wallet/banking-information"), hint)
                .expect("resolvable");
            hops = r.hops;
            total += r.latency;
        }
        let mean = SimTime(total.0 / 50);
        let exposure = topo.exposure("alice", &components);
        let max_exposure = exposure.values().cloned().fold(0.0_f64, f64::max);
        let orgs = exposure.len();
        rows.push(vec![
            name.to_string(),
            hops.to_string(),
            mean.to_string(),
            orgs.to_string(),
            f2(max_exposure),
        ]);
    }
    print_table(
        "E6 / §5.1.2 — MDM topologies: wallet-metadata lookup + exposure",
        &["topology", "hops", "mean latency", "orgs holding metadata", "max org exposure"],
        &rows,
    );
    println!("  paper check: hierarchical keeps every org's exposure < 1.0 at the cost of extra hops.");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exposure_tradeoff_holds() {
        let mut net = Network::new(1);
        let _client = net.add_node("c", Domain::Client);
        let central = net.add_node("central", Domain::Internet);
        let wp = net.add_node("wp", Domain::Internet);
        let carrier = net.add_node("carrier", Domain::Wireless);
        let bank = net.add_node("bank", Domain::Internet);
        let p = |s: &str| Path::parse(s).unwrap();
        let comps = vec![p("/user/presence"), p("/user/wallet")];
        let c = MdmTopology::Centralized { node: central };
        let h = MdmTopology::Hierarchical {
            white_pages: wp,
            primary_of: [("a".to_string(), carrier)].into(),
            delegations: [("a".to_string(), vec![(p("/user/wallet"), bank)])].into(),
        };
        let ce: HashMap<_, _> = c.exposure("a", &comps);
        let he: HashMap<_, _> = h.exposure("a", &comps);
        assert_eq!(ce[&central], 1.0);
        assert!(he.values().all(|&v| v < 1.0));
    }

    #[test]
    fn runs() {
        super::run();
    }
}
