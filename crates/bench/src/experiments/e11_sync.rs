//! E11 — Requirements 6 & 7: synchronizing the phone's address book
//! with the portal's under concurrent editing. Conflict rates, per-
//! policy outcomes, convergence and bytes (incremental vs. whole-
//! document shipping).

use std::sync::Arc;

use gupster_sync::{two_way_sync_traced, ReconcilePolicy, Replica};
use gupster_telemetry::TelemetryHub;
use gupster_xml::{EditOp, Element, MergeKeys, NodePath};

use crate::table::{bytes, f2, print_table};
use crate::workload::rng;
use gupster_rng::Rng;

fn base_book(entries: usize) -> Element {
    let mut book = Element::new("address-book");
    for i in 0..entries {
        book.push_child(
            Element::new("item")
                .with_attr("id", i.to_string())
                .with_child(Element::new("name").with_text(format!("Contact {i}")))
                .with_child(Element::new("phone").with_text(format!("908-555-{i:04}"))),
        );
    }
    book
}

struct Outcome {
    conflicts: usize,
    converged_rounds: usize,
    fast_bytes: usize,
    slow_syncs: usize,
    queued: usize,
}

fn drive(
    hub: &Arc<TelemetryHub>,
    policy: ReconcilePolicy,
    rounds: usize,
    edits_per_round: usize,
    seed: u64,
) -> Outcome {
    const HOT_SET: usize = 30; // both sides edit a hot subset → real conflicts
    let keys = MergeKeys::new().with_key("item", "id");
    let book = base_book(100);
    let mut phone = Replica::new("phone", book.clone(), keys.clone());
    let mut portal = Replica::new("gup.yahoo.com", book, keys);
    let mut r = rng(seed);
    let mut out =
        Outcome { conflicts: 0, converged_rounds: 0, fast_bytes: 0, slow_syncs: 0, queued: 0 };

    for round in 0..rounds {
        for side in 0..2 {
            for _ in 0..edits_per_round {
                let id = r.gen_range(0..HOT_SET).to_string();
                let op = EditOp::SetText {
                    path: NodePath::root().keyed("item", "id", &id).child("name", 0),
                    text: format!("edit-r{round}-s{side}-{}", r.gen_range(0..1000)),
                };
                let replica = if side == 0 { &mut phone } else { &mut portal };
                let _ = replica.edit(op);
            }
        }
        let mut tracer = hub.tracer("sync.round");
        let report = two_way_sync_traced(&mut phone, &mut portal, policy, &mut tracer)
            .expect("same component");
        drop(tracer);
        out.conflicts += report.conflicts;
        out.fast_bytes += report.bytes_exchanged;
        out.slow_syncs += report.slow_sync as usize;
        out.queued += report.queued.len();
        if report.converged {
            out.converged_rounds += 1;
        }
    }
    out
}

/// Runs the experiment.
pub fn run() {
    const ROUNDS: usize = 50;
    let whole_doc = base_book(100).byte_size() * 2 * ROUNDS; // naive both-ways shipping
    let hub = Arc::new(TelemetryHub::new());
    let mut rows = Vec::new();
    for (name, policy) in [
        ("last-writer-wins", ReconcilePolicy::LastWriterWins),
        ("prefer portal (site priority)", ReconcilePolicy::PreferSecond),
        ("prefer phone (site priority)", ReconcilePolicy::PreferFirst),
        ("manual queue", ReconcilePolicy::Manual),
    ] {
        let o = drive(&hub, policy, ROUNDS, 3, 9);
        rows.push(vec![
            name.to_string(),
            o.conflicts.to_string(),
            format!("{}/{ROUNDS}", o.converged_rounds),
            o.slow_syncs.to_string(),
            o.queued.to_string(),
            bytes(o.fast_bytes),
            f2(whole_doc as f64 / o.fast_bytes.max(1) as f64),
        ]);
    }
    print_table(
        "E11 / Req. 6–7 — two-way sync under concurrent edits (100 entries, 3 edits/side/round on a 30-entry hot set)",
        &[
            "reconciliation policy",
            "conflicts",
            "converged rounds",
            "slow syncs",
            "queued",
            "bytes shipped",
            "naive/incremental ratio",
        ],
        &rows,
    );
    println!();
    println!(
        "{}",
        hub.render_stage_table(&format!(
            "E11 — per-stage sync session latency ({} sessions across all policies)",
            4 * ROUNDS
        ))
    );
    let c = hub.counter_snapshot();
    println!(
        "  sync counters: sessions={} ops shipped={} conflicts={} slow paths={}",
        c.sync_sessions, c.sync_ops_shipped, c.sync_conflicts, c.sync_slow_paths
    );
    super::dump_traces(&hub);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lww_converges_and_ships_less_than_whole_docs() {
        let hub = Arc::new(TelemetryHub::new());
        let o = drive(&hub, ReconcilePolicy::LastWriterWins, 20, 2, 3);
        assert_eq!(o.converged_rounds, 20, "LWW must converge every round");
        let whole = base_book(100).byte_size() * 2 * 20;
        assert!(o.fast_bytes < whole, "{} vs {whole}", o.fast_bytes);
        // The traced sessions left a stage table behind.
        let c = hub.counter_snapshot();
        assert_eq!(c.sync_sessions, 20);
        assert!(hub.stage_stats(gupster_telemetry::stage::SYNC_SESSION).is_some());
    }

    #[test]
    fn manual_policy_queues_conflicts() {
        let hub = Arc::new(TelemetryHub::new());
        let o = drive(&hub, ReconcilePolicy::Manual, 10, 5, 4);
        assert!(o.queued > 0);
        assert_eq!(hub.counter_snapshot().sync_conflicts as usize, o.conflicts);
    }

    #[test]
    fn runs() {
        super::run();
    }
}
