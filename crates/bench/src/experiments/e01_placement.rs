//! E1 — Figure 5: where profile data is stored.
//!
//! Builds the converged network, populates Alice's profile per the §2.1
//! scenario, and regenerates the placement table from live state.

use gupster_netsim::topology::ConvergedNetwork;

use crate::table::print_table;

/// Runs the experiment.
pub fn run() {
    let mut world = ConvergedNetwork::build(42);
    world.populate_alice();
    let rows: Vec<Vec<String>> = world
        .placement_table()
        .into_iter()
        .map(|r| vec![r.network.to_string(), r.element, r.data, r.records.to_string()])
        .collect();
    print_table(
        "E1 / Figure 5 — where profile data is stored (live inventory)",
        &["Network", "Element", "Profile data held", "Records"],
        &rows,
    );

    // Cross-check against the paper's table.
    let expected = [
        ("PSTN", "switch"),
        ("Wireless", "hlr"),
        ("VoIP", "registrar"),
        ("Web", "portal/enterprise/presence"),
    ];
    println!(
        "  paper check: all four networks of Fig. 5 populated = {}",
        expected.iter().all(|(n, _)| rows.iter().any(|r| r[0] == *n))
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
