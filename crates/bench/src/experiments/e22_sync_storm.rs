//! E22 — write path at scale: compacted changelogs, delta-encoded sync
//! sessions, write-through invalidation (DESIGN.md §13).
//!
//! A fleet of users each owns an N-replica star (hub + device replicas
//! of one address-book component). A seeded **write storm** lands edits
//! across the fleet, then a [`SyncPlane`] reconciles every star — once
//! through the naive pairwise path (`use_oracle = true`, the measured
//! baseline *and* the correctness oracle) and once through the delta
//! path (touched-path trie conflict pruning, dictionary-coded op
//! batches, post-sync log compaction). Both planes see the identical
//! storm; their converged hub documents are asserted **byte-identical**
//! before any number is reported.
//!
//! Simulated cost is the §13 model, read off each plane's `sync.plane`
//! root spans: reconcile charges 2µs per op pair examined (the naive
//! path examines every new-A × new-B pair; the delta path only the
//! trie's candidate set), shipping charges per byte (the naive session
//! frames every op with its full path string; the delta session ships
//! an 8-byte header plus a once-per-session dictionary entry), and
//! apply/slow-sync costs are common to both. The acceptance bars — ≥5×
//! simulated session throughput and ≥3× fewer bytes at the 10k-edit
//! storm and above — are asserted in-run and re-gated by
//! `bench_compare`'s `check_sync` against the checked-in
//! `BENCH_sync.json`.
//!
//! The compaction column shows the other half of the story: after the
//! delta pass every replica's changelog truncates behind its live peer
//! anchors (the star makes anchors exact), while the naive plane
//! retains the full edit history forever.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gupster_core::{PlaneReport, SyncPlane};
use gupster_rng::Rng;
use gupster_sync::ReconcilePolicy;
use gupster_telemetry::TelemetryHub;
use gupster_xml::{EditOp, Element, MergeKeys, NodePath};

use crate::benchjson::{render_named, BenchRow};
use crate::table::{bytes as fmt_bytes, f2, print_table};
use crate::workload::rng;

/// Swept storm shapes: (total edits, device replicas per user, users).
/// Users grow slower than edits so per-star history deepens with scale
/// — that is where the naive pairwise scan goes quadratic.
const SCALES_FULL: [(usize, usize, usize); 3] =
    [(1_000, 2, 4), (10_000, 4, 8), (100_000, 8, 64)];
const SCALES_QUICK: [(usize, usize, usize); 2] = [(1_000, 2, 4), (10_000, 4, 8)];
/// Shard partitions of the plane (outcomes are shard-count invariant).
const SHARDS: usize = 4;
/// Items in each user's baseline address book. Each replica (hub
/// included) owns a [`SLICE`]-item band it re-edits over and over —
/// the presence-update shape: every op relays to every other replica,
/// and a session's paths repeat enough for the dictionary codec to
/// amortize. Edits land in the replica's own band except for the
/// [`SHARED_BASE`].. tail, a hot set all replicas fight over, so the
/// conflict machinery is genuinely exercised too.
const BOOK_ITEMS: usize = 40;
/// Items in each replica's private band.
const SLICE: usize = 4;
/// First index of the cross-replica hot set (`SHARED_BASE..BOOK_ITEMS`).
const SHARED_BASE: usize = 36;
/// One edit in this many targets the shared hot set.
const SHARED_EVERY: usize = 10;
/// One storm edit in this many inserts a fresh item at the book root.
/// Root-parented inserts sit on the trie's root node — an ancestor of
/// every probe — so they are deliberately rare, as profile-item
/// creation is next to field edits.
const INSERT_EVERY: usize = 128;
/// Acceptance floors (mirrored by `check_sync` in `bench_compare`),
/// enforced at `GATE_SCALE` edits and above.
const SPEEDUP_FLOOR: f64 = 5.0;
const BYTES_RATIO_FLOOR: f64 = 3.0;
const GATE_SCALE: u64 = 10_000;

fn quick_mode() -> bool {
    std::env::var("GUPSTER_E22_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn keys() -> MergeKeys {
    MergeKeys::new().with_key("item", "id")
}

fn base_book() -> Element {
    let mut book = Element::new("address-book");
    for i in 0..BOOK_ITEMS {
        book.push_child(
            Element::new("item")
                .with_attr("id", format!("c{i:03}"))
                .with_child(Element::new("name").with_text(format!("Contact {i}"))),
        );
    }
    book
}

/// One storm edit: which user, which replica (`device == devices` means
/// the hub — a portal-side write), and the op itself.
type StormEdit = (usize, usize, EditOp);

/// A seeded storm over the fleet: mostly `SetText`s in the editing
/// replica's own item band (repeated field updates, all of which must
/// relay fleet-wide), a slice on the shared hot set (two replicas
/// renaming the same contact is the canonical Req. 6 conflict), and
/// rare fresh inserts. The same storm is replayed onto both planes, so
/// naive and delta reconcile identical histories.
fn storm(edits: usize, devices: usize, users: usize, seed: u64) -> Vec<StormEdit> {
    assert!((devices + 1) * SLICE <= SHARED_BASE, "replica bands must fit the book");
    let mut r = rng(seed);
    (0..edits)
        .map(|i| {
            let user = r.gen_range(0..users as u32) as usize;
            let replica = r.gen_range(0..devices as u32 + 1) as usize; // == devices → hub
            let op = if i % INSERT_EVERY == INSERT_EVERY - 1 {
                EditOp::Insert {
                    parent: NodePath::root(),
                    element: Element::new("item").with_attr("id", format!("n{i:06}")),
                }
            } else {
                let off = r.gen_range(0..SLICE as u32) as usize;
                let item = if i % SHARED_EVERY == SHARED_EVERY - 1 {
                    SHARED_BASE + off
                } else {
                    replica * SLICE + off
                };
                EditOp::SetText {
                    path: NodePath::root().keyed("item", "id", format!("c{item:03}")).child("name", 0),
                    text: format!("s{}", r.gen_range(0..97u32)),
                }
            };
            (user, replica, op)
        })
        .collect()
}

struct PlaneRun {
    report: PlaneReport,
    /// Total simulated µs across every user's `sync.plane` root span.
    sim_us: u64,
    wall: Duration,
    /// Changelog entries retained across the whole fleet after the pass.
    log_entries: usize,
    /// Converged hub documents, one per user in owner order.
    hub_docs: Vec<Element>,
}

fn run_plane(devices: usize, users: usize, storm: &[StormEdit], oracle: bool) -> PlaneRun {
    let hub = Arc::new(TelemetryHub::new());
    hub.set_span_limit(0); // histograms only — 100k-edit storms
    let mut plane = SyncPlane::new(SHARDS, ReconcilePolicy::LastWriterWins);
    plane.use_oracle = oracle;
    for u in 0..users {
        plane.add_user(&format!("user{u:03}"), base_book(), keys(), devices);
    }
    for (user, replica, op) in storm {
        let owner = format!("user{user:03}");
        if *replica == devices {
            plane.edit_hub(&owner, op.clone()).expect("storm edits apply");
        } else {
            plane.edit_device(&owner, *replica, op.clone()).expect("storm edits apply");
        }
    }
    let t0 = Instant::now();
    let report = plane.reconcile(&hub);
    let wall = t0.elapsed();
    let stats = hub.stage_stats("sync.plane").expect("plane spans recorded");
    let sim_us = stats.mean.0 * stats.count;
    let hub_docs = (0..users).map(|u| plane.hub_doc(&format!("user{u:03}")).clone()).collect();
    PlaneRun { report, sim_us, wall, log_entries: plane.log_entries(), hub_docs }
}

/// Runs one storm shape through both planes, asserts the delta path
/// against the oracle, and reports the row.
fn run_config(edits: usize, devices: usize, users: usize, rows_out: &mut Vec<BenchRow>) -> Vec<String> {
    let storm = storm(edits, devices, users, 2200 + edits as u64);
    let naive = run_plane(devices, users, &storm, true);
    let delta = run_plane(devices, users, &storm, false);

    // Correctness before any number: both planes fully converge, and
    // the converged documents are byte-identical replica for replica
    // (every device equals its hub — that is what `converged` asserts —
    // so hub equality pins the whole fleet).
    assert_eq!(naive.report.converged_users, users, "oracle plane must converge");
    assert_eq!(delta.report.converged_users, users, "delta plane must converge");
    assert_eq!(
        delta.hub_docs, naive.hub_docs,
        "delta-converged documents must be byte-identical to the oracle's at {edits} edits"
    );
    assert_eq!(delta.report.conflicts, naive.report.conflicts);
    assert_eq!(delta.report.shipped, naive.report.shipped);

    let naive_sim_ops = 1e6 * edits as f64 / naive.sim_us.max(1) as f64;
    let delta_sim_ops = 1e6 * edits as f64 / delta.sim_us.max(1) as f64;
    let speedup = delta_sim_ops / naive_sim_ops;
    let bytes_ratio =
        naive.report.bytes_exchanged as f64 / delta.report.bytes_exchanged.max(1) as f64;
    if edits as u64 >= GATE_SCALE {
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "acceptance: ≥{SPEEDUP_FLOOR}× simulated sync throughput at {edits} edits, got {speedup:.1}×"
        );
        assert!(
            bytes_ratio >= BYTES_RATIO_FLOOR,
            "acceptance: ≥{BYTES_RATIO_FLOOR}× fewer bytes at {edits} edits, got {bytes_ratio:.1}×"
        );
    }

    rows_out.push(BenchRow {
        kind: "sync".to_string(),
        scale: edits as u64,
        naive_sim_ops,
        indexed_sim_ops: delta_sim_ops,
        naive_wall_ops: edits as f64 / naive.wall.as_secs_f64().max(1e-9),
        indexed_wall_ops: edits as f64 / delta.wall.as_secs_f64().max(1e-9),
        mean_candidates: bytes_ratio,
    });
    vec![
        format!("{edits}"),
        format!("{users}x{devices}"),
        format!("{naive_sim_ops:.0}"),
        format!("{delta_sim_ops:.0}"),
        format!("{speedup:.1}x"),
        fmt_bytes(naive.report.bytes_exchanged),
        fmt_bytes(delta.report.bytes_exchanged),
        f2(bytes_ratio),
        format!("{}", delta.report.compacted),
        format!("{}/{}", delta.log_entries, naive.log_entries),
    ]
}

/// Runs the experiment.
pub fn run() {
    let quick = quick_mode();
    let mode = if quick { "quick" } else { "full" };
    println!("\nE22 — write path at scale ({mode} sweep)");
    let scales: &[(usize, usize, usize)] = if quick { &SCALES_QUICK } else { &SCALES_FULL };
    let mut rows: Vec<BenchRow> = Vec::new();
    let mut table = Vec::new();
    for &(edits, devices, users) in scales {
        table.push(run_config(edits, devices, users, &mut rows));
    }
    print_table(
        &format!(
            "E22 — naive vs delta reconciliation over {SHARDS}-shard replica fleets \
             (LWW, {BOOK_ITEMS}-item books, docs oracle-checked)"
        ),
        &[
            "edits",
            "fleet",
            "naive sim edits/s",
            "delta sim edits/s",
            "speedup",
            "naive bytes",
            "delta bytes",
            "ratio",
            "compacted",
            "log after (d/n)",
        ],
        &table,
    );
    println!(
        "  paper check: Req. 6/7 sync at fleet scale — the delta session compares only \
         trie-matched op pairs and ships dictionary-coded batches, and compaction caps \
         every changelog at its live peer anchors; the naive plane re-pays the full \
         pairwise scan and full-path framing on every session."
    );

    let out = std::env::var("GUPSTER_BENCH_OUT").unwrap_or_else(|_| "BENCH_sync.json".into());
    match std::fs::write(&out, render_named("e22_sync_storm", mode, &rows)) {
        Ok(()) => println!("\n  wrote {} rows to {out}", rows.len()),
        Err(e) => eprintln!("  cannot write {out}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_matches_oracle_and_prunes() {
        let storm = storm(400, 3, 4, 7);
        let naive = run_plane(3, 4, &storm, true);
        let delta = run_plane(3, 4, &storm, false);
        assert_eq!(delta.hub_docs, naive.hub_docs);
        assert_eq!(delta.report.converged_users, 4);
        assert_eq!(delta.report.conflicts, naive.report.conflicts);
        assert!(delta.report.compared <= naive.report.compared);
        assert!(delta.report.bytes_exchanged < naive.report.bytes_exchanged);
        assert!(delta.sim_us < naive.sim_us);
        // Compaction ran on the delta plane only.
        assert!(delta.log_entries < naive.log_entries);
    }

    #[test]
    fn storms_are_deterministic() {
        let a = storm(64, 2, 3, 11);
        let b = storm(64, 2, 3, 11);
        assert_eq!(a.len(), b.len());
        for ((ua, ra, oa), (ub, rb, ob)) in a.iter().zip(&b) {
            assert_eq!((ua, ra), (ub, rb));
            assert_eq!(format!("{oa:?}"), format!("{ob:?}"));
        }
    }
}
