//! E8 — §6: the LDAP (Netscape roaming-profile) baseline vs. GUPster's
//! XML model. Three comparisons from the paper's own text:
//!
//! 1. partial access — "these opaque objects can only be accessed
//!    (retrieved or updated) as a whole": bytes to update one entry;
//! 2. cross-component query — "combining calendar information with
//!    address book information to find the phone number of the people I
//!    am having a meeting with": impossible across opaque blobs without
//!    fetching everything;
//! 3. typed comparison — the phone-number normalization both worlds need.

use gupster_directory::{AttributeSyntax, RoamingStore};
use gupster_store::{DataStore, UpdateOp, XmlStore};
use gupster_xml::{parse, Element};
use gupster_xpath::Path;

use crate::table::{bytes, print_table};
use crate::workload::profile_with_contacts;

use gupster_directory::BlobKind;

/// Runs the experiment.
pub fn run() {
    // 1. Partial access cost vs. book size.
    let mut rows = Vec::new();
    for n in [10usize, 100, 1000] {
        let doc = profile_with_contacts("alice", n);
        let book = doc.child("address-book").expect("built").clone();
        let blob = book.to_xml();

        // LDAP/roaming: whole blob read + whole blob write.
        let mut roaming = RoamingStore::new("netscape");
        roaming.create_user("alice").expect("fresh");
        roaming.put_blob("alice", BlobKind::AddressBook, &blob).expect("fits");
        let (r0, w0) = (roaming.bytes_read, roaming.bytes_written);
        roaming
            .update_within_blob("alice", BlobKind::AddressBook, |b| b.replacen("Contact 0", "Renamed", 1))
            .expect("present");
        let blob_cost = (roaming.bytes_read - r0) + (roaming.bytes_written - w0);

        // GUPster: a targeted XPath update.
        let mut store = XmlStore::new("gup.yahoo.com");
        store.put_profile(doc).expect("id");
        let path = Path::parse("/user/address-book/item[@id='1']/name").expect("static");
        let op = UpdateOp::SetText(path.clone(), "Renamed".into());
        // Cost: the op itself (path + value) plus a small ack.
        let xml_cost = path.to_string().len() + "Renamed".len() + 64;
        store.update("alice", &op).expect("applies");

        rows.push(vec![
            n.to_string(),
            bytes(blob.len()),
            bytes(blob_cost as usize),
            bytes(xml_cost),
            format!("{:.0}x", blob_cost as f64 / xml_cost as f64),
        ]);
    }
    print_table(
        "E8a / §6 — update one address-book entry: roaming blob vs. GUPster XML",
        &["entries", "book size", "LDAP blob bytes moved", "XML update bytes", "blob/XML"],
        &rows,
    );

    // 2. Cross-component query: phones of today's meeting attendees.
    let (result, xml_bytes) = attendee_phones_xml();
    let blob_bytes = attendee_phones_blob_cost();
    print_table(
        "E8b / §6 — 'phone numbers of the people I'm meeting' (calendar ⨝ address-book)",
        &["model", "expressible", "bytes fetched", "answer"],
        &[
            vec![
                "GUPster XML (two component queries + join)".into(),
                "yes".into(),
                bytes(xml_bytes),
                result.join(", "),
            ],
            vec![
                "LDAP opaque blobs".into(),
                "only by fetching both whole blobs".into(),
                bytes(blob_bytes),
                "(client must parse proprietary formats)".into(),
            ],
        ],
    );

    // 3. Typed comparison parity.
    let ldap_eq = AttributeSyntax::Telephone.eq("908-582-4393", "(908) 582-4393");
    let xml_eq = gupster_schema::DataType::PhoneNumber.values_equal("908-582-4393", "(908) 582-4393");
    print_table(
        "E8c / §6 — typed phone-number comparison (the LDAP feature GUPster keeps)",
        &["model", "'908-582-4393' == '(908) 582-4393'"],
        &[
            vec!["LDAP telephoneNumber syntax".into(), ldap_eq.to_string()],
            vec!["GUPster phone-number datatype".into(), xml_eq.to_string()],
        ],
    );
}

/// The XML-side join: ask for today's attendees, then their phones.
fn attendee_phones_xml() -> (Vec<String>, usize) {
    let mut store = XmlStore::new("gup.yahoo.com");
    store.put_profile(demo_profile()).expect("id");
    let attendees_path = Path::parse("/user/calendar/event[@id='e1']/attendee").expect("static");
    let attendees = store.query(&attendees_path).expect("queries");
    let mut fetched: usize = attendees.iter().map(Element::byte_size).sum();
    let mut phones = Vec::new();
    for a in &attendees {
        let name = a.text();
        let p = Path::parse(&format!("/user/address-book/item[name='{name}']/phone"))
            .expect("parses");
        let r = store.query(&p).expect("queries");
        fetched += r.iter().map(Element::byte_size).sum::<usize>();
        phones.extend(r.iter().map(|e| e.text().into_owned()));
    }
    (phones, fetched)
}

/// The blob-side cost: both whole blobs must come down.
fn attendee_phones_blob_cost() -> usize {
    let profile = demo_profile();
    let book = profile.child("address-book").expect("built").to_xml();
    let cal = profile.child("calendar").expect("built").to_xml();
    let mut roaming = RoamingStore::new("netscape");
    roaming.create_user("alice").expect("fresh");
    roaming.put_blob("alice", BlobKind::AddressBook, &book).expect("fits");
    roaming.put_blob("alice", BlobKind::Prefs, &cal).expect("fits");
    let r0 = roaming.bytes_read;
    roaming.get_blob("alice", BlobKind::AddressBook).expect("present");
    roaming.get_blob("alice", BlobKind::Prefs).expect("present");
    (roaming.bytes_read - r0) as usize
}

fn demo_profile() -> Element {
    parse(
        r#"<user id="alice">
             <address-book>
               <item id="1" type="corporate"><name>Rick Hull</name><phone>908-582-4393</phone></item>
               <item id="2" type="corporate"><name>Ming Xiong</name><phone>908-582-7777</phone></item>
               <item id="3" type="personal"><name>Mom</name><phone>908-555-0101</phone></item>
             </address-book>
             <calendar>
               <event id="e1"><subject>Design review</subject><start>2003-01-06T10:00</start><attendee>Rick Hull</attendee><attendee>Ming Xiong</attendee></event>
             </calendar>
           </user>"#,
    )
    .expect("static")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_join_finds_both_phones() {
        let (phones, fetched) = attendee_phones_xml();
        assert_eq!(phones, vec!["908-582-4393", "908-582-7777"]);
        assert!(fetched < attendee_phones_blob_cost(), "partial access must be cheaper");
    }

    #[test]
    fn blob_update_cost_scales_with_book_size() {
        // The defining drawback: a 1-entry edit costs O(book).
        let small = cost(10);
        let large = cost(1000);
        assert!(large > small * 20, "small={small} large={large}");

        fn cost(n: usize) -> u64 {
            let doc = profile_with_contacts("alice", n);
            let blob = doc.child("address-book").unwrap().to_xml();
            let mut r = RoamingStore::new("netscape");
            r.create_user("alice").unwrap();
            r.put_blob("alice", BlobKind::AddressBook, &blob).unwrap();
            r.update_within_blob("alice", BlobKind::AddressBook, |b| {
                b.replacen("Contact 0", "Renamed", 1)
            })
            .unwrap()
        }
    }

    #[test]
    fn runs() {
        super::run();
    }
}
