//! E17 — multi-core scaling: sharded request execution and batched,
//! coalesced store fetches (DESIGN.md §8).
//!
//! Two sections:
//!
//! 1. **Shard sweep** — a Zipf-skewed stream of full answers (lookup +
//!    fetch-merge through the per-shard singleflight) runs through a
//!    [`ShardedRegistry`] at 1, 2, 4 and 8 shards. Outputs are asserted
//!    byte-identical across shard counts; throughput is the
//!    deterministic simulated makespan (the busiest shard's traced
//!    pipeline time per scatter window — what a wall clock would show
//!    with one core per shard). The acceptance bar (≥3× at 4 shards)
//!    is asserted here in both modes.
//! 2. **Batch sweep** — the E15 fault schedule replayed over a
//!    privacy-narrowed split address book whose referrals carry
//!    several fragments per store, with the resilience ladder running
//!    batched vs. unbatched fetches. Reports per-request messages,
//!    availability and simulated throughput per split width.
//!
//! Every row lands in `BENCH_shards.json` (see [`crate::benchjson`]);
//! CI re-runs the reduced sweep (`GUPSTER_E17_QUICK=1`) and
//! `bench_compare` gates both the absolute simulated throughput and
//! the scaling ratio at the widest shard count. Wall-clock columns are
//! informative only — this container may well be single-core; the
//! simulated columns are machine-independent.

use std::time::Instant;

use gupster_core::patterns::PatternExecutor;
use gupster_core::{Gupster, ResilientExecutor, ShardRequest, ShardedRegistry, StorePool};
use gupster_netsim::{Domain, FaultRates, FaultSchedule, Network, NodeId, SimTime};
use gupster_policy::{Effect, Purpose, WeekTime};
use gupster_rng::Rng;
use gupster_schema::gup_schema;
use gupster_store::{StoreId, XmlStore};
use gupster_xml::{Element, MergeKeys};
use gupster_xpath::Path;

use crate::benchjson::{render_named, BenchRow};
use crate::table::{f2, pct, print_table};
use crate::workload::{rng, Zipf};

/// Requests dispatched per scatter window (one singleflight window).
const WINDOW: usize = 512;
/// Shard counts swept in both modes.
const SHARDS: [usize; 4] = [1, 2, 4, 8];
/// Split widths swept in section B.
const SPLITS: [usize; 3] = [2, 4, 8];

fn quick_mode() -> bool {
    std::env::var("GUPSTER_E17_QUICK").map(|v| v == "1").unwrap_or(false)
}

// ---------------------------------------------------------------- A —

/// The shard-sweep workload: a shared multi-tenant store pool plus a
/// pre-built request stream (identical for every shard count).
pub(crate) struct ShardWorkload {
    pub(crate) users: Vec<String>,
    pub(crate) pool: StorePool,
    pub(crate) requests: Vec<ShardRequest>,
}

pub(crate) fn build_workload(n_users: usize, n_requests: usize, seed: u64) -> ShardWorkload {
    const N_STORES: usize = 6;
    let users: Vec<String> = (0..n_users).map(|i| format!("user{i:05}")).collect();

    // Six multi-tenant stores; each user's presence and two
    // address-book slices land on three of them round-robin.
    let mut stores: Vec<XmlStore> =
        (0..N_STORES).map(|j| XmlStore::new(format!("store{j}.net"))).collect();
    for (i, u) in users.iter().enumerate() {
        let mut presence = Element::new("user").with_attr("id", u.clone());
        presence.push_child(Element::new("presence").with_text(format!("online-{i}")));
        stores[i % N_STORES].put_profile(presence).expect("id");

        let mut personal = Element::new("user").with_attr("id", u.clone());
        let mut book = Element::new("address-book");
        for k in 0..3 {
            book.push_child(
                Element::new("item")
                    .with_attr("id", format!("p{k}"))
                    .with_attr("type", "personal")
                    .with_child(Element::new("name").with_text(format!("Friend {k} of {u}"))),
            );
        }
        personal.push_child(book);
        stores[(i + 1) % N_STORES].put_profile(personal).expect("id");

        let mut corporate = Element::new("user").with_attr("id", u.clone());
        let mut book = Element::new("address-book");
        for k in 0..2 {
            book.push_child(
                Element::new("item")
                    .with_attr("id", format!("c{k}"))
                    .with_attr("type", "corporate")
                    .with_child(Element::new("name").with_text(format!("Desk {k} of {u}"))),
            );
        }
        corporate.push_child(book);
        stores[(i + 2) % N_STORES].put_profile(corporate).expect("id");
    }
    let mut pool = StorePool::new();
    for s in stores {
        pool.add(Box::new(s));
    }

    // Mildly skewed user popularity (hot users exist but no single
    // user dominates a shard), 70/30 presence vs. merged address-book.
    let zipf = Zipf::new(n_users, 0.4);
    let mut r = rng(seed);
    let requests: Vec<ShardRequest> = (0..n_requests)
        .map(|op| {
            let u = &users[zipf.sample(&mut r)];
            let path = if r.gen_range(0..10) < 7 {
                format!("/user[@id='{u}']/presence")
            } else {
                format!("/user[@id='{u}']/address-book")
            };
            ShardRequest {
                owner: u.clone(),
                path: Path::parse(&path).expect("static"),
                requester: u.clone(),
                purpose: Purpose::Query,
                time: WeekTime::at(1, 10, 0),
                now: op as u64,
            }
        })
        .collect();
    ShardWorkload { users, pool, requests }
}

pub(crate) fn provision(w: &ShardWorkload, shards: usize) -> ShardedRegistry {
    const N_STORES: usize = 6;
    let mut reg = ShardedRegistry::new(gup_schema(), b"e17", shards);
    reg.set_span_limit(0); // histograms only; spans would grow unbounded
    for (i, u) in w.users.iter().enumerate() {
        reg.register_component(
            u,
            Path::parse(&format!("/user[@id='{u}']/presence")).expect("static"),
            StoreId::new(format!("store{}.net", i % N_STORES)),
        )
        .expect("valid");
        reg.register_component(
            u,
            Path::parse(&format!("/user[@id='{u}']/address-book/item[@type='personal']"))
                .expect("static"),
            StoreId::new(format!("store{}.net", (i + 1) % N_STORES)),
        )
        .expect("valid");
        reg.register_component(
            u,
            Path::parse(&format!("/user[@id='{u}']/address-book/item[@type='corporate']"))
                .expect("static"),
            StoreId::new(format!("store{}.net", (i + 2) % N_STORES)),
        )
        .expect("valid");
    }
    reg
}

/// One full pass of the request stream at `shards` shards. Returns the
/// compact per-request outputs (for cross-count identity checks), the
/// summed simulated makespan, the per-shard busy totals and the wall
/// duration.
fn shard_pass(
    w: &ShardWorkload,
    shards: usize,
    keys: &MergeKeys,
) -> (Vec<String>, SimTime, Vec<SimTime>, std::time::Duration) {
    let mut reg = provision(w, shards);
    let mut outputs = Vec::with_capacity(w.requests.len());
    let mut makespan = SimTime::ZERO;
    let mut busy = vec![SimTime::ZERO; shards];
    let t0 = Instant::now();
    for window in w.requests.chunks(WINDOW) {
        let (results, report) = reg.answer_batch(&w.pool, window, keys, true);
        makespan += report.makespan;
        for (s, t) in report.shard_sim.iter().enumerate() {
            busy[s] += *t;
        }
        for res in results {
            outputs.push(match res {
                Ok(elems) => format!("{elems:?}"),
                Err(e) => format!("{e:?}"),
            });
        }
    }
    let wall = t0.elapsed();
    // The deduped flights are the only fetch work; every duplicate in a
    // window must have ridden the singleflight table.
    let totals = reg.counter_totals();
    assert!(totals.singleflight_hits > 0, "workload has duplicates by construction");
    (outputs, makespan, busy, wall)
}

fn shard_sweep(quick: bool, rows_out: &mut Vec<BenchRow>) {
    let (n_users, n_requests) = if quick { (300, 4_096) } else { (1_200, 20_480) };
    let w = build_workload(n_users, n_requests, 17);
    let keys = MergeKeys::new().with_key("item", "id");

    let mut table = Vec::new();
    let mut baseline: Option<(Vec<String>, SimTime)> = None;
    for &shards in &SHARDS {
        let (outputs, makespan, busy, wall) = shard_pass(&w, shards, &keys);
        let (base_out, base_makespan) = baseline.get_or_insert((outputs.clone(), makespan));
        assert_eq!(
            *base_out, outputs,
            "sharded output diverged from the 1-shard run at {shards} shards"
        );
        let speedup = base_makespan.0 as f64 / makespan.0.max(1) as f64;
        if shards >= 4 {
            assert!(
                speedup >= 3.0,
                "acceptance: ≥3× simulated throughput at {shards} shards, got {speedup:.2}×"
            );
        }
        let mean_busy = busy.iter().map(|t| t.0).sum::<u64>() as f64 / shards as f64;
        let imbalance = busy.iter().map(|t| t.0).max().unwrap_or(0) as f64 / mean_busy.max(1.0);
        let sim_ops = 1e6 * n_requests as f64 / makespan.0.max(1) as f64;
        let base_sim_ops = 1e6 * n_requests as f64 / base_makespan.0.max(1) as f64;
        let wall_ops = n_requests as f64 / wall.as_secs_f64();
        table.push(vec![
            shards.to_string(),
            format!("{sim_ops:.0}"),
            format!("{speedup:.2}x"),
            format!("{wall_ops:.0}"),
            f2(imbalance),
            makespan.to_string(),
        ]);
        rows_out.push(BenchRow {
            kind: "shards".to_string(),
            scale: shards as u64,
            naive_sim_ops: base_sim_ops,
            indexed_sim_ops: sim_ops,
            naive_wall_ops: 0.0,
            indexed_wall_ops: wall_ops,
            mean_candidates: imbalance,
        });
    }
    print_table(
        &format!(
            "E17a — sharded answer throughput ({n_requests} requests over {n_users} users, \
             windows of {WINDOW})"
        ),
        &["shards", "sim ops/s", "sim speedup", "wall ops/s", "imbalance", "sim makespan"],
        &table,
    );
    println!(
        "  paper check: user-keyed state makes the registry embarrassingly partitionable — \
         throughput scales with shards while outputs stay byte-identical."
    );
}

// ---------------------------------------------------------------- B —

struct FaultWorld {
    net: Network,
    client: NodeId,
    gupster_node: NodeId,
    fault_nodes: Vec<NodeId>,
    store_nodes: std::collections::HashMap<StoreId, NodeId>,
    gupster: Gupster,
    pool: StorePool,
}

/// A `k`-way split address book on `k/2` stores (two slices per store),
/// shield-narrowed for requester `rick` so every referral carries
/// several fragments per store — the shape batching collapses.
fn build_fault_world(k: usize, seed: u64) -> FaultWorld {
    let mut net = Network::new(seed);
    let client = net.add_node("client", Domain::Client);
    let gupster_node = net.add_node("gupster.net", Domain::Internet);
    let mut gupster = Gupster::new(gup_schema(), b"e17");
    let mut pool = StorePool::new();
    let mut store_nodes = std::collections::HashMap::new();
    let mut fault_nodes = vec![client, gupster_node];
    let n_stores = (k / 2).max(1);
    for j in 0..n_stores {
        let label = format!("store{j}.net");
        let node = net.add_node(label.clone(), Domain::Internet);
        fault_nodes.push(node);
        let mut store = XmlStore::new(label.clone());
        let mut doc = Element::new("user").with_attr("id", "alice");
        let mut book = Element::new("address-book");
        for s in (0..k).filter(|s| s / 2 == j) {
            for i in (s..48).step_by(k) {
                book.push_child(
                    Element::new("item")
                        .with_attr("id", i.to_string())
                        .with_attr("type", format!("slice{s}"))
                        .with_child(Element::new("name").with_text(format!("Contact {i}"))),
                );
            }
        }
        doc.push_child(book);
        store.put_profile(doc).expect("id");
        store_nodes.insert(StoreId::new(label), node);
        pool.add(Box::new(store));
    }
    for s in 0..k {
        gupster
            .register_component(
                "alice",
                Path::parse(&format!("/user[@id='alice']/address-book/item[@type='slice{s}']"))
                    .expect("static"),
                StoreId::new(format!("store{}.net", s / 2)),
            )
            .expect("valid");
    }
    // Rick's shield: one broad item permit (partial on every store)
    // plus one permit per slice (full). The narrowed referral then
    // lists each store up to three times — fragments a batched fetch
    // coalesces into one RPC per store.
    gupster.set_relationship("alice", "rick", "co-worker");
    gupster
        .pap
        .provision(
            "alice",
            "cw-items",
            Effect::Permit,
            "/user/address-book/item",
            "relationship='co-worker'",
            0,
        )
        .expect("valid");
    for s in 0..k {
        gupster
            .pap
            .provision(
                "alice",
                &format!("cw-slice{s}"),
                Effect::Permit,
                &format!("/user/address-book/item[@type='slice{s}']"),
                "relationship='co-worker'",
                0,
            )
            .expect("valid");
    }
    FaultWorld { net, client, gupster_node, fault_nodes, store_nodes, gupster, pool }
}

struct BatchCell {
    fresh: usize,
    stale: usize,
    failed: usize,
    results: Vec<String>,
    sim_wall: SimTime,
    messages_per_req: f64,
}

/// Replays the request stream through the resilience ladder at one
/// (split width, fault rate, batching) cell. Fully deterministic for a
/// given seed.
fn batch_cell(k: usize, rate: f64, batch: bool, seed: u64) -> BatchCell {
    const REQUESTS: usize = 150;
    let gap = SimTime::millis(200);
    let keys = MergeKeys::new().with_key("item", "id");
    let request = Path::parse("/user[@id='alice']/address-book").expect("static");
    let mut w = build_fault_world(k, seed ^ 0xE17);
    let exec = PatternExecutor {
        net: &w.net,
        client: w.client,
        gupster_node: w.gupster_node,
        store_nodes: w.store_nodes.clone(),
        batch_fetches: batch,
    };
    let mut rex = ResilientExecutor::new(exec, seed).with_budget(SimTime::secs(2));
    rex.fetch(&mut w.gupster, &w.pool, "alice", &request, "rick", WeekTime::at(1, 10, 0), 0, &keys)
        .expect("fault-free warm-up");
    let rates =
        FaultRates::links(rate).with_node_outages(rate / 5.0).with_latency_spikes(rate / 10.0);
    let horizon = SimTime(gap.0 * (REQUESTS as u64 + 5));
    w.net.install_faults(FaultSchedule::generate(seed, &rates, &w.fault_nodes, horizon));
    w.net.reset_metrics();

    let (mut fresh, mut stale, mut failed) = (0usize, 0usize, 0usize);
    let mut results = Vec::with_capacity(REQUESTS);
    let mut sim_wall = SimTime::ZERO;
    for i in 0..REQUESTS {
        w.net.advance(gap);
        match rex.fetch(
            &mut w.gupster,
            &w.pool,
            "alice",
            &request,
            "rick",
            WeekTime::at(1, 10, 0),
            1 + i as u64,
            &keys,
        ) {
            Ok(run) => {
                if run.stale {
                    stale += 1;
                } else {
                    fresh += 1;
                }
                sim_wall += run.wall;
                results.push(format!("{:?}", run.result));
            }
            Err(e) => {
                failed += 1;
                results.push(format!("{e:?}"));
            }
        }
    }
    let m = w.net.metrics();
    BatchCell {
        fresh,
        stale,
        failed,
        results,
        sim_wall,
        messages_per_req: m.messages as f64 / REQUESTS as f64,
    }
}

fn batch_sweep(rows_out: &mut Vec<BenchRow>) {
    const RATE: f64 = 0.10; // the E15 ladder's headline fault rate
    let mut table = Vec::new();
    for &k in &SPLITS {
        // Fault-free leg first: batched and unbatched answers must be
        // byte-identical when nothing interferes.
        let calm_plain = batch_cell(k, 0.0, false, 15);
        let calm_batched = batch_cell(k, 0.0, true, 15);
        assert_eq!(
            calm_plain.results, calm_batched.results,
            "batched answers diverged at k={k} with no faults"
        );
        assert!(
            calm_batched.messages_per_req < calm_plain.messages_per_req,
            "batching must cut messages at k={k}: {} vs {}",
            calm_batched.messages_per_req,
            calm_plain.messages_per_req
        );

        // Faulted leg: the ladder must hold availability in both modes
        // (messages differ, so the two schedules interleave
        // differently — each mode is deterministic on its own).
        let plain = batch_cell(k, RATE, false, 15);
        let batched = batch_cell(k, RATE, true, 15);
        for (label, cell) in [("unbatched", &plain), ("batched", &batched)] {
            assert_eq!(cell.fresh + cell.stale + cell.failed, 150, "{label} lost requests");
            let avail = 1.0 - cell.failed as f64 / 150.0;
            assert!(avail >= 0.9, "{label} availability {avail} at k={k}");
        }
        let ops = |c: &BatchCell| {
            1e6 * (c.fresh + c.stale) as f64 / c.sim_wall.0.max(1) as f64
        };
        table.push(vec![
            k.to_string(),
            f2(calm_plain.messages_per_req),
            f2(calm_batched.messages_per_req),
            format!("{:.0}", ops(&plain)),
            format!("{:.0}", ops(&batched)),
            pct((plain.fresh + plain.stale) as f64 / 150.0),
            pct((batched.fresh + batched.stale) as f64 / 150.0),
        ]);
        rows_out.push(BenchRow {
            kind: "batch".to_string(),
            scale: k as u64,
            naive_sim_ops: ops(&plain),
            indexed_sim_ops: ops(&batched),
            naive_wall_ops: calm_plain.messages_per_req,
            indexed_wall_ops: calm_batched.messages_per_req,
            mean_candidates: calm_batched.messages_per_req,
        });
    }
    print_table(
        "E17b — batched vs. unbatched fetches under the E15 fault ladder (150 requests, 10% faults)",
        &[
            "slices",
            "msgs/req plain",
            "msgs/req batched",
            "plain sim ops/s",
            "batched sim ops/s",
            "plain avail",
            "batched avail",
        ],
        &table,
    );
    println!(
        "  paper check: one header per destination store — message count per request drops \
         while answers and availability hold."
    );
}

/// Runs the experiment.
pub fn run() {
    let quick = quick_mode();
    let mode = if quick { "quick" } else { "full" };
    println!("\nE17 — multi-core sharding and batched fetches ({mode} sweep)");
    let mut rows: Vec<BenchRow> = Vec::new();
    shard_sweep(quick, &mut rows);
    // Section B is cheap and runs identically in both modes, so the
    // quick CI sweep intersects the checked-in baseline on every row.
    batch_sweep(&mut rows);

    let out = std::env::var("GUPSTER_BENCH_OUT").unwrap_or_else(|_| "BENCH_shards.json".into());
    match std::fs::write(&out, render_named("e17_shards", mode, &rows)) {
        Ok(()) => println!("\n  wrote {} rows to {out}", rows.len()),
        Err(e) => eprintln!("  cannot write {out}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_shard_sweep_is_identical_and_balanced() {
        let w = build_workload(40, 512, 3);
        let keys = MergeKeys::new().with_key("item", "id");
        let (base, base_makespan, _, _) = shard_pass(&w, 1, &keys);
        for shards in [2usize, 4] {
            let (outputs, makespan, busy, _) = shard_pass(&w, shards, &keys);
            assert_eq!(base, outputs, "diverged at {shards} shards");
            assert!(makespan < base_makespan);
            assert_eq!(busy.len(), shards);
        }
    }

    #[test]
    fn narrowed_referral_batches_fewer_messages() {
        let calm_plain = batch_cell(2, 0.0, false, 7);
        let calm_batched = batch_cell(2, 0.0, true, 7);
        assert_eq!(calm_plain.results, calm_batched.results);
        assert!(calm_batched.messages_per_req < calm_plain.messages_per_req);
        assert_eq!(calm_plain.failed, 0);
        assert_eq!(calm_batched.failed, 0);
    }
}
