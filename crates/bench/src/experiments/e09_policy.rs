//! E9 — §4.6 / §5.3: privacy-shield decision cost vs. rule-set size,
//! and the signed-query protocol overhead ("offering an expressive
//! framework with good enough performance is clearly a challenge").

use std::time::Instant;

use gupster_core::Signer;
use gupster_policy::{Condition, Pdp, PolicyRepository, RequestContext, Rule, WeekTime};
use gupster_xpath::Path;

use crate::table::print_table;
use crate::workload::rng;
use gupster_rng::Rng;

const COMPONENTS: [&str; 8] = [
    "/user/presence",
    "/user/address-book",
    "/user/address-book/item[@type='personal']",
    "/user/calendar",
    "/user/devices",
    "/user/wallet",
    "/user/identity",
    "/user/locations",
];
const RELATIONSHIPS: [&str; 5] = ["co-worker", "boss", "family", "friend", "third-party"];

fn random_rules(n: usize, seed: u64) -> PolicyRepository {
    let mut repo = PolicyRepository::new();
    let mut r = rng(seed);
    for i in 0..n {
        let scope = Path::parse(COMPONENTS[r.gen_range(0..COMPONENTS.len())]).expect("static");
        let rel = RELATIONSHIPS[r.gen_range(0..RELATIONSHIPS.len())];
        let h1 = r.gen_range(0..23);
        let cond = Condition::parse(&format!(
            "relationship='{rel}' and time in Mon-Fri {h1:02}:00-{:02}:59",
            (h1 + 1).min(23)
        ))
        .expect("static grammar");
        let rule = if r.gen_bool(0.8) {
            Rule::permit(&format!("r{i}"), scope, cond)
        } else {
            Rule::deny(&format!("r{i}"), scope, cond)
        };
        repo.put("alice", rule);
    }
    repo
}

/// Runs the experiment.
pub fn run() {
    let pdp = Pdp::new();
    let mut rows = Vec::new();
    for n_rules in [10usize, 100, 1_000, 10_000] {
        let repo = random_rules(n_rules, 31);
        let mut r = rng(77);
        const OPS: usize = 5_000;
        let requests: Vec<(Path, RequestContext)> = (0..OPS)
            .map(|_| {
                let path =
                    Path::parse(COMPONENTS[r.gen_range(0..COMPONENTS.len())]).expect("static");
                let ctx = RequestContext::query(
                    "rick",
                    RELATIONSHIPS[r.gen_range(0..RELATIONSHIPS.len())],
                    WeekTime::at(r.gen_range(0..7), r.gen_range(0..24), 0),
                );
                (path, ctx)
            })
            .collect();
        let t0 = Instant::now();
        let mut permits = 0usize;
        for (path, ctx) in &requests {
            if pdp.decide(&repo, "alice", path, ctx).allows_anything() {
                permits += 1;
            }
        }
        let dt = t0.elapsed();
        rows.push(vec![
            n_rules.to_string(),
            format!("{:.1}µs", dt.as_micros() as f64 / OPS as f64),
            format!("{:.0} kdec/s", OPS as f64 / dt.as_secs_f64() / 1000.0),
            format!("{:.1}%", permits as f64 / OPS as f64 * 100.0),
        ]);
    }
    print_table(
        "E9 / §4.6 — privacy-shield decision cost vs. rule-set size",
        &["rules/user", "mean decision", "throughput", "permit rate"],
        &rows,
    );

    // Signed-query protocol overhead.
    let signer = Signer::new(b"e9-key", 30);
    const OPS: usize = 20_000;
    let t0 = Instant::now();
    let mut tokens = Vec::with_capacity(OPS);
    for i in 0..OPS {
        tokens.push(signer.sign("alice", "rick", vec!["/user/presence".to_string()], i as u64));
    }
    let sign_dt = t0.elapsed();
    let t1 = Instant::now();
    for (i, t) in tokens.iter().enumerate() {
        signer.verify(t, i as u64).expect("fresh");
    }
    let verify_dt = t1.elapsed();
    print_table(
        "E9 — signed-query protocol overhead (HMAC-SHA256 + freshness)",
        &["operation", "per op", "throughput"],
        &[
            vec![
                "sign (GUPster side)".into(),
                format!("{:.2}µs", sign_dt.as_micros() as f64 / OPS as f64),
                format!("{:.0} kops/s", OPS as f64 / sign_dt.as_secs_f64() / 1000.0),
            ],
            vec![
                "verify (data-store side)".into(),
                format!("{:.2}µs", verify_dt.as_micros() as f64 / OPS as f64),
                format!("{:.0} kops/s", OPS as f64 / verify_dt.as_secs_f64() / 1000.0),
            ],
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_rule_sets_decide_consistently() {
        let repo = random_rules(200, 5);
        let pdp = Pdp::new();
        let path = Path::parse("/user/presence").unwrap();
        let ctx = RequestContext::query("rick", "boss", WeekTime::at(1, 10, 0));
        let a = pdp.decide(&repo, "alice", &path, &ctx);
        let b = pdp.decide(&repo, "alice", &path, &ctx);
        assert_eq!(a, b, "decisions are deterministic");
    }

    #[test]
    fn runs_small() {
        // Smoke-run the harness pieces cheaply.
        let repo = random_rules(50, 1);
        assert_eq!(repo.count_for("alice"), 50);
    }
}
