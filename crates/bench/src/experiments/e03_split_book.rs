//! E3 — Figures 8 & 9: a component split across k stores; referral
//! fan-out and client-side deep-union merge, with correctness checked
//! against an unsplit oracle.

use gupster_core::{fetch_merge, Gupster, StorePool};
use gupster_policy::{Purpose, WeekTime};
use gupster_schema::gup_schema;
use gupster_store::{StoreId, XmlStore};
use gupster_xml::{Element, MergeKeys};
use gupster_xpath::Path;

use crate::table::{bytes, print_table};

/// Builds k stores each holding 1/k of a `total`-entry address book,
/// registered under per-slice predicates, plus the registry.
fn split_world(total: usize, k: usize) -> (Gupster, StorePool) {
    let mut g = Gupster::new(gup_schema(), b"e3");
    let mut pool = StorePool::new();
    for s in 0..k {
        let mut store = XmlStore::new(format!("store{s}.example.com"));
        let mut doc = Element::new("user").with_attr("id", "arnaud");
        let mut book = Element::new("address-book");
        for i in (s..total).step_by(k) {
            book.push_child(
                Element::new("item")
                    .with_attr("id", i.to_string())
                    .with_attr("type", format!("slice{s}"))
                    .with_child(Element::new("name").with_text(format!("Contact {i}")))
                    .with_child(Element::new("phone").with_text(format!("908-555-{i:04}"))),
            );
        }
        doc.push_child(book);
        store.put_profile(doc).expect("has id");
        g.register_component(
            "arnaud",
            Path::parse(&format!(
                "/user[@id='arnaud']/address-book/item[@type='slice{s}']"
            ))
            .expect("static"),
            StoreId::new(format!("store{s}.example.com")),
        )
        .expect("valid");
        pool.add(Box::new(store));
    }
    (g, pool)
}

/// Runs the experiment.
pub fn run() {
    let keys = MergeKeys::new().with_key("item", "id");
    let total = 120;
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let (mut g, pool) = split_world(total, k);
        let request = Path::parse("/user[@id='arnaud']/address-book").expect("static");
        let t0 = std::time::Instant::now();
        let out = g
            .lookup("arnaud", &request, "arnaud", Purpose::Query, WeekTime::at(0, 12, 0), 0)
            .expect("covered");
        let lookup_us = t0.elapsed().as_micros();
        let signer = g.signer();
        let t1 = std::time::Instant::now();
        let merged = fetch_merge(&pool, &out.referral, &signer, 0, &keys).expect("fetches");
        let fetch_us = t1.elapsed().as_micros();
        let items = merged.first().map(|m| m.children_named("item").count()).unwrap_or(0);
        rows.push(vec![
            k.to_string(),
            out.referral.entries.len().to_string(),
            out.referral.merge_required.to_string(),
            items.to_string(),
            (items == total).to_string(),
            bytes(out.referral.byte_size()),
            format!("{lookup_us}µs"),
            format!("{fetch_us}µs"),
        ]);
    }
    print_table(
        "E3 / Figures 8–9 — split address book (120 entries over k stores)",
        &[
            "k stores",
            "referral entries",
            "merge req.",
            "merged items",
            "complete",
            "referral size",
            "lookup cpu",
            "fetch+merge cpu",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_core::fetch_merge;
    use gupster_policy::{Purpose, WeekTime};

    #[test]
    fn merge_complete_for_all_fanouts() {
        let keys = MergeKeys::new().with_key("item", "id");
        for k in [1usize, 3, 5] {
            let (mut g, pool) = split_world(30, k);
            let request = Path::parse("/user[@id='arnaud']/address-book").unwrap();
            let out = g
                .lookup("arnaud", &request, "arnaud", Purpose::Query, WeekTime::at(0, 12, 0), 0)
                .unwrap();
            let signer = g.signer();
            let merged = fetch_merge(&pool, &out.referral, &signer, 0, &keys).unwrap();
            assert_eq!(merged.len(), 1, "k={k}");
            assert_eq!(merged[0].children_named("item").count(), 30, "k={k}");
        }
    }
}
