//! The per-experiment harness (DESIGN.md §4). Each `eN::run()` prints
//! the tables for that experiment; `run_all` runs the suite in order.

pub mod e01_placement;
pub mod e02_referral_flow;
pub mod e03_split_book;
pub mod e04_reach_me;
pub mod e05_patterns;
pub mod e06_mdm;
pub mod e07_scalability;
pub mod e08_ldap_vs_xml;
pub mod e09_policy;
pub mod e10_push_pull;
pub mod e11_sync;
pub mod e12_hlr;
pub mod e13_containment;
pub mod e14_cache;
pub mod e15_reliability;

/// Runs one experiment by id (`e1`…`e15`), or `all`.
pub fn run(which: &str) -> bool {
    match which {
        "e1" => e01_placement::run(),
        "e2" => e02_referral_flow::run(),
        "e3" => e03_split_book::run(),
        "e4" => e04_reach_me::run(),
        "e5" => e05_patterns::run(),
        "e6" => e06_mdm::run(),
        "e7" => e07_scalability::run(),
        "e8" => e08_ldap_vs_xml::run(),
        "e9" => e09_policy::run(),
        "e10" => e10_push_pull::run(),
        "e11" => e11_sync::run(),
        "e12" => e12_hlr::run(),
        "e13" => e13_containment::run(),
        "e14" => e14_cache::run(),
        "e15" => e15_reliability::run(),
        "all" => {
            for i in 1..=15 {
                run(&format!("e{i}"));
            }
        }
        _ => return false,
    }
    true
}
