//! The per-experiment harness (DESIGN.md §4). Each `eN::run()` prints
//! the tables for that experiment; `run_all` runs the suite in order.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use gupster_telemetry::TelemetryHub;

pub mod e01_placement;
pub mod e02_referral_flow;
pub mod e03_split_book;
pub mod e04_reach_me;
pub mod e05_patterns;
pub mod e06_mdm;
pub mod e07_scalability;
pub mod e08_ldap_vs_xml;
pub mod e09_policy;
pub mod e10_push_pull;
pub mod e11_sync;
pub mod e12_hlr;
pub mod e13_containment;
pub mod e14_cache;
pub mod e15_reliability;
pub mod e16_registry_scale;
pub mod e17_shards;
pub mod e18_observability;
pub mod e19_xml_hotpath;
pub mod e20_overload;
pub mod e21_fanout;
pub mod e22_sync_storm;

static TRACE_OUT: OnceLock<PathBuf> = OnceLock::new();
/// Request-id offset for the next dumped hub, so traces from several
/// independent hubs never collide in one file.
static TRACE_BASE: AtomicU64 = AtomicU64::new(0);

/// Routes span traces from instrumented experiments to `path` as JSON
/// lines (the `--trace-out` flag). First call wins.
pub fn set_trace_out(path: PathBuf) {
    let _ = std::fs::write(&path, ""); // start fresh per run
    let _ = TRACE_OUT.set(path);
}

/// Appends every finished span of `hub` to the `--trace-out` file.
/// No-op when tracing was not requested. Request ids are shifted by a
/// per-hub base so each dumped request stays a single rooted tree even
/// when several experiments (each with its own hub) write to one file.
pub fn dump_traces(hub: &TelemetryHub) {
    let Some(path) = TRACE_OUT.get() else { return };
    let mut spans = hub.spans();
    if spans.is_empty() {
        return;
    }
    let width = spans.iter().map(|s| s.request.0).max().unwrap_or(0) + 1;
    let base = TRACE_BASE.fetch_add(width, Ordering::Relaxed);
    for s in &mut spans {
        s.request.0 += base;
    }
    let text = gupster_telemetry::export::export(&spans);
    use std::io::Write;
    let file = std::fs::OpenOptions::new().create(true).append(true).open(path);
    match file.and_then(|mut f| f.write_all(text.as_bytes())) {
        Ok(()) => {}
        Err(e) => eprintln!("trace-out: cannot write {}: {e}", path.display()),
    }
}

/// Runs one experiment by id (`e1`…`e22`), or `all`.
pub fn run(which: &str) -> bool {
    match which {
        "e1" => e01_placement::run(),
        "e2" => e02_referral_flow::run(),
        "e3" => e03_split_book::run(),
        "e4" => e04_reach_me::run(),
        "e5" => e05_patterns::run(),
        "e6" => e06_mdm::run(),
        "e7" => e07_scalability::run(),
        "e8" => e08_ldap_vs_xml::run(),
        "e9" => e09_policy::run(),
        "e10" => e10_push_pull::run(),
        "e11" => e11_sync::run(),
        "e12" => e12_hlr::run(),
        "e13" => e13_containment::run(),
        "e14" => e14_cache::run(),
        "e15" => e15_reliability::run(),
        "e16" => e16_registry_scale::run(),
        "e17" => e17_shards::run(),
        "e18" => e18_observability::run(),
        "e19" => e19_xml_hotpath::run(),
        "e20" => e20_overload::run(),
        "e21" => e21_fanout::run(),
        "e22" => e22_sync_storm::run(),
        "all" => {
            for i in 1..=22 {
                run(&format!("e{i}"));
            }
        }
        _ => return false,
    }
    true
}
