//! E7 — §5.3 scalability: "GUPster does not store any data … and
//! expects very little overhead". Measures registry lookup throughput
//! as the population grows, the GUPster-mediated vs. direct-fetch
//! overhead ratio, and the spurious-query filter.

use std::time::Instant;

use gupster_core::fetch_merge;
use gupster_policy::{Purpose, WeekTime};
use gupster_xml::MergeKeys;
use gupster_xpath::Path;

use crate::table::{f2, print_table};
use crate::workload::{build_federation, rng, user_id, Zipf};
use gupster_rng::Rng;

/// Runs the experiment.
pub fn run() {
    // Throughput vs. population.
    let mut rows = Vec::new();
    for n_users in [1_000usize, 10_000, 100_000] {
        let mut f = build_federation(n_users, 8, 3);
        let zipf = Zipf::new(n_users, 0.99);
        let mut r = rng(11);
        const OPS: usize = 20_000;
        let reqs: Vec<(String, Path)> = (0..OPS)
            .map(|_| {
                let u = user_id(zipf.sample(&mut r));
                let component = ["address-book", "presence", "identity", "devices"]
                    [r.gen_range(0..4)];
                let p = Path::parse(&format!("/user[@id='{u}']/{component}")).expect("static");
                (u, p)
            })
            .collect();
        let t0 = Instant::now();
        let mut issued = 0u64;
        for (u, p) in &reqs {
            if f.gupster.lookup(u, p, u, Purpose::Query, WeekTime::at(0, 12, 0), 0).is_ok() {
                issued += 1;
            }
        }
        let dt = t0.elapsed();
        let kops = issued as f64 / dt.as_secs_f64() / 1000.0;
        let regs = f.gupster.stats.registrations;
        rows.push(vec![
            n_users.to_string(),
            regs.to_string(),
            format!("{kops:.0} kops/s"),
            format!("{:.1}µs", dt.as_micros() as f64 / issued as f64),
        ]);
    }
    print_table(
        "E7 / §5.3 — registry lookup throughput vs. population (Zipf 0.99)",
        &["users", "registrations", "lookup throughput", "mean lookup latency"],
        &rows,
    );

    // Mediated vs. direct overhead.
    let mut f = build_federation(10_000, 8, 10);
    let keys = MergeKeys::new().with_key("item", "id");
    let u = user_id(42);
    let req = Path::parse(&format!("/user[@id='{u}']/address-book")).expect("static");
    const TRIALS: usize = 2_000;

    let out = f
        .gupster
        .lookup(&u, &req, &u, Purpose::Query, WeekTime::at(0, 12, 0), 0)
        .expect("covered");
    let store_id = out.referral.entries[0].store.clone();

    let t0 = Instant::now();
    for _ in 0..TRIALS {
        let store = f.pool.get(&store_id).expect("exists");
        let r = store.query(&req).expect("queries");
        assert_eq!(r.len(), 1);
    }
    let direct = t0.elapsed();

    let signer = f.gupster.signer();
    let t1 = Instant::now();
    for i in 0..TRIALS {
        let out = f
            .gupster
            .lookup(&u, &req, &u, Purpose::Query, WeekTime::at(0, 12, 0), i as u64)
            .expect("covered");
        let r = fetch_merge(&f.pool, &out.referral, &signer, i as u64, &keys).expect("fetches");
        assert_eq!(r.len(), 1);
    }
    let mediated = t1.elapsed();
    let overhead = mediated.as_secs_f64() / direct.as_secs_f64();

    print_table(
        "E7 — GUPster-mediated fetch vs. direct store fetch (10k users, 10-entry books)",
        &["mode", "total (2000 ops)", "per op"],
        &[
            vec![
                "direct store query".into(),
                format!("{direct:?}"),
                format!("{:.1}µs", direct.as_micros() as f64 / TRIALS as f64),
            ],
            vec![
                "GUPster lookup + token + fetch + merge".into(),
                format!("{mediated:?}"),
                format!("{:.1}µs", mediated.as_micros() as f64 / TRIALS as f64),
            ],
            vec!["overhead ratio".into(), f2(overhead), "-".into()],
        ],
    );

    // Spurious-query filter.
    let before = f.gupster.stats.spurious;
    let bad = [
        "/user/mp3-collection",
        "/account/balance",
        "/user/address-book/entry",
        "/user/presence/deep/nesting",
    ];
    for b in &bad {
        let _ = f.gupster.lookup(&u, &Path::parse(b).expect("parses"), &u, Purpose::Query, WeekTime::at(0, 12, 0), 0);
    }
    println!(
        "  spurious-query filter: {}/{} off-schema requests rejected before any store was touched",
        f.gupster.stats.spurious - before,
        bad.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_modest() {
        // The §5.3 claim: mediation adds little over direct access.
        let mut f = build_federation(1_000, 4, 5);
        let keys = MergeKeys::new().with_key("item", "id");
        let u = user_id(7);
        let req = Path::parse(&format!("/user[@id='{u}']/address-book")).unwrap();
        let out = f
            .gupster
            .lookup(&u, &req, &u, Purpose::Query, WeekTime::at(0, 12, 0), 0)
            .unwrap();
        let signer = f.gupster.signer();
        let r = fetch_merge(&f.pool, &out.referral, &signer, 0, &keys).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].children_named("item").count(), 5);
    }
}
