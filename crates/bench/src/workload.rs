//! Workload generation: federations of users, stores and coverage, plus
//! access-skew samplers.

use gupster_rng::{Rng, SeedableRng, StdRng};

use gupster_core::{Gupster, StorePool};
use gupster_schema::{gup_schema, ProfileBuilder};
use gupster_store::{DataStore, StoreId, XmlStore};
use gupster_xml::Element;
use gupster_xpath::Path;

/// A ready-to-query federation: a GUPster server, live stores and the
/// user population.
pub struct Federation {
    /// The meta-data server.
    pub gupster: Gupster,
    /// The data stores.
    pub pool: StorePool,
    /// All user ids.
    pub users: Vec<String>,
    /// The portal store ids.
    pub portals: Vec<StoreId>,
    /// The carrier store id.
    pub carrier: StoreId,
}

/// User id for index `i`.
pub fn user_id(i: usize) -> String {
    format!("user{i:07}")
}

/// Builds a profile document for a user with `contacts` address-book
/// entries.
pub fn profile_with_contacts(user: &str, contacts: usize) -> Element {
    let mut b = ProfileBuilder::new(user)
        .identity(&format!("User {user}"), &format!("{user}@example.com"))
        .presence("online")
        .device("d1", "phone", "cell", Some("908-555-0100"));
    for c in 0..contacts {
        let kind = if c % 3 == 0 { "corporate" } else { "personal" };
        b = b.contact(kind, &format!("Contact {c}"), &format!("908-555-{c:04}"));
    }
    b.build()
}

/// Builds a federation of `n_users` users spread over `n_portals`
/// portal stores plus one wireless-carrier store. Every user's
/// address-book/identity/calendar live at their portal; presence and
/// devices live at the carrier. Coverage is registered accordingly.
pub fn build_federation(n_users: usize, n_portals: usize, contacts_per_user: usize) -> Federation {
    let mut gupster = Gupster::new(gup_schema(), b"bench-key");
    let mut portals: Vec<XmlStore> = (0..n_portals.max(1))
        .map(|i| XmlStore::new(format!("gup.portal{i}.com")))
        .collect();
    let mut carrier = XmlStore::new("gup.carrier.com");
    let mut users = Vec::with_capacity(n_users);

    for i in 0..n_users {
        let user = user_id(i);
        let portal_idx = i % portals.len();
        let doc = profile_with_contacts(&user, contacts_per_user);

        // Split the document: book+identity at the portal, presence+
        // devices at the carrier.
        let mut portal_doc = Element::new("user").with_attr("id", user.clone());
        let mut carrier_doc = Element::new("user").with_attr("id", user.clone());
        for child in doc.child_elements() {
            match child.name.as_str() {
                "presence" | "devices" => carrier_doc.push_child(child.clone()),
                _ => portal_doc.push_child(child.clone()),
            }
        }
        portals[portal_idx].put_profile(portal_doc).expect("has id");
        carrier.put_profile(carrier_doc).expect("has id");

        let pid = StoreId::new(format!("gup.portal{portal_idx}.com"));
        let cid = StoreId::new("gup.carrier.com");
        for (path, store) in [
            (format!("/user[@id='{user}']/address-book"), pid.clone()),
            (format!("/user[@id='{user}']/identity"), pid.clone()),
            (format!("/user[@id='{user}']/presence"), cid.clone()),
            (format!("/user[@id='{user}']/devices"), cid),
        ] {
            gupster
                .register_component(&user, Path::parse(&path).expect("static"), store)
                .expect("schema-valid");
        }
        users.push(user);
    }

    for p in &mut portals {
        p.drain_events();
    }
    carrier.drain_events();

    let portal_ids: Vec<StoreId> =
        (0..portals.len()).map(|i| StoreId::new(format!("gup.portal{i}.com"))).collect();
    let mut pool = StorePool::new();
    for p in portals {
        pool.add(Box::new(p));
    }
    let carrier_id = StoreId::new("gup.carrier.com");
    pool.add(Box::new(carrier));

    Federation { gupster, pool, users, portals: portal_ids, carrier: carrier_id }
}

/// A Zipf-distributed sampler over `0..n` with skew `theta`
/// (theta → 0 is uniform; 0.99 is the YCSB default hot-spot skew).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf: weights }
    }

    /// Samples an index in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A seeded RNG for reproducible experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a social-graph-shaped watcher assignment: `n_subs`
/// subscriptions land on `n_owners` owners with Zipf-skewed popularity
/// (`theta` ≈ 1 gives hub users watched by a large share of the
/// population, per the social-overlay stress shape motivating E21).
/// Returns the owner index of each subscription.
pub fn social_watchers(n_owners: usize, n_subs: usize, theta: f64, r: &mut StdRng) -> Vec<usize> {
    let zipf = Zipf::new(n_owners, theta);
    (0..n_subs).map(|_| zipf.sample(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_policy::{Purpose, WeekTime};

    #[test]
    fn federation_answers_lookups() {
        let mut f = build_federation(10, 2, 5);
        assert_eq!(f.users.len(), 10);
        let u = f.users[3].clone();
        let req = Path::parse(&format!("/user[@id='{u}']/address-book")).unwrap();
        let out = f
            .gupster
            .lookup(&u, &req, &u, Purpose::Query, WeekTime::at(0, 12, 0), 0)
            .unwrap();
        assert_eq!(out.referral.entries.len(), 1);
        let store = f.pool.get(&out.referral.entries[0].store).unwrap();
        let frags = store.query(&out.referral.entries[0].path).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].children_named("item").count(), 5);
    }

    #[test]
    fn presence_lives_at_carrier() {
        let mut f = build_federation(4, 2, 1);
        let u = f.users[0].clone();
        let req = Path::parse(&format!("/user[@id='{u}']/presence")).unwrap();
        let out = f
            .gupster
            .lookup(&u, &req, &u, Purpose::Query, WeekTime::at(0, 12, 0), 0)
            .unwrap();
        assert_eq!(out.referral.entries[0].store, f.carrier);
    }

    #[test]
    fn zipf_skews_toward_head() {
        let z = Zipf::new(1000, 0.99);
        let mut r = rng(7);
        let mut head = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if z.sample(&mut r) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the top 10% draws well over half the accesses.
        assert!(head > N / 2, "{head}");
        // Uniform-ish check.
        let z0 = Zipf::new(1000, 0.0);
        let mut head0 = 0;
        for _ in 0..N {
            if z0.sample(&mut r) < 100 {
                head0 += 1;
            }
        }
        assert!(head0 < N / 5, "{head0}");
    }
}
