//! # gupster-bench
//!
//! Workload generators, a table printer and the per-experiment harness
//! that regenerates every evaluation artifact listed in DESIGN.md
//! (experiments E1–E16). Run `cargo run -p gupster-bench --bin
//! experiments -- all` to reproduce the full suite; see EXPERIMENTS.md
//! for the paper-vs-measured record.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod benchjson;
pub mod experiments;
pub mod microbench;
pub mod table;
pub mod workload;
