//! The experiment runner: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p gupster-bench --bin experiments -- all
//! cargo run --release -p gupster-bench --bin experiments -- e5 e10
//! cargo run --release -p gupster-bench --bin experiments -- --trace-out traces.jsonl e2 e5
//! ```
//!
//! `--trace-out <path>` additionally writes every span recorded by the
//! instrumented experiments (e2, e5, e14) to `path` as JSON lines; the
//! printed tables are unchanged.

use gupster_bench::experiments;

fn usage() -> ! {
    eprintln!("usage: experiments [--trace-out <path>] <e1..e17 | all>...");
    std::process::exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut picks: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == "--trace-out" {
            let Some(path) = raw.get(i + 1) else {
                eprintln!("--trace-out needs a file argument");
                usage();
            };
            experiments::set_trace_out(path.into());
            i += 2;
        } else {
            picks.push(raw[i].clone());
            i += 1;
        }
    }
    if picks.is_empty() {
        usage();
    }
    for a in &picks {
        if !experiments::run(a) {
            eprintln!("unknown experiment '{a}' (expected e1..e17 or all)");
            std::process::exit(2);
        }
    }
}
