//! The experiment runner: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p gupster-bench --bin experiments -- all
//! cargo run --release -p gupster-bench --bin experiments -- e5 e10
//! cargo run --release -p gupster-bench --bin experiments -- --trace-out traces.jsonl e2 e5
//! cargo run --release -p gupster-bench --bin experiments -- dashboard OBS_snapshot.json
//! ```
//!
//! `--trace-out <path>` additionally writes every span recorded by the
//! instrumented experiments (e2, e5, e11, e14, e15) to `path` as JSON
//! lines; the printed tables are unchanged.
//!
//! `dashboard <snapshot.json>` re-renders an `OBS_snapshot.json`
//! written by E18 as the text dashboard, without re-running anything.

use gupster_bench::experiments;
use gupster_telemetry::ObsSnapshot;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--trace-out <path>] <e1..e22 | all>...\n\
         \x20      experiments dashboard <snapshot.json>"
    );
    std::process::exit(2);
}

fn render_dashboard(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("dashboard: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let snap = ObsSnapshot::parse_json(&text).unwrap_or_else(|e| {
        eprintln!("dashboard: cannot parse {path}: {e}");
        std::process::exit(2);
    });
    print!("{}", snap.render_dashboard());
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("dashboard") {
        let Some(path) = raw.get(1) else {
            eprintln!("dashboard needs a snapshot file argument");
            usage();
        };
        render_dashboard(path);
        return;
    }
    let mut picks: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == "--trace-out" {
            let Some(path) = raw.get(i + 1) else {
                eprintln!("--trace-out needs a file argument");
                usage();
            };
            experiments::set_trace_out(path.into());
            i += 2;
        } else {
            picks.push(raw[i].clone());
            i += 1;
        }
    }
    if picks.is_empty() {
        usage();
    }
    for a in &picks {
        if !experiments::run(a) {
            eprintln!("unknown experiment '{a}' (expected e1..e22 or all)");
            std::process::exit(2);
        }
    }
}
