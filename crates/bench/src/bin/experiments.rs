//! The experiment runner: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p gupster-bench --bin experiments -- all
//! cargo run --release -p gupster-bench --bin experiments -- e5 e10
//! ```

use gupster_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <e1..e14 | all>...");
        std::process::exit(2);
    }
    for a in &args {
        if !experiments::run(a) {
            eprintln!("unknown experiment '{a}' (expected e1..e14 or all)");
            std::process::exit(2);
        }
    }
}
