//! The CI microbench gate: compares a fresh `BENCH_registry.json`
//! against the checked-in baseline and fails (exit 1) when simulated
//! referral-path throughput regresses by more than 15% on any row.
//!
//! ```text
//! GUPSTER_E16_QUICK=1 GUPSTER_BENCH_OUT=/tmp/fresh.json \
//!     cargo run --release -p gupster-bench --bin experiments -- e16
//! cargo run --release -p gupster-bench --bin bench_compare -- \
//!     BENCH_registry.json /tmp/fresh.json
//! ```
//!
//! Rows are matched on `(kind, scale)`; baseline rows absent from the
//! fresh run (the full sweep's 100k/1M rows when CI runs the quick
//! sweep) are skipped, as are rows without a simulated measurement.
//! Only `indexed_sim_ops` is gated — it derives from the deterministic
//! stage cost model, so the threshold never flakes on machine speed.
//!
//! `BENCH_shards.json` (E17) rides the same row gate plus one extra
//! check: the *scaling ratio* (`indexed_sim_ops / naive_sim_ops`, i.e.
//! sharded throughput over the 1-shard run) at the widest common shard
//! count must stay within 15% of the baseline ratio — a change can
//! keep absolute throughput while quietly flattening the scaling
//! curve, and this catches that.
//!
//! `BENCH_overload.json` (E20) also rides the row gate plus two extra
//! checks: the goodput *knee point* (peak `indexed_sim_ops` across the
//! load sweep) must stay within 15% of the baseline knee, and the
//! call-class p99 at every load point at or below saturation must be
//! inside the simulated 256µs call-setup budget.
//!
//! `BENCH_subs.json` (E21) rides the row gate plus two absolute
//! checks: every `subs` row must keep the index-vs-naive simulated
//! match speedup at or above 10×, and every `fanout` row's coalesced
//! message pairs per staged notification must stay at or below the
//! 0.5 ceiling — both scale-independent, so the quick CI sweep gates
//! them at its own sizes.
//!
//! `BENCH_sync.json` (E22) rides the row gate plus two absolute
//! checks: every `sync` row at 10k+ edits must keep the delta session
//! at or above 5× the naive pairwise session's simulated throughput,
//! and must ship at least 3× fewer bytes than full-path framing.
//!
//! `--slo <fresh_slo.json> [baseline_slo.json]` gates E18's
//! `BENCH_slo.json` instead: every objective must hold with the
//! verdict re-derived from the recorded observations (p99 within
//! budget, availability at target, burn rate ≤ 1.0), and with a
//! baseline no burn rate may grow past 2× its baseline value.

use gupster_bench::benchjson::{parse, BenchRow};
use gupster_telemetry::slo::{parse_slo_json, SloOutcome};

/// Allowed fraction of baseline throughput before the gate trips.
const FLOOR: f64 = 0.85;
/// Allowed growth of an SLO burn rate over its baseline before the
/// `--slo` gate trips (on top of the hard burn ≤ 1.0 verdict).
const BURN_GROWTH: f64 = 2.0;

fn load(path: &str) -> Vec<BenchRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

/// Loads a `BENCH_slo.json`. `parse_slo_json` re-derives every `ok`
/// flag from the recorded observations, so a stale or tampered flag in
/// the file cannot pass the gate.
fn load_slo(path: &str) -> Vec<SloOutcome> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let (outcomes, _) = parse_slo_json(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot parse {path}: {e}");
        std::process::exit(2);
    });
    if outcomes.is_empty() {
        eprintln!("bench_compare: {path} has no SLO rows");
        std::process::exit(2);
    }
    outcomes
}

/// The `--slo` gate: every objective in the fresh run must hold
/// (re-derived p99 ≤ budget, availability ≥ target, burn ≤ 1.0); with
/// a baseline, a burn rate may also not grow past `BURN_GROWTH`× its
/// baseline value — a run can stay under budget while quietly eating
/// it, and this catches that.
fn run_slo_gate(fresh_path: &str, baseline_path: Option<&str>) -> ! {
    let fresh = load_slo(fresh_path);
    let baseline = baseline_path.map(load_slo);
    let mut failed = 0;
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>13} {:>8}  verdict",
        "objective", "events", "p99", "budget", "availability", "burn"
    );
    for o in &fresh {
        let mut verdicts = Vec::new();
        if !o.ok {
            verdicts.push("OBJECTIVE VIOLATED".to_string());
        }
        if let Some(base) = baseline.as_ref().and_then(|b| {
            b.iter().find(|x| x.spec.name == o.spec.name)
        }) {
            // Only meaningful once the baseline burn is visible above
            // rounding; a 0.00 → 0.01 step is not a regression.
            if base.burn_rate > 0.05 && o.burn_rate > base.burn_rate * BURN_GROWTH {
                failed += 1;
                verdicts.push(format!(
                    "BURN REGRESSION ({:.2} vs baseline {:.2})",
                    o.burn_rate, base.burn_rate
                ));
            }
        }
        if !o.ok {
            failed += 1;
        }
        let verdict = if verdicts.is_empty() { "ok".to_string() } else { verdicts.join("; ") };
        println!(
            "{:<22} {:>9} {:>12} {:>12} {:>12.4}% {:>8.2}  {verdict}",
            o.spec.name,
            o.count,
            o.p99.to_string(),
            if o.spec.p99_budget.0 == 0 { "-".to_string() } else { o.spec.p99_budget.to_string() },
            o.availability * 100.0,
            o.burn_rate,
        );
    }
    if failed > 0 {
        eprintln!("bench_compare: {failed} SLO check(s) failed in {fresh_path}");
        std::process::exit(1);
    }
    println!("bench_compare: all {} SLOs hold in {fresh_path}", fresh.len());
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--slo") {
        match &args[1..] {
            [fresh] => run_slo_gate(fresh, None),
            [fresh, baseline] => run_slo_gate(fresh, Some(baseline)),
            _ => {
                eprintln!("usage: bench_compare --slo <fresh_slo.json> [baseline_slo.json]");
                std::process::exit(2);
            }
        }
    }
    let [baseline_path, fresh_path] = &args[..] else {
        eprintln!(
            "usage: bench_compare <baseline.json> <fresh.json>\n\
             \x20      bench_compare --slo <fresh_slo.json> [baseline_slo.json]"
        );
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    if fresh.is_empty() {
        eprintln!("bench_compare: {fresh_path} has no rows");
        std::process::exit(2);
    }

    let mut compared = 0;
    let mut failed = 0;
    println!("{:<10} {:>9} {:>18} {:>18} {:>8}  verdict", "kind", "scale", "baseline sim ops", "fresh sim ops", "ratio");
    for b in &baseline {
        if b.indexed_sim_ops <= 0.0 {
            continue;
        }
        let Some(f) = fresh.iter().find(|f| f.kind == b.kind && f.scale == b.scale) else {
            println!("{:<10} {:>9} {:>18.1} {:>18} {:>8}  skipped (not in fresh run)", b.kind, b.scale, b.indexed_sim_ops, "-", "-");
            continue;
        };
        if f.indexed_sim_ops <= 0.0 {
            continue;
        }
        compared += 1;
        let ratio = f.indexed_sim_ops / b.indexed_sim_ops;
        let ok = ratio >= FLOOR;
        if !ok {
            failed += 1;
        }
        println!(
            "{:<10} {:>9} {:>18.1} {:>18.1} {:>7.2}x  {}",
            b.kind,
            b.scale,
            b.indexed_sim_ops,
            f.indexed_sim_ops,
            ratio,
            if ok { "ok" } else { "REGRESSION (>15% below baseline)" }
        );
    }
    if compared == 0 {
        eprintln!("bench_compare: no comparable rows between {baseline_path} and {fresh_path}");
        std::process::exit(2);
    }
    failed += check_scaling(&baseline, &fresh);
    failed += check_overload(&baseline, &fresh);
    failed += check_subs(&fresh);
    failed += check_sync(&fresh);
    if failed > 0 {
        eprintln!("bench_compare: {failed}/{compared} rows regressed past the {:.0}% floor", FLOOR * 100.0);
        std::process::exit(1);
    }
    println!("bench_compare: {compared} rows within {:.0}% of baseline", FLOOR * 100.0);
}

/// Simulated call-path p99 budget for E20 `overload` rows at or below
/// saturation (`scale` ≤ 100); mirrors `CALL_P99_BUDGET` in the
/// experiment itself.
const CALL_P99_BUDGET_US: f64 = 256.0;

/// The E20 overload gate, on top of the per-row goodput floor:
///
/// 1. the *knee point* — peak goodput (`indexed_sim_ops`) across the
///    whole sweep — must stay within the floor of the baseline's knee;
///    a change can keep every individual row above 85% while still
///    shaving the plateau, and this catches that;
/// 2. at every fresh load point at or below saturation (`scale` ≤
///    100), the call-class p99 (`mean_candidates`, µs) must be inside
///    the simulated 256µs call-setup budget — an absolute SLO, not a
///    relative one, so it holds even on a fresh baseline.
///
/// Returns the number of failures (0 when neither file carries
/// `overload` rows).
fn check_overload(baseline: &[BenchRow], fresh: &[BenchRow]) -> usize {
    let knee = |rows: &[BenchRow]| -> Option<f64> {
        rows.iter()
            .filter(|r| r.kind == "overload" && r.indexed_sim_ops > 0.0)
            .map(|r| r.indexed_sim_ops)
            .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))))
    };
    let mut failed = 0;
    for f in fresh.iter().filter(|f| f.kind == "overload" && f.scale <= 100) {
        let ok = f.mean_candidates <= CALL_P99_BUDGET_US;
        if !ok {
            failed += 1;
        }
        println!(
            "overload call p99 @ {:>3}% load: {:.0}us (budget {CALL_P99_BUDGET_US:.0}us)  {}",
            f.scale,
            f.mean_candidates,
            if ok { "ok" } else { "SLO BREACH (call path over budget below saturation)" }
        );
    }
    if let (Some(base), Some(new)) = (knee(baseline), knee(fresh)) {
        let ratio = new / base;
        let ok = ratio >= FLOOR;
        if !ok {
            failed += 1;
        }
        println!(
            "overload knee: baseline {base:.0}/s, fresh {new:.0}/s ({ratio:.2} of baseline)  {}",
            if ok { "ok" } else { "REGRESSION (goodput plateau dropped >15%)" }
        );
    }
    failed
}

/// Simulated index-vs-naive match speedup floor for E21 `subs` rows;
/// mirrors `SPEEDUP_FLOOR` in the experiment itself.
const SUBS_SPEEDUP_FLOOR: f64 = 10.0;
/// Ceiling on coalesced message pairs per staged notification for E21
/// `fanout` rows; mirrors `MPN_CEILING` in the experiment.
const FANOUT_MPN_CEILING: f64 = 0.5;

/// The E21 fanout gate, on top of the per-row throughput floor. Both
/// checks are absolute (like the E20 p99 SLO), so they hold at the
/// quick sweep's scales too:
///
/// 1. every `subs` row must keep the inverted index at or above
///    `SUBS_SPEEDUP_FLOOR`× the naive matcher's simulated throughput;
/// 2. every `fanout` row's coalesced message pairs per staged
///    notification (`mean_candidates`) must stay at or below
///    `FANOUT_MPN_CEILING` — coalescing quietly turned off would send
///    one pair per notification (1.0) and trip this.
///
/// Returns the number of failures (0 when the fresh file carries no
/// `subs`/`fanout` rows).
fn check_subs(fresh: &[BenchRow]) -> usize {
    let mut failed = 0;
    for f in fresh.iter().filter(|f| f.kind == "subs" && f.naive_sim_ops > 0.0) {
        let speedup = f.indexed_sim_ops / f.naive_sim_ops;
        let ok = speedup >= SUBS_SPEEDUP_FLOOR;
        if !ok {
            failed += 1;
        }
        println!(
            "subs speedup @ {:>7} subs: {speedup:.1}x (floor {SUBS_SPEEDUP_FLOOR:.0}x)  {}",
            f.scale,
            if ok { "ok" } else { "REGRESSION (index speedup under the floor)" }
        );
    }
    for f in fresh.iter().filter(|f| f.kind == "fanout") {
        let ok = f.mean_candidates <= FANOUT_MPN_CEILING;
        if !ok {
            failed += 1;
        }
        println!(
            "fanout pairs/notification @ {:>7} watchers: {:.2} (ceiling {FANOUT_MPN_CEILING})  {}",
            f.scale,
            f.mean_candidates,
            if ok { "ok" } else { "REGRESSION (delivery no longer coalesces)" }
        );
    }
    failed
}

/// Simulated delta-vs-naive sync-session speedup floor for E22 `sync`
/// rows at or above `SYNC_GATE_SCALE` edits; mirrors `SPEEDUP_FLOOR`
/// in the experiment itself.
const SYNC_SPEEDUP_FLOOR: f64 = 5.0;
/// Floor on the naive/delta bytes-on-the-wire ratio (`mean_candidates`
/// carries it) for the same rows; mirrors `BYTES_RATIO_FLOOR`.
const SYNC_BYTES_RATIO_FLOOR: f64 = 3.0;
/// Smallest storm the absolute sync floors apply to — tiny storms have
/// too little history for the pairwise scan to go quadratic, so only
/// the relative per-row gate covers them.
const SYNC_GATE_SCALE: u64 = 10_000;

/// The E22 sync gate, on top of the per-row throughput floor. Both
/// checks are absolute and mirror the experiment's in-run acceptance
/// asserts, so the quick CI sweep gates them at its own sizes:
///
/// 1. every `sync` row at or above `SYNC_GATE_SCALE` edits must keep
///    the delta session at or above `SYNC_SPEEDUP_FLOOR`× the naive
///    pairwise session's simulated throughput;
/// 2. the same rows must ship at least `SYNC_BYTES_RATIO_FLOOR`× fewer
///    bytes than the naive full-path framing — the dictionary codec
///    quietly turned off would push this toward 1.0 and trip here.
///
/// Returns the number of failures (0 when the fresh file carries no
/// `sync` rows).
fn check_sync(fresh: &[BenchRow]) -> usize {
    let mut failed = 0;
    for f in fresh.iter().filter(|f| {
        f.kind == "sync" && f.scale >= SYNC_GATE_SCALE && f.naive_sim_ops > 0.0
    }) {
        let speedup = f.indexed_sim_ops / f.naive_sim_ops;
        let ok = speedup >= SYNC_SPEEDUP_FLOOR;
        if !ok {
            failed += 1;
        }
        println!(
            "sync speedup @ {:>7} edits: {speedup:.1}x (floor {SYNC_SPEEDUP_FLOOR:.0}x)  {}",
            f.scale,
            if ok { "ok" } else { "REGRESSION (delta session speedup under the floor)" }
        );
        let bytes_ok = f.mean_candidates >= SYNC_BYTES_RATIO_FLOOR;
        if !bytes_ok {
            failed += 1;
        }
        println!(
            "sync bytes ratio @ {:>7} edits: {:.1}x (floor {SYNC_BYTES_RATIO_FLOOR:.0}x)  {}",
            f.scale,
            f.mean_candidates,
            if bytes_ok { "ok" } else { "REGRESSION (delta encoding no longer shrinks sessions)" }
        );
    }
    failed
}

/// The E17 shards gate: at the widest shard count present in both
/// files, the speedup over the 1-shard run must stay within the floor
/// of the baseline's speedup. Returns the number of failures (0 when
/// neither file carries `shards` rows).
fn check_scaling(baseline: &[BenchRow], fresh: &[BenchRow]) -> usize {
    let speedup_at_max = |rows: &[BenchRow], scale: u64| -> Option<f64> {
        let r = rows.iter().find(|r| r.kind == "shards" && r.scale == scale)?;
        if r.naive_sim_ops <= 0.0 {
            return None;
        }
        Some(r.indexed_sim_ops / r.naive_sim_ops)
    };
    let Some(scale) = baseline
        .iter()
        .filter(|b| {
            b.kind == "shards" && fresh.iter().any(|f| f.kind == "shards" && f.scale == b.scale)
        })
        .map(|b| b.scale)
        .max()
    else {
        return 0;
    };
    let (Some(base), Some(new)) = (speedup_at_max(baseline, scale), speedup_at_max(fresh, scale))
    else {
        return 0;
    };
    let ratio = new / base;
    let ok = ratio >= FLOOR;
    println!(
        "scaling @ {scale} shards: baseline {base:.2}x, fresh {new:.2}x ({ratio:.2} of baseline)  {}",
        if ok { "ok" } else { "REGRESSION (scaling curve flattened >15%)" }
    );
    usize::from(!ok)
}
