//! The CI microbench gate: compares a fresh `BENCH_registry.json`
//! against the checked-in baseline and fails (exit 1) when simulated
//! referral-path throughput regresses by more than 15% on any row.
//!
//! ```text
//! GUPSTER_E16_QUICK=1 GUPSTER_BENCH_OUT=/tmp/fresh.json \
//!     cargo run --release -p gupster-bench --bin experiments -- e16
//! cargo run --release -p gupster-bench --bin bench_compare -- \
//!     BENCH_registry.json /tmp/fresh.json
//! ```
//!
//! Rows are matched on `(kind, scale)`; baseline rows absent from the
//! fresh run (the full sweep's 100k/1M rows when CI runs the quick
//! sweep) are skipped, as are rows without a simulated measurement.
//! Only `indexed_sim_ops` is gated — it derives from the deterministic
//! stage cost model, so the threshold never flakes on machine speed.
//!
//! `BENCH_shards.json` (E17) rides the same row gate plus one extra
//! check: the *scaling ratio* (`indexed_sim_ops / naive_sim_ops`, i.e.
//! sharded throughput over the 1-shard run) at the widest common shard
//! count must stay within 15% of the baseline ratio — a change can
//! keep absolute throughput while quietly flattening the scaling
//! curve, and this catches that.

use gupster_bench::benchjson::{parse, BenchRow};

/// Allowed fraction of baseline throughput before the gate trips.
const FLOOR: f64 = 0.85;

fn load(path: &str) -> Vec<BenchRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    if fresh.is_empty() {
        eprintln!("bench_compare: {fresh_path} has no rows");
        std::process::exit(2);
    }

    let mut compared = 0;
    let mut failed = 0;
    println!("{:<10} {:>9} {:>18} {:>18} {:>8}  verdict", "kind", "scale", "baseline sim ops", "fresh sim ops", "ratio");
    for b in &baseline {
        if b.indexed_sim_ops <= 0.0 {
            continue;
        }
        let Some(f) = fresh.iter().find(|f| f.kind == b.kind && f.scale == b.scale) else {
            println!("{:<10} {:>9} {:>18.1} {:>18} {:>8}  skipped (not in fresh run)", b.kind, b.scale, b.indexed_sim_ops, "-", "-");
            continue;
        };
        if f.indexed_sim_ops <= 0.0 {
            continue;
        }
        compared += 1;
        let ratio = f.indexed_sim_ops / b.indexed_sim_ops;
        let ok = ratio >= FLOOR;
        if !ok {
            failed += 1;
        }
        println!(
            "{:<10} {:>9} {:>18.1} {:>18.1} {:>7.2}x  {}",
            b.kind,
            b.scale,
            b.indexed_sim_ops,
            f.indexed_sim_ops,
            ratio,
            if ok { "ok" } else { "REGRESSION (>15% below baseline)" }
        );
    }
    if compared == 0 {
        eprintln!("bench_compare: no comparable rows between {baseline_path} and {fresh_path}");
        std::process::exit(2);
    }
    failed += check_scaling(&baseline, &fresh);
    if failed > 0 {
        eprintln!("bench_compare: {failed}/{compared} rows regressed past the {:.0}% floor", FLOOR * 100.0);
        std::process::exit(1);
    }
    println!("bench_compare: {compared} rows within {:.0}% of baseline", FLOOR * 100.0);
}

/// The E17 shards gate: at the widest shard count present in both
/// files, the speedup over the 1-shard run must stay within the floor
/// of the baseline's speedup. Returns the number of failures (0 when
/// neither file carries `shards` rows).
fn check_scaling(baseline: &[BenchRow], fresh: &[BenchRow]) -> usize {
    let speedup_at_max = |rows: &[BenchRow], scale: u64| -> Option<f64> {
        let r = rows.iter().find(|r| r.kind == "shards" && r.scale == scale)?;
        if r.naive_sim_ops <= 0.0 {
            return None;
        }
        Some(r.indexed_sim_ops / r.naive_sim_ops)
    };
    let Some(scale) = baseline
        .iter()
        .filter(|b| {
            b.kind == "shards" && fresh.iter().any(|f| f.kind == "shards" && f.scale == b.scale)
        })
        .map(|b| b.scale)
        .max()
    else {
        return 0;
    };
    let (Some(base), Some(new)) = (speedup_at_max(baseline, scale), speedup_at_max(fresh, scale))
    else {
        return 0;
    };
    let ratio = new / base;
    let ok = ratio >= FLOOR;
    println!(
        "scaling @ {scale} shards: baseline {base:.2}x, fresh {new:.2}x ({ratio:.2} of baseline)  {}",
        if ok { "ok" } else { "REGRESSION (scaling curve flattened >15%)" }
    );
    usize::from(!ok)
}
