//! A minimal wall-clock micro-benchmark harness.
//!
//! The benches under `benches/` are plain `main()` binaries
//! (`harness = false`) built on this module: [`bench`] warms the body
//! up, sizes a measurement batch from the warm-up rate, and prints one
//! `ns/iter` line per benchmark. No statistics beyond the mean — these
//! exist to catch order-of-magnitude regressions and to be runnable in
//! a hermetic environment.
//!
//! ```text
//! cargo bench -p gupster-bench --bench registry
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARM_UP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(600);

/// Runs `body` repeatedly and prints its mean wall-clock cost. The
/// body's return value is passed through [`black_box`] so the work is
/// not optimized away.
pub fn bench<T>(name: &str, mut body: impl FnMut() -> T) {
    // Warm-up: run until the budget elapses, counting iterations to
    // estimate the per-iteration cost.
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < WARM_UP {
        black_box(body());
        warm_iters += 1;
    }
    let per_iter_ns =
        (WARM_UP.as_nanos() as u64 / warm_iters.max(1)).max(1);
    let iters = (MEASURE.as_nanos() as u64 / per_iter_ns).clamp(1, 100_000_000);

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(body());
    }
    let elapsed = t0.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {:>14}/iter  ({iters} iters)", fmt_ns(ns));
}

/// Prints the suite header (one per bench binary).
pub fn suite(title: &str) {
    println!("== {title} ==");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_ns;

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(950.0), "950 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
