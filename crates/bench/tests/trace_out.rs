//! The `--trace-out` contract: the instrumented experiments write valid
//! JSON-lines where every span carries a request id and the spans of
//! each request form a single rooted tree.

use std::collections::BTreeMap;

use gupster_bench::experiments;
use gupster_telemetry::{export, single_rooted_tree, Span};

#[test]
fn traced_experiments_write_rooted_trees() {
    let path = std::env::temp_dir().join(format!("gupster-traces-{}.jsonl", std::process::id()));
    experiments::set_trace_out(path.clone());
    // The three instrumented experiments, in one process so they share
    // the sink (set_trace_out is first-call-wins).
    assert!(experiments::run("e2"));
    assert!(experiments::run("e5"));
    assert!(experiments::run("e14"));

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let spans = export::parse(&text).expect("every line parses");
    assert!(!spans.is_empty(), "instrumented experiments must emit spans");

    let mut by_request: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for s in spans {
        by_request.entry(s.request.0).or_default().push(s);
    }
    // e2 alone contributes 200 requests; e5 and e14 add more.
    assert!(by_request.len() > 200, "expected many traced requests");
    for (request, spans) in &by_request {
        assert!(
            single_rooted_tree(spans),
            "request {request} is not a single rooted tree ({} spans)",
            spans.len()
        );
    }
    let _ = std::fs::remove_file(&path);
}
