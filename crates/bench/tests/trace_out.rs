//! The `--trace-out` contract: the instrumented experiments write valid
//! JSON-lines where every span carries a request id and the spans of
//! each request form a single rooted tree.

use std::collections::BTreeMap;

use gupster_bench::experiments;
use gupster_telemetry::{export, single_rooted_tree, Span};

#[test]
fn traced_experiments_write_rooted_trees() {
    let path = std::env::temp_dir().join(format!("gupster-traces-{}.jsonl", std::process::id()));
    experiments::set_trace_out(path.clone());
    // The instrumented experiments, in one process so they share the
    // sink (set_trace_out is first-call-wins). e15 contributes requests
    // that retried and fell back under injected faults.
    assert!(experiments::run("e2"));
    assert!(experiments::run("e5"));
    assert!(experiments::run("e14"));
    assert!(experiments::run("e15"));

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let spans = export::parse(&text).expect("every line parses");
    assert!(!spans.is_empty(), "instrumented experiments must emit spans");

    let mut by_request: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for s in spans {
        by_request.entry(s.request.0).or_default().push(s);
    }
    // e2 alone contributes 200 requests; e5 and e14 add more.
    assert!(by_request.len() > 200, "expected many traced requests");
    for (request, spans) in &by_request {
        assert!(
            single_rooted_tree(spans),
            "request {request} is not a single rooted tree ({} spans)",
            spans.len()
        );
    }

    // The resilience layer's contract: a request that retried or fell
    // back still exports as ONE rooted tree, with its backoff waits and
    // every pattern attempt nested under the `resilience.request` root.
    let degraded: Vec<&Vec<Span>> = by_request
        .values()
        .filter(|spans| {
            spans.iter().any(|s| {
                s.stage == gupster_telemetry::stage::RETRY_BACKOFF
                    || s.stage == gupster_telemetry::stage::FALLBACK
            })
        })
        .collect();
    assert!(
        !degraded.is_empty(),
        "e15's fault sweep must export at least one retried/fallback request"
    );
    for spans in degraded {
        let root = spans.iter().find(|s| s.parent.is_none()).expect("rooted");
        assert_eq!(root.stage, gupster_telemetry::stage::RESILIENCE_REQUEST);
        for s in spans.iter().filter(|s| {
            s.stage == gupster_telemetry::stage::RETRY_BACKOFF
                || s.stage == gupster_telemetry::stage::FALLBACK
                || s.stage.starts_with("pattern.")
        }) {
            assert_eq!(
                s.parent,
                Some(root.id),
                "{} must nest directly under the resilience root, not float ({s:?})",
                s.stage
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}
