//! Microbench for E13: XPath parse, eval, containment and overlap.

use gupster_bench::microbench::{bench, suite};
use gupster_schema::sample_profile;
use gupster_xpath::{contains, may_overlap, Path};

fn chain(depth: usize, preds: usize) -> Path {
    let mut s = String::new();
    for d in 0..depth {
        s.push('/');
        s.push_str(&format!("n{d}"));
        for p in 0..preds {
            s.push_str(&format!("[@a{p}='v{p}']"));
        }
    }
    Path::parse(&s).unwrap()
}

fn main() {
    suite("xpath");
    bench("xpath_parse_paper_expr", || {
        Path::parse("/user[@id='arnaud']/address-book/item[@type='personal']").unwrap()
    });

    let doc = sample_profile("arnaud");
    let paths = [
        ("presence", Path::parse("/user/presence").unwrap()),
        ("pred", Path::parse("/user/address-book/item[@type='corporate']/name").unwrap()),
        ("descendant", Path::parse("//phone").unwrap()),
    ];
    for (name, p) in &paths {
        bench(&format!("xpath_eval/{name}"), || p.select(&doc));
    }

    for depth in [4usize, 8, 16, 32] {
        let p = chain(depth, 2);
        let q = chain(depth, 0);
        bench(&format!("xpath_containment/{depth}"), || {
            assert!(contains(&p, &q));
        });
    }

    let a = Path::parse("/user[@id='a']/address-book/item[@type='personal']").unwrap();
    let b = Path::parse("/user[@id='a']/address-book").unwrap();
    bench("xpath_overlap_fig9", || {
        assert!(may_overlap(&a, &b));
    });
}
