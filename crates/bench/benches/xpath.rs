//! Criterion bench for E13: XPath parse, eval, containment and overlap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gupster_schema::sample_profile;
use gupster_xpath::{contains, may_overlap, Path};

fn chain(depth: usize, preds: usize) -> Path {
    let mut s = String::new();
    for d in 0..depth {
        s.push('/');
        s.push_str(&format!("n{d}"));
        for p in 0..preds {
            s.push_str(&format!("[@a{p}='v{p}']"));
        }
    }
    Path::parse(&s).unwrap()
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("xpath_parse_paper_expr", |b| {
        b.iter(|| {
            Path::parse("/user[@id='arnaud']/address-book/item[@type='personal']").unwrap()
        });
    });
}

fn bench_eval(c: &mut Criterion) {
    let doc = sample_profile("arnaud");
    let paths = [
        ("presence", Path::parse("/user/presence").unwrap()),
        ("pred", Path::parse("/user/address-book/item[@type='corporate']/name").unwrap()),
        ("descendant", Path::parse("//phone").unwrap()),
    ];
    let mut group = c.benchmark_group("xpath_eval");
    for (name, p) in &paths {
        group.bench_function(*name, |b| b.iter(|| p.select(&doc)));
    }
    group.finish();
}

fn bench_containment(c: &mut Criterion) {
    let mut group = c.benchmark_group("xpath_containment");
    for depth in [4usize, 8, 16, 32] {
        let p = chain(depth, 2);
        let q = chain(depth, 0);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                assert!(contains(&p, &q));
            })
        });
    }
    group.finish();
}

fn bench_overlap(c: &mut Criterion) {
    let a = Path::parse("/user[@id='a']/address-book/item[@type='personal']").unwrap();
    let b_ = Path::parse("/user[@id='a']/address-book").unwrap();
    c.bench_function("xpath_overlap_fig9", |b| {
        b.iter(|| {
            assert!(may_overlap(&a, &b_));
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_parse, bench_eval, bench_containment, bench_overlap);
criterion_main!(benches);
