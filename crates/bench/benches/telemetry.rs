//! Microbench for the telemetry hot path (DESIGN.md §9): interned
//! stage recording vs. owned-label batches, and the tracer lifecycle
//! that every sharded request pays.
//!
//! The interesting comparison is the first two rows: `record_stages`
//! re-interns each `String` label on every call, while
//! `record_stage_ids` feeds pre-interned [`StageId`]s straight into
//! the histogram vector — the difference is the per-span win of
//! keeping `StageId` in the span hot path instead of `String`.

use std::sync::Arc;

use gupster_bench::microbench::{bench, suite};
use gupster_telemetry::{stage, SimTime, StageId, StageInterner, TelemetryHub};

const LABELS: [&str; 8] = [
    stage::SHARD_REQUEST,
    stage::REGISTRY_LOOKUP,
    stage::COVERAGE_MATCH,
    stage::POLICY_DECIDE,
    stage::QUERY_REWRITE,
    stage::TOKEN_SIGN,
    stage::STORE_FETCH,
    stage::XML_MERGE,
];

fn main() {
    suite("telemetry");

    let hub = TelemetryHub::new();
    let strings: Vec<(String, SimTime)> = LABELS
        .iter()
        .enumerate()
        .map(|(i, l)| (l.to_string(), SimTime::micros(i as u64 + 1)))
        .collect();
    bench("record_stages_string_batch(8)", || hub.record_stages(&strings));

    let ids: Vec<(StageId, SimTime)> = LABELS
        .iter()
        .enumerate()
        .map(|(i, l)| (StageInterner::intern(l), SimTime::micros(i as u64 + 1)))
        .collect();
    bench("record_stage_ids_interned(8)", || hub.record_stage_ids(&ids));

    // The full per-request lifecycle at span limit 0 (histograms
    // only, the E17/E18 configuration): 8 spans open and close on the
    // interned RawSpan path without allocating a single label.
    let hub = Arc::new(TelemetryHub::new());
    hub.set_span_limit(0);
    bench("tracer_8span_drop_histograms_only", || {
        let mut t = hub.tracer(LABELS[0]);
        for l in &LABELS[1..] {
            t.span(l, SimTime::micros(3));
        }
    });

    // Same lifecycle with exemplar capture armed and every request in
    // the tail: adds the lazy Span materialization plus the sorted
    // top-k insert — the cost a p99 outlier pays, not the common case.
    let hub = Arc::new(TelemetryHub::new());
    hub.set_span_limit(0);
    hub.set_exemplar_policy(SimTime::ZERO, 8);
    bench("tracer_8span_drop_exemplified", || {
        let mut t = hub.tracer(LABELS[0]);
        for l in &LABELS[1..] {
            t.span(l, SimTime::micros(3));
        }
    });
}
