//! Criterion bench for E9: privacy-shield decisions and signed tokens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gupster_core::Signer;
use gupster_policy::{Condition, Pdp, PolicyRepository, RequestContext, Rule, WeekTime};
use gupster_xpath::Path;

fn repo_with(n: usize) -> PolicyRepository {
    let mut repo = PolicyRepository::new();
    let scopes = [
        "/user/presence",
        "/user/address-book",
        "/user/calendar",
        "/user/wallet",
        "/user/devices",
    ];
    for i in 0..n {
        repo.put(
            "alice",
            Rule::permit(
                &format!("r{i}"),
                Path::parse(scopes[i % scopes.len()]).unwrap(),
                Condition::parse(&format!(
                    "relationship='rel{}' and time in Mon-Fri 09:00-18:00",
                    i % 7
                ))
                .unwrap(),
            ),
        );
    }
    repo
}

fn bench_decide(c: &mut Criterion) {
    let pdp = Pdp::new();
    let path = Path::parse("/user/presence").unwrap();
    let ctx = RequestContext::query("rick", "rel3", WeekTime::at(1, 10, 0));
    let mut group = c.benchmark_group("pdp_decide");
    for n in [10usize, 100, 1_000, 10_000] {
        let repo = repo_with(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| pdp.decide(&repo, "alice", &path, &ctx))
        });
    }
    group.finish();
}

fn bench_condition_parse(c: &mut Criterion) {
    c.bench_function("condition_parse", |b| {
        b.iter(|| {
            Condition::parse("relationship='co-worker' and time in Mon-Fri 09:00-18:00").unwrap()
        })
    });
}

fn bench_token(c: &mut Criterion) {
    let signer = Signer::new(b"bench-key", 30);
    c.bench_function("token_sign", |b| {
        b.iter(|| signer.sign("alice", "rick", vec!["/user/presence".to_string()], 1))
    });
    let token = signer.sign("alice", "rick", vec!["/user/presence".to_string()], 1);
    c.bench_function("token_verify", |b| b.iter(|| signer.verify(&token, 1).unwrap()));
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_decide, bench_condition_parse, bench_token);
criterion_main!(benches);
