//! Microbench for E9: privacy-shield decisions and signed tokens.

use gupster_bench::microbench::{bench, suite};
use gupster_core::Signer;
use gupster_policy::{Condition, Pdp, PolicyRepository, RequestContext, Rule, WeekTime};
use gupster_xpath::Path;

fn repo_with(n: usize) -> PolicyRepository {
    let mut repo = PolicyRepository::new();
    let scopes = [
        "/user/presence",
        "/user/address-book",
        "/user/calendar",
        "/user/wallet",
        "/user/devices",
    ];
    for i in 0..n {
        repo.put(
            "alice",
            Rule::permit(
                &format!("r{i}"),
                Path::parse(scopes[i % scopes.len()]).unwrap(),
                Condition::parse(&format!(
                    "relationship='rel{}' and time in Mon-Fri 09:00-18:00",
                    i % 7
                ))
                .unwrap(),
            ),
        );
    }
    repo
}

fn main() {
    suite("policy");
    let pdp = Pdp::new();
    let path = Path::parse("/user/presence").unwrap();
    let ctx = RequestContext::query("rick", "rel3", WeekTime::at(1, 10, 0));
    for n in [10usize, 100, 1_000, 10_000] {
        let repo = repo_with(n);
        bench(&format!("pdp_decide/{n}"), || pdp.decide(&repo, "alice", &path, &ctx));
    }

    bench("condition_parse", || {
        Condition::parse("relationship='co-worker' and time in Mon-Fri 09:00-18:00").unwrap()
    });

    let signer = Signer::new(b"bench-key", 30);
    bench("token_sign", || signer.sign("alice", "rick", vec!["/user/presence".to_string()], 1));
    let token = signer.sign("alice", "rick", vec!["/user/presence".to_string()], 1);
    bench("token_verify", || signer.verify(&token, 1).unwrap());
}
