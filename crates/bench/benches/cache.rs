//! Microbench for E14: result-cache operations under skew.

use gupster_bench::microbench::{bench, suite};
use gupster_bench::workload::{rng, user_id, Zipf};
use gupster_core::cache::ResultCache;
use gupster_xml::Element;
use gupster_xpath::Path;

fn main() {
    suite("cache");
    let path = Path::parse("/user/presence").unwrap();
    let mut cache = ResultCache::new(1_000);
    let zipf = Zipf::new(10_000, 0.99);
    let mut r = rng(1);
    bench("cache_zipf_get_put", || {
        let u = user_id(zipf.sample(&mut r));
        if cache.get(&u, &path).is_none() {
            cache.put(&u, &path, vec![Element::new("presence").with_text("x")]);
        }
    });

    let book = Path::parse("/user/address-book").unwrap();
    let item = Path::parse("/user/address-book/item[@id='5']").unwrap();
    let mut cache = ResultCache::new(1_000);
    for i in 0..500 {
        cache.put(&user_id(i), &book, vec![Element::new("address-book")]);
    }
    bench("cache_invalidate_overlap", || cache.invalidate(&user_id(250), &item));
}
