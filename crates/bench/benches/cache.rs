//! Criterion bench for E14: result-cache operations under skew.

use criterion::{criterion_group, criterion_main, Criterion};
use gupster_bench::workload::{rng, user_id, Zipf};
use gupster_core::cache::ResultCache;
use gupster_xml::Element;
use gupster_xpath::Path;

fn bench_cache_mixed(c: &mut Criterion) {
    let path = Path::parse("/user/presence").unwrap();
    c.bench_function("cache_zipf_get_put", |b| {
        let mut cache = ResultCache::new(1_000);
        let zipf = Zipf::new(10_000, 0.99);
        let mut r = rng(1);
        b.iter(|| {
            let u = user_id(zipf.sample(&mut r));
            if cache.get(&u, &path).is_none() {
                cache.put(&u, &path, vec![Element::new("presence").with_text("x")]);
            }
        });
    });
}

fn bench_invalidate(c: &mut Criterion) {
    let book = Path::parse("/user/address-book").unwrap();
    let item = Path::parse("/user/address-book/item[@id='5']").unwrap();
    c.bench_function("cache_invalidate_overlap", |b| {
        let mut cache = ResultCache::new(1_000);
        for i in 0..500 {
            cache.put(&user_id(i), &book, vec![Element::new("address-book")]);
        }
        b.iter(|| cache.invalidate(&user_id(250), &item));
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_cache_mixed, bench_invalidate);
criterion_main!(benches);
