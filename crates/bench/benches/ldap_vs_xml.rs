//! Criterion bench for E8: roaming-blob updates vs. targeted XML
//! updates, and LDAP search vs. XPath selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gupster_bench::workload::profile_with_contacts;
use gupster_directory::{BlobKind, Directory, Dn, Entry, Filter, RoamingStore, Scope};
use gupster_store::{DataStore, UpdateOp, XmlStore};
use gupster_xpath::Path;

fn bench_update_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_entry_update");
    for n in [100usize, 1_000] {
        let doc = profile_with_contacts("alice", n);
        let blob = doc.child("address-book").unwrap().to_xml();
        group.bench_with_input(BenchmarkId::new("ldap_blob", n), &n, |b, _| {
            let mut store = RoamingStore::new("netscape");
            store.create_user("alice").unwrap();
            store.put_blob("alice", BlobKind::AddressBook, &blob).unwrap();
            b.iter(|| {
                store
                    .update_within_blob("alice", BlobKind::AddressBook, |s| {
                        s.replacen("Contact 1<", "Renamed<", 1)
                    })
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("gupster_xml", n), &n, |b, _| {
            let mut store = XmlStore::new("gup.yahoo.com");
            store.put_profile(doc.clone()).unwrap();
            let op = UpdateOp::SetText(
                Path::parse("/user/address-book/item[@id='2']/name").unwrap(),
                "Renamed".into(),
            );
            b.iter(|| store.update("alice", &op).unwrap());
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    // LDAP subtree search vs. XPath selection over comparable data.
    let mut dir = Directory::new();
    dir.add(Entry::new(Dn::parse("o=x").unwrap(), &["organization"]).with("o", "x")).unwrap();
    for i in 0..1_000 {
        dir.add(
            Entry::new(Dn::parse(&format!("cn=c{i},o=x")).unwrap(), &["person"])
                .with("cn", format!("c{i}"))
                .with("sn", format!("Contact {i}"))
                .with("telephoneNumber", format!("908-555-{i:04}")),
        )
        .unwrap();
    }
    let filter = Filter::parse("(telephoneNumber=908-555-0500)").unwrap();
    c.bench_function("ldap_subtree_search_1k", |b| {
        b.iter(|| dir.search(&Dn::parse("o=x").unwrap(), Scope::Subtree, &filter))
    });

    let mut store = XmlStore::new("s");
    store.put_profile(profile_with_contacts("alice", 1_000)).unwrap();
    let path = Path::parse("/user/address-book/item[phone='908-555-0500']").unwrap();
    c.bench_function("xpath_select_1k", |b| b.iter(|| store.query(&path).unwrap()));
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_update_paths, bench_search);
criterion_main!(benches);
