//! Microbench for E8: roaming-blob updates vs. targeted XML updates,
//! and LDAP search vs. XPath selection.

use gupster_bench::microbench::{bench, suite};
use gupster_bench::workload::profile_with_contacts;
use gupster_directory::{BlobKind, Directory, Dn, Entry, Filter, RoamingStore, Scope};
use gupster_store::{DataStore, UpdateOp, XmlStore};
use gupster_xpath::Path;

fn main() {
    suite("ldap_vs_xml");
    for n in [100usize, 1_000] {
        let doc = profile_with_contacts("alice", n);
        let blob = doc.child("address-book").unwrap().to_xml();

        let mut store = RoamingStore::new("netscape");
        store.create_user("alice").unwrap();
        store.put_blob("alice", BlobKind::AddressBook, &blob).unwrap();
        bench(&format!("one_entry_update/ldap_blob/{n}"), || {
            store
                .update_within_blob("alice", BlobKind::AddressBook, |s| {
                    s.replacen("Contact 1<", "Renamed<", 1)
                })
                .unwrap()
        });

        let mut store = XmlStore::new("gup.yahoo.com");
        store.put_profile(doc.clone()).unwrap();
        let op = UpdateOp::SetText(
            Path::parse("/user/address-book/item[@id='2']/name").unwrap(),
            "Renamed".into(),
        );
        bench(&format!("one_entry_update/gupster_xml/{n}"), || {
            store.update("alice", &op).unwrap()
        });
    }

    // LDAP subtree search vs. XPath selection over comparable data.
    let mut dir = Directory::new();
    dir.add(Entry::new(Dn::parse("o=x").unwrap(), &["organization"]).with("o", "x")).unwrap();
    for i in 0..1_000 {
        dir.add(
            Entry::new(Dn::parse(&format!("cn=c{i},o=x")).unwrap(), &["person"])
                .with("cn", format!("c{i}"))
                .with("sn", format!("Contact {i}"))
                .with("telephoneNumber", format!("908-555-{i:04}")),
        )
        .unwrap();
    }
    let filter = Filter::parse("(telephoneNumber=908-555-0500)").unwrap();
    bench("ldap_subtree_search_1k", || {
        dir.search(&Dn::parse("o=x").unwrap(), Scope::Subtree, &filter)
    });

    let mut store = XmlStore::new("s");
    store.put_profile(profile_with_contacts("alice", 1_000)).unwrap();
    let path = Path::parse("/user/address-book/item[phone='908-555-0500']").unwrap();
    bench("xpath_select_1k", || store.query(&path).unwrap());
}
