//! Microbench for E11: sync sessions and XML diff/merge.

use gupster_bench::microbench::{bench, suite};
use gupster_sync::{two_way_sync, ReconcilePolicy, Replica};
use gupster_xml::{diff, merge, EditOp, Element, MergeKeys, NodePath};

fn book(n: usize) -> Element {
    let mut b = Element::new("address-book");
    for i in 0..n {
        b.push_child(
            Element::new("item")
                .with_attr("id", i.to_string())
                .with_child(Element::new("name").with_text(format!("Contact {i}")))
                .with_child(Element::new("phone").with_text(format!("908-555-{i:04}"))),
        );
    }
    b
}

fn main() {
    suite("sync");
    let keys = MergeKeys::new().with_key("item", "id");
    for n in [50usize, 500] {
        let base = book(n);
        let mut phone = Replica::new("phone", base.clone(), keys.clone());
        let mut portal = Replica::new("portal", base, keys.clone());
        two_way_sync(&mut phone, &mut portal, ReconcilePolicy::LastWriterWins).unwrap();
        let mut i = 0u32;
        bench(&format!("sync_one_edit/{n}"), || {
            i += 1;
            phone
                .edit(EditOp::SetText {
                    path: NodePath::root().keyed("item", "id", "1").child("name", 0),
                    text: format!("v{i}"),
                })
                .unwrap();
            two_way_sync(&mut phone, &mut portal, ReconcilePolicy::LastWriterWins).unwrap()
        });
    }

    let a = book(200);
    let mut b_ = a.clone();
    b_.child_elements_mut().nth(5).unwrap().set_attr("edited", "yes");
    bench("xml_diff_200_items", || diff(&a, &b_, &keys));
    let half1 = book(100);
    let mut half2 = Element::new("address-book");
    for i in 100..200 {
        half2.push_child(Element::new("item").with_attr("id", i.to_string()));
    }
    bench("xml_deep_union_200_items", || merge(&half1, &half2, &keys).unwrap());
}
