//! Criterion bench for E7: registry lookup / register / referral
//! pipeline throughput vs. population.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gupster_bench::workload::{build_federation, user_id};
use gupster_policy::{Purpose, WeekTime};
use gupster_xpath::Path;

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_lookup");
    for n_users in [1_000usize, 10_000, 100_000] {
        let mut f = build_federation(n_users, 8, 3);
        let u = user_id(n_users / 2);
        let req = Path::parse(&format!("/user[@id='{u}']/address-book")).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n_users), &n_users, |b, _| {
            let mut now = 0u64;
            b.iter(|| {
                now += 1;
                f.gupster
                    .lookup(&u, &req, &u, Purpose::Query, WeekTime::at(0, 12, 0), now)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_register(c: &mut Criterion) {
    c.bench_function("registry_register_unregister", |b| {
        let mut f = build_federation(1_000, 4, 1);
        let u = user_id(1);
        let path = Path::parse(&format!("/user[@id='{u}']/calendar")).unwrap();
        let store = gupster_store::StoreId::new("gup.extra.com");
        b.iter(|| {
            f.gupster.register_component(&u, path.clone(), store.clone()).unwrap();
            f.gupster.unregister_component(&u, &path, &store);
        });
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_lookup, bench_register);
criterion_main!(benches);
