//! Microbench for E7: registry lookup / register / referral pipeline
//! throughput vs. population.

use gupster_bench::microbench::{bench, suite};
use gupster_bench::workload::{build_federation, user_id};
use gupster_policy::{Purpose, WeekTime};
use gupster_xpath::Path;

fn main() {
    suite("registry");
    for n_users in [1_000usize, 10_000, 100_000] {
        let mut f = build_federation(n_users, 8, 3);
        let u = user_id(n_users / 2);
        let req = Path::parse(&format!("/user[@id='{u}']/address-book")).unwrap();
        let mut now = 0u64;
        bench(&format!("registry_lookup/{n_users}"), || {
            now += 1;
            f.gupster.lookup(&u, &req, &u, Purpose::Query, WeekTime::at(0, 12, 0), now).unwrap()
        });
    }

    let mut f = build_federation(1_000, 4, 1);
    let u = user_id(1);
    let path = Path::parse(&format!("/user[@id='{u}']/calendar")).unwrap();
    let store = gupster_store::StoreId::new("gup.extra.com");
    bench("registry_register_unregister", || {
        f.gupster.register_component(&u, path.clone(), store.clone()).unwrap();
        f.gupster.unregister_component(&u, &path, &store);
    });
}
