//! Criterion bench for E12: HLR lookup/update and the wireless
//! protocols.

use criterion::{criterion_group, criterion_main, Criterion};
use gupster_netsim::wireless::Carrier;
use gupster_netsim::Network;

fn bench_hlr_ops(c: &mut Criterion) {
    let mut net = Network::new(1);
    let mut carrier = Carrier::build(&mut net, "bench", 4);
    for i in 0..100_000 {
        carrier.hlr.provision(&format!("908-{i:07}"), "sub", false);
        carrier.hlr.location_update(&format!("908-{i:07}"), "vlr0.bench.com", "msc0.bench.com");
    }
    c.bench_function("hlr_routing_lookup_100k_subs", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            carrier.hlr.lookup_routing(&format!("908-{i:07}")).unwrap()
        });
    });
    c.bench_function("hlr_location_update_100k_subs", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            carrier.hlr.location_update(&format!("908-{i:07}"), "vlr1.bench.com", "msc1.bench.com")
        });
    });
}

fn bench_call_delivery(c: &mut Criterion) {
    let mut net = Network::new(1);
    let mut carrier = Carrier::build(&mut net, "bench", 4);
    for i in 0..1_000 {
        carrier.provision(&net, &format!("908-{i:04}"), "sub", false);
    }
    let origin = carrier.areas[1].1;
    c.bench_function("call_delivery_warm_vlr", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 13) % 1_000;
            carrier.call_delivery(&net, origin, &format!("908-{i:04}")).unwrap()
        });
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_hlr_ops, bench_call_delivery);
criterion_main!(benches);
