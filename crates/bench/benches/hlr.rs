//! Microbench for E12: HLR lookup/update and the wireless protocols.

use gupster_bench::microbench::{bench, suite};
use gupster_netsim::wireless::Carrier;
use gupster_netsim::Network;

fn main() {
    suite("hlr");
    let mut net = Network::new(1);
    let mut carrier = Carrier::build(&mut net, "bench", 4);
    for i in 0..100_000 {
        carrier.hlr.provision(&format!("908-{i:07}"), "sub", false);
        carrier.hlr.location_update(&format!("908-{i:07}"), "vlr0.bench.com", "msc0.bench.com");
    }
    let mut i = 0usize;
    bench("hlr_routing_lookup_100k_subs", || {
        i = (i + 7919) % 100_000;
        carrier.hlr.lookup_routing(&format!("908-{i:07}")).unwrap()
    });
    let mut i = 0usize;
    bench("hlr_location_update_100k_subs", || {
        i = (i + 7919) % 100_000;
        carrier.hlr.location_update(&format!("908-{i:07}"), "vlr1.bench.com", "msc1.bench.com")
    });

    let mut net = Network::new(1);
    let mut carrier = Carrier::build(&mut net, "bench", 4);
    for i in 0..1_000 {
        carrier.provision(&net, &format!("908-{i:04}"), "sub", false);
    }
    let origin = carrier.areas[1].1;
    let mut i = 0usize;
    bench("call_delivery_warm_vlr", || {
        i = (i + 13) % 1_000;
        carrier.call_delivery(&net, origin, &format!("908-{i:04}")).unwrap()
    });
}
