//! The [`TelemetryHub`]: request-id allotment, per-stage histograms,
//! pipeline counters, tail-latency exemplars and finished-trace
//! storage.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use gupster_netsim::SimTime;

use crate::histogram::Histogram;
use crate::intern::{StageId, StageInterner};
use crate::span::{RequestId, Span, Tracer};

/// Pipeline event counters. Plain atomics so instrumented code can bump
/// them without holding the hub's histogram lock.
#[derive(Debug, Default)]
pub struct Counters {
    /// Lookup requests traced.
    pub lookups: AtomicU64,
    /// Referrals issued.
    pub referrals: AtomicU64,
    /// Requests refused by the privacy shield.
    pub policy_denials: AtomicU64,
    /// Cache hits.
    pub cache_hits: AtomicU64,
    /// Cache misses.
    pub cache_misses: AtomicU64,
    /// Signature verifications performed by data stores.
    pub signature_verifications: AtomicU64,
    /// Retry attempts issued by the resilience layer.
    pub retries: AtomicU64,
    /// Fallbacks to a lower rung of the degradation ladder.
    pub fallbacks: AtomicU64,
    /// Requests that exhausted their deadline budget.
    pub deadline_exceeded: AtomicU64,
    /// Results served from the stale cache after every rung failed.
    pub stale_serves: AtomicU64,
    /// Coverage matches answered by the path-trie index.
    pub trie_hits: AtomicU64,
    /// Policy decisions served from the decision memo.
    pub memo_hits: AtomicU64,
    /// Coverage matches that fell back to the naive full scan.
    pub fallback_scans: AtomicU64,
    /// Duplicate in-flight fetches coalesced by a singleflight table.
    pub singleflight_hits: AtomicU64,
    /// Per-store batch RPCs issued in place of per-fragment fetches.
    pub batched_fetches: AtomicU64,
    /// Two-way sync sessions completed.
    pub sync_sessions: AtomicU64,
    /// Changelog operations shipped during sync sessions.
    pub sync_ops_shipped: AtomicU64,
    /// Conflicting change pairs detected during sync reconciliation.
    pub sync_conflicts: AtomicU64,
    /// Sync sessions that fell back to the slow full-document path.
    pub sync_slow_paths: AtomicU64,
    /// Changelog entries removed by compaction (truncated, coalesced,
    /// or annihilated) across the fleet.
    pub compacted_ops: AtomicU64,
    /// Cache/memo entries invalidated by write-through invalidation
    /// after committed syncs.
    pub invalidations: AtomicU64,
    /// Open-loop requests admitted through the ingress queues.
    pub admitted: AtomicU64,
    /// Call-delivery requests shed by admission control.
    pub shed_calls: AtomicU64,
    /// Profile-edit / bulk requests shed by admission control.
    pub shed_edits: AtomicU64,
    /// Bulk services preempted by call-delivery arrivals.
    pub preemptions: AtomicU64,
    /// Shed requests answered from the admission stale cache.
    pub overload_stale_serves: AtomicU64,
    /// Referral tokens reused from the registry's token cache instead
    /// of freshly signed (DESIGN.md §11).
    pub token_reuse: AtomicU64,
    /// Write events matched through the inverted subscription index
    /// (DESIGN.md §12) instead of the linear watcher scan.
    pub index_hits: AtomicU64,
    /// Coalesced notification batches delivered (one message pair per
    /// subscriber per delivery window).
    pub fanout_batched: AtomicU64,
    /// Notifications absorbed into an earlier message of the same
    /// delivery window (dedup + per-subscriber coalescing).
    pub fanout_coalesced: AtomicU64,
}

/// A point-in-time copy of the [`Counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Lookup requests traced.
    pub lookups: u64,
    /// Referrals issued.
    pub referrals: u64,
    /// Requests refused by the privacy shield.
    pub policy_denials: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Signature verifications performed by data stores.
    pub signature_verifications: u64,
    /// Retry attempts issued by the resilience layer.
    pub retries: u64,
    /// Fallbacks to a lower rung of the degradation ladder.
    pub fallbacks: u64,
    /// Requests that exhausted their deadline budget.
    pub deadline_exceeded: u64,
    /// Results served from the stale cache after every rung failed.
    pub stale_serves: u64,
    /// Coverage matches answered by the path-trie index.
    pub trie_hits: u64,
    /// Policy decisions served from the decision memo.
    pub memo_hits: u64,
    /// Coverage matches that fell back to the naive full scan.
    pub fallback_scans: u64,
    /// Duplicate in-flight fetches coalesced by a singleflight table.
    pub singleflight_hits: u64,
    /// Per-store batch RPCs issued in place of per-fragment fetches.
    pub batched_fetches: u64,
    /// Two-way sync sessions completed.
    pub sync_sessions: u64,
    /// Changelog operations shipped during sync sessions.
    pub sync_ops_shipped: u64,
    /// Conflicting change pairs detected during sync reconciliation.
    pub sync_conflicts: u64,
    /// Sync sessions that fell back to the slow full-document path.
    pub sync_slow_paths: u64,
    /// Changelog entries removed by compaction across the fleet.
    pub compacted_ops: u64,
    /// Cache/memo entries invalidated after committed syncs.
    pub invalidations: u64,
    /// Open-loop requests admitted through the ingress queues.
    pub admitted: u64,
    /// Call-delivery requests shed by admission control.
    pub shed_calls: u64,
    /// Profile-edit / bulk requests shed by admission control.
    pub shed_edits: u64,
    /// Bulk services preempted by call-delivery arrivals.
    pub preemptions: u64,
    /// Shed requests answered from the admission stale cache.
    pub overload_stale_serves: u64,
    /// Referral tokens reused from the token cache.
    pub token_reuse: u64,
    /// Write events matched through the inverted subscription index.
    pub index_hits: u64,
    /// Coalesced notification batches delivered.
    pub fanout_batched: u64,
    /// Notifications absorbed into an earlier batch message.
    pub fanout_coalesced: u64,
}

impl CounterSnapshot {
    /// Adds `other` into `self`, field by field — shard harnesses use
    /// this to aggregate per-shard hubs into fleet-wide totals.
    pub fn absorb(&mut self, other: &CounterSnapshot) {
        self.lookups += other.lookups;
        self.referrals += other.referrals;
        self.policy_denials += other.policy_denials;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.signature_verifications += other.signature_verifications;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.deadline_exceeded += other.deadline_exceeded;
        self.stale_serves += other.stale_serves;
        self.trie_hits += other.trie_hits;
        self.memo_hits += other.memo_hits;
        self.fallback_scans += other.fallback_scans;
        self.singleflight_hits += other.singleflight_hits;
        self.batched_fetches += other.batched_fetches;
        self.sync_sessions += other.sync_sessions;
        self.sync_ops_shipped += other.sync_ops_shipped;
        self.sync_conflicts += other.sync_conflicts;
        self.sync_slow_paths += other.sync_slow_paths;
        self.compacted_ops += other.compacted_ops;
        self.invalidations += other.invalidations;
        self.admitted += other.admitted;
        self.shed_calls += other.shed_calls;
        self.shed_edits += other.shed_edits;
        self.preemptions += other.preemptions;
        self.overload_stale_serves += other.overload_stale_serves;
        self.token_reuse += other.token_reuse;
        self.index_hits += other.index_hits;
        self.fanout_batched += other.fanout_batched;
        self.fanout_coalesced += other.fanout_coalesced;
    }

    /// The counter's fields as `(name, value)` rows in declaration
    /// order — the single source of truth the snapshot exporters and
    /// the dashboard iterate, so a newly added counter cannot be
    /// silently missing from one of them.
    pub fn named_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("lookups", self.lookups),
            ("referrals", self.referrals),
            ("policy_denials", self.policy_denials),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("signature_verifications", self.signature_verifications),
            ("retries", self.retries),
            ("fallbacks", self.fallbacks),
            ("deadline_exceeded", self.deadline_exceeded),
            ("stale_serves", self.stale_serves),
            ("trie_hits", self.trie_hits),
            ("memo_hits", self.memo_hits),
            ("fallback_scans", self.fallback_scans),
            ("singleflight_hits", self.singleflight_hits),
            ("batched_fetches", self.batched_fetches),
            ("sync_sessions", self.sync_sessions),
            ("sync_ops_shipped", self.sync_ops_shipped),
            ("sync_conflicts", self.sync_conflicts),
            ("sync_slow_paths", self.sync_slow_paths),
            ("compacted_ops", self.compacted_ops),
            ("invalidations", self.invalidations),
            ("admitted", self.admitted),
            ("shed_calls", self.shed_calls),
            ("shed_edits", self.shed_edits),
            ("preemptions", self.preemptions),
            ("overload_stale_serves", self.overload_stale_serves),
            ("token_reuse", self.token_reuse),
            ("index_hits", self.index_hits),
            ("fanout_batched", self.fanout_batched),
            ("fanout_coalesced", self.fanout_coalesced),
        ]
    }

    /// Sets the field called `name` to `value`; false when no counter
    /// has that name. The snapshot parser uses this as the inverse of
    /// [`CounterSnapshot::named_fields`].
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "lookups" => &mut self.lookups,
            "referrals" => &mut self.referrals,
            "policy_denials" => &mut self.policy_denials,
            "cache_hits" => &mut self.cache_hits,
            "cache_misses" => &mut self.cache_misses,
            "signature_verifications" => &mut self.signature_verifications,
            "retries" => &mut self.retries,
            "fallbacks" => &mut self.fallbacks,
            "deadline_exceeded" => &mut self.deadline_exceeded,
            "stale_serves" => &mut self.stale_serves,
            "trie_hits" => &mut self.trie_hits,
            "memo_hits" => &mut self.memo_hits,
            "fallback_scans" => &mut self.fallback_scans,
            "singleflight_hits" => &mut self.singleflight_hits,
            "batched_fetches" => &mut self.batched_fetches,
            "sync_sessions" => &mut self.sync_sessions,
            "sync_ops_shipped" => &mut self.sync_ops_shipped,
            "sync_conflicts" => &mut self.sync_conflicts,
            "sync_slow_paths" => &mut self.sync_slow_paths,
            "compacted_ops" => &mut self.compacted_ops,
            "invalidations" => &mut self.invalidations,
            "admitted" => &mut self.admitted,
            "shed_calls" => &mut self.shed_calls,
            "shed_edits" => &mut self.shed_edits,
            "preemptions" => &mut self.preemptions,
            "overload_stale_serves" => &mut self.overload_stale_serves,
            "token_reuse" => &mut self.token_reuse,
            "index_hits" => &mut self.index_hits,
            "fanout_batched" => &mut self.fanout_batched,
            "fanout_coalesced" => &mut self.fanout_coalesced,
            _ => return false,
        };
        *slot = value;
        true
    }
}

impl Counters {
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            lookups: self.lookups.load(Ordering::Relaxed),
            referrals: self.referrals.load(Ordering::Relaxed),
            policy_denials: self.policy_denials.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            signature_verifications: self.signature_verifications.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            trie_hits: self.trie_hits.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            fallback_scans: self.fallback_scans.load(Ordering::Relaxed),
            singleflight_hits: self.singleflight_hits.load(Ordering::Relaxed),
            batched_fetches: self.batched_fetches.load(Ordering::Relaxed),
            sync_sessions: self.sync_sessions.load(Ordering::Relaxed),
            sync_ops_shipped: self.sync_ops_shipped.load(Ordering::Relaxed),
            sync_conflicts: self.sync_conflicts.load(Ordering::Relaxed),
            sync_slow_paths: self.sync_slow_paths.load(Ordering::Relaxed),
            compacted_ops: self.compacted_ops.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_calls: self.shed_calls.load(Ordering::Relaxed),
            shed_edits: self.shed_edits.load(Ordering::Relaxed),
            preemptions: self.preemptions.load(Ordering::Relaxed),
            overload_stale_serves: self.overload_stale_serves.load(Ordering::Relaxed),
            token_reuse: self.token_reuse.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            fanout_batched: self.fanout_batched.load(Ordering::Relaxed),
            fanout_coalesced: self.fanout_coalesced.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.referrals.store(0, Ordering::Relaxed);
        self.policy_denials.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.signature_verifications.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
        self.deadline_exceeded.store(0, Ordering::Relaxed);
        self.stale_serves.store(0, Ordering::Relaxed);
        self.trie_hits.store(0, Ordering::Relaxed);
        self.memo_hits.store(0, Ordering::Relaxed);
        self.fallback_scans.store(0, Ordering::Relaxed);
        self.singleflight_hits.store(0, Ordering::Relaxed);
        self.batched_fetches.store(0, Ordering::Relaxed);
        self.sync_sessions.store(0, Ordering::Relaxed);
        self.sync_ops_shipped.store(0, Ordering::Relaxed);
        self.sync_conflicts.store(0, Ordering::Relaxed);
        self.sync_slow_paths.store(0, Ordering::Relaxed);
        self.compacted_ops.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.admitted.store(0, Ordering::Relaxed);
        self.shed_calls.store(0, Ordering::Relaxed);
        self.shed_edits.store(0, Ordering::Relaxed);
        self.preemptions.store(0, Ordering::Relaxed);
        self.overload_stale_serves.store(0, Ordering::Relaxed);
        self.token_reuse.store(0, Ordering::Relaxed);
        self.index_hits.store(0, Ordering::Relaxed);
        self.fanout_batched.store(0, Ordering::Relaxed);
        self.fanout_coalesced.store(0, Ordering::Relaxed);
    }
}

/// Aggregate latency statistics of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Number of spans recorded for the stage.
    pub count: u64,
    /// Median duration.
    pub p50: SimTime,
    /// 95th-percentile duration.
    pub p95: SimTime,
    /// 99th-percentile duration.
    pub p99: SimTime,
    /// Mean duration.
    pub mean: SimTime,
    /// Largest duration.
    pub max: SimTime,
}

/// A retained tail-latency exemplar: the full span tree of one request
/// whose end-to-end duration cleared the hub's exemplar threshold.
///
/// `key` is caller-assigned (see [`Tracer::set_key`]) and is the
/// identity the deterministic top-k selection ties on — sharded
/// harnesses set it to the request's *global* submission index so the
/// selected exemplars are identical at any shard count, even though
/// per-shard [`RequestId`]s differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Stable, shard-independent identity of the exemplified request.
    pub key: u64,
    /// End-to-end simulated duration of the request.
    pub duration: SimTime,
    /// The request's full span tree, root first.
    pub spans: Vec<Span>,
}

impl Exemplar {
    /// The total order exemplar selection uses: slowest first, ties
    /// broken by the smaller (earlier) key. A total order over
    /// (duration, key) is what makes top-k selection merge-stable:
    /// the global top-k of a union is always a subset of the union of
    /// per-shard top-k sets.
    pub fn rank_cmp(&self, other: &Exemplar) -> std::cmp::Ordering {
        other.duration.cmp(&self.duration).then(self.key.cmp(&other.key))
    }
}

/// Merges per-hub exemplar sets into the fleet-wide top-`cap`,
/// deterministically: concatenate, sort by [`Exemplar::rank_cmp`],
/// truncate. Because each hub already keeps its own top-`cap` under
/// the same total order, the result is identical for any partitioning
/// of the requests across hubs.
pub fn merge_exemplars(sets: Vec<Vec<Exemplar>>, cap: usize) -> Vec<Exemplar> {
    let mut all: Vec<Exemplar> = sets.into_iter().flatten().collect();
    all.sort_by(Exemplar::rank_cmp);
    all.truncate(cap);
    all
}

/// Owns everything telemetric: assigns [`RequestId`]s, aggregates
/// per-stage histograms as spans close, keeps [`Counters`], captures
/// tail-latency [`Exemplar`]s and stores finished traces for export.
/// Shared as `Arc<TelemetryHub>` between the registry, client-side
/// instrumentation and experiment harnesses.
#[derive(Debug)]
pub struct TelemetryHub {
    next_request: AtomicU64,
    counters: Counters,
    /// Per-stage histograms, indexed by [`StageId`] — the interner
    /// assigns ids process-wide, so a hub's vector may have gaps
    /// (empty histograms) for stages other subsystems interned.
    stages: Mutex<Vec<Histogram>>,
    spans: Mutex<Vec<Span>>,
    /// Finished-span retention cap: once the store holds this many
    /// spans, further traces feed the stage histograms but are not
    /// retained. Large sharded workloads set this to keep memory flat.
    span_limit: AtomicUsize,
    /// Exemplar capture threshold in µs; `u64::MAX` disables capture.
    exemplar_threshold: AtomicU64,
    /// How many exemplars the hub retains (top-k by duration).
    exemplar_cap: AtomicUsize,
    exemplars: Mutex<Vec<Exemplar>>,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        TelemetryHub {
            next_request: AtomicU64::new(0),
            counters: Counters::default(),
            stages: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
            span_limit: AtomicUsize::new(usize::MAX),
            exemplar_threshold: AtomicU64::new(u64::MAX),
            exemplar_cap: AtomicUsize::new(0),
            exemplars: Mutex::new(Vec::new()),
        }
    }
}

impl TelemetryHub {
    /// A fresh hub.
    pub fn new() -> Self {
        TelemetryHub::default()
    }

    /// Allots the next request id.
    pub fn next_request(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::Relaxed))
    }

    /// Starts tracing a new request; the root span carries `root_stage`.
    pub fn tracer(self: &Arc<Self>, root_stage: &str) -> Tracer {
        let request = self.next_request();
        Tracer::new(Arc::clone(self), request, root_stage)
    }

    /// The pipeline counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// A copy of the counters.
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Zeroes the counters (histograms and traces are untouched).
    pub fn reset_counters(&self) {
        self.counters.reset();
    }

    /// Feeds one closed span's duration into its stage's histogram.
    /// Public so simulation layers without a [`Tracer`] at hand can
    /// still contribute stage timings.
    pub fn record_stage(&self, stage: &str, duration: SimTime) {
        self.record_stage_ids(&[(StageInterner::intern(stage), duration)]);
    }

    /// Feeds a whole batch of closed-span durations under **one** lock
    /// acquisition, with the stage labels already interned — this is
    /// the [`Tracer`]'s flush path: a request costs one histogram lock
    /// and zero label allocations instead of one `String` per span.
    /// Shard workers hammering a shared hub depend on this.
    pub fn record_stage_ids(&self, batch: &[(StageId, SimTime)]) {
        if batch.is_empty() {
            return;
        }
        let mut stages = self.lock_stages();
        for &(stage, duration) in batch {
            let idx = stage.0 as usize;
            if idx >= stages.len() {
                stages.resize_with(idx + 1, Histogram::default);
            }
            stages[idx].record(duration);
        }
    }

    /// Owned-label variant of [`TelemetryHub::record_stage_ids`], kept
    /// for callers (and benchmarks) that still hold `String` batches.
    pub fn record_stages(&self, batch: &[(String, SimTime)]) {
        if batch.is_empty() {
            return;
        }
        let mut stages = self.lock_stages();
        for (stage, duration) in batch {
            let idx = StageInterner::intern(stage).0 as usize;
            if idx >= stages.len() {
                stages.resize_with(idx + 1, Histogram::default);
            }
            stages[idx].record(*duration);
        }
    }

    /// Caps how many finished spans the hub retains (see
    /// [`TelemetryHub::spans`]); histograms and counters are unaffected.
    /// `usize::MAX` (the default) retains everything.
    pub fn set_span_limit(&self, limit: usize) {
        self.span_limit.store(limit, Ordering::Relaxed);
    }

    pub(crate) fn absorb(&self, spans: Vec<Span>) {
        let limit = self.span_limit.load(Ordering::Relaxed);
        let mut held = self.lock_spans();
        if held.len() >= limit {
            return;
        }
        let room = limit - held.len();
        if spans.len() <= room {
            held.extend(spans);
        } else {
            held.extend(spans.into_iter().take(room));
        }
    }

    /// All finished spans, in absorption order (root-first per request).
    pub fn spans(&self) -> Vec<Span> {
        self.lock_spans().clone()
    }

    /// Number of finished spans held.
    pub fn span_count(&self) -> usize {
        self.lock_spans().len()
    }

    /// The stage labels with at least one recorded span, sorted.
    pub fn stages(&self) -> Vec<String> {
        self.stage_histograms().into_iter().map(|(name, _)| name).collect()
    }

    /// Latency statistics of one stage, `None` when nothing recorded.
    pub fn stage_stats(&self, stage: &str) -> Option<StageStats> {
        let id = StageInterner::lookup(stage)?;
        let stages = self.lock_stages();
        let h = stages.get(id.0 as usize)?;
        if h.count() == 0 {
            return None;
        }
        Some(stats_of(h))
    }

    /// Every non-empty stage histogram as `(label, histogram)` rows,
    /// sorted by label, copied out under **one** lock acquisition —
    /// the consistent read the scatter-gather merge and the dashboard
    /// snapshot use, so no torn view across stages is possible.
    pub fn stage_histograms(&self) -> Vec<(String, Histogram)> {
        let copied: Vec<(usize, Histogram)> = {
            let stages = self.lock_stages();
            stages
                .iter()
                .enumerate()
                .filter(|(_, h)| h.count() > 0)
                .map(|(i, h)| (i, h.clone()))
                .collect()
        };
        let mut rows: Vec<(String, Histogram)> = copied
            .into_iter()
            .map(|(i, h)| (StageInterner::resolve(StageId(i as u32)).to_string(), h))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Every non-empty stage's [`StageStats`], sorted by label, from
    /// one consistent histogram read.
    pub fn stage_rows(&self) -> Vec<(String, StageStats)> {
        self.stage_histograms().into_iter().map(|(name, h)| (name, stats_of(&h))).collect()
    }

    /// Enables tail-latency exemplar capture: any request whose
    /// end-to-end duration is ≥ `threshold` keeps its full span tree,
    /// and the hub retains the top-`cap` slowest (ties broken by the
    /// smaller [`Exemplar::key`]). A `cap` of zero disables capture.
    pub fn set_exemplar_policy(&self, threshold: SimTime, cap: usize) {
        self.exemplar_threshold.store(threshold.0, Ordering::Relaxed);
        self.exemplar_cap.store(cap, Ordering::Relaxed);
    }

    /// The retained exemplars, slowest first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        self.lock_exemplars().clone()
    }

    /// The configured exemplar retention cap.
    pub fn exemplar_cap(&self) -> usize {
        self.exemplar_cap.load(Ordering::Relaxed)
    }

    pub(crate) fn wants_exemplar(&self, duration: SimTime) -> bool {
        self.exemplar_cap.load(Ordering::Relaxed) > 0
            && duration.0 >= self.exemplar_threshold.load(Ordering::Relaxed)
    }

    pub(crate) fn offer_exemplar(&self, exemplar: Exemplar) {
        let cap = self.exemplar_cap.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        let mut held = self.lock_exemplars();
        let at = held.partition_point(|e| e.rank_cmp(&exemplar).is_lt());
        if at >= cap {
            return;
        }
        held.insert(at, exemplar);
        held.truncate(cap);
    }

    pub(crate) fn span_room(&self) -> usize {
        let limit = self.span_limit.load(Ordering::Relaxed);
        limit.saturating_sub(self.lock_spans().len())
    }

    /// Renders the per-stage latency table (see [`crate::table`]).
    pub fn render_stage_table(&self, title: &str) -> String {
        crate::table::render_stage_table(self, title)
    }

    /// Serializes every finished span as JSON lines (see
    /// [`crate::export`]).
    pub fn export_jsonl(&self) -> String {
        crate::export::export(&self.spans())
    }

    fn lock_stages(&self) -> std::sync::MutexGuard<'_, Vec<Histogram>> {
        self.stages.lock().expect("telemetry stage mutex poisoned")
    }

    fn lock_spans(&self) -> std::sync::MutexGuard<'_, Vec<Span>> {
        self.spans.lock().expect("telemetry span mutex poisoned")
    }

    fn lock_exemplars(&self) -> std::sync::MutexGuard<'_, Vec<Exemplar>> {
        self.exemplars.lock().expect("telemetry exemplar mutex poisoned")
    }
}

/// [`StageStats`] of one histogram.
fn stats_of(h: &Histogram) -> StageStats {
    StageStats {
        count: h.count(),
        p50: h.p50(),
        p95: h.p95(),
        p99: h.p99(),
        mean: h.mean(),
        max: h.max(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_bump_and_reset() {
        let hub = TelemetryHub::new();
        hub.counters().lookups.fetch_add(3, Ordering::Relaxed);
        hub.counters().cache_hits.fetch_add(1, Ordering::Relaxed);
        hub.counters().signature_verifications.fetch_add(2, Ordering::Relaxed);
        hub.counters().trie_hits.fetch_add(7, Ordering::Relaxed);
        hub.counters().memo_hits.fetch_add(5, Ordering::Relaxed);
        hub.counters().fallback_scans.fetch_add(1, Ordering::Relaxed);
        let snap = hub.counter_snapshot();
        assert_eq!(snap.lookups, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.signature_verifications, 2);
        assert_eq!(snap.policy_denials, 0);
        assert_eq!((snap.trie_hits, snap.memo_hits, snap.fallback_scans), (7, 5, 1));
        hub.reset_counters();
        assert_eq!(hub.counter_snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn stage_stats_aggregate_across_tracers() {
        let hub = Arc::new(TelemetryHub::new());
        for i in 1..=100u64 {
            let mut t = hub.tracer("root");
            t.span("token.sign", SimTime::micros(i));
        }
        let stats = hub.stage_stats("token.sign").unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.max, SimTime::micros(100));
        assert!(stats.p50 >= SimTime::micros(50) && stats.p50 < SimTime::micros(100));
        assert!(stats.p95 >= SimTime::micros(95));
        assert!(hub.stage_stats("ghost").is_none());
        assert_eq!(hub.stages(), vec!["root".to_string(), "token.sign".to_string()]);
    }

    #[test]
    fn stage_batches_equal_single_records() {
        let a = TelemetryHub::new();
        let b = TelemetryHub::new();
        for i in 1..=20u64 {
            a.record_stage("s", SimTime::micros(i));
        }
        let batch: Vec<(String, SimTime)> =
            (1..=20u64).map(|i| ("s".to_string(), SimTime::micros(i))).collect();
        b.record_stages(&batch);
        assert_eq!(a.stage_stats("s"), b.stage_stats("s"));
    }

    #[test]
    fn span_limit_caps_retention_but_not_histograms() {
        let hub = Arc::new(TelemetryHub::new());
        hub.set_span_limit(3);
        for _ in 0..10 {
            hub.tracer("root").span("token.sign", SimTime::micros(1));
        }
        assert!(hub.span_count() <= 3, "{}", hub.span_count());
        // Every span still fed its stage histogram.
        assert_eq!(hub.stage_stats("token.sign").unwrap().count, 10);
    }

    #[test]
    fn snapshot_absorb_sums_fields() {
        let a = TelemetryHub::new();
        a.counters().lookups.fetch_add(3, Ordering::Relaxed);
        a.counters().singleflight_hits.fetch_add(2, Ordering::Relaxed);
        let b = TelemetryHub::new();
        b.counters().lookups.fetch_add(4, Ordering::Relaxed);
        b.counters().batched_fetches.fetch_add(5, Ordering::Relaxed);
        let mut total = a.counter_snapshot();
        total.absorb(&b.counter_snapshot());
        assert_eq!(total.lookups, 7);
        assert_eq!(total.singleflight_hits, 2);
        assert_eq!(total.batched_fetches, 5);
    }

    #[test]
    fn exemplars_capture_the_tail_only() {
        let hub = Arc::new(TelemetryHub::new());
        hub.set_span_limit(0);
        hub.set_exemplar_policy(SimTime::micros(50), 3);
        for i in 1..=100u64 {
            let mut t = hub.tracer("shard.request");
            t.set_key(1000 + i);
            t.span("store.fetch", SimTime::micros(i));
        }
        let exemplars = hub.exemplars();
        assert_eq!(exemplars.len(), 3, "top-3 of the 51 over-threshold requests");
        let durations: Vec<u64> = exemplars.iter().map(|e| e.duration.0).collect();
        assert_eq!(durations, vec![100, 99, 98], "slowest first");
        assert_eq!(exemplars[0].key, 1100);
        // The full span tree rides along even with span retention off.
        assert_eq!(exemplars[0].spans.len(), 2);
        assert_eq!(exemplars[0].spans[0].stage, "shard.request");
        assert_eq!(hub.span_count(), 0);
    }

    #[test]
    fn exemplar_ties_break_on_the_earlier_key() {
        let hub = Arc::new(TelemetryHub::new());
        hub.set_exemplar_policy(SimTime::micros(1), 2);
        for key in [9u64, 3, 7] {
            let mut t = hub.tracer("root");
            t.set_key(key);
            t.charge(SimTime::micros(10));
        }
        let keys: Vec<u64> = hub.exemplars().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![3, 7]);
    }

    #[test]
    fn exemplar_merge_is_partition_independent() {
        let run = |hub: &Arc<TelemetryHub>, key: u64| {
            let mut t = hub.tracer("root");
            t.set_key(key);
            t.charge(SimTime::micros(10 + key % 7));
        };
        let whole = Arc::new(TelemetryHub::new());
        whole.set_exemplar_policy(SimTime::micros(1), 4);
        let left = Arc::new(TelemetryHub::new());
        let right = Arc::new(TelemetryHub::new());
        left.set_exemplar_policy(SimTime::micros(1), 4);
        right.set_exemplar_policy(SimTime::micros(1), 4);
        for key in 0..40u64 {
            run(&whole, key);
            run(if key % 2 == 0 { &left } else { &right }, key);
        }
        let merged = merge_exemplars(vec![left.exemplars(), right.exemplars()], 4);
        let expect: Vec<(u64, u64)> =
            whole.exemplars().iter().map(|e| (e.key, e.duration.0)).collect();
        let got: Vec<(u64, u64)> = merged.iter().map(|e| (e.key, e.duration.0)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn stage_histograms_read_consistently() {
        let hub = TelemetryHub::new();
        hub.record_stage("alpha.stage", SimTime::micros(5));
        hub.record_stage("beta.stage", SimTime::micros(7));
        let rows = hub.stage_histograms();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted: {names:?}");
        let alpha = rows.iter().find(|(n, _)| n == "alpha.stage").unwrap();
        assert_eq!(alpha.1.count(), 1);
        // Gap entries (stages interned by other hubs/tests) never leak.
        assert!(rows.iter().all(|(_, h)| h.count() > 0));
    }

    #[test]
    fn counter_reset_keeps_histograms() {
        let hub = Arc::new(TelemetryHub::new());
        hub.tracer("root").span("xml.merge", SimTime::micros(10));
        hub.counters().referrals.fetch_add(5, Ordering::Relaxed);
        hub.reset_counters();
        assert_eq!(hub.counter_snapshot().referrals, 0);
        assert_eq!(hub.stage_stats("xml.merge").unwrap().count, 1);
        assert_eq!(hub.span_count(), 2);
    }
}
