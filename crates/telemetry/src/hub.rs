//! The [`TelemetryHub`]: request-id allotment, per-stage histograms,
//! pipeline counters and finished-trace storage.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use gupster_netsim::SimTime;

use crate::histogram::Histogram;
use crate::span::{RequestId, Span, Tracer};

/// Pipeline event counters. Plain atomics so instrumented code can bump
/// them without holding the hub's histogram lock.
#[derive(Debug, Default)]
pub struct Counters {
    /// Lookup requests traced.
    pub lookups: AtomicU64,
    /// Referrals issued.
    pub referrals: AtomicU64,
    /// Requests refused by the privacy shield.
    pub policy_denials: AtomicU64,
    /// Cache hits.
    pub cache_hits: AtomicU64,
    /// Cache misses.
    pub cache_misses: AtomicU64,
    /// Signature verifications performed by data stores.
    pub signature_verifications: AtomicU64,
    /// Retry attempts issued by the resilience layer.
    pub retries: AtomicU64,
    /// Fallbacks to a lower rung of the degradation ladder.
    pub fallbacks: AtomicU64,
    /// Requests that exhausted their deadline budget.
    pub deadline_exceeded: AtomicU64,
    /// Results served from the stale cache after every rung failed.
    pub stale_serves: AtomicU64,
    /// Coverage matches answered by the path-trie index.
    pub trie_hits: AtomicU64,
    /// Policy decisions served from the decision memo.
    pub memo_hits: AtomicU64,
    /// Coverage matches that fell back to the naive full scan.
    pub fallback_scans: AtomicU64,
    /// Duplicate in-flight fetches coalesced by a singleflight table.
    pub singleflight_hits: AtomicU64,
    /// Per-store batch RPCs issued in place of per-fragment fetches.
    pub batched_fetches: AtomicU64,
}

/// A point-in-time copy of the [`Counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Lookup requests traced.
    pub lookups: u64,
    /// Referrals issued.
    pub referrals: u64,
    /// Requests refused by the privacy shield.
    pub policy_denials: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Signature verifications performed by data stores.
    pub signature_verifications: u64,
    /// Retry attempts issued by the resilience layer.
    pub retries: u64,
    /// Fallbacks to a lower rung of the degradation ladder.
    pub fallbacks: u64,
    /// Requests that exhausted their deadline budget.
    pub deadline_exceeded: u64,
    /// Results served from the stale cache after every rung failed.
    pub stale_serves: u64,
    /// Coverage matches answered by the path-trie index.
    pub trie_hits: u64,
    /// Policy decisions served from the decision memo.
    pub memo_hits: u64,
    /// Coverage matches that fell back to the naive full scan.
    pub fallback_scans: u64,
    /// Duplicate in-flight fetches coalesced by a singleflight table.
    pub singleflight_hits: u64,
    /// Per-store batch RPCs issued in place of per-fragment fetches.
    pub batched_fetches: u64,
}

impl CounterSnapshot {
    /// Adds `other` into `self`, field by field — shard harnesses use
    /// this to aggregate per-shard hubs into fleet-wide totals.
    pub fn absorb(&mut self, other: &CounterSnapshot) {
        self.lookups += other.lookups;
        self.referrals += other.referrals;
        self.policy_denials += other.policy_denials;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.signature_verifications += other.signature_verifications;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.deadline_exceeded += other.deadline_exceeded;
        self.stale_serves += other.stale_serves;
        self.trie_hits += other.trie_hits;
        self.memo_hits += other.memo_hits;
        self.fallback_scans += other.fallback_scans;
        self.singleflight_hits += other.singleflight_hits;
        self.batched_fetches += other.batched_fetches;
    }
}

impl Counters {
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            lookups: self.lookups.load(Ordering::Relaxed),
            referrals: self.referrals.load(Ordering::Relaxed),
            policy_denials: self.policy_denials.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            signature_verifications: self.signature_verifications.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            trie_hits: self.trie_hits.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            fallback_scans: self.fallback_scans.load(Ordering::Relaxed),
            singleflight_hits: self.singleflight_hits.load(Ordering::Relaxed),
            batched_fetches: self.batched_fetches.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.referrals.store(0, Ordering::Relaxed);
        self.policy_denials.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.signature_verifications.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
        self.deadline_exceeded.store(0, Ordering::Relaxed);
        self.stale_serves.store(0, Ordering::Relaxed);
        self.trie_hits.store(0, Ordering::Relaxed);
        self.memo_hits.store(0, Ordering::Relaxed);
        self.fallback_scans.store(0, Ordering::Relaxed);
        self.singleflight_hits.store(0, Ordering::Relaxed);
        self.batched_fetches.store(0, Ordering::Relaxed);
    }
}

/// Aggregate latency statistics of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Number of spans recorded for the stage.
    pub count: u64,
    /// Median duration.
    pub p50: SimTime,
    /// 95th-percentile duration.
    pub p95: SimTime,
    /// 99th-percentile duration.
    pub p99: SimTime,
    /// Mean duration.
    pub mean: SimTime,
    /// Largest duration.
    pub max: SimTime,
}

/// Owns everything telemetric: assigns [`RequestId`]s, aggregates
/// per-stage histograms as spans close, keeps [`Counters`] and stores
/// finished traces for export. Shared as `Arc<TelemetryHub>` between
/// the registry, client-side instrumentation and experiment harnesses.
#[derive(Debug)]
pub struct TelemetryHub {
    next_request: AtomicU64,
    counters: Counters,
    stages: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<Vec<Span>>,
    /// Finished-span retention cap: once the store holds this many
    /// spans, further traces feed the stage histograms but are not
    /// retained. Large sharded workloads set this to keep memory flat.
    span_limit: AtomicUsize,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        TelemetryHub {
            next_request: AtomicU64::new(0),
            counters: Counters::default(),
            stages: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
            span_limit: AtomicUsize::new(usize::MAX),
        }
    }
}

impl TelemetryHub {
    /// A fresh hub.
    pub fn new() -> Self {
        TelemetryHub::default()
    }

    /// Allots the next request id.
    pub fn next_request(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::Relaxed))
    }

    /// Starts tracing a new request; the root span carries `root_stage`.
    pub fn tracer(self: &Arc<Self>, root_stage: &str) -> Tracer {
        let request = self.next_request();
        Tracer::new(Arc::clone(self), request, root_stage)
    }

    /// The pipeline counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// A copy of the counters.
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Zeroes the counters (histograms and traces are untouched).
    pub fn reset_counters(&self) {
        self.counters.reset();
    }

    /// Feeds one closed span's duration into its stage's histogram.
    /// Public so simulation layers without a [`Tracer`] at hand can
    /// still contribute stage timings.
    pub fn record_stage(&self, stage: &str, duration: SimTime) {
        let mut stages = self.lock_stages();
        stages.entry(stage.to_string()).or_default().record(duration);
    }

    /// Feeds a whole batch of closed-span durations under **one** lock
    /// acquisition — the [`Tracer`] buffers its stage timings and
    /// flushes them here on drop, so a request costs one histogram lock
    /// instead of one per span. Shard workers hammering a shared hub
    /// depend on this.
    pub fn record_stages(&self, batch: &[(String, SimTime)]) {
        if batch.is_empty() {
            return;
        }
        let mut stages = self.lock_stages();
        for (stage, duration) in batch {
            stages.entry(stage.clone()).or_default().record(*duration);
        }
    }

    /// Caps how many finished spans the hub retains (see
    /// [`TelemetryHub::spans`]); histograms and counters are unaffected.
    /// `usize::MAX` (the default) retains everything.
    pub fn set_span_limit(&self, limit: usize) {
        self.span_limit.store(limit, Ordering::Relaxed);
    }

    pub(crate) fn absorb(&self, spans: Vec<Span>) {
        let limit = self.span_limit.load(Ordering::Relaxed);
        let mut held = self.lock_spans();
        if held.len() >= limit {
            return;
        }
        let room = limit - held.len();
        if spans.len() <= room {
            held.extend(spans);
        } else {
            held.extend(spans.into_iter().take(room));
        }
    }

    /// All finished spans, in absorption order (root-first per request).
    pub fn spans(&self) -> Vec<Span> {
        self.lock_spans().clone()
    }

    /// Number of finished spans held.
    pub fn span_count(&self) -> usize {
        self.lock_spans().len()
    }

    /// The stage labels with at least one recorded span, sorted.
    pub fn stages(&self) -> Vec<String> {
        self.lock_stages().keys().cloned().collect()
    }

    /// Latency statistics of one stage, `None` when nothing recorded.
    pub fn stage_stats(&self, stage: &str) -> Option<StageStats> {
        let stages = self.lock_stages();
        let h = stages.get(stage)?;
        if h.count() == 0 {
            return None;
        }
        Some(StageStats {
            count: h.count(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
            mean: h.mean(),
            max: h.max(),
        })
    }

    /// Renders the per-stage latency table (see [`crate::table`]).
    pub fn render_stage_table(&self, title: &str) -> String {
        crate::table::render_stage_table(self, title)
    }

    /// Serializes every finished span as JSON lines (see
    /// [`crate::export`]).
    pub fn export_jsonl(&self) -> String {
        crate::export::export(&self.spans())
    }

    fn lock_stages(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Histogram>> {
        self.stages.lock().expect("telemetry stage mutex poisoned")
    }

    fn lock_spans(&self) -> std::sync::MutexGuard<'_, Vec<Span>> {
        self.spans.lock().expect("telemetry span mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_bump_and_reset() {
        let hub = TelemetryHub::new();
        hub.counters().lookups.fetch_add(3, Ordering::Relaxed);
        hub.counters().cache_hits.fetch_add(1, Ordering::Relaxed);
        hub.counters().signature_verifications.fetch_add(2, Ordering::Relaxed);
        hub.counters().trie_hits.fetch_add(7, Ordering::Relaxed);
        hub.counters().memo_hits.fetch_add(5, Ordering::Relaxed);
        hub.counters().fallback_scans.fetch_add(1, Ordering::Relaxed);
        let snap = hub.counter_snapshot();
        assert_eq!(snap.lookups, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.signature_verifications, 2);
        assert_eq!(snap.policy_denials, 0);
        assert_eq!((snap.trie_hits, snap.memo_hits, snap.fallback_scans), (7, 5, 1));
        hub.reset_counters();
        assert_eq!(hub.counter_snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn stage_stats_aggregate_across_tracers() {
        let hub = Arc::new(TelemetryHub::new());
        for i in 1..=100u64 {
            let mut t = hub.tracer("root");
            t.span("token.sign", SimTime::micros(i));
        }
        let stats = hub.stage_stats("token.sign").unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.max, SimTime::micros(100));
        assert!(stats.p50 >= SimTime::micros(50) && stats.p50 < SimTime::micros(100));
        assert!(stats.p95 >= SimTime::micros(95));
        assert!(hub.stage_stats("ghost").is_none());
        assert_eq!(hub.stages(), vec!["root".to_string(), "token.sign".to_string()]);
    }

    #[test]
    fn stage_batches_equal_single_records() {
        let a = TelemetryHub::new();
        let b = TelemetryHub::new();
        for i in 1..=20u64 {
            a.record_stage("s", SimTime::micros(i));
        }
        let batch: Vec<(String, SimTime)> =
            (1..=20u64).map(|i| ("s".to_string(), SimTime::micros(i))).collect();
        b.record_stages(&batch);
        assert_eq!(a.stage_stats("s"), b.stage_stats("s"));
    }

    #[test]
    fn span_limit_caps_retention_but_not_histograms() {
        let hub = Arc::new(TelemetryHub::new());
        hub.set_span_limit(3);
        for _ in 0..10 {
            hub.tracer("root").span("token.sign", SimTime::micros(1));
        }
        assert!(hub.span_count() <= 3, "{}", hub.span_count());
        // Every span still fed its stage histogram.
        assert_eq!(hub.stage_stats("token.sign").unwrap().count, 10);
    }

    #[test]
    fn snapshot_absorb_sums_fields() {
        let a = TelemetryHub::new();
        a.counters().lookups.fetch_add(3, Ordering::Relaxed);
        a.counters().singleflight_hits.fetch_add(2, Ordering::Relaxed);
        let b = TelemetryHub::new();
        b.counters().lookups.fetch_add(4, Ordering::Relaxed);
        b.counters().batched_fetches.fetch_add(5, Ordering::Relaxed);
        let mut total = a.counter_snapshot();
        total.absorb(&b.counter_snapshot());
        assert_eq!(total.lookups, 7);
        assert_eq!(total.singleflight_hits, 2);
        assert_eq!(total.batched_fetches, 5);
    }

    #[test]
    fn counter_reset_keeps_histograms() {
        let hub = Arc::new(TelemetryHub::new());
        hub.tracer("root").span("xml.merge", SimTime::micros(10));
        hub.counters().referrals.fetch_add(5, Ordering::Relaxed);
        hub.reset_counters();
        assert_eq!(hub.counter_snapshot().referrals, 0);
        assert_eq!(hub.stage_stats("xml.merge").unwrap().count, 1);
        assert_eq!(hub.span_count(), 2);
    }
}
