//! Human-readable per-stage latency tables.

use gupster_netsim::SimTime;

use crate::hub::TelemetryHub;

/// Formats a duration compactly: microseconds under 1 ms, otherwise
/// milliseconds with two decimals.
pub fn fmt_time(t: SimTime) -> String {
    if t.0 < 1_000 {
        format!("{}us", t.0)
    } else {
        format!("{:.2}ms", t.0 as f64 / 1_000.0)
    }
}

/// Renders the hub's per-stage latency statistics as an aligned table
/// (same visual shape as the experiment tables in `gupster-bench`).
pub fn render_stage_table(hub: &TelemetryHub, title: &str) -> String {
    let headers = ["stage", "count", "p50", "p95", "p99", "mean", "max"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for stage in hub.stages() {
        if let Some(s) = hub.stage_stats(&stage) {
            rows.push(vec![
                stage,
                s.count.to_string(),
                fmt_time(s.p50),
                fmt_time(s.p95),
                fmt_time(s.p99),
                fmt_time(s.mean),
                fmt_time(s.max),
            ]);
        }
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        format!("  {}\n", parts.join("  ").trim_end())
    };
    let mut out = format!("\n== {title} ==\n");
    out.push_str(&line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    out.push_str(&line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>()));
    for row in &rows {
        out.push_str(&line(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(SimTime::ZERO), "0us");
        assert_eq!(fmt_time(SimTime::micros(999)), "999us");
        assert_eq!(fmt_time(SimTime::micros(1_500)), "1.50ms");
        assert_eq!(fmt_time(SimTime::millis(42)), "42.00ms");
    }

    #[test]
    fn table_lists_every_stage() {
        let hub = Arc::new(TelemetryHub::new());
        {
            let mut t = hub.tracer("registry.lookup");
            t.span("policy.decide", SimTime::micros(5));
            t.span("token.sign", SimTime::micros(20));
        }
        let table = hub.render_stage_table("stage latency");
        assert!(table.contains("== stage latency =="));
        for stage in ["registry.lookup", "policy.decide", "token.sign"] {
            assert!(table.contains(stage), "missing {stage} in:\n{table}");
        }
        assert!(table.contains("p99"));
        // Aligned: every data line has the same column count.
        let lines: Vec<&str> = table.lines().filter(|l| l.starts_with("  ")).collect();
        assert!(lines.len() >= 5);
    }
}
