//! JSON-lines trace export and its (round-tripping) parser.
//!
//! One span per line, flat object, stable key order:
//!
//! ```text
//! {"request":3,"span":1,"parent":0,"stage":"token.sign","start_us":10,"end_us":30}
//! ```
//!
//! The format is deliberately minimal — flat objects with unsigned
//! integers, `null` and strings — so downstream tooling (and the
//! round-trip tests) can parse it without a JSON library.

use gupster_netsim::SimTime;

use crate::span::{RequestId, Span};

/// Serializes one span as a single JSON line (no trailing newline).
pub fn to_line(s: &Span) -> String {
    let parent = match s.parent {
        Some(p) => p.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"request\":{},\"span\":{},\"parent\":{},\"stage\":\"{}\",\"start_us\":{},\"end_us\":{}}}",
        s.request.0,
        s.id,
        parent,
        escape(&s.stage),
        s.start.0,
        s.end.0
    )
}

/// Serializes spans as JSON lines, one per span, trailing newline when
/// non-empty.
pub fn export(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&to_line(s));
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse failure: the offending line (1-based) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole JSON-lines trace (empty lines ignored).
pub fn parse(text: &str) -> Result<Vec<Span>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|message| ParseError { line: i + 1, message })?);
    }
    Ok(out)
}

/// Parses one exported line back into a [`Span`].
pub fn parse_line(line: &str) -> Result<Span, String> {
    let mut p = Parser { bytes: line.trim().as_bytes(), pos: 0 };
    p.expect(b'{')?;
    let mut request = None;
    let mut span = None;
    let mut parent: Option<Option<u64>> = None;
    let mut stage = None;
    let mut start = None;
    let mut end = None;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "request" => request = Some(p.number()?),
            "span" => span = Some(p.number()?),
            "parent" => parent = Some(p.null_or_number()?),
            "stage" => stage = Some(p.string()?),
            "start_us" => start = Some(p.number()?),
            "end_us" => end = Some(p.number()?),
            other => return Err(format!("unknown key {other:?}")),
        }
        if !p.eat(b',') {
            break;
        }
    }
    p.expect(b'}')?;
    p.end()?;
    Ok(Span {
        request: RequestId(request.ok_or("missing \"request\"")?),
        id: span.ok_or("missing \"span\"")?,
        parent: parent.ok_or("missing \"parent\"")?,
        stage: stage.ok_or("missing \"stage\"")?,
        start: SimTime(start.ok_or("missing \"start_us\"")?),
        end: SimTime(end.ok_or("missing \"end_us\"")?),
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn end(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn null_or_number(&mut self) -> Result<Option<u64>, String> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Ok(None)
        } else {
            self.number().map(Some)
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("dangling escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(request: u64, id: u64, parent: Option<u64>, stage: &str) -> Span {
        Span {
            request: RequestId(request),
            id,
            parent,
            stage: stage.into(),
            start: SimTime::micros(10 * id),
            end: SimTime::micros(10 * id + 7),
        }
    }

    #[test]
    fn round_trip() {
        let spans = vec![
            span(0, 0, None, "registry.lookup"),
            span(0, 1, Some(0), "policy.decide"),
            span(1, 0, None, "cache.hit"),
        ];
        let text = export(&spans);
        assert_eq!(text.lines().count(), 3);
        let back = parse(&text).unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn line_shape_is_stable() {
        let line = to_line(&span(3, 1, Some(0), "token.sign"));
        assert_eq!(
            line,
            r#"{"request":3,"span":1,"parent":0,"stage":"token.sign","start_us":10,"end_us":17}"#
        );
        let root = to_line(&span(3, 0, None, "root"));
        assert!(root.contains("\"parent\":null"), "{root}");
    }

    #[test]
    fn escaping_round_trips() {
        let s = span(0, 0, None, "weird \"stage\"\\ with\nnewline\tand\u{1}ctrl");
        let back = parse_line(&to_line(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"request":1}"#).is_err(), "missing keys");
        assert!(parse_line(r#"{"request":1,"span":0,"parent":null,"stage":"s","start_us":0,"end_us":0} extra"#).is_err());
        let err = parse("{\"request\":oops}\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn empty_lines_ignored() {
        let spans = vec![span(0, 0, None, "r")];
        let mut text = String::from("\n");
        text.push_str(&export(&spans));
        text.push('\n');
        assert_eq!(parse(&text).unwrap(), spans);
    }
}
