//! Spans and the per-request [`Tracer`].

use std::fmt;
use std::sync::Arc;

use gupster_netsim::SimTime;

use crate::hub::{Exemplar, TelemetryHub};
use crate::intern::{StageId, StageInterner};

/// Identifier of one end-to-end request, assigned monotonically by the
/// [`TelemetryHub`] that owns the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// One finished span: a labelled stage of a request, with simulated
/// start/end instants relative to the request's own time zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The request this span belongs to.
    pub request: RequestId,
    /// Span id, unique within the request (0 is the root).
    pub id: u64,
    /// Parent span id; `None` exactly for the root span.
    pub parent: Option<u64>,
    /// Stage label (see [`crate::stage`]).
    pub stage: String,
    /// Start instant (request-relative simulated time).
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimTime {
        SimTime(self.end.0.saturating_sub(self.start.0))
    }
}

/// True when `spans` (all of one request) form a single rooted tree:
/// unique ids, exactly one root, and every parent link resolving to a
/// span in the set. This is the shape the trace exporter guarantees.
pub fn single_rooted_tree(spans: &[Span]) -> bool {
    if spans.is_empty() {
        return false;
    }
    let req = spans[0].request;
    let mut ids = std::collections::BTreeSet::new();
    for s in spans {
        if s.request != req || !ids.insert(s.id) {
            return false;
        }
    }
    let mut roots = 0;
    for s in spans {
        match s.parent {
            None => roots += 1,
            Some(p) => {
                if !ids.contains(&p) || p == s.id {
                    return false;
                }
            }
        }
    }
    roots == 1
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    stage: StageId,
    start: SimTime,
}

/// A closed span in the tracer's hot-path representation: the stage is
/// an interned [`StageId`], so closing a span allocates nothing. The
/// owned-label [`Span`] is materialized only when a trace is retained
/// or captured as an exemplar.
#[derive(Debug, Clone, Copy)]
struct RawSpan {
    id: u64,
    parent: Option<u64>,
    stage: StageId,
    start: SimTime,
    end: SimTime,
}

impl RawSpan {
    fn materialize(&self, request: RequestId) -> Span {
        Span {
            request,
            id: self.id,
            parent: self.parent,
            stage: StageInterner::resolve(self.stage).to_string(),
            start: self.start,
            end: self.end,
        }
    }
}

/// Builds the span tree of one request.
///
/// The tracer keeps a **cursor** in request-relative simulated time.
/// [`Tracer::enter`] opens a child span at the cursor,
/// [`Tracer::charge`] advances the cursor (attributing the elapsed time
/// to every open span), and [`Tracer::exit`] closes the innermost span
/// and feeds its duration into the hub's per-stage histogram. Dropping
/// the tracer finishes the trace: open spans are closed and the whole
/// tree is handed to the [`TelemetryHub`].
#[derive(Debug)]
pub struct Tracer {
    hub: Arc<TelemetryHub>,
    request: RequestId,
    /// Exemplar identity (see [`Tracer::set_key`]); defaults to the
    /// hub-local request id.
    key: u64,
    cursor: SimTime,
    next_id: u64,
    stack: Vec<OpenSpan>,
    done: Vec<RawSpan>,
    /// Stage timings buffered locally and flushed to the hub's
    /// histograms in one batch on drop, so closing a span never takes
    /// the hub's stage lock (shard workers close thousands per second).
    stage_buf: Vec<(StageId, SimTime)>,
}

impl Tracer {
    pub(crate) fn new(hub: Arc<TelemetryHub>, request: RequestId, root_stage: &str) -> Self {
        let mut t = Tracer {
            hub,
            request,
            key: request.0,
            cursor: SimTime::ZERO,
            next_id: 0,
            stack: Vec::new(),
            done: Vec::new(),
            stage_buf: Vec::new(),
        };
        t.enter(root_stage);
        t
    }

    /// The request this tracer traces.
    pub fn request(&self) -> RequestId {
        self.request
    }

    /// Overrides the trace's exemplar key. Hub-local [`RequestId`]s
    /// depend on how requests were partitioned across hubs, so sharded
    /// harnesses set the request's *global* submission index here —
    /// that makes exemplar selection byte-identical at any shard count.
    pub fn set_key(&mut self, key: u64) {
        self.key = key;
    }

    /// The hub this tracer reports to (for bumping counters mid-trace).
    pub fn hub(&self) -> &Arc<TelemetryHub> {
        &self.hub
    }

    /// The cursor: request-relative simulated time charged so far.
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// Opens a child span under the innermost open span.
    pub fn enter(&mut self, stage: &str) {
        let parent = self.stack.last().map(|s| s.id);
        let id = self.next_id;
        self.next_id += 1;
        self.stack.push(OpenSpan {
            id,
            parent,
            stage: StageInterner::intern(stage),
            start: self.cursor,
        });
    }

    /// Advances the cursor by `dt`, attributing the time to every open
    /// span (the innermost is the one whose *exclusive* time grows).
    pub fn charge(&mut self, dt: SimTime) {
        self.cursor += dt;
    }

    /// Closes the innermost open span. The root span can only be closed
    /// by finishing the tracer (dropping it), so unbalanced `exit`s are
    /// caught early instead of corrupting the tree.
    ///
    /// # Panics
    /// When only the root span is open.
    pub fn exit(&mut self) {
        assert!(self.stack.len() > 1, "Tracer::exit would close the root span");
        self.close_innermost();
    }

    /// Convenience: a leaf span of the given stage and duration.
    pub fn span(&mut self, stage: &str, cost: SimTime) {
        self.enter(stage);
        self.charge(cost);
        self.exit();
    }

    /// A zero-duration marker span (e.g. [`crate::stage::CACHE_HIT`]).
    pub fn mark(&mut self, stage: &str) {
        self.span(stage, SimTime::ZERO);
    }

    /// Flushes the buffered stage timings to the hub's histograms
    /// mid-trace, under one lock. Long-running requests (the resilience
    /// ladder between rungs, shard workers between windows) call this
    /// so an observability snapshot taken while the request is still
    /// open sees its closed spans instead of an empty histogram — the
    /// flush-on-drop buffering no longer implies read-side blindness.
    pub fn flush_stages(&mut self) {
        self.hub.record_stage_ids(&self.stage_buf);
        self.stage_buf.clear();
    }

    fn close_innermost(&mut self) {
        let open = self.stack.pop().expect("close_innermost on empty stack");
        let span = RawSpan {
            id: open.id,
            parent: open.parent,
            stage: open.stage,
            start: open.start,
            end: self.cursor,
        };
        self.stage_buf.push((span.stage, SimTime(span.end.0.saturating_sub(span.start.0))));
        self.done.push(span);
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        while !self.stack.is_empty() {
            self.close_innermost();
        }
        // One lock for all buffered stage timings of the request.
        self.hub.record_stage_ids(&std::mem::take(&mut self.stage_buf));
        // Parents close after their children, so sort by id for a
        // stable, root-first export order.
        self.done.sort_by_key(|s| s.id);
        // Labels materialize only when someone will actually hold the
        // spans: the retention store, the exemplar store, or both.
        let exemplify = self.hub.wants_exemplar(self.cursor);
        let retain = self.hub.span_room() > 0;
        if !(exemplify || retain) {
            self.done.clear();
            return;
        }
        let spans: Vec<Span> =
            self.done.drain(..).map(|raw| raw.materialize(self.request)).collect();
        if exemplify {
            let exemplar =
                Exemplar { key: self.key, duration: self.cursor, spans: spans.clone() };
            self.hub.offer_exemplar(exemplar);
        }
        if retain {
            self.hub.absorb(spans);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::TelemetryHub;

    fn hub() -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub::new())
    }

    #[test]
    fn request_ids_are_monotonic() {
        let h = hub();
        let a = h.tracer("root").request();
        let b = h.tracer("root").request();
        let c = h.tracer("root").request();
        assert!(a.0 < b.0 && b.0 < c.0);
    }

    #[test]
    fn nesting_and_ordering() {
        let h = hub();
        {
            let mut t = h.tracer("registry.lookup");
            t.span("policy.decide", SimTime::micros(5));
            t.enter("coverage.match");
            t.charge(SimTime::micros(3));
            t.span("query.rewrite", SimTime::micros(2));
            t.exit();
            t.span("token.sign", SimTime::micros(20));
        }
        let spans = h.spans();
        assert_eq!(spans.len(), 5);
        assert!(single_rooted_tree(&spans));
        // Root first, ids in creation order.
        assert_eq!(spans[0].stage, "registry.lookup");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].duration(), SimTime::micros(30));
        // query.rewrite nests under coverage.match.
        let rewrite = spans.iter().find(|s| s.stage == "query.rewrite").unwrap();
        let coverage = spans.iter().find(|s| s.stage == "coverage.match").unwrap();
        assert_eq!(rewrite.parent, Some(coverage.id));
        assert_eq!(coverage.duration(), SimTime::micros(5));
        assert_eq!(rewrite.start, SimTime::micros(8));
        // token.sign starts after coverage.match ends.
        let sign = spans.iter().find(|s| s.stage == "token.sign").unwrap();
        assert_eq!(sign.start, SimTime::micros(10));
        assert_eq!(sign.end, SimTime::micros(30));
    }

    #[test]
    fn marker_spans_have_zero_duration() {
        let h = hub();
        {
            let mut t = h.tracer("cache.fetch");
            t.mark("cache.hit");
        }
        let spans = h.spans();
        let hit = spans.iter().find(|s| s.stage == "cache.hit").unwrap();
        assert_eq!(hit.duration(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "root span")]
    fn exiting_root_panics() {
        let h = hub();
        let mut t = h.tracer("root");
        t.exit();
    }

    #[test]
    fn tree_checker_rejects_malformed() {
        let s = |id, parent| Span {
            request: RequestId(1),
            id,
            parent,
            stage: "s".into(),
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        };
        assert!(single_rooted_tree(&[s(0, None), s(1, Some(0))]));
        assert!(!single_rooted_tree(&[]));
        assert!(!single_rooted_tree(&[s(0, None), s(1, None)]), "two roots");
        assert!(!single_rooted_tree(&[s(0, None), s(2, Some(1))]), "dangling parent");
        assert!(!single_rooted_tree(&[s(0, None), s(0, Some(0))]), "duplicate id");
    }
}
