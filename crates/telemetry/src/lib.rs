//! # gupster-telemetry
//!
//! End-to-end request telemetry for the GUPster referral pipeline:
//! spans, per-stage latency histograms and machine-readable trace
//! export.
//!
//! Durations are measured in simulated [`SimTime`] — the workspace has
//! no wall clocks in its hot paths, so traces are **deterministic**:
//! the same seed produces byte-identical trace files, which keeps the
//! experiments reproducible and the telemetry assertions testable.
//!
//! * [`Span`]s carry a monotonically-assigned [`RequestId`], nest via
//!   parent links and are labelled with pipeline stages
//!   ([`stage::REGISTRY_LOOKUP`], [`stage::TOKEN_SIGN`], …).
//! * The [`TelemetryHub`] aggregates finished spans into per-stage
//!   log-scale-bucket [`Histogram`]s (p50/p95/p99) and keeps pipeline
//!   [`Counters`].
//! * Two exporters: a human-readable stage table
//!   ([`TelemetryHub::render_stage_table`]) and JSON-lines traces
//!   ([`TelemetryHub::export_jsonl`] / [`export::parse`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod histogram;
pub mod hub;
pub mod intern;
pub mod obs;
pub mod slo;
pub mod span;
pub mod table;

pub use gupster_netsim::SimTime;
pub use histogram::Histogram;
pub use hub::{merge_exemplars, CounterSnapshot, Counters, Exemplar, StageStats, TelemetryHub};
pub use intern::{StageId, StageInterner};
pub use obs::{ExemplarSummary, FleetObs, HotKey, ObsSnapshot, ShardObs, StageRow};
pub use slo::{AttributionRow, SloOutcome, SloSpec};
pub use span::{single_rooted_tree, RequestId, Span, Tracer};

/// Canonical stage labels of the referral pipeline. Free-form labels
/// are accepted everywhere; these constants keep the instrumented
/// crates and the experiment reports in agreement.
pub mod stage {
    /// The registry lookup pipeline (root of a registry-side trace).
    pub const REGISTRY_LOOKUP: &str = "registry.lookup";
    /// Matching the (rewritten) request against the coverage map.
    pub const COVERAGE_MATCH: &str = "coverage.match";
    /// The trie-index candidate walk inside a coverage match.
    pub const COVERAGE_INDEX: &str = "coverage.index";
    /// The privacy shield's decision (PDP rule evaluation).
    pub const POLICY_DECIDE: &str = "policy.decide";
    /// Rewriting the request (narrowing + user-id injection).
    pub const QUERY_REWRITE: &str = "query.rewrite";
    /// Signing the rewritten query (HMAC).
    pub const TOKEN_SIGN: &str = "token.sign";
    /// Verifying a signed query at a data store.
    pub const TOKEN_VERIFY: &str = "token.verify";
    /// Fetching one fragment from a data store.
    pub const STORE_FETCH: &str = "store.fetch";
    /// Adopting fetched fragments into arena documents (zero-copy parse).
    pub const XML_PARSE: &str = "xml.parse";
    /// Deep-unioning fetched fragments.
    pub const XML_MERGE: &str = "xml.merge";
    /// Serializing the merged result for the client.
    pub const XML_SERIALIZE: &str = "xml.serialize";
    /// A result served from cache (zero-duration marker span).
    pub const CACHE_HIT: &str = "cache.hit";
    /// A cache miss falling through to the full pipeline.
    pub const CACHE_MISS: &str = "cache.miss";
    /// Client-side fetch-and-merge of a referral.
    pub const FETCH_MERGE: &str = "fetch.merge";
    /// A fetch coalesced onto an identical in-flight one (singleflight).
    pub const SINGLEFLIGHT_HIT: &str = "fetch.singleflight";
    /// One request processed by a shard worker (root of a sharded
    /// scatter-gather trace).
    pub const SHARD_REQUEST: &str = "shard.request";
    /// Network time of the client↔registry lookup exchange.
    pub const NET_LOOKUP: &str = "net.lookup";
    /// Network time of fragment fetches (parallel fan-out).
    pub const NET_FETCH: &str = "net.fetch";
    /// Network time returning the merged result to the client.
    pub const NET_RETURN: &str = "net.return";
    /// Root span of a resilient request (deadline + retry + fallback).
    pub const RESILIENCE_REQUEST: &str = "resilience.request";
    /// Deterministic backoff wait before a retry attempt.
    pub const RETRY_BACKOFF: &str = "resilience.backoff";
    /// Fallback to the next rung of the degradation ladder (marker).
    pub const FALLBACK: &str = "resilience.fallback";
    /// A stale-cache serve after every rung failed (marker).
    pub const STALE_SERVE: &str = "resilience.stale";
    /// A request abandoned on deadline-budget exhaustion (marker).
    pub const DEADLINE_EXCEEDED: &str = "resilience.deadline";
    /// Root span of a two-way changelog sync session.
    pub const SYNC_SESSION: &str = "sync.session";
    /// Shipping changelog operations between the replica pair.
    pub const SYNC_SHIP: &str = "sync.ship";
    /// Detecting conflicting change pairs (reconciliation).
    pub const SYNC_RECONCILE: &str = "sync.reconcile";
    /// Applying accepted remote operations to the local document.
    pub const SYNC_APPLY: &str = "sync.apply";
    /// The slow path: full-document exchange and deep merge (marker
    /// plus cost when taken).
    pub const SYNC_SLOW: &str = "sync.slow";
    /// Changelog compaction: truncation below the live-anchor floor
    /// plus superseded-op coalescing and insert+delete annihilation.
    pub const SYNC_COMPACT: &str = "sync.compact";
    /// Delta-session reconciliation: building/probing the touched-path
    /// index and dictionary-encoding the shipped op batches.
    pub const SYNC_DELTA: &str = "sync.delta";
    /// One admission-control decision at an ingress queue (fixed cost
    /// per open-loop arrival).
    pub const ADMISSION_DECIDE: &str = "admission.decide";
    /// End-to-end sojourn (queue wait + service) of a call-delivery
    /// class request under open-loop load.
    pub const CLASS_CALL_DELIVERY: &str = "class.call_delivery";
    /// End-to-end sojourn of a profile-edit / bulk class request under
    /// open-loop load.
    pub const CLASS_PROFILE_EDIT: &str = "class.profile_edit";
    /// Matching one store change event against the inverted
    /// subscription index (trie walk + candidate confirmation).
    pub const SUBS_INDEX: &str = "subs.index";
}
