//! Stage-label interning for the span hot path.
//!
//! Every span close used to clone its stage label into an owned
//! `String` twice — once into the tracer's stage buffer and once into
//! the retained [`crate::Span`]. Under the sharded executor that is
//! two heap allocations per span at millions of spans per run, all for
//! labels drawn from a vocabulary of a few dozen constants.
//!
//! [`StageInterner`] applies the PR-4 `PathInterner` pattern to stage
//! labels: a process-wide table maps each distinct label to a dense
//! [`StageId`]. The tracer's open-span stack, its stage buffer and the
//! hub's histogram map all key on `StageId`, so the hot path moves
//! `u32`s; label strings are materialized only when a trace is actually
//! retained or exported. Interning an already-known label takes the
//! read lock only — the write lock is touched once per distinct label
//! per process lifetime.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned stage-label id. Two `StageId`s are equal iff the labels
/// they were interned from are equal, so stage comparison and histogram
/// bucketing work on `u32`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u32);

/// The process-wide stage-label interner. All methods are associated
/// functions over a global table behind an `RwLock`, mirroring the
/// xpath segment interner: interning a known label takes the read lock,
/// a novel label (rare — the stage vocabulary is small and fixed) takes
/// the write lock once.
#[derive(Debug, Default)]
pub struct StageInterner {
    map: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

fn global() -> &'static RwLock<StageInterner> {
    static GLOBAL: OnceLock<RwLock<StageInterner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(StageInterner::default()))
}

impl StageInterner {
    /// Interns `label`, returning its stable [`StageId`]. Idempotent.
    pub fn intern(label: &str) -> StageId {
        if let Some(id) = Self::lookup(label) {
            return id;
        }
        let mut g = global().write().expect("stage interner lock");
        if let Some(&id) = g.map.get(label) {
            return StageId(id);
        }
        let id = g.names.len() as u32;
        let shared: Arc<str> = Arc::from(label);
        g.names.push(Arc::clone(&shared));
        g.map.insert(shared, id);
        StageId(id)
    }

    /// The [`StageId`] of `label` if it was ever interned. Read-lock
    /// only.
    pub fn lookup(label: &str) -> Option<StageId> {
        global().read().expect("stage interner lock").map.get(label).copied().map(StageId)
    }

    /// The label a [`StageId`] was interned from, as a cheaply cloned
    /// shared string.
    pub fn resolve(id: StageId) -> Arc<str> {
        Arc::clone(&global().read().expect("stage interner lock").names[id.0 as usize])
    }

    /// Number of distinct labels interned so far.
    pub fn len() -> usize {
        global().read().expect("stage interner lock").names.len()
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&StageInterner::resolve(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_comparable() {
        let a = StageInterner::intern("store.fetch");
        let b = StageInterner::intern("store.fetch");
        let c = StageInterner::intern("stage-intern-test.unique");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(&*StageInterner::resolve(a), "store.fetch");
        assert_eq!(StageInterner::lookup("store.fetch"), Some(a));
        assert_eq!(a.to_string(), "store.fetch");
        assert!(StageInterner::len() >= 2);
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        let before = StageInterner::len();
        assert_eq!(StageInterner::lookup("never-a-stage-label-xyzzy"), None);
        assert_eq!(StageInterner::len(), before);
    }

    #[test]
    fn interner_is_thread_safe() {
        let ids: Vec<StageId> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| StageInterner::intern("concurrent.stage")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
