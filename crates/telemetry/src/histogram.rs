//! Log-scale-bucket latency histograms.

use gupster_netsim::SimTime;

/// Number of buckets: bucket 0 holds exact zeros, bucket `k ≥ 1` holds
/// durations in `[2^(k-1), 2^k)` microseconds, and the last bucket
/// absorbs everything from `2^62` µs up (the overflow bucket).
pub const BUCKETS: usize = 64;

/// A fixed-size log₂-bucket histogram of [`SimTime`] durations.
///
/// Recording is O(1); quantiles are answered from cumulative bucket
/// counts and reported as the bucket's upper bound clamped to the
/// observed maximum, so the error is bounded by the bucket width (a
/// factor of two) and `quantile(1.0)` is exact.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

/// The bucket index a duration of `us` microseconds falls into.
pub fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of a bucket, in microseconds.
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimTime) {
        self.counts[bucket_of(d.0)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(d.0);
        self.max = self.max.max(d.0);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded duration.
    pub fn max(&self) -> SimTime {
        SimTime(self.max)
    }

    /// Mean duration (zero when empty).
    pub fn mean(&self) -> SimTime {
        SimTime(self.sum.checked_div(self.count).unwrap_or(0))
    }

    /// The `q`-quantile (0.0–1.0) as the upper bound of the bucket the
    /// rank falls into, clamped to the observed maximum. Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimTime(bucket_upper_bound(i).min(self.max));
            }
        }
        SimTime(self.max)
    }

    /// Median.
    pub fn p50(&self) -> SimTime {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> SimTime {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimTime {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self`, bucket by bucket. The
    /// scatter-gather join uses this to merge per-shard histograms into
    /// fleet histograms: bucket-wise addition is associative and
    /// commutative, so the merged result is identical for any shard
    /// count and any merge order — the determinism the observability
    /// snapshot's byte-identity guarantee rests on.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples strictly above the bucket containing
    /// `threshold` — the histogram's resolution-bounded count of
    /// SLO-violating samples. Samples sharing the threshold's bucket
    /// are counted as *within* budget (the under-count is bounded by
    /// one bucket width), so the estimate is conservative, deterministic
    /// and merge-stable.
    pub fn count_over(&self, threshold: SimTime) -> u64 {
        let cut = bucket_of(threshold.0);
        self.counts.iter().skip(cut + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn zero_durations_stay_in_bucket_zero() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(SimTime::ZERO);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.p50(), SimTime::ZERO);
        assert_eq!(h.p99(), SimTime::ZERO);
        assert_eq!(h.max(), SimTime::ZERO);
        assert_eq!(h.mean(), SimTime::ZERO);
    }

    #[test]
    fn max_bucket_absorbs_overflow() {
        let mut h = Histogram::new();
        h.record(SimTime(u64::MAX));
        h.record(SimTime(u64::MAX - 1));
        assert_eq!(h.count(), 2);
        // Quantiles clamp to the observed max instead of reporting the
        // unbounded bucket limit. Both records share the overflow
        // bucket, so p50 resolves to the same clamped bound.
        assert_eq!(h.quantile(1.0), SimTime(u64::MAX));
        assert_eq!(h.p50(), SimTime(u64::MAX));
        // The sum saturates rather than wrapping.
        assert!(h.mean() >= SimTime(u64::MAX / 2));
    }

    #[test]
    fn quantiles_bounded_by_bucket_width() {
        let mut h = Histogram::new();
        for us in [100u64, 200, 300, 400, 10_000] {
            h.record(SimTime::micros(us));
        }
        // Each quantile is ≥ the true value and < 2× it (the true p50
        // is 300µs; its bucket's upper bound is 511µs).
        let p50 = h.p50().0;
        assert!((300..600).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), SimTime::micros(10_000));
        assert_eq!(h.quantile(0.0), SimTime(bucket_upper_bound(bucket_of(100))));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for us in 1..=50u64 {
            let h = if us % 2 == 0 { &mut a } else { &mut b };
            h.record(SimTime::micros(us * 13));
            whole.record(SimTime::micros(us * 13));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.max(), whole.max());
        assert_eq!(merged.mean(), whole.mean());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q={q}");
        }
        // Merge order does not matter.
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(flipped.p99(), merged.p99());
    }

    #[test]
    fn count_over_is_conservative() {
        let mut h = Histogram::new();
        for us in [10u64, 100, 1000, 10_000, 100_000] {
            h.record(SimTime::micros(us));
        }
        // 1000µs lives in bucket [512, 1024); everything above that
        // bucket counts as over.
        assert_eq!(h.count_over(SimTime::micros(1000)), 2);
        assert_eq!(h.count_over(SimTime::ZERO), 5);
        assert_eq!(h.count_over(SimTime::micros(200_000)), 0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.p50(), SimTime::ZERO);
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.max(), SimTime::ZERO);
        assert_eq!(h.count(), 0);
    }
}
