//! The fleet observability snapshot: per-shard gauges, merged stage
//! histograms, counter totals, tail-latency exemplars and hot-key
//! views, in one machine-readable [`ObsSnapshot`].
//!
//! The snapshot is assembled at the scatter-gather join by merging
//! per-shard [`crate::TelemetryHub`]s. Every merged section is
//! **shard-count invariant**: histograms merge bucket-wise
//! ([`crate::Histogram::merge`]), counters sum field-wise, exemplar
//! top-k selection runs under a total order ([`crate::hub::Exemplar::
//! rank_cmp`]) and hot-key counts sum by name — so
//! [`ObsSnapshot::fleet_json`] is byte-identical whether the same
//! seeded workload ran on 1 shard or 8. Per-shard rows are naturally
//! shaped by the shard count and live outside the invariant section.
//!
//! The JSON codec follows the workspace's line-oriented hand-rolled
//! idiom (no serde): one self-describing row object per line,
//! discriminated by its `"row"` key, so the parser is a line scanner.

use std::fmt::Write as _;

use gupster_netsim::SimTime;

use crate::hub::{CounterSnapshot, Exemplar, StageStats};
use crate::{stage, table};

/// One shard's gauges at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardObs {
    /// Shard index.
    pub shard: usize,
    /// Requests the shard has processed.
    pub requests: u64,
    /// Simulated busy time the shard accumulated.
    pub busy: SimTime,
    /// `busy / fleet makespan` — 1.0 means this shard was the critical
    /// path of every batch window.
    pub utilization: f64,
    /// Scatter windows the shard participated in.
    pub windows: u64,
    /// Deepest per-window queue (requests routed to the shard in one
    /// scatter window).
    pub queued_max: u64,
    /// Mean per-window queue depth.
    pub queued_mean: f64,
    /// p99 of the shard's `shard.request` root spans.
    pub p99_request: SimTime,
    /// The shard's own pipeline counters.
    pub counters: CounterSnapshot,
}

/// One merged per-stage latency row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Stage label.
    pub stage: String,
    /// Statistics of the merged (fleet-wide) histogram.
    pub stats: StageStats,
}

/// One hot-key row (user or path) of the top-k skew view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotKey {
    /// The key (user id or path text).
    pub name: String,
    /// Requests that carried the key.
    pub count: u64,
}

/// A tail exemplar reduced to its reportable form: stable key, total
/// duration, serve provenance and the per-stage *self time* breakdown
/// (each stage's exclusive time, children subtracted) that attributes
/// the tail latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemplarSummary {
    /// Stable, shard-independent request key.
    pub key: u64,
    /// End-to-end duration.
    pub duration: SimTime,
    /// How the request was ultimately served: `fresh`, `cached`,
    /// `degraded` (a fallback rung answered), `stale` (stale-cache
    /// serve) or `deadline` (budget exhausted).
    pub provenance: String,
    /// Per-stage self time, largest share first (ties by label).
    pub breakdown: Vec<(String, SimTime)>,
}

impl ExemplarSummary {
    /// Reduces a full exemplar span tree to its summary.
    pub fn from_exemplar(ex: &Exemplar) -> ExemplarSummary {
        let spans = &ex.spans;
        let mut child_sum = std::collections::BTreeMap::<u64, u64>::new();
        for s in spans {
            if let Some(p) = s.parent {
                *child_sum.entry(p).or_default() += s.duration().0;
            }
        }
        let mut per_stage = std::collections::BTreeMap::<&str, u64>::new();
        for s in spans {
            let self_time =
                s.duration().0.saturating_sub(child_sum.get(&s.id).copied().unwrap_or(0));
            *per_stage.entry(s.stage.as_str()).or_default() += self_time;
        }
        let mut breakdown: Vec<(String, SimTime)> =
            per_stage.into_iter().map(|(k, v)| (k.to_string(), SimTime(v))).collect();
        breakdown.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let has = |label: &str| spans.iter().any(|s| s.stage == label);
        let provenance = if has(stage::STALE_SERVE) {
            "stale"
        } else if has(stage::DEADLINE_EXCEEDED) {
            "deadline"
        } else if has(stage::FALLBACK) {
            "degraded"
        } else if has(stage::CACHE_HIT) {
            "cached"
        } else {
            "fresh"
        };
        ExemplarSummary {
            key: ex.key,
            duration: ex.duration,
            provenance: provenance.to_string(),
            breakdown,
        }
    }
}

/// The shard-count-invariant (merged) section of the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetObs {
    /// Requests processed fleet-wide.
    pub requests: u64,
    /// Total simulated busy time across all shards (the one-core
    /// cost of the workload — shard-count invariant, unlike the
    /// makespan, which lives next to the shard rows).
    pub busy: SimTime,
    /// Summed pipeline counters.
    pub totals: CounterSnapshot,
    /// Merged per-stage latency rows, sorted by stage label.
    pub stages: Vec<StageRow>,
    /// Fleet-wide top-k tail exemplars, slowest first.
    pub exemplars: Vec<ExemplarSummary>,
    /// Top-k hottest profile owners.
    pub hot_users: Vec<HotKey>,
    /// Top-k hottest requested paths.
    pub hot_paths: Vec<HotKey>,
}

/// The full observability snapshot: the merged fleet section plus the
/// deployment-shaped part (makespan and one row per shard).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Merged, shard-count-invariant section.
    pub fleet: FleetObs,
    /// Accumulated makespan (sum over scatter windows of the busiest
    /// shard's window time) — the fleet's simulated wall clock. A
    /// parallelism metric, so it lives outside the invariant section.
    pub makespan: SimTime,
    /// Per-shard gauges, shard order.
    pub shards: Vec<ShardObs>,
}

fn counter_rows(out: &mut String, scope: &str, c: &CounterSnapshot, comma: bool) {
    let fields = c.named_fields();
    for (i, (name, value)) in fields.iter().enumerate() {
        let trailing = if comma || i + 1 < fields.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"row\": \"counter\", \"scope\": \"{scope}\", \"name\": \"{name}\", \
             \"value\": {value}}}{trailing}"
        );
    }
}

fn fleet_rows(out: &mut String, f: &FleetObs, comma_after_last: bool) {
    let _ = writeln!(
        out,
        "    {{\"row\": \"fleet\", \"requests\": {}, \"busy_us\": {}}},",
        f.requests, f.busy.0
    );
    counter_rows(out, "fleet", &f.totals, true);
    for r in &f.stages {
        let s = &r.stats;
        let _ = writeln!(
            out,
            "    {{\"row\": \"stage\", \"stage\": \"{}\", \"count\": {}, \"p50_us\": {}, \
             \"p95_us\": {}, \"p99_us\": {}, \"mean_us\": {}, \"max_us\": {}}},",
            r.stage, s.count, s.p50.0, s.p95.0, s.p99.0, s.mean.0, s.max.0
        );
    }
    for e in &f.exemplars {
        let breakdown: Vec<String> =
            e.breakdown.iter().map(|(s, t)| format!("{s}={}", t.0)).collect();
        let _ = writeln!(
            out,
            "    {{\"row\": \"exemplar\", \"key\": {}, \"duration_us\": {}, \
             \"provenance\": \"{}\", \"breakdown\": \"{}\"}},",
            e.key,
            e.duration.0,
            e.provenance,
            breakdown.join(";")
        );
    }
    let mut hot = Vec::new();
    for h in &f.hot_users {
        hot.push(("hot_user", h));
    }
    for h in &f.hot_paths {
        hot.push(("hot_path", h));
    }
    for (i, (row, h)) in hot.iter().enumerate() {
        let trailing = if comma_after_last || i + 1 < hot.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"row\": \"{row}\", \"name\": \"{}\", \"count\": {}}}{trailing}",
            h.name, h.count
        );
    }
}

impl ObsSnapshot {
    /// Serializes the whole snapshot as line-oriented JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"snapshot\": \"gupster-obs\",");
        let _ = writeln!(out, "  \"rows\": [");
        fleet_rows(&mut out, &self.fleet, true);
        let _ = writeln!(
            out,
            "    {{\"row\": \"layout\", \"shards\": {}, \"makespan_us\": {}}}{}",
            self.shards.len(),
            self.makespan.0,
            if self.shards.is_empty() { "" } else { "," }
        );
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"row\": \"shard\", \"shard\": {}, \"requests\": {}, \"busy_us\": {}, \
                 \"utilization\": {:.4}, \"windows\": {}, \"queued_max\": {}, \
                 \"queued_mean\": {:.2}, \"p99_request_us\": {}}},",
                s.shard,
                s.requests,
                s.busy.0,
                s.utilization,
                s.windows,
                s.queued_max,
                s.queued_mean,
                s.p99_request.0
            );
            counter_rows(&mut out, &format!("shard{}", s.shard), &s.counters, i + 1 < self.shards.len());
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Serializes only the shard-count-invariant fleet section — the
    /// artifact the byte-identity guarantee (and its differential
    /// tests) quantify over.
    pub fn fleet_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"snapshot\": \"gupster-obs-fleet\",");
        let _ = writeln!(out, "  \"rows\": [");
        fleet_rows(&mut out, &self.fleet, false);
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses [`ObsSnapshot::render_json`] output back. Rows may
    /// arrive in any order; unknown row kinds are an error (a
    /// truncated or foreign artifact must fail loudly).
    pub fn parse_json(text: &str) -> Result<ObsSnapshot, String> {
        let mut fleet = FleetObs {
            requests: 0,
            busy: SimTime::ZERO,
            totals: CounterSnapshot::default(),
            stages: Vec::new(),
            exemplars: Vec::new(),
            hot_users: Vec::new(),
            hot_paths: Vec::new(),
        };
        let mut makespan = SimTime::ZERO;
        let mut shards: Vec<ShardObs> = Vec::new();
        let mut saw_fleet = false;
        for line in text.lines() {
            if !line.contains("\"row\"") {
                continue;
            }
            let row = scan_str(line, "row").ok_or_else(|| format!("no row kind in: {line}"))?;
            match row.as_str() {
                "fleet" => {
                    saw_fleet = true;
                    fleet.requests = scan_u64(line, "requests")?;
                    fleet.busy = SimTime(scan_u64(line, "busy_us")?);
                }
                "layout" => {
                    makespan = SimTime(scan_u64(line, "makespan_us")?);
                    let n = scan_u64(line, "shards")? as usize;
                    if n > 0 {
                        shard_slot(&mut shards, n - 1);
                    }
                }
                "counter" => {
                    let scope =
                        scan_str(line, "scope").ok_or_else(|| format!("no scope in: {line}"))?;
                    let name =
                        scan_str(line, "name").ok_or_else(|| format!("no name in: {line}"))?;
                    let value = scan_u64(line, "value")?;
                    let target = if scope == "fleet" {
                        &mut fleet.totals
                    } else {
                        let idx: usize = scope
                            .strip_prefix("shard")
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| format!("bad counter scope {scope:?}"))?;
                        &mut shard_slot(&mut shards, idx).counters
                    };
                    if !target.set_field(&name, value) {
                        return Err(format!("unknown counter {name:?}"));
                    }
                }
                "stage" => {
                    let label = scan_str(line, "stage")
                        .ok_or_else(|| format!("no stage label in: {line}"))?;
                    fleet.stages.push(StageRow {
                        stage: label,
                        stats: StageStats {
                            count: scan_u64(line, "count")?,
                            p50: SimTime(scan_u64(line, "p50_us")?),
                            p95: SimTime(scan_u64(line, "p95_us")?),
                            p99: SimTime(scan_u64(line, "p99_us")?),
                            mean: SimTime(scan_u64(line, "mean_us")?),
                            max: SimTime(scan_u64(line, "max_us")?),
                        },
                    });
                }
                "exemplar" => {
                    let breakdown_text = scan_str(line, "breakdown")
                        .ok_or_else(|| format!("no breakdown in: {line}"))?;
                    let mut breakdown = Vec::new();
                    for part in breakdown_text.split(';').filter(|p| !p.is_empty()) {
                        let (label, us) = part
                            .rsplit_once('=')
                            .ok_or_else(|| format!("bad breakdown part {part:?}"))?;
                        let us: u64 =
                            us.parse().map_err(|e| format!("bad breakdown time: {e}"))?;
                        breakdown.push((label.to_string(), SimTime(us)));
                    }
                    fleet.exemplars.push(ExemplarSummary {
                        key: scan_u64(line, "key")?,
                        duration: SimTime(scan_u64(line, "duration_us")?),
                        provenance: scan_str(line, "provenance")
                            .ok_or_else(|| format!("no provenance in: {line}"))?,
                        breakdown,
                    });
                }
                "hot_user" | "hot_path" => {
                    let key = HotKey {
                        name: scan_str(line, "name")
                            .ok_or_else(|| format!("no name in: {line}"))?,
                        count: scan_u64(line, "count")?,
                    };
                    if row == "hot_user" {
                        fleet.hot_users.push(key);
                    } else {
                        fleet.hot_paths.push(key);
                    }
                }
                "shard" => {
                    let idx = scan_u64(line, "shard")? as usize;
                    let slot = shard_slot(&mut shards, idx);
                    slot.requests = scan_u64(line, "requests")?;
                    slot.busy = SimTime(scan_u64(line, "busy_us")?);
                    slot.utilization = scan_f64(line, "utilization")?;
                    slot.windows = scan_u64(line, "windows")?;
                    slot.queued_max = scan_u64(line, "queued_max")?;
                    slot.queued_mean = scan_f64(line, "queued_mean")?;
                    slot.p99_request = SimTime(scan_u64(line, "p99_request_us")?);
                }
                other => return Err(format!("unknown row kind {other:?}")),
            }
        }
        if !saw_fleet {
            return Err("snapshot has no fleet row".to_string());
        }
        Ok(ObsSnapshot { fleet, makespan, shards })
    }

    /// Renders the live-style text dashboard.
    pub fn render_dashboard(&self) -> String {
        let f = &self.fleet;
        let mut out = String::new();
        let _ = writeln!(out, "== GUPster fleet dashboard ==");
        let _ = writeln!(
            out,
            "fleet: {} requests | {} shards | busy {} | makespan {}",
            f.requests,
            self.shards.len(),
            table::fmt_time(f.busy),
            table::fmt_time(self.makespan)
        );
        if !self.shards.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "  {:>5}  {:<22} {:>9} {:>10} {:>7} {:>8} {:>10}",
                "shard", "utilization", "requests", "busy", "q.max", "q.mean", "p99(req)"
            );
            for s in &self.shards {
                let filled = (s.utilization * 20.0).round().clamp(0.0, 20.0) as usize;
                let bar: String =
                    "#".repeat(filled) + &" ".repeat(20usize.saturating_sub(filled));
                let _ = writeln!(
                    out,
                    "  {:>5}  [{bar}] {:>8} {:>10} {:>7} {:>8.2} {:>10}",
                    s.shard,
                    s.requests,
                    table::fmt_time(s.busy),
                    s.queued_max,
                    s.queued_mean,
                    table::fmt_time(s.p99_request)
                );
            }
        }
        let t = &f.totals;
        let pct = |num: u64, den: u64| -> String {
            if den == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * num as f64 / den as f64)
            }
        };
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "hit rates: memo {} | trie {} | singleflight {} | cache {}",
            pct(t.memo_hits, t.lookups),
            pct(t.trie_hits, t.lookups),
            pct(t.singleflight_hits, t.lookups),
            pct(t.cache_hits, t.cache_hits + t.cache_misses)
        );
        let _ = writeln!(
            out,
            "ladder: retries {} | fallbacks {} | stale {} | deadline {} | denials {}",
            t.retries, t.fallbacks, t.stale_serves, t.deadline_exceeded, t.policy_denials
        );
        let _ = writeln!(
            out,
            "fetch: batched {} | verifications {} | referrals {}",
            t.batched_fetches, t.signature_verifications, t.referrals
        );
        if t.sync_sessions > 0 {
            let _ = writeln!(
                out,
                "sync: sessions {} | ops {} | conflicts {} | slow {}",
                t.sync_sessions, t.sync_ops_shipped, t.sync_conflicts, t.sync_slow_paths
            );
        }
        let hot_line = |keys: &[HotKey]| -> String {
            keys.iter().map(|h| format!("{} ({})", h.name, h.count)).collect::<Vec<_>>().join("  ")
        };
        if !f.hot_users.is_empty() {
            let _ = writeln!(out, "hottest users: {}", hot_line(&f.hot_users));
        }
        if !f.hot_paths.is_empty() {
            let _ = writeln!(out, "hottest paths: {}", hot_line(&f.hot_paths));
        }
        if !f.stages.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "  {:<24} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "stage (merged)", "count", "p50", "p95", "p99", "max"
            );
            for r in &f.stages {
                let s = &r.stats;
                let _ = writeln!(
                    out,
                    "  {:<24} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    r.stage,
                    s.count,
                    table::fmt_time(s.p50),
                    table::fmt_time(s.p95),
                    table::fmt_time(s.p99),
                    table::fmt_time(s.max)
                );
            }
        }
        if !f.exemplars.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "tail exemplars (slowest first):");
            for e in &f.exemplars {
                let top: Vec<String> = e
                    .breakdown
                    .iter()
                    .take(4)
                    .map(|(label, t)| {
                        let share = if e.duration.0 == 0 {
                            0.0
                        } else {
                            100.0 * t.0 as f64 / e.duration.0 as f64
                        };
                        format!("{label} {share:.0}%")
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "  key {:>6}  {:>9}  {:<8}  {}",
                    e.key,
                    table::fmt_time(e.duration),
                    e.provenance,
                    top.join(" | ")
                );
            }
        }
        out
    }
}

fn shard_slot(shards: &mut Vec<ShardObs>, idx: usize) -> &mut ShardObs {
    while shards.len() <= idx {
        let shard = shards.len();
        shards.push(ShardObs {
            shard,
            requests: 0,
            busy: SimTime::ZERO,
            utilization: 0.0,
            windows: 0,
            queued_max: 0,
            queued_mean: 0.0,
            p99_request: SimTime::ZERO,
            counters: CounterSnapshot::default(),
        });
    }
    &mut shards[idx]
}

fn scan_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    Some(line[at..].trim_start())
}

fn scan_str(line: &str, key: &str) -> Option<String> {
    let rest = scan_after(line, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn scan_u64(line: &str, key: &str) -> Result<u64, String> {
    let rest = scan_after(line, key).ok_or_else(|| format!("no {key} in: {line}"))?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|e| format!("bad {key}: {e}"))
}

fn scan_f64(line: &str, key: &str) -> Result<f64, String> {
    let rest = scan_after(line, key).ok_or_else(|| format!("no {key} in: {line}"))?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|e| format!("bad {key}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{RequestId, Span};

    fn sample() -> ObsSnapshot {
        let mut totals = CounterSnapshot::default();
        totals.set_field("lookups", 100);
        totals.set_field("memo_hits", 80);
        totals.set_field("sync_conflicts", 2);
        let mut shard_counters = CounterSnapshot::default();
        shard_counters.set_field("lookups", 60);
        ObsSnapshot {
            fleet: FleetObs {
                requests: 100,
                busy: SimTime::millis(12),
                totals,
                stages: vec![StageRow {
                    stage: "store.fetch".to_string(),
                    stats: StageStats {
                        count: 100,
                        p50: SimTime::micros(60),
                        p95: SimTime::micros(120),
                        p99: SimTime::micros(250),
                        mean: SimTime::micros(70),
                        max: SimTime::micros(400),
                    },
                }],
                exemplars: vec![ExemplarSummary {
                    key: 42,
                    duration: SimTime::micros(400),
                    provenance: "fresh".to_string(),
                    breakdown: vec![
                        ("store.fetch".to_string(), SimTime::micros(300)),
                        ("xml.merge".to_string(), SimTime::micros(100)),
                    ],
                }],
                hot_users: vec![HotKey { name: "u7".to_string(), count: 31 }],
                hot_paths: vec![HotKey {
                    name: "/user[@id='u7']/presence".to_string(),
                    count: 29,
                }],
            },
            makespan: SimTime::millis(4),
            shards: vec![
                ShardObs {
                    shard: 0,
                    requests: 60,
                    busy: SimTime::millis(8),
                    utilization: 0.75,
                    windows: 4,
                    queued_max: 20,
                    queued_mean: 15.0,
                    p99_request: SimTime::micros(300),
                    counters: shard_counters,
                },
                ShardObs {
                    shard: 1,
                    requests: 40,
                    busy: SimTime::millis(4),
                    utilization: 0.5,
                    windows: 4,
                    queued_max: 12,
                    queued_mean: 10.0,
                    p99_request: SimTime::micros(260),
                    counters: CounterSnapshot::default(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let text = snap.render_json();
        let back = ObsSnapshot::parse_json(&text).unwrap();
        assert_eq!(back, snap);
        // Rendering the parse is byte-identical to the original render.
        assert_eq!(back.render_json(), text);
    }

    #[test]
    fn fleet_json_excludes_shard_rows() {
        let snap = sample();
        let fleet = snap.fleet_json();
        assert!(!fleet.contains("\"row\": \"shard\""));
        assert!(!fleet.contains("shard0"));
        assert!(fleet.contains("\"row\": \"stage\""));
        let mut one = snap.clone();
        one.shards.truncate(1);
        assert_eq!(one.fleet_json(), fleet, "fleet section ignores shard layout");
    }

    #[test]
    fn parse_rejects_foreign_rows() {
        assert!(ObsSnapshot::parse_json("{\"row\": \"mystery\"}").is_err());
        assert!(ObsSnapshot::parse_json("no rows").is_err(), "fleet row required");
    }

    #[test]
    fn dashboard_mentions_the_load_bearing_numbers() {
        let text = sample().render_dashboard();
        for needle in [
            "fleet dashboard",
            "100 requests",
            "memo 80.0%",
            "store.fetch",
            "key     42",
            "hottest users: u7 (31)",
            "q.max",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn exemplar_summary_attributes_self_time() {
        let span = |id, parent, stage: &str, start: u64, end: u64| Span {
            request: RequestId(0),
            id,
            parent,
            stage: stage.to_string(),
            start: SimTime::micros(start),
            end: SimTime::micros(end),
        };
        let ex = Exemplar {
            key: 9,
            duration: SimTime::micros(100),
            spans: vec![
                span(0, None, "shard.request", 0, 100),
                span(1, Some(0), "store.fetch", 10, 70),
                span(2, Some(0), "resilience.fallback", 70, 70),
            ],
        };
        let sum = ExemplarSummary::from_exemplar(&ex);
        assert_eq!(sum.provenance, "degraded");
        // Root self time = 100 - 60 (fetch) - 0 (marker) = 40.
        assert_eq!(
            sum.breakdown,
            vec![
                ("store.fetch".to_string(), SimTime::micros(60)),
                ("shard.request".to_string(), SimTime::micros(40)),
                ("resilience.fallback".to_string(), SimTime::ZERO),
            ]
        );
    }
}
