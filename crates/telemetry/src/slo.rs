//! SLO tracking: error budgets and burn rates over the simulated
//! clock, and the `BENCH_slo.json` artifact the CI gate reads.
//!
//! The paper's delivery constraint — resolve reach-me profiles in
//! "hundreds of milliseconds" — is an SLO, so we model it the SRE way:
//!
//! * an [`SloSpec`] names an objective: a latency budget (`p99 ≤
//!   budget`) over a stage histogram, an availability target
//!   (`good/(good+bad) ≥ target`), or both;
//! * the **error budget** is the allowed bad fraction, `1 − target`;
//! * the **burn rate** is `observed bad fraction / error budget` over
//!   the evaluated simulated window — 1.0 means the run consumed its
//!   budget exactly, above 1.0 the objective regressed.
//!
//! For latency objectives a request is *bad* when its duration exceeds
//! the budget; the count comes from
//! [`crate::Histogram::count_over`], so it is deterministic,
//! merge-stable and conservative by at most one log₂ bucket. Every
//! evaluation happens on simulated time, so the artifact is
//! byte-identical run to run and across shard counts, and
//! `bench_compare --slo` re-derives the verdict from the recorded
//! observations instead of trusting a pre-computed pass flag.

use std::fmt::Write as _;

use gupster_netsim::SimTime;

use crate::histogram::Histogram;

/// One service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (`call-path-p99`, `fault-availability`, …).
    pub name: String,
    /// The stage histogram the objective measures (informational).
    pub stage: String,
    /// p99 latency budget; `SimTime::ZERO` means no latency objective.
    pub p99_budget: SimTime,
    /// Availability target in `[0, 1]`; `0.0` means no availability
    /// objective. Also defines the error budget for the burn rate.
    pub target: f64,
}

/// The evaluated outcome of one [`SloSpec`] over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloOutcome {
    /// The objective.
    pub spec: SloSpec,
    /// Events evaluated (requests).
    pub count: u64,
    /// Observed p99.
    pub p99: SimTime,
    /// Events within the objective.
    pub good: u64,
    /// Events outside the objective.
    pub bad: u64,
    /// `good / count` (1.0 when empty).
    pub availability: f64,
    /// Allowed bad fraction, `1 − target`.
    pub error_budget: f64,
    /// `(bad/count) / error_budget`; 0.0 when no target is set.
    pub burn_rate: f64,
    /// The simulated window the outcome covers.
    pub window: SimTime,
    /// Whether every stated objective held.
    pub ok: bool,
}

fn finish(spec: SloSpec, count: u64, p99: SimTime, bad: u64, window: SimTime) -> SloOutcome {
    let good = count - bad;
    let availability = if count == 0 { 1.0 } else { good as f64 / count as f64 };
    let error_budget = 1.0 - spec.target;
    let burn_rate = if spec.target <= 0.0 || count == 0 {
        0.0
    } else if error_budget <= 0.0 {
        // A 100% target has no budget: any bad event is infinite burn.
        if bad > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (bad as f64 / count as f64) / error_budget
    };
    let ok = verdict(spec.p99_budget, p99, spec.target, availability, burn_rate);
    SloOutcome {
        spec,
        count,
        p99,
        good,
        bad,
        availability,
        error_budget,
        burn_rate,
        window,
        ok,
    }
}

/// The pass/fail rule, shared by the evaluator and the CI gate (which
/// re-derives it from the recorded observations): the observed p99
/// must fit the latency budget, and the availability must meet the
/// target — equivalently, the burn rate must not exceed 1.0.
pub fn verdict(
    p99_budget: SimTime,
    p99: SimTime,
    target: f64,
    availability: f64,
    burn_rate: f64,
) -> bool {
    let latency_ok = p99_budget == SimTime::ZERO || p99 <= p99_budget;
    let availability_ok = target <= 0.0 || (availability >= target && burn_rate <= 1.0);
    latency_ok && availability_ok
}

/// Evaluates a latency objective over a stage histogram: events above
/// the p99 budget burn the error budget.
pub fn evaluate_latency(spec: SloSpec, hist: &Histogram, window: SimTime) -> SloOutcome {
    let count = hist.count();
    let bad = hist.count_over(spec.p99_budget);
    finish(spec, count, hist.p99(), bad, window)
}

/// Evaluates an availability objective from explicit good/bad event
/// counts (e.g. the E15 fault sweep's served vs. failed requests),
/// with the observed p99 carried for reporting.
pub fn evaluate_availability(
    spec: SloSpec,
    good: u64,
    bad: u64,
    p99: SimTime,
    window: SimTime,
) -> SloOutcome {
    finish(spec, good + bad, p99, bad, window)
}

/// One per-shard p99 attribution row of the `BENCH_slo.json` artifact:
/// how much of the fleet's tail a shard (and its dominant stage)
/// carries.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Shard index.
    pub shard: usize,
    /// The attributed stage (`shard.request` for the call path).
    pub stage: String,
    /// Requests the shard processed.
    pub count: u64,
    /// The shard's own p99 for the stage.
    pub p99: SimTime,
    /// The shard's share of fleet-wide busy time, `[0, 1]`.
    pub share: f64,
}

/// Serializes outcomes and attribution rows as the line-oriented
/// `BENCH_slo.json` artifact.
pub fn render_slo_json(
    experiment: &str,
    mode: &str,
    outcomes: &[SloOutcome],
    attribution: &[AttributionRow],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"experiment\": \"{experiment}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"slos\": [");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"stage\": \"{}\", \"count\": {}, \"p99_us\": {}, \
             \"budget_us\": {}, \"good\": {}, \"bad\": {}, \"availability\": {:.6}, \
             \"target\": {:.6}, \"error_budget\": {:.6}, \"burn_rate\": {:.6}, \
             \"window_us\": {}, \"ok\": {}}}{comma}",
            o.spec.name,
            o.spec.stage,
            o.count,
            o.p99.0,
            o.spec.p99_budget.0,
            o.good,
            o.bad,
            o.availability,
            o.spec.target,
            o.error_budget,
            o.burn_rate,
            o.window.0,
            o.ok
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"attribution\": [");
    for (i, a) in attribution.iter().enumerate() {
        let comma = if i + 1 < attribution.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"shard\": {}, \"stage\": \"{}\", \"count\": {}, \"p99_us\": {}, \
             \"share\": {:.4}}}{comma}",
            a.shard, a.stage, a.count, a.p99.0, a.share
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Parses [`render_slo_json`] output back into outcomes and
/// attribution rows. The recorded `ok` flag is ignored — callers
/// re-derive the verdict via [`verdict`] so a tampered or stale flag
/// cannot pass the gate.
pub fn parse_slo_json(text: &str) -> Result<(Vec<SloOutcome>, Vec<AttributionRow>), String> {
    let mut outcomes = Vec::new();
    let mut attribution = Vec::new();
    for line in text.lines() {
        if line.contains("\"burn_rate\"") {
            let spec = SloSpec {
                name: scan_str(line, "name").ok_or_else(|| format!("no name in: {line}"))?,
                stage: scan_str(line, "stage").ok_or_else(|| format!("no stage in: {line}"))?,
                p99_budget: SimTime(scan_u64(line, "budget_us")?),
                target: scan_f64(line, "target")?,
            };
            let count = scan_u64(line, "count")?;
            let p99 = SimTime(scan_u64(line, "p99_us")?);
            let bad = scan_u64(line, "bad")?;
            let window = SimTime(scan_u64(line, "window_us")?);
            outcomes.push(finish(spec, count, p99, bad, window));
        } else if line.contains("\"share\"") {
            attribution.push(AttributionRow {
                shard: scan_u64(line, "shard")? as usize,
                stage: scan_str(line, "stage").ok_or_else(|| format!("no stage in: {line}"))?,
                count: scan_u64(line, "count")?,
                p99: SimTime(scan_u64(line, "p99_us")?),
                share: scan_f64(line, "share")?,
            });
        }
    }
    Ok((outcomes, attribution))
}

fn scan_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    Some(line[at..].trim_start())
}

fn scan_str(line: &str, key: &str) -> Option<String> {
    let rest = scan_after(line, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn scan_u64(line: &str, key: &str) -> Result<u64, String> {
    let rest = scan_after(line, key).ok_or_else(|| format!("no {key} in: {line}"))?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|e| format!("bad {key}: {e}"))
}

fn scan_f64(line: &str, key: &str) -> Result<f64, String> {
    let rest = scan_after(line, key).ok_or_else(|| format!("no {key} in: {line}"))?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|e| format!("bad {key}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, budget_us: u64, target: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            stage: "shard.request".to_string(),
            p99_budget: SimTime(budget_us),
            target,
        }
    }

    #[test]
    fn latency_objective_burns_on_over_budget_samples() {
        // Exactly 1% of samples over budget: the error budget is spent
        // to the last drop but not exceeded, and p99 still sits in the
        // fast bucket — the objective holds at burn rate 1.0.
        let mut at_budget = Histogram::new();
        for _ in 0..990 {
            at_budget.record(SimTime::micros(100));
        }
        for _ in 0..10 {
            at_budget.record(SimTime::micros(50_000));
        }
        let o = evaluate_latency(spec("p99", 1_000, 0.99), &at_budget, SimTime::millis(500));
        assert_eq!((o.count, o.bad), (1000, 10));
        assert!((o.availability - 0.99).abs() < 1e-9);
        assert!((o.burn_rate - 1.0).abs() < 1e-9, "{}", o.burn_rate);
        assert!(o.ok);

        // 3% over budget: p99 lands on the slow samples and the burn
        // rate triples — both halves of the verdict fail.
        let mut blown = Histogram::new();
        for _ in 0..970 {
            blown.record(SimTime::micros(100));
        }
        for _ in 0..30 {
            blown.record(SimTime::micros(50_000));
        }
        let o = evaluate_latency(spec("p99", 1_000, 0.99), &blown, SimTime::millis(500));
        assert_eq!(o.bad, 30);
        assert_eq!(o.p99, SimTime::micros(50_000));
        assert!((o.burn_rate - 3.0).abs() < 1e-9, "{}", o.burn_rate);
        assert!(!o.ok);

        let relaxed = evaluate_latency(spec("p99", 100_000, 0.99), &blown, SimTime::millis(500));
        assert!(relaxed.ok);
        assert_eq!(relaxed.bad, 0, "all samples fit the relaxed budget");
    }

    #[test]
    fn availability_objective_and_budget_math() {
        let o = evaluate_availability(
            spec("avail", 0, 0.99),
            995,
            5,
            SimTime::micros(800),
            SimTime::secs(1),
        );
        assert_eq!(o.count, 1000);
        assert!((o.error_budget - 0.01).abs() < 1e-9);
        assert!((o.burn_rate - 0.5).abs() < 1e-9);
        assert!(o.ok);

        let burned = evaluate_availability(
            spec("avail", 0, 0.99),
            970,
            30,
            SimTime::micros(800),
            SimTime::secs(1),
        );
        assert!((burned.burn_rate - 3.0).abs() < 1e-9);
        assert!(!burned.ok);
    }

    #[test]
    fn perfect_target_has_no_budget() {
        let clean =
            evaluate_availability(spec("strict", 0, 1.0), 10, 0, SimTime::ZERO, SimTime::ZERO);
        assert!(clean.ok);
        assert_eq!(clean.burn_rate, 0.0);
        let dirty =
            evaluate_availability(spec("strict", 0, 1.0), 9, 1, SimTime::ZERO, SimTime::ZERO);
        assert!(dirty.burn_rate.is_infinite());
        assert!(!dirty.ok);
    }

    #[test]
    fn empty_windows_are_vacuously_ok() {
        let o = evaluate_latency(spec("p99", 1_000, 0.99), &Histogram::new(), SimTime::ZERO);
        assert!(o.ok);
        assert_eq!(o.availability, 1.0);
        assert_eq!(o.burn_rate, 0.0);
    }

    #[test]
    fn slo_json_round_trips_and_rederives_verdicts() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(SimTime::micros(i * 7));
        }
        let outcomes = vec![
            evaluate_latency(spec("call-path-p99", 2_000, 0.99), &h, SimTime::millis(100)),
            evaluate_availability(
                spec("fault-availability", 0, 0.99),
                990,
                10,
                SimTime::micros(900),
                SimTime::secs(2),
            ),
        ];
        let attribution = vec![AttributionRow {
            shard: 3,
            stage: "shard.request".to_string(),
            count: 250,
            p99: SimTime::micros(700),
            share: 0.2512,
        }];
        let text = render_slo_json("e18_observability", "full", &outcomes, &attribution);
        let (back, attr) = parse_slo_json(&text).unwrap();
        assert_eq!(back, outcomes);
        assert_eq!(attr, attribution);
        // The verdict survives the round trip by re-derivation.
        assert_eq!(back[0].ok, outcomes[0].ok);
        assert_eq!(render_slo_json("e18_observability", "full", &back, &attr), text);
    }
}
