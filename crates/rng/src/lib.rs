//! # gupster-rng
//!
//! Deterministic pseudo-randomness for experiments and tests.
//!
//! The repository runs in hermetic environments with no crate registry,
//! so this crate supplies the small slice of the `rand` API the
//! workspace actually uses — a seedable generator, ranges, Bernoulli
//! draws and uniform floats — backed by SplitMix64. Determinism is a
//! feature, not a compromise: every experiment seeds its generator so
//! runs are reproducible and diffable across PRs.
//!
//! The [`check`] module adds just enough machinery to express the
//! randomized property tests the crates ship (`cases`, string/vec
//! generators), again fully deterministic.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The default generator: SplitMix64 — tiny, fast, passes BigCrush for
/// the purposes of workload shaping (we are not doing cryptography;
/// tokens use HMAC-SHA256 in `gupster-core`).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero orbit degenerating the first few draws.
        StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to u64 (order-preserving for the supported domains).
    fn to_u64(self) -> u64;
    /// Narrows back from u64.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Ranges a generator can sample from (`gen_range` argument types).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range: empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range: empty range");
        let width = hi - lo;
        if width == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % (width + 1))
    }
}

/// Types `gen()` can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level draws, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`0..n` or `0..=n`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// Draws a value of an inferred type (`let u: f64 = rng.gen()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Picks a uniformly random element of a non-empty slice.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T
    where
        Self: Sized,
    {
        &items[self.gen_range(0..items.len())]
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod check;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.2)).count();
        assert!((1_700..2_300).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }

    #[test]
    fn pick_covers_slice() {
        let mut r = StdRng::seed_from_u64(17);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*r.pick(&items));
        }
        assert_eq!(seen.len(), 3);
    }
}
