//! A miniature deterministic property-test harness.
//!
//! `proptest` is unavailable in the hermetic build environment, so the
//! randomized invariant tests in this workspace are expressed against
//! this module instead: [`cases`] runs a closure over a seeded stream of
//! generators, and the helpers below produce the small string/vec/tree
//! alphabets those tests need. No shrinking — failures print the case
//! seed so a failing case can be replayed by seeding directly.

use crate::{Rng, SeedableRng, StdRng};

/// Runs `body` for `n` deterministic cases. Each case gets its own
/// generator derived from `seed` and the case index, so inserting a new
/// draw inside one case does not perturb the others.
pub fn cases(n: usize, seed: u64, mut body: impl FnMut(&mut StdRng)) {
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed ^ ((i as u64) << 32 | 0xC0FE));
        body(&mut rng);
    }
}

/// A random string of length `min..=max` over the given alphabet.
pub fn string_of(rng: &mut StdRng, alphabet: &[char], min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| *rng.pick(alphabet)).collect()
}

/// Lowercase `[a-z]{min..=max}`.
pub fn lowercase(rng: &mut StdRng, min: usize, max: usize) -> String {
    const AZ: [char; 26] = [
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
        'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z',
    ];
    string_of(rng, &AZ, min, max)
}

/// Alphanumeric `[a-z0-9]{min..=max}`.
pub fn alnum(rng: &mut StdRng, min: usize, max: usize) -> String {
    let chars: Vec<char> = ('a'..='z').chain('0'..='9').collect();
    string_of(rng, &chars, min, max)
}

/// Printable ASCII `[ -~]{min..=max}` (space through tilde).
pub fn printable(rng: &mut StdRng, min: usize, max: usize) -> String {
    let chars: Vec<char> = (b' '..=b'~').map(char::from).collect();
    string_of(rng, &chars, min, max)
}

/// Printable ASCII that is not blank after trimming.
pub fn printable_nonblank(rng: &mut StdRng, min: usize, max: usize) -> String {
    loop {
        let s = printable(rng, min.max(1), max);
        if !s.trim().is_empty() {
            return s;
        }
    }
}

/// A vector of `min..=max` draws of `gen`.
pub fn vec_of<T>(
    rng: &mut StdRng,
    min: usize,
    max: usize,
    mut gen: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        cases(5, 99, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        cases(5, 99, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        // Distinct cases see distinct streams.
        assert_eq!(first.iter().collect::<std::collections::BTreeSet<_>>().len(), 5);
    }

    #[test]
    fn string_generators_respect_bounds() {
        cases(50, 3, |rng| {
            let s = lowercase(rng, 1, 8);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let p = printable(rng, 0, 12);
            assert!(p.len() <= 12);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
            let nb = printable_nonblank(rng, 1, 6);
            assert!(!nb.trim().is_empty());
        });
    }

    #[test]
    fn vec_of_respects_bounds() {
        cases(20, 4, |rng| {
            let v = vec_of(rng, 2, 5, |r| r.gen_range(0u32..10));
            assert!((2..=5).contains(&v.len()));
        });
    }
}
