//! Property tests local to the policy crate: condition-parser
//! robustness, time-window semantics, and PDP determinism/monotonicity.

use proptest::prelude::*;

use gupster_policy::{
    pep, Condition, Pdp, PolicyRepository, Purpose, RequestContext, Rule, WeekTime,
};
use gupster_xpath::Path;

proptest! {
    /// The condition parser never panics on arbitrary input.
    #[test]
    fn condition_parser_never_panics(input in ".{0,60}") {
        let _ = Condition::parse(&input);
    }

    /// Display → parse preserves semantics on a probe grid.
    #[test]
    fn condition_display_semantics(
        rel in "[a-z]{1,8}",
        d1 in 0u32..7, d2 in 0u32..7,
        h1 in 0u32..24, h2 in 0u32..24,
    ) {
        let days = if d1 <= d2 { format!("{}-{}", day(d1), day(d2)) } else { "any".to_string() };
        let src = format!("relationship='{rel}' and time in {days} {h1:02}:00-{h2:02}:00");
        let c = Condition::parse(&src).unwrap();
        let c2 = Condition::parse(&c.to_string()).unwrap();
        for pd in 0..7 {
            for ph in [0u32, 6, 12, 18, 23] {
                let ctx = RequestContext::query("x", &rel, WeekTime::at(pd, ph, 30));
                prop_assert_eq!(c.eval(&ctx), c2.eval(&ctx), "{} probe {} {}", src, pd, ph);
            }
        }
    }

    /// TimeWindow semantics: minute m matches [from,to) with midnight
    /// wrap exactly when the arithmetic says so.
    #[test]
    fn time_window_semantics(from in 0u32..1440, to in 0u32..1440, d in 0u32..7, m in 0u32..1440) {
        let c = Condition::TimeWindow { days: vec![d], from, to };
        let ctx = RequestContext::query("x", "r", WeekTime { minutes: d * 1440 + m });
        let expect = if from <= to { m >= from && m < to } else { m >= from || m < to };
        prop_assert_eq!(c.eval(&ctx), expect);
        // Other days never match.
        let other = RequestContext::query("x", "r", WeekTime { minutes: ((d + 1) % 7) * 1440 + m });
        prop_assert!(!c.eval(&other));
    }

    /// The PDP is deterministic and the owner is always permitted.
    #[test]
    fn pdp_determinism_and_owner_rule(
        rel in "[a-z]{1,6}",
        scope_idx in 0usize..4,
        day in 0u32..7,
        hour in 0u32..24,
    ) {
        let scopes = ["/user/presence", "/user/address-book", "/user/calendar", "/user/wallet"];
        let mut repo = PolicyRepository::new();
        repo.put(
            "alice",
            Rule::permit(
                "r",
                Path::parse(scopes[scope_idx]).unwrap(),
                Condition::parse(&format!("relationship='{rel}'")).unwrap(),
            ),
        );
        let pdp = Pdp::new();
        let req = Path::parse("/user/presence").unwrap();
        let ctx = RequestContext::query("rick", &rel, WeekTime::at(day, hour, 0));
        let a = pdp.decide(&repo, "alice", &req, &ctx);
        let b = pdp.decide(&repo, "alice", &req, &ctx);
        prop_assert_eq!(a, b);
        let owner = RequestContext::owner("alice", WeekTime::at(day, hour, 0));
        prop_assert!(pdp.decide(&repo, "alice", &req, &owner).allows_anything());
    }

    /// Adding a deny rule never *grants* access that was refused before
    /// (deny-overrides monotonicity).
    #[test]
    fn deny_rules_never_widen_access(rel in "[a-z]{1,6}", other in "[a-z]{1,6}") {
        let pdp = Pdp::new();
        let req = Path::parse("/user/presence").unwrap();
        let ctx = RequestContext::query("rick", &rel, WeekTime::at(1, 10, 0));

        let mut repo = PolicyRepository::new();
        repo.put(
            "alice",
            Rule::permit(
                "p",
                Path::parse("/user/presence").unwrap(),
                Condition::parse(&format!("relationship='{other}'")).unwrap(),
            ),
        );
        let before = pdp.decide(&repo, "alice", &req, &ctx).allows_anything();
        repo.put(
            "alice",
            Rule::deny("d", Path::parse("/user/presence").unwrap(), Condition::True),
        );
        let after = pdp.decide(&repo, "alice", &req, &ctx).allows_anything();
        prop_assert!(!after || before, "deny widened access");
    }

    /// Enforcement mirrors decisions: Proceed paths are never empty.
    #[test]
    fn enforcement_paths_nonempty(rel in "[a-z]{1,6}") {
        let pdp = Pdp::new();
        let mut repo = PolicyRepository::new();
        repo.put(
            "alice",
            Rule::permit(
                "p",
                Path::parse("/user/presence").unwrap(),
                Condition::parse(&format!("relationship='{rel}'")).unwrap(),
            ),
        );
        let req = Path::parse("/user/presence").unwrap();
        let ctx = RequestContext::query("rick", &rel, WeekTime::at(1, 10, 0))
            .with_purpose(Purpose::Query);
        match pep::enforce(&pdp, &repo, "alice", &req, &ctx) {
            pep::Enforcement::Proceed(paths) => prop_assert!(!paths.is_empty()),
            pep::Enforcement::Refused => prop_assert!(false, "matching permit must proceed"),
        }
    }
}

fn day(d: u32) -> &'static str {
    ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][d as usize % 7]
}
