//! Randomized invariant tests local to the policy crate:
//! condition-parser robustness, time-window semantics, and PDP
//! determinism/monotonicity. Deterministic — see `gupster_rng::check`.

use gupster_policy::{
    pep, Condition, Pdp, PolicyRepository, Purpose, RequestContext, Rule, WeekTime,
};
use gupster_rng::check::{self, cases};
use gupster_rng::Rng;
use gupster_xpath::Path;

/// The condition parser never panics on arbitrary input.
#[test]
fn condition_parser_never_panics() {
    cases(512, 0x90_01, |rng| {
        let input = check::printable(rng, 0, 60);
        let _ = Condition::parse(&input);
    });
}

/// Display → parse preserves semantics on a probe grid.
#[test]
fn condition_display_semantics() {
    cases(256, 0x90_02, |rng| {
        let rel = check::lowercase(rng, 1, 8);
        let d1 = rng.gen_range(0u32..7);
        let d2 = rng.gen_range(0u32..7);
        let h1 = rng.gen_range(0u32..24);
        let h2 = rng.gen_range(0u32..24);
        let days = if d1 <= d2 { format!("{}-{}", day(d1), day(d2)) } else { "any".to_string() };
        let src = format!("relationship='{rel}' and time in {days} {h1:02}:00-{h2:02}:00");
        let c = Condition::parse(&src).unwrap();
        let c2 = Condition::parse(&c.to_string()).unwrap();
        for pd in 0..7 {
            for ph in [0u32, 6, 12, 18, 23] {
                let ctx = RequestContext::query("x", &rel, WeekTime::at(pd, ph, 30));
                assert_eq!(c.eval(&ctx), c2.eval(&ctx), "{src} probe {pd} {ph}");
            }
        }
    });
}

/// TimeWindow semantics: minute m matches [from,to) with midnight
/// wrap exactly when the arithmetic says so.
#[test]
fn time_window_semantics() {
    cases(512, 0x90_03, |rng| {
        let from = rng.gen_range(0u32..1440);
        let to = rng.gen_range(0u32..1440);
        let d = rng.gen_range(0u32..7);
        let m = rng.gen_range(0u32..1440);
        let c = Condition::TimeWindow { days: vec![d], from, to };
        let ctx = RequestContext::query("x", "r", WeekTime { minutes: d * 1440 + m });
        let expect = if from <= to { m >= from && m < to } else { m >= from || m < to };
        assert_eq!(c.eval(&ctx), expect);
        // Other days never match.
        let other = RequestContext::query("x", "r", WeekTime { minutes: ((d + 1) % 7) * 1440 + m });
        assert!(!c.eval(&other));
    });
}

/// The PDP is deterministic and the owner is always permitted.
#[test]
fn pdp_determinism_and_owner_rule() {
    cases(256, 0x90_04, |rng| {
        let rel = check::lowercase(rng, 1, 6);
        let scopes = ["/user/presence", "/user/address-book", "/user/calendar", "/user/wallet"];
        let scope = *rng.pick(&scopes);
        let day = rng.gen_range(0u32..7);
        let hour = rng.gen_range(0u32..24);
        let mut repo = PolicyRepository::new();
        repo.put(
            "alice",
            Rule::permit(
                "r",
                Path::parse(scope).unwrap(),
                Condition::parse(&format!("relationship='{rel}'")).unwrap(),
            ),
        );
        let pdp = Pdp::new();
        let req = Path::parse("/user/presence").unwrap();
        let ctx = RequestContext::query("rick", &rel, WeekTime::at(day, hour, 0));
        let a = pdp.decide(&repo, "alice", &req, &ctx);
        let b = pdp.decide(&repo, "alice", &req, &ctx);
        assert_eq!(a, b);
        let owner = RequestContext::owner("alice", WeekTime::at(day, hour, 0));
        assert!(pdp.decide(&repo, "alice", &req, &owner).allows_anything());
    });
}

/// Adding a deny rule never *grants* access that was refused before
/// (deny-overrides monotonicity).
#[test]
fn deny_rules_never_widen_access() {
    cases(256, 0x90_05, |rng| {
        let rel = check::lowercase(rng, 1, 6);
        let other = check::lowercase(rng, 1, 6);
        let pdp = Pdp::new();
        let req = Path::parse("/user/presence").unwrap();
        let ctx = RequestContext::query("rick", &rel, WeekTime::at(1, 10, 0));

        let mut repo = PolicyRepository::new();
        repo.put(
            "alice",
            Rule::permit(
                "p",
                Path::parse("/user/presence").unwrap(),
                Condition::parse(&format!("relationship='{other}'")).unwrap(),
            ),
        );
        let before = pdp.decide(&repo, "alice", &req, &ctx).allows_anything();
        repo.put(
            "alice",
            Rule::deny("d", Path::parse("/user/presence").unwrap(), Condition::True),
        );
        let after = pdp.decide(&repo, "alice", &req, &ctx).allows_anything();
        assert!(!after || before, "deny widened access");
    });
}

/// Enforcement mirrors decisions: Proceed paths are never empty.
#[test]
fn enforcement_paths_nonempty() {
    cases(256, 0x90_06, |rng| {
        let rel = check::lowercase(rng, 1, 6);
        let pdp = Pdp::new();
        let mut repo = PolicyRepository::new();
        repo.put(
            "alice",
            Rule::permit(
                "p",
                Path::parse("/user/presence").unwrap(),
                Condition::parse(&format!("relationship='{rel}'")).unwrap(),
            ),
        );
        let req = Path::parse("/user/presence").unwrap();
        let ctx = RequestContext::query("rick", &rel, WeekTime::at(1, 10, 0))
            .with_purpose(Purpose::Query);
        match pep::enforce(&pdp, &repo, "alice", &req, &ctx) {
            pep::Enforcement::Proceed(paths) => assert!(!paths.is_empty()),
            pep::Enforcement::Refused => panic!("matching permit must proceed"),
        }
    });
}

fn day(d: u32) -> &'static str {
    ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][d as usize % 7]
}
