//! Access-control rules.

use std::fmt;

use gupster_xpath::Path;

use crate::condition::Condition;

/// What an applicable rule does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Grant access to the requested data (within the rule's scope).
    Permit,
    /// Refuse access.
    Deny,
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Effect::Permit => "permit",
            Effect::Deny => "deny",
        })
    }
}

/// One privacy-shield rule: *scope* (which components), *condition*
/// (which contexts) and *effect*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Stable id (unique per user).
    pub id: String,
    /// The profile sub-tree the rule governs.
    pub scope: Path,
    /// When the rule applies.
    pub condition: Condition,
    /// What it does.
    pub effect: Effect,
    /// Higher priority wins among same-effect rules; deny still
    /// overrides permit at equal applicability (privacy first).
    pub priority: i32,
}

impl Rule {
    /// Creates a permit rule.
    pub fn permit(id: &str, scope: Path, condition: Condition) -> Rule {
        Rule { id: id.to_string(), scope, condition, effect: Effect::Permit, priority: 0 }
    }

    /// Creates a deny rule.
    pub fn deny(id: &str, scope: Path, condition: Condition) -> Rule {
        Rule { id: id.to_string(), scope, condition, effect: Effect::Deny, priority: 0 }
    }

    /// Builder: sets the priority.
    pub fn with_priority(mut self, priority: i32) -> Rule {
        self.priority = priority;
        self
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} when {} (prio {})",
            self.id, self.effect, self.scope, self.condition, self.priority
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let r = Rule::permit(
            "r1",
            Path::parse("/user/presence").unwrap(),
            Condition::parse("relationship='co-worker'").unwrap(),
        )
        .with_priority(5);
        assert_eq!(r.effect, Effect::Permit);
        assert_eq!(r.priority, 5);
        let s = r.to_string();
        assert!(s.contains("permit") && s.contains("/user/presence") && s.contains("prio 5"));
    }
}
