//! The policy repository (Figure 10: "in charge of storing policies").
//!
//! Storage carries two fast-path aids (DESIGN.md §7):
//!
//! * a per-user **rule index** bucketed by the first concrete path
//!   segment below `/user` — `Pdp::decide` asks for
//!   [`PolicyRepository::candidate_indices`] and examines only the
//!   bucket of the request's own component plus the wildcard catch-all,
//!   instead of every rule the user ever provisioned;
//! * a **generation** stamp, bumped to a globally-unique value on every
//!   write, which the decision memo compares to detect stale entries —
//!   a PAP write anywhere invalidates exactly the memoized decisions of
//!   the repository that changed, with no epoch ambiguity even across
//!   metadata clones.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use gupster_xpath::{NameTest, Path, PathInterner, Sym};

use crate::rule::Rule;

/// Hands out process-wide unique generation stamps. Starting at 1 keeps
/// 0 free as "never written" for memo consumers.
fn next_generation() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The per-user candidate index: rule positions bucketed by the scope's
/// first concrete segment below `/user`. Scopes that leave the core
/// fragment, or are too short to have one, live in the catch-all.
#[derive(Debug, Clone, Default)]
struct RuleIndex {
    by_component: HashMap<Sym, Vec<usize>>,
    catch_all: Vec<usize>,
}

impl RuleIndex {
    fn build(rules: &[Rule]) -> RuleIndex {
        let mut index = RuleIndex::default();
        for (i, rule) in rules.iter().enumerate() {
            match bucket_sym_for_scope(&rule.scope) {
                Some(sym) => index.by_component.entry(sym).or_default().push(i),
                None => index.catch_all.push(i),
            }
        }
        index
    }
}

/// The bucket a rule scope belongs to: the interned name of its second
/// step (`/user/presence` → `presence`). `None` routes to the
/// catch-all: wildcard scopes, attribute-axis components and scopes of
/// a single step (`/user`) can relate to any request.
fn bucket_sym_for_scope(scope: &Path) -> Option<Sym> {
    if !scope.is_core_fragment() || scope.steps.len() < 2 {
        return None;
    }
    match &scope.steps[1].test {
        NameTest::Name(name) => Some(PathInterner::intern(name)),
        _ => None,
    }
}

/// Per-user rule storage. GUPster hosts one repository; hierarchical
/// deployments (§5.1.2) host one per meta-data manager.
#[derive(Debug, Clone, Default)]
pub struct PolicyRepository {
    rules: BTreeMap<String, Vec<Rule>>,
    index: BTreeMap<String, RuleIndex>,
    generation: u64,
}

impl PolicyRepository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// All rules for a user (possibly empty).
    pub fn rules_for(&self, user: &str) -> &[Rule] {
        self.rules.get(user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The repository's write generation. Bumped to a process-wide
    /// unique value on every mutation; a memoized decision stamped with
    /// an older generation is stale. `0` means "never written".
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rule positions (into [`PolicyRepository::rules_for`]) that can
    /// possibly apply to `request`, in rule order: the bucket of the
    /// request's first component below `/user` plus the catch-all.
    /// Sound because two core-fragment paths of ≥ 2 steps whose second
    /// names differ can neither contain nor overlap one another.
    /// Returns `None` when the request cannot be bucketed (wildcards,
    /// or a bare `/user` request) — the caller must scan every rule.
    pub fn candidate_indices(&self, user: &str, request: &Path) -> Option<Vec<usize>> {
        if !request.is_core_fragment() || request.steps.len() < 2 {
            return None;
        }
        let NameTest::Name(name) = &request.steps[1].test else {
            return None;
        };
        let Some(index) = self.index.get(user) else {
            return Some(Vec::new());
        };
        let mut out = index.catch_all.clone();
        // Read-lock probe: a name no rule scope ever interned cannot
        // have a bucket.
        if let Some(sym) = PathInterner::lookup(name) {
            if let Some(bucket) = index.by_component.get(&sym) {
                out.extend_from_slice(bucket);
            }
        }
        // Rule order — so the indexed decision weighs rules in the
        // exact order the naive scan would.
        out.sort_unstable();
        Some(out)
    }

    /// Inserts a rule, replacing any rule with the same id.
    pub fn put(&mut self, user: &str, rule: Rule) {
        let rules = self.rules.entry(user.to_string()).or_default();
        match rules.iter_mut().find(|r| r.id == rule.id) {
            Some(slot) => *slot = rule,
            None => rules.push(rule),
        }
        self.index.insert(user.to_string(), RuleIndex::build(rules));
        self.generation = next_generation();
    }

    /// Removes a rule by id; returns whether it existed.
    pub fn remove(&mut self, user: &str, rule_id: &str) -> bool {
        match self.rules.get_mut(user) {
            Some(rules) => {
                let before = rules.len();
                rules.retain(|r| r.id != rule_id);
                let removed = rules.len() != before;
                if removed {
                    self.index.insert(user.to_string(), RuleIndex::build(rules));
                    self.generation = next_generation();
                }
                removed
            }
            None => false,
        }
    }

    /// Number of rules stored for a user.
    pub fn count_for(&self, user: &str) -> usize {
        self.rules_for(user).len()
    }

    /// Total rules across users.
    pub fn total(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use gupster_xpath::Path;

    fn rule(id: &str) -> Rule {
        Rule::permit(id, Path::parse("/user/presence").unwrap(), Condition::True)
    }

    fn scoped(id: &str, scope: &str) -> Rule {
        Rule::permit(id, Path::parse(scope).unwrap(), Condition::True)
    }

    #[test]
    fn put_replaces_same_id() {
        let mut repo = PolicyRepository::new();
        repo.put("alice", rule("r1"));
        repo.put("alice", rule("r2"));
        let mut updated = rule("r1");
        updated.priority = 9;
        repo.put("alice", updated);
        assert_eq!(repo.count_for("alice"), 2);
        assert_eq!(repo.rules_for("alice")[0].priority, 9);
    }

    #[test]
    fn remove_by_id() {
        let mut repo = PolicyRepository::new();
        repo.put("alice", rule("r1"));
        assert!(repo.remove("alice", "r1"));
        assert!(!repo.remove("alice", "r1"));
        assert!(!repo.remove("ghost", "r1"));
        assert_eq!(repo.total(), 0);
    }

    #[test]
    fn per_user_isolation() {
        let mut repo = PolicyRepository::new();
        repo.put("alice", rule("r1"));
        repo.put("bob", rule("r1"));
        assert_eq!(repo.count_for("alice"), 1);
        assert_eq!(repo.count_for("bob"), 1);
        assert_eq!(repo.total(), 2);
        assert!(repo.rules_for("carol").is_empty());
    }

    #[test]
    fn generation_bumps_on_writes_only() {
        let mut repo = PolicyRepository::new();
        assert_eq!(repo.generation(), 0);
        repo.put("alice", rule("r1"));
        let g1 = repo.generation();
        assert_ne!(g1, 0);
        assert!(!repo.remove("alice", "ghost"));
        assert_eq!(repo.generation(), g1, "no-op remove keeps the stamp");
        assert!(repo.remove("alice", "r1"));
        assert_ne!(repo.generation(), g1);
        // Two repositories never share a written generation.
        let mut other = PolicyRepository::new();
        other.put("bob", rule("r1"));
        assert_ne!(other.generation(), repo.generation());
    }

    #[test]
    fn candidates_bucket_by_component_and_keep_rule_order() {
        let mut repo = PolicyRepository::new();
        repo.put("alice", scoped("r0", "/user/presence"));
        repo.put("alice", scoped("r1", "/user/calendar"));
        repo.put("alice", scoped("r2", "//item")); // wildcard → catch-all
        repo.put("alice", scoped("r3", "/user")); // too short → catch-all
        repo.put("alice", scoped("r4", "/user/presence/status"));

        let req = Path::parse("/user/presence").unwrap();
        assert_eq!(repo.candidate_indices("alice", &req), Some(vec![0, 2, 3, 4]));
        let req = Path::parse("/user/calendar/event[@id='e']").unwrap();
        assert_eq!(repo.candidate_indices("alice", &req), Some(vec![1, 2, 3]));
        let req = Path::parse("/user/never-ruled-component").unwrap();
        assert_eq!(repo.candidate_indices("alice", &req), Some(vec![2, 3]));
        // Unbucketable requests force the full scan.
        assert_eq!(repo.candidate_indices("alice", &Path::parse("/user").unwrap()), None);
        assert_eq!(repo.candidate_indices("alice", &Path::parse("//presence").unwrap()), None);
        // Unknown user: empty candidate set, not a scan.
        assert_eq!(repo.candidate_indices("ghost", &req), Some(Vec::new()));
    }

    #[test]
    fn index_follows_replacement_and_removal() {
        let mut repo = PolicyRepository::new();
        repo.put("alice", scoped("r0", "/user/presence"));
        repo.put("alice", scoped("r1", "/user/calendar"));
        // Replace r0 with a calendar scope: presence bucket must empty.
        repo.put("alice", scoped("r0", "/user/calendar"));
        let presence = Path::parse("/user/presence").unwrap();
        let calendar = Path::parse("/user/calendar").unwrap();
        assert_eq!(repo.candidate_indices("alice", &presence), Some(Vec::new()));
        assert_eq!(repo.candidate_indices("alice", &calendar), Some(vec![0, 1]));
        assert!(repo.remove("alice", "r0"));
        assert_eq!(repo.candidate_indices("alice", &calendar), Some(vec![0]));
        assert_eq!(repo.rules_for("alice")[0].id, "r1");
    }
}
