//! The policy repository (Figure 10: "in charge of storing policies").

use std::collections::BTreeMap;

use crate::rule::Rule;

/// Per-user rule storage. GUPster hosts one repository; hierarchical
/// deployments (§5.1.2) host one per meta-data manager.
#[derive(Debug, Clone, Default)]
pub struct PolicyRepository {
    rules: BTreeMap<String, Vec<Rule>>,
}

impl PolicyRepository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// All rules for a user (possibly empty).
    pub fn rules_for(&self, user: &str) -> &[Rule] {
        self.rules.get(user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Inserts a rule, replacing any rule with the same id.
    pub fn put(&mut self, user: &str, rule: Rule) {
        let rules = self.rules.entry(user.to_string()).or_default();
        match rules.iter_mut().find(|r| r.id == rule.id) {
            Some(slot) => *slot = rule,
            None => rules.push(rule),
        }
    }

    /// Removes a rule by id; returns whether it existed.
    pub fn remove(&mut self, user: &str, rule_id: &str) -> bool {
        match self.rules.get_mut(user) {
            Some(rules) => {
                let before = rules.len();
                rules.retain(|r| r.id != rule_id);
                rules.len() != before
            }
            None => false,
        }
    }

    /// Number of rules stored for a user.
    pub fn count_for(&self, user: &str) -> usize {
        self.rules_for(user).len()
    }

    /// Total rules across users.
    pub fn total(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use gupster_xpath::Path;

    fn rule(id: &str) -> Rule {
        Rule::permit(id, Path::parse("/user/presence").unwrap(), Condition::True)
    }

    #[test]
    fn put_replaces_same_id() {
        let mut repo = PolicyRepository::new();
        repo.put("alice", rule("r1"));
        repo.put("alice", rule("r2"));
        let mut updated = rule("r1");
        updated.priority = 9;
        repo.put("alice", updated);
        assert_eq!(repo.count_for("alice"), 2);
        assert_eq!(repo.rules_for("alice")[0].priority, 9);
    }

    #[test]
    fn remove_by_id() {
        let mut repo = PolicyRepository::new();
        repo.put("alice", rule("r1"));
        assert!(repo.remove("alice", "r1"));
        assert!(!repo.remove("alice", "r1"));
        assert!(!repo.remove("ghost", "r1"));
        assert_eq!(repo.total(), 0);
    }

    #[test]
    fn per_user_isolation() {
        let mut repo = PolicyRepository::new();
        repo.put("alice", rule("r1"));
        repo.put("bob", rule("r1"));
        assert_eq!(repo.count_for("alice"), 1);
        assert_eq!(repo.count_for("bob"), 1);
        assert_eq!(repo.total(), 2);
        assert!(repo.rules_for("carol").is_empty());
    }
}
