//! The policy decision point (Figure 10: "renders a decision based on a
//! rule set and a context; the decision point only returns a decision
//! and has absolutely no side-effect on the environment").

use gupster_xpath::{covers, may_overlap, Path};

use crate::context::RequestContext;
use crate::repository::PolicyRepository;
use crate::rule::{Effect, Rule};

/// The PDP's verdict for a (user, path, context) request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The whole requested sub-tree may be disclosed.
    Permit,
    /// Nothing may be disclosed.
    Deny,
    /// Only the listed sub-scopes of the request may be disclosed
    /// ("only a subset of the information asked for can be returned",
    /// §5.3). Each path is a narrowing of the request.
    PermitNarrowed(Vec<Path>),
}

impl Decision {
    /// True for any permit (full or narrowed).
    pub fn allows_anything(&self) -> bool {
        !matches!(self, Decision::Deny)
    }
}

/// How much work one [`Pdp::decide`] call performed — the hook the
/// telemetry layer uses to charge a deterministic, rule-proportional
/// cost to the `policy.decide` stage without coupling this crate to the
/// tracer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCost {
    /// Rules of the owner that were examined (condition + overlap test).
    pub rules_considered: u64,
    /// Rules whose condition held and whose scope related to the
    /// request (the ones that shaped the decision).
    pub rules_applicable: u64,
}

/// The decision point. Stateless over a repository reference — the
/// repository itself is the state, per Figure 10's role split.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pdp {
    /// When `true`, a request with no applicable rule is denied
    /// (default-closed — the shield posture). The profile owner
    /// (`relationship == "self"`) is always permitted.
    pub default_closed: bool,
}

impl Pdp {
    /// A default-closed PDP (the recommended shield posture).
    pub fn new() -> Self {
        Pdp { default_closed: true }
    }

    /// Decides a request.
    ///
    /// Semantics: rules whose condition holds and whose scope relates to
    /// the request participate. Deny rules covering any part of the
    /// request knock that part out; permit rules admit the parts they
    /// cover. The result is `Permit` when a permit covers the whole
    /// request and no deny intersects it; `PermitNarrowed` when permits
    /// cover only parts (minus denied parts); `Deny` otherwise.
    pub fn decide(
        &self,
        repo: &PolicyRepository,
        owner: &str,
        request: &Path,
        ctx: &RequestContext,
    ) -> Decision {
        self.decide_with_cost(repo, owner, request, ctx).0
    }

    /// [`Pdp::decide`] plus the amount of rule-evaluation work done.
    ///
    /// Rides the bucketed rule index (DESIGN.md §7): only the rules in
    /// the request's component bucket (plus the wildcard catch-all) are
    /// examined, in rule order, so the decision is byte-identical to
    /// [`Pdp::decide_with_cost_naive`] while `rules_considered` shrinks
    /// from *all rules* to *candidate rules*.
    pub fn decide_with_cost(
        &self,
        repo: &PolicyRepository,
        owner: &str,
        request: &Path,
        ctx: &RequestContext,
    ) -> (Decision, DecisionCost) {
        let mut cost = DecisionCost::default();
        if ctx.relationship == "self" {
            // The owner always reaches their own data; deny rules do not
            // apply to self (the owner edits the shield through the PAP).
            return (Decision::Permit, cost);
        }
        // Rules are stored per owner, so their scopes omit the
        // `[@id='…']` predicate requests carry on the first step;
        // normalize the request the same way before matching.
        let request = &strip_user_id(request);
        let rules = repo.rules_for(owner);
        let applicable: Vec<&Rule> = match repo.candidate_indices(owner, request) {
            Some(candidates) => {
                cost.rules_considered = candidates.len() as u64;
                candidates
                    .iter()
                    .map(|&i| &rules[i])
                    .filter(|r| r.condition.eval(ctx) && may_overlap(&r.scope, request))
                    .collect()
            }
            None => {
                // Unbucketable request (wildcards, bare `/user`): every
                // rule is a candidate.
                cost.rules_considered = rules.len() as u64;
                rules
                    .iter()
                    .filter(|r| r.condition.eval(ctx) && may_overlap(&r.scope, request))
                    .collect()
            }
        };
        cost.rules_applicable = applicable.len() as u64;
        (self.weigh(applicable, request), cost)
    }

    /// The retained naive decision: scans every rule of the owner. The
    /// differential-testing oracle for the indexed
    /// [`Pdp::decide_with_cost`] — the two must agree byte-for-byte on
    /// every input.
    pub fn decide_with_cost_naive(
        &self,
        repo: &PolicyRepository,
        owner: &str,
        request: &Path,
        ctx: &RequestContext,
    ) -> (Decision, DecisionCost) {
        let mut cost = DecisionCost::default();
        if ctx.relationship == "self" {
            return (Decision::Permit, cost);
        }
        let request = &strip_user_id(request);
        let rules = repo.rules_for(owner);
        cost.rules_considered = rules.len() as u64;
        let applicable: Vec<&Rule> = rules
            .iter()
            .filter(|r| r.condition.eval(ctx) && may_overlap(&r.scope, request))
            .collect();
        cost.rules_applicable = applicable.len() as u64;
        (self.weigh(applicable, request), cost)
    }

    /// Weighs the applicable rules against the (normalized) request.
    fn weigh(&self, applicable: Vec<&Rule>, request: &Path) -> Decision {

        // Deny wins at equal or higher priority than the permits that
        // would admit the same region; we implement the paper's simple
        // posture: any applicable deny covering the whole request denies
        // it outright, and denies always knock out overlapping permits
        // unless a strictly higher-priority permit exists.
        let denies: Vec<&&Rule> =
            applicable.iter().filter(|r| r.effect == Effect::Deny).collect();
        let permits: Vec<&&Rule> =
            applicable.iter().filter(|r| r.effect == Effect::Permit).collect();

        let deny_whole = denies.iter().any(|d| {
            covers(&d.scope, request)
                && !permits.iter().any(|p| p.priority > d.priority && covers(&p.scope, request))
        });
        if deny_whole {
            return Decision::Deny;
        }

        // Full-cover permits not shadowed by a covering deny of ≥ priority.
        let full = permits.iter().find(|p| {
            covers(&p.scope, request)
                && !denies
                    .iter()
                    .any(|d| d.priority >= p.priority && may_overlap(&d.scope, request))
        });
        if full.is_some() {
            return Decision::Permit;
        }

        // Partial permits: permit scopes *inside* the request that are
        // not knocked out by an overlapping deny of ≥ priority.
        let mut parts: Vec<Path> = Vec::new();
        for p in &permits {
            let knocked = denies
                .iter()
                .any(|d| d.priority >= p.priority && may_overlap(&d.scope, &p.scope));
            if knocked {
                continue;
            }
            let narrowed = if covers(request, &p.scope) {
                p.scope.clone()
            } else if covers(&p.scope, request) {
                request.clone()
            } else {
                continue;
            };
            if !parts.contains(&narrowed) {
                parts.push(narrowed);
            }
        }
        if !parts.is_empty() {
            // A permit covering the whole request would have returned
            // above; these are genuine narrowings (or the request
            // itself, if a permit scope equals it but was shadowed for
            // other parts — still correct to disclose).
            if parts.iter().any(|p| covers(p, request)) {
                return Decision::Permit;
            }
            return Decision::PermitNarrowed(parts);
        }

        if self.default_closed || !denies.is_empty() {
            Decision::Deny
        } else {
            Decision::Permit
        }
    }
}

/// Removes `[@id='…']` predicates from the first step (the user
/// identity is implicit in per-owner rule sets).
fn strip_user_id(p: &Path) -> Path {
    use gupster_xpath::Predicate;
    let mut p = p.clone();
    if let Some(first) = p.steps.first_mut() {
        first
            .predicates
            .retain(|pr| !matches!(pr, Predicate::AttrEq(a, _) | Predicate::AttrExists(a) if a == "id"));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::context::WeekTime;

    fn path(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn shield() -> PolicyRepository {
        // The §4.6 corporate user's shield.
        let mut repo = PolicyRepository::new();
        repo.put(
            "alice",
            Rule::permit(
                "coworker-presence",
                path("/user/presence"),
                Condition::parse("relationship='co-worker' and time in Mon-Fri 09:00-18:00")
                    .unwrap(),
            ),
        );
        repo.put(
            "alice",
            Rule::permit(
                "boss-family-presence",
                path("/user/presence"),
                Condition::parse("relationship='boss' or relationship='family'").unwrap(),
            ),
        );
        repo.put(
            "alice",
            Rule::permit(
                "family-personal",
                path("/user/address-book/item[@type='personal']"),
                Condition::parse("relationship='family'").unwrap(),
            ),
        );
        repo.put(
            "alice",
            Rule::permit(
                "family-calendar",
                path("/user/calendar"),
                Condition::parse("relationship='family'").unwrap(),
            ),
        );
        repo
    }

    fn ctx(rel: &str, day: u32, hour: u32) -> RequestContext {
        RequestContext::query("rick", rel, WeekTime::at(day, hour, 0))
    }

    #[test]
    fn coworker_presence_working_hours_only() {
        let pdp = Pdp::new();
        let repo = shield();
        let presence = path("/user[@id='alice']/presence");
        assert_eq!(pdp.decide(&repo, "alice", &presence, &ctx("co-worker", 2, 11)), Decision::Permit);
        assert_eq!(pdp.decide(&repo, "alice", &presence, &ctx("co-worker", 2, 20)), Decision::Deny);
        assert_eq!(pdp.decide(&repo, "alice", &presence, &ctx("co-worker", 6, 11)), Decision::Deny);
    }

    #[test]
    fn boss_and_family_any_time() {
        let pdp = Pdp::new();
        let repo = shield();
        let presence = path("/user[@id='alice']/presence");
        assert_eq!(pdp.decide(&repo, "alice", &presence, &ctx("boss", 6, 3)), Decision::Permit);
        assert_eq!(pdp.decide(&repo, "alice", &presence, &ctx("family", 6, 3)), Decision::Permit);
    }

    #[test]
    fn default_closed_for_strangers() {
        let pdp = Pdp::new();
        let repo = shield();
        assert_eq!(
            pdp.decide(&repo, "alice", &path("/user/presence"), &ctx("third-party", 2, 11)),
            Decision::Deny
        );
        assert_eq!(
            pdp.decide(&repo, "alice", &path("/user/wallet"), &ctx("family", 2, 11)),
            Decision::Deny
        );
    }

    #[test]
    fn owner_always_permitted() {
        let pdp = Pdp::new();
        let repo = shield();
        let c = RequestContext::owner("alice", WeekTime::at(6, 3, 0));
        assert_eq!(pdp.decide(&repo, "alice", &path("/user/wallet"), &c), Decision::Permit);
    }

    #[test]
    fn request_narrowed_to_permitted_subset() {
        let pdp = Pdp::new();
        let repo = shield();
        // Family asks for the *whole* address book; only the personal
        // split is permitted.
        let d = pdp.decide(
            &repo,
            "alice",
            &path("/user[@id='alice']/address-book"),
            &ctx("family", 2, 11),
        );
        match d {
            Decision::PermitNarrowed(parts) => {
                assert_eq!(parts.len(), 1);
                assert_eq!(parts[0].to_string(), "/user/address-book/item[@type='personal']");
            }
            other => panic!("expected narrowing, got {other:?}"),
        }
    }

    #[test]
    fn deeper_request_inside_permit_scope_allowed() {
        let pdp = Pdp::new();
        let repo = shield();
        let d = pdp.decide(
            &repo,
            "alice",
            &path("/user/calendar/event[@id='e1']/start"),
            &ctx("family", 2, 11),
        );
        assert_eq!(d, Decision::Permit);
    }

    #[test]
    fn deny_overrides_permit() {
        let pdp = Pdp::new();
        let mut repo = shield();
        repo.put(
            "alice",
            Rule::deny("no-rick", path("/user/presence"), Condition::parse("requester='rick'").unwrap()),
        );
        assert_eq!(
            pdp.decide(&repo, "alice", &path("/user/presence"), &ctx("boss", 2, 11)),
            Decision::Deny
        );
    }

    #[test]
    fn higher_priority_permit_beats_deny() {
        let pdp = Pdp::new();
        let mut repo = PolicyRepository::new();
        repo.put("alice", Rule::deny("d", path("/user/presence"), Condition::True));
        repo.put(
            "alice",
            Rule::permit("p", path("/user/presence"), Condition::True).with_priority(10),
        );
        assert_eq!(
            pdp.decide(&repo, "alice", &path("/user/presence"), &ctx("boss", 0, 0)),
            Decision::Permit
        );
    }

    #[test]
    fn open_pdp_permits_unmatched() {
        let pdp = Pdp { default_closed: false };
        let repo = PolicyRepository::new();
        assert_eq!(
            pdp.decide(&repo, "alice", &path("/user/presence"), &ctx("anyone", 0, 0)),
            Decision::Permit
        );
    }

    #[test]
    fn indexed_decide_agrees_with_naive_and_prunes() {
        let pdp = Pdp::new();
        let mut repo = shield();
        // Pad with rules on many other components so pruning is visible.
        for i in 0..40 {
            repo.put(
                "alice",
                Rule::permit(
                    &format!("pad-{i}"),
                    path(&format!("/user/devices/device[@id='{i}']")),
                    Condition::True,
                ),
            );
        }
        for (req, rel) in [
            ("/user[@id='alice']/presence", "co-worker"),
            ("/user[@id='alice']/address-book", "family"),
            ("/user/calendar/event[@id='e1']/start", "family"),
            ("/user/devices/device[@id='7']", "third-party"),
            ("/user", "boss"),
            ("//presence", "boss"),
        ] {
            let c = ctx(rel, 2, 11);
            let (d, cost) = pdp.decide_with_cost(&repo, "alice", &path(req), &c);
            let (dn, cost_n) = pdp.decide_with_cost_naive(&repo, "alice", &path(req), &c);
            assert_eq!(d, dn, "{req} as {rel}");
            assert_eq!(cost.rules_applicable, cost_n.rules_applicable, "{req}");
            assert!(cost.rules_considered <= cost_n.rules_considered, "{req}");
        }
        // The presence request must not touch the 40 device rules.
        let (_, cost) =
            pdp.decide_with_cost(&repo, "alice", &path("/user/presence"), &ctx("boss", 2, 11));
        assert!(cost.rules_considered <= 4, "got {}", cost.rules_considered);
    }

    #[test]
    fn non_overlapping_rules_not_applicable() {
        let pdp = Pdp::new();
        let repo = shield();
        // Presence rules must not leak access to devices.
        assert_eq!(
            pdp.decide(&repo, "alice", &path("/user/devices"), &ctx("boss", 2, 11)),
            Decision::Deny
        );
    }
}
