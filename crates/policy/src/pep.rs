//! The policy enforcement point (Figure 10: "in charge of asking for a
//! decision and enforcing it").
//!
//! In GUPster's role assignment (§4.6) the GUPster server itself is the
//! PEP: it asks the PDP for a decision and *rewrites the request
//! accordingly* before issuing referrals — "it rewrites the query
//! accordingly (for instance only a subset of the information asked for
//! can be returned)" (§5.3).

use gupster_xpath::Path;

use crate::context::RequestContext;
use crate::pdp::{Decision, DecisionCost, Pdp};
use crate::repository::PolicyRepository;

/// The result of enforcing a decision on a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Enforcement {
    /// Proceed with the request paths listed (the original request, or
    /// its permitted narrowings).
    Proceed(Vec<Path>),
    /// Refuse the request.
    Refused,
}

/// Asks the PDP and enforces its decision: returns the (possibly
/// narrowed) set of request paths that may continue to referral
/// resolution.
pub fn enforce(
    pdp: &Pdp,
    repo: &PolicyRepository,
    owner: &str,
    request: &Path,
    ctx: &RequestContext,
) -> Enforcement {
    enforce_with_cost(pdp, repo, owner, request, ctx).0
}

/// [`enforce`] plus the PDP's rule-evaluation work, so callers can
/// charge a rule-proportional cost to their `policy.decide` span.
pub fn enforce_with_cost(
    pdp: &Pdp,
    repo: &PolicyRepository,
    owner: &str,
    request: &Path,
    ctx: &RequestContext,
) -> (Enforcement, DecisionCost) {
    let (decision, cost) = pdp.decide_with_cost(repo, owner, request, ctx);
    (apply(decision, request), cost)
}

/// Enforces an already-rendered decision on a request. Split out so the
/// registry's decision memo can replay a cached [`Decision`] without
/// re-asking the PDP.
pub fn apply(decision: Decision, request: &Path) -> Enforcement {
    match decision {
        Decision::Permit => Enforcement::Proceed(vec![request.clone()]),
        Decision::Deny => Enforcement::Refused,
        Decision::PermitNarrowed(parts) => Enforcement::Proceed(parts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::context::WeekTime;
    use crate::rule::Rule;

    #[test]
    fn enforcement_mirrors_decisions() {
        let pdp = Pdp::new();
        let mut repo = PolicyRepository::new();
        repo.put(
            "alice",
            Rule::permit(
                "p",
                Path::parse("/user/address-book/item[@type='personal']").unwrap(),
                Condition::parse("relationship='family'").unwrap(),
            ),
        );
        let request = Path::parse("/user[@id='alice']/address-book").unwrap();

        let family = RequestContext::query("mom", "family", WeekTime::at(0, 10, 0));
        match enforce(&pdp, &repo, "alice", &request, &family) {
            Enforcement::Proceed(paths) => {
                assert_eq!(paths.len(), 1);
                assert!(paths[0].to_string().contains("personal"));
            }
            Enforcement::Refused => panic!("family should get the personal split"),
        }

        let stranger = RequestContext::query("spy", "third-party", WeekTime::at(0, 10, 0));
        assert_eq!(enforce(&pdp, &repo, "alice", &request, &stranger), Enforcement::Refused);

        let owner = RequestContext::owner("alice", WeekTime::at(0, 10, 0));
        assert_eq!(
            enforce(&pdp, &repo, "alice", &request, &owner),
            Enforcement::Proceed(vec![request.clone()])
        );
    }
}
