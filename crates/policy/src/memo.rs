//! A small LRU memo for PDP decisions (DESIGN.md §7).
//!
//! The referral pipeline decides the same `(owner, requester context,
//! request path)` triple over and over — HLR-style lookup storms replay
//! identical queries. The memo caches the [`Decision`] keyed by that
//! triple, with the request path *interned* so repeated keys hash an
//! integer, not a string.
//!
//! Invalidation is by **generation**: every entry is stamped with the
//! [`crate::PolicyRepository::generation`] it was computed under, and a
//! lookup whose stamp disagrees with the repository's current (globally
//! unique) generation is discarded. A PAP write bumps the generation,
//! so no stale decision can ever be served — without the memo having to
//! know *which* rules changed.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use gupster_xpath::{Path, PathInterner, Sym};

use crate::context::RequestContext;
use crate::pdp::Decision;

/// The memo key: profile owner, a hash of the full request context and
/// the interned request path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    owner: String,
    ctx_hash: u64,
    path: Sym,
}

impl MemoKey {
    /// Builds the key for one decision. The context hash folds in every
    /// facet (requester, relationship, purpose, time, attrs) — two
    /// contexts that could decide differently never share a key, short
    /// of a 64-bit hash collision between *simultaneously live* keys.
    pub fn new(owner: &str, ctx: &RequestContext, request: &Path) -> MemoKey {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        ctx.hash(&mut h);
        MemoKey {
            owner: owner.to_string(),
            ctx_hash: h.finish(),
            path: PathInterner::intern(&request.to_string()),
        }
    }
}

/// A bounded, generation-checked LRU memo of PDP decisions.
#[derive(Debug, Clone)]
pub struct DecisionMemo {
    capacity: usize,
    /// key → (decision, repository generation at compute time, last use).
    entries: HashMap<MemoKey, (Decision, u64, u64)>,
    tick: u64,
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that missed (absent or stale).
    pub misses: u64,
}

impl DecisionMemo {
    /// A memo bounded to `capacity` decisions.
    pub fn new(capacity: usize) -> Self {
        DecisionMemo {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a decision computed under the given repository
    /// generation. Entries stamped with any other generation are stale
    /// (the rules changed since) and are dropped on sight.
    pub fn get(&mut self, key: &MemoKey, generation: u64) -> Option<Decision> {
        self.tick += 1;
        let tick = self.tick;
        let stale = match self.entries.get_mut(key) {
            Some((decision, gen, last_use)) if *gen == generation => {
                *last_use = tick;
                self.hits += 1;
                return Some(decision.clone());
            }
            Some(_) => true,
            None => false,
        };
        if stale {
            self.entries.remove(key);
        }
        self.misses += 1;
        None
    }

    /// Stores a decision computed under the given generation, evicting
    /// the least-recently-used entry at capacity.
    pub fn put(&mut self, key: MemoKey, generation: u64, decision: Decision) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, _, last_use))| *last_use)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (decision, generation, self.tick));
    }

    /// Number of memoized decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops every memoized decision about `owner`'s profile — the
    /// write-through invalidation hook (DESIGN.md §13): a committed
    /// profile write may change what the owner's rules evaluate to
    /// (attribute-conditioned policies), so their decisions must be
    /// recomputed. Returns how many entries were dropped.
    pub fn invalidate_owner(&mut self, owner: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.owner != owner);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::WeekTime;

    fn key(owner: &str, requester: &str, path: &str) -> MemoKey {
        let ctx = RequestContext::query(requester, "family", WeekTime::at(1, 10, 0));
        MemoKey::new(owner, &ctx, &Path::parse(path).unwrap())
    }

    #[test]
    fn hit_miss_and_generation_invalidation() {
        let mut memo = DecisionMemo::new(8);
        let k = key("alice", "mom", "/user/presence");
        assert_eq!(memo.get(&k, 3), None);
        memo.put(k.clone(), 3, Decision::Permit);
        assert_eq!(memo.get(&k, 3), Some(Decision::Permit));
        // The repository moved to generation 7: the entry is stale.
        assert_eq!(memo.get(&k, 7), None);
        assert!(memo.is_empty(), "stale entries are dropped on sight");
        assert_eq!((memo.hits, memo.misses), (1, 2));
    }

    #[test]
    fn distinct_facets_get_distinct_keys() {
        let base = key("alice", "mom", "/user/presence");
        assert_ne!(base, key("alice", "dad", "/user/presence"));
        assert_ne!(base, key("alice", "mom", "/user/calendar"));
        assert_ne!(base, key("bob", "mom", "/user/presence"));
        let late = RequestContext::query("mom", "family", WeekTime::at(6, 23, 0));
        assert_ne!(
            base,
            MemoKey::new("alice", &late, &Path::parse("/user/presence").unwrap())
        );
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut memo = DecisionMemo::new(2);
        let a = key("alice", "a", "/user/presence");
        let b = key("alice", "b", "/user/presence");
        let c = key("alice", "c", "/user/presence");
        memo.put(a.clone(), 1, Decision::Permit);
        memo.put(b.clone(), 1, Decision::Deny);
        // Touch `a` so `b` is the LRU victim.
        assert_eq!(memo.get(&a, 1), Some(Decision::Permit));
        memo.put(c.clone(), 1, Decision::Permit);
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.get(&b, 1), None, "LRU victim evicted");
        assert_eq!(memo.get(&a, 1), Some(Decision::Permit));
        assert_eq!(memo.get(&c, 1), Some(Decision::Permit));
        memo.clear();
        assert!(memo.is_empty());
    }
}
