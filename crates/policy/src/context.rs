//! The request context — the facet XACML was "too limited" to express.

use std::collections::BTreeMap;
use std::fmt;

/// Why the requester wants the data (the paper's "purpose of the
/// request: plain request, caching request, subscription-based request").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Purpose {
    /// A plain one-shot query.
    Query,
    /// A request whose result will be cached by an intermediary.
    Cache,
    /// Establishing a subscription (continuous disclosure).
    Subscribe,
    /// A provisioning (write) request.
    Provision,
}

impl Purpose {
    /// Parses the lowercase name.
    pub fn parse(s: &str) -> Option<Purpose> {
        match s {
            "query" => Some(Purpose::Query),
            "cache" => Some(Purpose::Cache),
            "subscribe" => Some(Purpose::Subscribe),
            "provision" => Some(Purpose::Provision),
            _ => None,
        }
    }
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Purpose::Query => "query",
            Purpose::Cache => "cache",
            Purpose::Subscribe => "subscribe",
            Purpose::Provision => "provision",
        })
    }
}

/// A point in the week, minute resolution — policies like "co-workers
/// can see my presence during working hours (9am–6pm)" (§4.6) are
/// periodic in the week, not absolute in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WeekTime {
    /// Minutes since Monday 00:00 (0..10080).
    pub minutes: u32,
}

impl WeekTime {
    /// Minutes in a week.
    pub const WEEK: u32 = 7 * 24 * 60;

    /// Builds from day (0 = Monday … 6 = Sunday), hour and minute.
    pub fn at(day: u32, hour: u32, minute: u32) -> WeekTime {
        WeekTime { minutes: (day % 7) * 24 * 60 + (hour % 24) * 60 + (minute % 60) }
    }

    /// Day of week (0 = Monday).
    pub fn day(self) -> u32 {
        self.minutes / (24 * 60)
    }

    /// Minute within the day (0..1440).
    pub fn minute_of_day(self) -> u32 {
        self.minutes % (24 * 60)
    }

    /// Parses `Mon 09:30` style day names.
    pub fn day_from_name(name: &str) -> Option<u32> {
        match &name.to_ascii_lowercase()[..] {
            "mon" | "monday" => Some(0),
            "tue" | "tuesday" => Some(1),
            "wed" | "wednesday" => Some(2),
            "thu" | "thursday" => Some(3),
            "fri" | "friday" => Some(4),
            "sat" | "saturday" => Some(5),
            "sun" | "sunday" => Some(6),
            _ => None,
        }
    }
}

/// The full context of a profile request (§4.6: "the context provides
/// some information about … identity of the requester, purpose of the
/// request, etc."). `Hash` covers every facet, so the decision memo can
/// key on a context digest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestContext {
    /// Who asks (a user id or an application id).
    pub requester: String,
    /// The requester's relationship to the profile owner: `self`,
    /// `family`, `co-worker`, `boss`, `third-party`, … Relationships are
    /// provisioned by the owner (the paper's boss/family/co-worker
    /// policies) and resolved by the registry before deciding.
    pub relationship: String,
    /// Why.
    pub purpose: Purpose,
    /// When (simulated week time).
    pub time: WeekTime,
    /// Extension attributes (e.g. requester's network, client class).
    pub attrs: BTreeMap<String, String>,
}

impl RequestContext {
    /// A plain query context.
    pub fn query(requester: &str, relationship: &str, time: WeekTime) -> Self {
        RequestContext {
            requester: requester.to_string(),
            relationship: relationship.to_string(),
            purpose: Purpose::Query,
            time,
            attrs: BTreeMap::new(),
        }
    }

    /// Builder: sets the purpose.
    pub fn with_purpose(mut self, purpose: Purpose) -> Self {
        self.purpose = purpose;
        self
    }

    /// Builder: adds an extension attribute.
    pub fn with_attr(mut self, k: &str, v: &str) -> Self {
        self.attrs.insert(k.to_string(), v.to_string());
        self
    }

    /// The owner's own context (always `self` relationship).
    pub fn owner(user: &str, time: WeekTime) -> Self {
        Self::query(user, "self", time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weektime_arithmetic() {
        let t = WeekTime::at(4, 9, 30); // Friday 09:30
        assert_eq!(t.day(), 4);
        assert_eq!(t.minute_of_day(), 9 * 60 + 30);
        assert!(WeekTime::at(0, 0, 0) < WeekTime::at(6, 23, 59));
        assert_eq!(WeekTime::at(7, 25, 61), WeekTime::at(0, 1, 1));
    }

    #[test]
    fn day_names() {
        assert_eq!(WeekTime::day_from_name("Mon"), Some(0));
        assert_eq!(WeekTime::day_from_name("friday"), Some(4));
        assert_eq!(WeekTime::day_from_name("SUN"), Some(6));
        assert_eq!(WeekTime::day_from_name("noday"), None);
    }

    #[test]
    fn purpose_roundtrip() {
        for p in [Purpose::Query, Purpose::Cache, Purpose::Subscribe, Purpose::Provision] {
            assert_eq!(Purpose::parse(&p.to_string()), Some(p));
        }
        assert_eq!(Purpose::parse("espionage"), None);
    }

    #[test]
    fn context_builders() {
        let c = RequestContext::query("rick", "co-worker", WeekTime::at(1, 10, 0))
            .with_purpose(Purpose::Subscribe)
            .with_attr("client", "thin");
        assert_eq!(c.purpose, Purpose::Subscribe);
        assert_eq!(c.attrs["client"], "thin");
        let o = RequestContext::owner("alice", WeekTime::at(0, 0, 0));
        assert_eq!(o.relationship, "self");
    }
}
