//! The condition language over request contexts.
//!
//! Conditions are what make the shield richer than stock XACML (§6):
//! they can test the requester, the provisioned relationship, the
//! purpose, time-of-week windows and extension attributes, combined with
//! `and` / `or` / `not` and parentheses. Example — the §4.6 policy "any
//! co-worker can access my presence information during working-hours":
//!
//! ```text
//! relationship='co-worker' and time in Mon-Fri 09:00-18:00
//! ```

use std::fmt;

use crate::context::{RequestContext, WeekTime};

/// A boolean expression over a [`RequestContext`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// Always true.
    True,
    /// `requester='x'`.
    RequesterIs(String),
    /// `relationship='x'`.
    RelationshipIs(String),
    /// `purpose='query'`.
    PurposeIs(String),
    /// `attr:name='v'` — extension attribute equality.
    AttrEq(String, String),
    /// `time in Mon-Fri 09:00-18:00` — day-set plus daily window
    /// (half-open `[from, to)`; windows may wrap midnight).
    TimeWindow {
        /// Days the window applies to (0 = Monday).
        days: Vec<u32>,
        /// Window start, minutes of day.
        from: u32,
        /// Window end, minutes of day (exclusive).
        to: u32,
    },
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Evaluates against a context.
    pub fn eval(&self, ctx: &RequestContext) -> bool {
        match self {
            Condition::True => true,
            Condition::RequesterIs(r) => ctx.requester == *r,
            Condition::RelationshipIs(r) => ctx.relationship == *r,
            Condition::PurposeIs(p) => ctx.purpose.to_string() == *p,
            Condition::AttrEq(k, v) => ctx.attrs.get(k).is_some_and(|x| x == v),
            Condition::TimeWindow { days, from, to } => {
                if !days.contains(&ctx.time.day()) {
                    return false;
                }
                let m = ctx.time.minute_of_day();
                if from <= to {
                    m >= *from && m < *to
                } else {
                    m >= *from || m < *to // wraps midnight
                }
            }
            Condition::And(a, b) => a.eval(ctx) && b.eval(ctx),
            Condition::Or(a, b) => a.eval(ctx) || b.eval(ctx),
            Condition::Not(c) => !c.eval(ctx),
        }
    }

    /// Parses the condition language. Grammar (informal):
    ///
    /// ```text
    /// expr   := term (('and'|'or') term)*        -- left-assoc, and binds tighter
    /// term   := 'not' term | '(' expr ')' | atom
    /// atom   := 'true'
    ///         | 'requester' '=' str | 'relationship' '=' str
    ///         | 'purpose' '=' str   | 'attr:' name '=' str
    ///         | 'time' 'in' days HH:MM '-' HH:MM
    /// days   := 'any' | Day ('-' Day | (',' Day)*)
    /// ```
    pub fn parse(input: &str) -> Result<Condition, String> {
        let tokens = lex(input)?;
        let mut p = Parser { toks: &tokens, pos: 0 };
        let c = p.parse_or()?;
        if p.pos != p.toks.len() {
            return Err(format!("trailing tokens in condition: {input}"));
        }
        Ok(c)
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => f.write_str("true"),
            Condition::RequesterIs(r) => write!(f, "requester='{r}'"),
            Condition::RelationshipIs(r) => write!(f, "relationship='{r}'"),
            Condition::PurposeIs(p) => write!(f, "purpose='{p}'"),
            Condition::AttrEq(k, v) => write!(f, "attr:{k}='{v}'"),
            Condition::TimeWindow { days, from, to } => {
                let names = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
                let ds: Vec<&str> = days.iter().map(|d| names[*d as usize % 7]).collect();
                write!(
                    f,
                    "time in {} {:02}:{:02}-{:02}:{:02}",
                    ds.join(","),
                    from / 60,
                    from % 60,
                    to / 60,
                    to % 60
                )
            }
            Condition::And(a, b) => write!(f, "({a} and {b})"),
            Condition::Or(a, b) => write!(f, "({a} or {b})"),
            Condition::Not(c) => write!(f, "not ({c})"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    Str(String),
    Eq,
    LParen,
    RParen,
    Dash,
    Comma,
    Colon,
    Time(u32), // minutes of day
}

fn lex(input: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let b = input.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b'-' => {
                out.push(Tok::Dash);
                i += 1;
            }
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            b'\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err("unterminated string".into());
                }
                out.push(Tok::Str(input[start..j].to_string()));
                i = j + 1;
            }
            b'0'..=b'9' => {
                // HH:MM time literal.
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b':' {
                    let h: u32 = input[start..i].parse().map_err(|_| "bad hour")?;
                    i += 1;
                    let mstart = i;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let m: u32 = input[mstart..i].parse().map_err(|_| "bad minute")?;
                    if h > 24 || m > 59 {
                        return Err(format!("bad time {h}:{m}"));
                    }
                    out.push(Tok::Time(h * 60 + m));
                } else {
                    return Err(format!("bare number at {start}"));
                }
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Word(input[start..i].to_string()));
            }
            other => return Err(format!("unexpected character '{}'", other as char)),
        }
    }
    Ok(out)
}

struct Parser<'t> {
    toks: &'t [Tok],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> Option<&'t Tok> {
        self.toks.get(self.pos)
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Word(x)) if x.eq_ignore_ascii_case(w)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Condition, String> {
        let mut left = self.parse_and()?;
        while self.eat_word("or") {
            let right = self.parse_and()?;
            left = Condition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Condition, String> {
        let mut left = self.parse_term()?;
        while self.eat_word("and") {
            let right = self.parse_term()?;
            left = Condition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<Condition, String> {
        if self.eat_word("not") {
            return Ok(Condition::Not(Box::new(self.parse_term()?)));
        }
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            let c = self.parse_or()?;
            if self.peek() != Some(&Tok::RParen) {
                return Err("expected ')'".into());
            }
            self.pos += 1;
            return Ok(c);
        }
        self.parse_atom()
    }

    fn expect_eq_str(&mut self) -> Result<String, String> {
        if self.peek() != Some(&Tok::Eq) {
            return Err("expected '='".into());
        }
        self.pos += 1;
        match self.peek() {
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(s.clone())
            }
            _ => Err("expected quoted string".into()),
        }
    }

    fn parse_atom(&mut self) -> Result<Condition, String> {
        let word = match self.peek() {
            Some(Tok::Word(w)) => w.clone(),
            _ => return Err("expected a condition atom".into()),
        };
        self.pos += 1;
        match word.to_ascii_lowercase().as_str() {
            "true" => Ok(Condition::True),
            "requester" => Ok(Condition::RequesterIs(self.expect_eq_str()?)),
            "relationship" => Ok(Condition::RelationshipIs(self.expect_eq_str()?)),
            "purpose" => {
                let p = self.expect_eq_str()?;
                if crate::context::Purpose::parse(&p).is_none() {
                    return Err(format!("unknown purpose '{p}'"));
                }
                Ok(Condition::PurposeIs(p))
            }
            "attr" => {
                if self.peek() != Some(&Tok::Colon) {
                    return Err("expected ':' after attr".into());
                }
                self.pos += 1;
                let name = match self.peek() {
                    Some(Tok::Word(w)) => w.clone(),
                    _ => return Err("expected attribute name".into()),
                };
                self.pos += 1;
                Ok(Condition::AttrEq(name, self.expect_eq_str()?))
            }
            "time" => {
                if !self.eat_word("in") {
                    return Err("expected 'in' after time".into());
                }
                let days = self.parse_days()?;
                let from = match self.peek() {
                    Some(Tok::Time(t)) => *t,
                    _ => return Err("expected HH:MM".into()),
                };
                self.pos += 1;
                if self.peek() != Some(&Tok::Dash) {
                    return Err("expected '-' in time window".into());
                }
                self.pos += 1;
                let to = match self.peek() {
                    Some(Tok::Time(t)) => *t,
                    _ => return Err("expected HH:MM".into()),
                };
                self.pos += 1;
                Ok(Condition::TimeWindow { days, from, to })
            }
            other => Err(format!("unknown atom '{other}'")),
        }
    }

    fn parse_days(&mut self) -> Result<Vec<u32>, String> {
        if self.eat_word("any") {
            return Ok((0..7).collect());
        }
        let first = match self.peek() {
            Some(Tok::Word(w)) => {
                WeekTime::day_from_name(w).ok_or_else(|| format!("unknown day '{w}'"))?
            }
            _ => return Err("expected a day name".into()),
        };
        self.pos += 1;
        if self.peek() == Some(&Tok::Dash) {
            // Range Mon-Fri.
            self.pos += 1;
            let last = match self.peek() {
                Some(Tok::Word(w)) => {
                    WeekTime::day_from_name(w).ok_or_else(|| format!("unknown day '{w}'"))?
                }
                _ => return Err("expected a day name after '-'".into()),
            };
            self.pos += 1;
            let mut days = Vec::new();
            let mut d = first;
            loop {
                days.push(d);
                if d == last {
                    break;
                }
                d = (d + 1) % 7;
            }
            return Ok(days);
        }
        let mut days = vec![first];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            match self.peek() {
                Some(Tok::Word(w)) => {
                    days.push(
                        WeekTime::day_from_name(w).ok_or_else(|| format!("unknown day '{w}'"))?,
                    );
                    self.pos += 1;
                }
                _ => return Err("expected a day name after ','".into()),
            }
        }
        Ok(days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Purpose, RequestContext};

    fn ctx(rel: &str, day: u32, hour: u32) -> RequestContext {
        RequestContext::query("rick", rel, WeekTime::at(day, hour, 0))
    }

    #[test]
    fn paper_coworker_policy() {
        // "any co-worker can access my presence information during
        // working-hours" (§4.6).
        let c = Condition::parse("relationship='co-worker' and time in Mon-Fri 09:00-18:00")
            .unwrap();
        assert!(c.eval(&ctx("co-worker", 1, 10)));
        assert!(!c.eval(&ctx("co-worker", 1, 8)));
        assert!(!c.eval(&ctx("co-worker", 5, 10))); // Saturday
        assert!(!c.eval(&ctx("third-party", 1, 10)));
    }

    #[test]
    fn paper_boss_family_policy() {
        // "my boss and my family can access my presence information at
        // any time".
        let c = Condition::parse("relationship='boss' or relationship='family'").unwrap();
        assert!(c.eval(&ctx("boss", 6, 3)));
        assert!(c.eval(&ctx("family", 0, 0)));
        assert!(!c.eval(&ctx("co-worker", 1, 10)));
    }

    #[test]
    fn precedence_and_parens() {
        // and binds tighter than or.
        let c = Condition::parse("relationship='a' or relationship='b' and purpose='cache'")
            .unwrap();
        assert!(c.eval(&ctx("a", 0, 0)));
        assert!(!c.eval(&ctx("b", 0, 0))); // purpose is query
        let c2 = Condition::parse("(relationship='a' or relationship='b') and purpose='query'")
            .unwrap();
        assert!(c2.eval(&ctx("b", 0, 0)));
    }

    #[test]
    fn negation() {
        let c = Condition::parse("not relationship='third-party'").unwrap();
        assert!(c.eval(&ctx("family", 0, 0)));
        assert!(!c.eval(&ctx("third-party", 0, 0)));
    }

    #[test]
    fn time_window_wraps_midnight() {
        let c = Condition::parse("time in any 22:00-06:00").unwrap();
        assert!(c.eval(&ctx("x", 2, 23)));
        assert!(c.eval(&ctx("x", 2, 3)));
        assert!(!c.eval(&ctx("x", 2, 12)));
    }

    #[test]
    fn day_lists_and_ranges() {
        let c = Condition::parse("time in Sat,Sun 00:00-24:00").unwrap();
        assert!(c.eval(&ctx("x", 5, 10)));
        assert!(c.eval(&ctx("x", 6, 10)));
        assert!(!c.eval(&ctx("x", 2, 10)));
        // Wrapping range Fri-Mon.
        let c = Condition::parse("time in Fri-Mon 00:00-24:00").unwrap();
        assert!(c.eval(&ctx("x", 4, 1)));
        assert!(c.eval(&ctx("x", 0, 1)));
        assert!(!c.eval(&ctx("x", 2, 1)));
    }

    #[test]
    fn purpose_and_attr_atoms() {
        let c = Condition::parse("purpose='subscribe'").unwrap();
        let mut k = ctx("x", 0, 0);
        assert!(!c.eval(&k));
        k.purpose = Purpose::Subscribe;
        assert!(c.eval(&k));
        let c = Condition::parse("attr:client='thin'").unwrap();
        assert!(!c.eval(&k));
        let k = k.with_attr("client", "thin");
        assert!(c.eval(&k));
    }

    #[test]
    fn requester_atom_and_true() {
        let c = Condition::parse("requester='rick' and true").unwrap();
        assert!(c.eval(&ctx("whatever", 0, 0)));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "relationship=",
            "relationship='x' and",
            "time in Mon",
            "time in Mon 09:00",
            "time in Noday 09:00-10:00",
            "purpose='espionage'",
            "bogus='x'",
            "relationship='x')",
            "attr='x'",
            "time in any 25:00-26:00",
        ] {
            assert!(Condition::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn display_reparses() {
        for s in [
            "relationship='co-worker' and time in Mon-Fri 09:00-18:00",
            "not (requester='x' or purpose='cache')",
            "attr:k='v'",
            "true",
        ] {
            let c = Condition::parse(s).unwrap();
            let c2 = Condition::parse(&c.to_string()).unwrap();
            // Semantically identical on a probe of contexts.
            for day in 0..7 {
                for hour in [0, 9, 12, 18, 23] {
                    let k = RequestContext::query("x", "co-worker", WeekTime::at(day, hour, 30))
                        .with_attr("k", "v");
                    assert_eq!(c.eval(&k), c2.eval(&k), "{s} at {day} {hour}");
                }
            }
        }
    }
}
