//! # gupster-policy
//!
//! The **privacy shield** (§4.6 of the paper): "users are willing to
//! grant access to their profile information … provided they remain in
//! control of who can access this information and when."
//!
//! A request has two facets: a *path* (what profile components are asked
//! for) and a *context* (who asks, why, when) — [`RequestContext`]. The
//! paper found XACML's request context "too limited (restricted to
//! principals)", so this crate implements the richer context the paper
//! calls for: requester identity, relationship, purpose, time-of-week
//! and free-form attributes, with a small condition language
//! ([`Condition`]) over it.
//!
//! The policy infrastructure follows Figure 10's role split:
//!
//! * [`PolicyRepository`] — stores per-user rule sets,
//! * [`Pap`] — the administration point: provision and validate rules,
//! * [`Pdp`] — the decision point: pure decision, no side effects,
//! * [`pep::enforce`] — the enforcement point: rewrites or refuses the
//!   request according to the decision (GUPster plays this role; data
//!   stores are execution points).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod condition;
mod context;
mod memo;
mod pap;
mod pdp;
pub mod pep;
mod repository;
mod rule;

pub use condition::Condition;
pub use context::{Purpose, RequestContext, WeekTime};
pub use memo::{DecisionMemo, MemoKey};
pub use pap::{Pap, RuleError};
pub use pdp::{Decision, DecisionCost, Pdp};
pub use repository::PolicyRepository;
pub use rule::{Effect, Rule};
