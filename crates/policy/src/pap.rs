//! The policy administration point (Figure 10: "in charge of
//! provisioning the rules … and other administrative tasks (e.g.,
//! checking that the rules are valid)").

use std::fmt;

use gupster_xpath::Path;

use crate::condition::Condition;
use crate::repository::PolicyRepository;
use crate::rule::{Effect, Rule};

/// Why a rule was rejected at provisioning time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// The scope expression did not parse.
    BadScope(String),
    /// The condition expression did not parse.
    BadCondition(String),
    /// The scope targets the whole document root, which would make the
    /// rule govern everything including the shield's own meta-data.
    ScopeTooBroad,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::BadScope(e) => write!(f, "invalid scope: {e}"),
            RuleError::BadCondition(e) => write!(f, "invalid condition: {e}"),
            RuleError::ScopeTooBroad => f.write_str("scope must name a component, not '/'"),
        }
    }
}

impl std::error::Error for RuleError {}

/// The administration point: the interface through which end-users
/// provision their privacy shield (Req. 9: "end-users can specify
/// (possibly intricate) policies").
#[derive(Debug, Default)]
pub struct Pap {
    /// The repository this PAP administers.
    pub repository: PolicyRepository,
}

impl Pap {
    /// A PAP over a fresh repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates and provisions a rule from its textual form.
    pub fn provision(
        &mut self,
        user: &str,
        rule_id: &str,
        effect: Effect,
        scope: &str,
        condition: &str,
        priority: i32,
    ) -> Result<(), RuleError> {
        let rule = Self::validate(rule_id, effect, scope, condition, priority)?;
        self.repository.put(user, rule);
        Ok(())
    }

    /// Validation without provisioning (the PAP's "checking that the
    /// rules are valid").
    pub fn validate(
        rule_id: &str,
        effect: Effect,
        scope: &str,
        condition: &str,
        priority: i32,
    ) -> Result<Rule, RuleError> {
        let scope = Path::parse(scope).map_err(|e| RuleError::BadScope(e.to_string()))?;
        if scope.is_empty() {
            return Err(RuleError::ScopeTooBroad);
        }
        let condition =
            Condition::parse(condition).map_err(RuleError::BadCondition)?;
        Ok(Rule { id: rule_id.to_string(), scope, condition, effect, priority })
    }

    /// Removes a rule.
    pub fn withdraw(&mut self, user: &str, rule_id: &str) -> bool {
        self.repository.remove(user, rule_id)
    }

    /// Lists a user's rules in textual form (the self-provisioning UI).
    pub fn list(&self, user: &str) -> Vec<String> {
        self.repository.rules_for(user).iter().map(Rule::to_string).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_valid_rule() {
        let mut pap = Pap::new();
        pap.provision(
            "alice",
            "r1",
            Effect::Permit,
            "/user/presence",
            "relationship='co-worker' and time in Mon-Fri 09:00-18:00",
            0,
        )
        .unwrap();
        assert_eq!(pap.repository.count_for("alice"), 1);
        assert_eq!(pap.list("alice").len(), 1);
        assert!(pap.list("alice")[0].contains("co-worker"));
    }

    #[test]
    fn bad_scope_rejected() {
        let mut pap = Pap::new();
        let err = pap.provision("alice", "r", Effect::Permit, "not a path", "true", 0);
        assert!(matches!(err, Err(RuleError::BadScope(_))));
        let err = pap.provision("alice", "r", Effect::Permit, "/", "true", 0);
        assert!(matches!(err, Err(RuleError::ScopeTooBroad)));
    }

    #[test]
    fn bad_condition_rejected() {
        let mut pap = Pap::new();
        let err =
            pap.provision("alice", "r", Effect::Permit, "/user/presence", "purpose='spy'", 0);
        assert!(matches!(err, Err(RuleError::BadCondition(_))));
        assert_eq!(pap.repository.count_for("alice"), 0);
    }

    #[test]
    fn withdraw() {
        let mut pap = Pap::new();
        pap.provision("alice", "r1", Effect::Deny, "/user/wallet", "true", 0).unwrap();
        assert!(pap.withdraw("alice", "r1"));
        assert!(!pap.withdraw("alice", "r1"));
    }
}
