//! Property tests local to the directory crate: DN algebra, filter
//! parser robustness, search-scope monotonicity, syntax normalizers.

use proptest::prelude::*;

use gupster_directory::{
    AttributeSyntax, Directory, Dn, Entry, Filter, Scope,
};

fn arb_dn() -> impl Strategy<Value = Dn> {
    prop::collection::vec(("[a-z]{1,4}", "[a-zA-Z0-9]{1,6}"), 1..5)
        .prop_map(|rdns| Dn { rdns })
}

proptest! {
    /// DN display → parse is the identity (names are already lowercase
    /// in the generator's range... attribute names get lowercased, so
    /// generate lowercase attrs and arbitrary-case values).
    #[test]
    fn dn_display_parse_roundtrip(dn in arb_dn()) {
        let back = Dn::parse(&dn.to_string()).unwrap();
        prop_assert_eq!(back, dn);
    }

    /// parent/child are inverse; is_under is a partial order on chains.
    #[test]
    fn dn_hierarchy_laws(dn in arb_dn(), attr in "[a-z]{1,4}", value in "[a-z0-9]{1,5}") {
        let child = dn.child(&attr, &value);
        prop_assert_eq!(child.parent().unwrap(), dn.clone());
        prop_assert!(child.is_under(&dn));
        prop_assert!(child.is_child_of(&dn));
        prop_assert!(!dn.is_under(&child));
        prop_assert!(dn.is_under(&dn));
        prop_assert!(child.is_under(&Dn::root()));
    }

    /// The filter parser never panics on arbitrary input.
    #[test]
    fn filter_parser_never_panics(input in ".{0,60}") {
        let _ = Filter::parse(&input);
    }

    /// Base hits ⊆ one-level ∪ base ⊆ subtree hits, for any filter that
    /// parses.
    #[test]
    fn scope_monotonicity(values in prop::collection::vec("[a-z]{1,6}", 1..6)) {
        let mut dir = Directory::new();
        dir.add(Entry::new(Dn::parse("o=x").unwrap(), &["organization"]).with("o", "x")).unwrap();
        for (i, v) in values.iter().enumerate() {
            dir.add(
                Entry::new(Dn::parse(&format!("cn=c{i},o=x")).unwrap(), &["person"])
                    .with("cn", format!("c{i}"))
                    .with("sn", v.clone()),
            )
            .unwrap();
        }
        let base = Dn::parse("o=x").unwrap();
        let f = Filter::parse("(objectClass=*)").unwrap();
        let b = dir.search(&base, Scope::Base, &f).hits.len();
        let one = dir.search(&base, Scope::OneLevel, &f).hits.len();
        let sub = dir.search(&base, Scope::Subtree, &f).hits.len();
        prop_assert_eq!(b, 1);
        prop_assert_eq!(one, values.len());
        prop_assert_eq!(sub, values.len() + 1);
    }

    /// Telephone normalization is idempotent and punctuation-blind.
    #[test]
    fn telephone_syntax_laws(digits in proptest::collection::vec(0u8..10, 3..12)) {
        let syn = AttributeSyntax::Telephone;
        let plain: String = digits.iter().map(|d| d.to_string()).collect();
        let spaced: String = digits.iter().map(|d| format!("{d} ")).collect();
        let parens = format!("({})", plain);
        prop_assert!(syn.eq(&plain, &spaced));
        prop_assert!(syn.eq(&plain, &parens));
        let n = syn.normalize(&spaced);
        prop_assert_eq!(syn.normalize(&n), n);
    }

    /// Case-ignore equality is an equivalence on printable strings:
    /// reflexive, symmetric; normalization idempotent.
    #[test]
    fn case_ignore_laws(a in "[ -~]{0,20}", b in "[ -~]{0,20}") {
        let syn = AttributeSyntax::CaseIgnore;
        prop_assert!(syn.eq(&a, &a));
        prop_assert_eq!(syn.eq(&a, &b), syn.eq(&b, &a));
        let n = syn.normalize(&a);
        prop_assert_eq!(syn.normalize(&n), n);
    }

    /// Every added leaf entry can be deleted, and delete is idempotent
    /// in its failure mode.
    #[test]
    fn add_delete_roundtrip(cn in "[a-z]{1,8}") {
        let mut dir = Directory::new();
        dir.add(Entry::new(Dn::parse("o=x").unwrap(), &["organization"]).with("o", "x")).unwrap();
        let dn = Dn::parse(&format!("cn={cn},o=x")).unwrap();
        dir.add(Entry::new(dn.clone(), &["person"]).with("cn", cn).with("sn", "s")).unwrap();
        prop_assert!(dir.get(&dn).is_ok());
        prop_assert!(dir.delete(&dn).is_ok());
        prop_assert!(dir.get(&dn).is_err());
        prop_assert!(dir.delete(&dn).is_err());
    }
}
