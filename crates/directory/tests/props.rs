//! Randomized invariant tests local to the directory crate: DN algebra,
//! filter parser robustness, search-scope monotonicity, syntax
//! normalizers. Deterministic — see `gupster_rng::check`.

use gupster_directory::{AttributeSyntax, Directory, Dn, Entry, Filter, Scope};
use gupster_rng::check::{self, cases};
use gupster_rng::{Rng, StdRng};

fn arb_dn(rng: &mut StdRng) -> Dn {
    // Attribute names get lowercased by the parser, so generate
    // lowercase attrs and alphanumeric values.
    let rdns = check::vec_of(rng, 1, 4, |r| (check::lowercase(r, 1, 4), check::alnum(r, 1, 6)));
    Dn { rdns }
}

/// DN display → parse is the identity.
#[test]
fn dn_display_parse_roundtrip() {
    cases(256, 0xd1_01, |rng| {
        let dn = arb_dn(rng);
        let back = Dn::parse(&dn.to_string()).unwrap();
        assert_eq!(back, dn);
    });
}

/// parent/child are inverse; is_under is a partial order on chains.
#[test]
fn dn_hierarchy_laws() {
    cases(256, 0xd1_02, |rng| {
        let dn = arb_dn(rng);
        let attr = check::lowercase(rng, 1, 4);
        let value = check::alnum(rng, 1, 5);
        let child = dn.child(&attr, &value);
        assert_eq!(child.parent().unwrap(), dn.clone());
        assert!(child.is_under(&dn));
        assert!(child.is_child_of(&dn));
        assert!(!dn.is_under(&child));
        assert!(dn.is_under(&dn));
        assert!(child.is_under(&Dn::root()));
    });
}

/// The filter parser never panics on arbitrary input.
#[test]
fn filter_parser_never_panics() {
    cases(512, 0xd1_03, |rng| {
        let input = check::printable(rng, 0, 60);
        let _ = Filter::parse(&input);
    });
}

/// Base hits ⊆ one-level ∪ base ⊆ subtree hits, for any filter that
/// parses.
#[test]
fn scope_monotonicity() {
    cases(128, 0xd1_04, |rng| {
        let values = check::vec_of(rng, 1, 5, |r| check::lowercase(r, 1, 6));
        let mut dir = Directory::new();
        dir.add(Entry::new(Dn::parse("o=x").unwrap(), &["organization"]).with("o", "x")).unwrap();
        for (i, v) in values.iter().enumerate() {
            dir.add(
                Entry::new(Dn::parse(&format!("cn=c{i},o=x")).unwrap(), &["person"])
                    .with("cn", format!("c{i}"))
                    .with("sn", v.clone()),
            )
            .unwrap();
        }
        let base = Dn::parse("o=x").unwrap();
        let f = Filter::parse("(objectClass=*)").unwrap();
        let b = dir.search(&base, Scope::Base, &f).hits.len();
        let one = dir.search(&base, Scope::OneLevel, &f).hits.len();
        let sub = dir.search(&base, Scope::Subtree, &f).hits.len();
        assert_eq!(b, 1);
        assert_eq!(one, values.len());
        assert_eq!(sub, values.len() + 1);
    });
}

/// Telephone normalization is idempotent and punctuation-blind.
#[test]
fn telephone_syntax_laws() {
    cases(256, 0xd1_05, |rng| {
        let digits = check::vec_of(rng, 3, 11, |r| r.gen_range(0u8..10));
        let syn = AttributeSyntax::Telephone;
        let plain: String = digits.iter().map(|d| d.to_string()).collect();
        let spaced: String = digits.iter().map(|d| format!("{d} ")).collect();
        let parens = format!("({plain})");
        assert!(syn.eq(&plain, &spaced));
        assert!(syn.eq(&plain, &parens));
        let n = syn.normalize(&spaced);
        assert_eq!(syn.normalize(&n), n);
    });
}

/// Case-ignore equality is an equivalence on printable strings:
/// reflexive, symmetric; normalization idempotent.
#[test]
fn case_ignore_laws() {
    cases(256, 0xd1_06, |rng| {
        let a = check::printable(rng, 0, 20);
        let b = check::printable(rng, 0, 20);
        let syn = AttributeSyntax::CaseIgnore;
        assert!(syn.eq(&a, &a));
        assert_eq!(syn.eq(&a, &b), syn.eq(&b, &a));
        let n = syn.normalize(&a);
        assert_eq!(syn.normalize(&n), n);
    });
}

/// Every added leaf entry can be deleted, and delete is idempotent
/// in its failure mode.
#[test]
fn add_delete_roundtrip() {
    cases(256, 0xd1_07, |rng| {
        let cn = check::lowercase(rng, 1, 8);
        let mut dir = Directory::new();
        dir.add(Entry::new(Dn::parse("o=x").unwrap(), &["organization"]).with("o", "x")).unwrap();
        let dn = Dn::parse(&format!("cn={cn},o=x")).unwrap();
        dir.add(Entry::new(dn.clone(), &["person"]).with("cn", cn).with("sn", "s")).unwrap();
        assert!(dir.get(&dn).is_ok());
        assert!(dir.delete(&dn).is_ok());
        assert!(dir.get(&dn).is_err());
        assert!(dir.delete(&dn).is_err());
    });
}
