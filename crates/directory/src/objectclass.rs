//! Object classes: LDAP's "aspect"-style extensibility (§6: "objects are
//! modeled with aspects and can always implement a new objectclass").

use std::collections::BTreeMap;

use crate::syntax::AttributeSyntax;

/// An object class: a named set of required and optional attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectClass {
    /// Class name, e.g. `inetOrgPerson`.
    pub name: String,
    /// Superclass name (`top` has none).
    pub superior: Option<String>,
    /// Attributes that must be present.
    pub required: Vec<String>,
    /// Attributes that may be present.
    pub optional: Vec<String>,
}

impl ObjectClass {
    /// Creates an object class.
    pub fn new(
        name: &str,
        superior: Option<&str>,
        required: &[&str],
        optional: &[&str],
    ) -> Self {
        ObjectClass {
            name: name.to_string(),
            superior: superior.map(str::to_string),
            required: required.iter().map(|s| s.to_string()).collect(),
            optional: optional.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A registry of object classes plus per-attribute syntaxes.
#[derive(Debug, Clone, Default)]
pub struct ObjectClassRegistry {
    classes: BTreeMap<String, ObjectClass>,
    syntaxes: BTreeMap<String, AttributeSyntax>,
}

impl ObjectClassRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a class.
    pub fn add_class(&mut self, class: ObjectClass) {
        self.classes.insert(class.name.clone(), class);
    }

    /// Declares the syntax of an attribute (default: case-ignore).
    pub fn set_syntax(&mut self, attr: &str, syntax: AttributeSyntax) {
        self.syntaxes.insert(attr.to_ascii_lowercase(), syntax);
    }

    /// The syntax of an attribute.
    pub fn syntax(&self, attr: &str) -> AttributeSyntax {
        self.syntaxes.get(&attr.to_ascii_lowercase()).copied().unwrap_or_default()
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&ObjectClass> {
        self.classes.get(name)
    }

    /// All attributes required by a class, including inherited ones.
    /// Unknown classes contribute nothing.
    pub fn required_attrs(&self, class: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(class.to_string());
        while let Some(name) = cur {
            match self.classes.get(&name) {
                Some(c) => {
                    out.extend(c.required.iter().cloned());
                    cur = c.superior.clone();
                }
                None => break,
            }
        }
        out
    }

    /// All attributes allowed by a class chain (required + optional).
    pub fn allowed_attrs(&self, class: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(class.to_string());
        while let Some(name) = cur {
            match self.classes.get(&name) {
                Some(c) => {
                    out.extend(c.required.iter().cloned());
                    out.extend(c.optional.iter().cloned());
                    cur = c.superior.clone();
                }
                None => break,
            }
        }
        out
    }
}

/// The standard class registry used by the reproduction: classic LDAP
/// person/org classes, a DEN-flavoured device class, and Netscape's
/// roaming-profile container class with its opaque blob attributes.
pub fn standard_classes() -> ObjectClassRegistry {
    let mut r = ObjectClassRegistry::new();
    r.add_class(ObjectClass::new("top", None, &["objectClass"], &[]));
    r.add_class(ObjectClass::new("organization", Some("top"), &["o"], &["description"]));
    r.add_class(ObjectClass::new(
        "organizationalUnit",
        Some("top"),
        &["ou"],
        &["description"],
    ));
    r.add_class(ObjectClass::new(
        "person",
        Some("top"),
        &["cn", "sn"],
        &["telephoneNumber", "description", "seeAlso"],
    ));
    r.add_class(ObjectClass::new(
        "organizationalPerson",
        Some("person"),
        &[],
        &["title", "ou", "l", "postalAddress"],
    ));
    r.add_class(ObjectClass::new(
        "inetOrgPerson",
        Some("organizationalPerson"),
        &[],
        &["mail", "mobile", "uid", "homePhone", "labeledURI"],
    ));
    // DEN-style network device (§6 references the DEN schemas).
    r.add_class(ObjectClass::new(
        "denDevice",
        Some("top"),
        &["cn", "deviceKind"],
        &["serialNumber", "owner", "telephoneNumber"],
    ));
    // Netscape roaming profile container: nested data as opaque blobs.
    r.add_class(ObjectClass::new(
        "nsRoamingProfile",
        Some("top"),
        &["uid"],
        &["nsAddressBookBlob", "nsBookmarksBlob", "nsPrefsBlob", "nsMp3PlaylistBlob"],
    ));

    r.set_syntax("telephoneNumber", AttributeSyntax::Telephone);
    r.set_syntax("homePhone", AttributeSyntax::Telephone);
    r.set_syntax("mobile", AttributeSyntax::Telephone);
    r.set_syntax("uid", AttributeSyntax::CaseExact);
    r.set_syntax("serialNumber", AttributeSyntax::CaseExact);
    r.set_syntax("nsAddressBookBlob", AttributeSyntax::Binary);
    r.set_syntax("nsBookmarksBlob", AttributeSyntax::Binary);
    r.set_syntax("nsPrefsBlob", AttributeSyntax::Binary);
    r.set_syntax("nsMp3PlaylistBlob", AttributeSyntax::Binary);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inheritance_chains() {
        let r = standard_classes();
        let req = r.required_attrs("inetOrgPerson");
        assert!(req.contains(&"cn".to_string()));
        assert!(req.contains(&"sn".to_string()));
        assert!(req.contains(&"objectClass".to_string()));
        let allowed = r.allowed_attrs("inetOrgPerson");
        assert!(allowed.contains(&"mail".to_string()));
        assert!(allowed.contains(&"telephoneNumber".to_string()));
        assert!(allowed.contains(&"title".to_string()));
    }

    #[test]
    fn unknown_class_empty() {
        let r = standard_classes();
        assert!(r.required_attrs("nope").is_empty());
        assert!(r.class("nope").is_none());
    }

    #[test]
    fn syntaxes_registered() {
        let r = standard_classes();
        assert_eq!(r.syntax("telephoneNumber"), AttributeSyntax::Telephone);
        assert_eq!(r.syntax("TELEPHONENUMBER"), AttributeSyntax::Telephone);
        assert_eq!(r.syntax("cn"), AttributeSyntax::CaseIgnore);
        assert_eq!(r.syntax("nsAddressBookBlob"), AttributeSyntax::Binary);
    }
}
