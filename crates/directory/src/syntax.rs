//! Attribute syntaxes with comparison normalizers.
//!
//! LDAP's typing "is not used so much for sanity checking input as for
//! deciding which comparison function to use" (§6) — this module keeps
//! that behaviour.

/// How an attribute's values are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AttributeSyntax {
    /// Case-insensitive, whitespace-squeezing string match (LDAP
    /// `caseIgnoreMatch`, the default for most attributes).
    #[default]
    CaseIgnore,
    /// Byte-exact match.
    CaseExact,
    /// Telephone numbers: punctuation-insensitive.
    Telephone,
    /// Decimal integers: numeric comparison.
    Integer,
    /// Opaque binary/blob values: byte-exact, not searchable by
    /// substring. Netscape roaming profiles use this.
    Binary,
}

impl AttributeSyntax {
    /// Canonical comparison form.
    pub fn normalize(self, raw: &str) -> String {
        match self {
            AttributeSyntax::CaseIgnore => {
                let mut out = String::with_capacity(raw.len());
                let mut last_space = true;
                for c in raw.trim().chars() {
                    if c.is_whitespace() {
                        if !last_space {
                            out.push(' ');
                            last_space = true;
                        }
                    } else {
                        out.extend(c.to_lowercase());
                        last_space = false;
                    }
                }
                if out.ends_with(' ') {
                    out.pop();
                }
                out
            }
            AttributeSyntax::CaseExact | AttributeSyntax::Binary => raw.to_string(),
            AttributeSyntax::Telephone => {
                let plus = raw.trim_start().starts_with('+');
                let digits: String = raw.chars().filter(char::is_ascii_digit).collect();
                if plus {
                    format!("+{digits}")
                } else {
                    digits
                }
            }
            AttributeSyntax::Integer => {
                let v = raw.trim();
                let neg = v.starts_with('-');
                let digits: String = v.chars().filter(char::is_ascii_digit).collect();
                let trimmed = digits.trim_start_matches('0');
                let body = if trimmed.is_empty() { "0" } else { trimmed };
                if neg && body != "0" {
                    format!("-{body}")
                } else {
                    body.to_string()
                }
            }
        }
    }

    /// Equality under this syntax.
    pub fn eq(self, a: &str, b: &str) -> bool {
        self.normalize(a) == self.normalize(b)
    }

    /// Ordering comparison (used by `>=` / `<=` filters). Integers
    /// compare numerically; other syntaxes compare normalized strings.
    pub fn cmp(self, a: &str, b: &str) -> std::cmp::Ordering {
        if self == AttributeSyntax::Integer {
            let pa: i64 = self.normalize(a).parse().unwrap_or(0);
            let pb: i64 = self.normalize(b).parse().unwrap_or(0);
            pa.cmp(&pb)
        } else {
            self.normalize(a).cmp(&self.normalize(b))
        }
    }

    /// Substring match (`cn=Ali*`); binary syntax never matches.
    pub fn matches_substring(self, value: &str, prefix: &str, suffix: &str, parts: &[String]) -> bool {
        if self == AttributeSyntax::Binary {
            return false;
        }
        let v = self.normalize(value);
        let p = self.normalize(prefix);
        let s = self.normalize(suffix);
        if !v.starts_with(&p) || !v[p.len()..].ends_with(&s) {
            return false;
        }
        let mut rest = &v[p.len()..v.len() - s.len()];
        for part in parts {
            let np = self.normalize(part);
            match rest.find(&np) {
                Some(i) => rest = &rest[i + np.len()..],
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_ignore_squeezes() {
        let s = AttributeSyntax::CaseIgnore;
        assert!(s.eq("Alice  Smith", "alice smith"));
        assert!(s.eq("  Bob ", "bob"));
        assert!(!s.eq("alice", "alicia"));
    }

    #[test]
    fn telephone_punct_insensitive() {
        let s = AttributeSyntax::Telephone;
        assert!(s.eq("908-582-4393", "(908) 582-4393"));
        assert!(s.eq("+1 908 582 4393", "+1-908-582-4393"));
        assert!(!s.eq("+19085824393", "19085824393")); // + significant
    }

    #[test]
    fn integer_numeric() {
        let s = AttributeSyntax::Integer;
        assert!(s.eq("007", "7"));
        assert_eq!(s.cmp("9", "10"), std::cmp::Ordering::Less);
        assert_eq!(s.cmp("-2", "1"), std::cmp::Ordering::Less);
    }

    #[test]
    fn substring_matching() {
        let s = AttributeSyntax::CaseIgnore;
        // cn=Ali* → prefix "Ali"
        assert!(s.matches_substring("Alice", "ali", "", &[]));
        // cn=*ice → suffix
        assert!(s.matches_substring("Alice", "", "ice", &[]));
        // cn=A*c*e → prefix + inner + suffix
        assert!(s.matches_substring("Alice", "a", "e", &["c".into()]));
        assert!(!s.matches_substring("Alice", "b", "", &[]));
        assert!(!s.matches_substring("Alice", "", "", &["z".into()]));
        assert!(!AttributeSyntax::Binary.matches_substring("blob", "b", "", &[]));
    }

    #[test]
    fn exact_vs_ignore() {
        assert!(!AttributeSyntax::CaseExact.eq("Alice", "alice"));
        assert!(AttributeSyntax::CaseExact.eq("Alice", "Alice"));
    }
}
