//! The Directory Information Tree with search and subtree partitioning.

use std::collections::BTreeMap;

use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::DirectoryError;
use crate::filter::Filter;
use crate::objectclass::{standard_classes, ObjectClassRegistry};

/// Search scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Direct children of the base.
    OneLevel,
    /// The base and its whole subtree.
    Subtree,
}

/// One search hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// The matching entry (a copy).
    pub entry: Entry,
}

/// The outcome of a search: hits plus any referrals to partitions that
/// the search crossed into.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SearchOutcome {
    /// Matching entries.
    pub hits: Vec<SearchResult>,
    /// Servers holding partitioned-away subtrees under the search base.
    pub referrals: Vec<(Dn, String)>,
}

/// An in-memory LDAP-style directory server.
///
/// Entries are stored in DN order (a `BTreeMap` keyed by the reversed
/// RDN chain), which makes subtree scans a contiguous range — the same
/// property real servers get from their substring-indexed DN tables.
#[derive(Debug, Clone)]
pub struct Directory {
    /// Ordered by hierarchical key (ancestors before descendants).
    entries: BTreeMap<Vec<(String, String)>, Entry>,
    /// Subtrees delegated to other servers: base DN → server locator.
    partitions: BTreeMap<Vec<(String, String)>, String>,
    registry: ObjectClassRegistry,
    /// Monotone modification counter (used by adapters for change
    /// detection).
    generation: u64,
}

fn key(dn: &Dn) -> Vec<(String, String)> {
    dn.rdns.iter().rev().cloned().collect()
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// An empty directory with the standard object classes.
    pub fn new() -> Self {
        Directory {
            entries: BTreeMap::new(),
            partitions: BTreeMap::new(),
            registry: standard_classes(),
            generation: 0,
        }
    }

    /// Access to the class registry (to register custom classes).
    pub fn registry_mut(&mut self) -> &mut ObjectClassRegistry {
        &mut self.registry
    }

    /// The class registry.
    pub fn registry(&self) -> &ObjectClassRegistry {
        &self.registry
    }

    /// Number of entries held locally.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Modification counter; bumps on every successful write.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn partition_for(&self, dn: &Dn) -> Option<(Dn, String)> {
        let k = key(dn);
        self.partitions
            .iter()
            .filter(|(base, _)| k.starts_with(base))
            .max_by_key(|(base, _)| base.len())
            .map(|(base, server)| {
                let rdns: Vec<_> = base.iter().rev().cloned().collect();
                (Dn { rdns }, server.clone())
            })
    }

    /// Adds an entry. The parent must exist (except for depth-1 entries),
    /// the entry must validate, and the DN must be free.
    pub fn add(&mut self, entry: Entry) -> Result<(), DirectoryError> {
        if let Some((dn, server)) = self.partition_for(&entry.dn) {
            return Err(DirectoryError::Referral { dn, server });
        }
        entry.validate(&self.registry)?;
        let k = key(&entry.dn);
        if self.entries.contains_key(&k) {
            return Err(DirectoryError::EntryExists(entry.dn));
        }
        if let Some(parent) = entry.dn.parent() {
            if parent.depth() > 0 && !self.entries.contains_key(&key(&parent)) {
                return Err(DirectoryError::NoSuchParent(entry.dn));
            }
        }
        self.entries.insert(k, entry);
        self.generation += 1;
        Ok(())
    }

    /// Reads an entry by DN.
    pub fn get(&self, dn: &Dn) -> Result<&Entry, DirectoryError> {
        if let Some((pdn, server)) = self.partition_for(dn) {
            return Err(DirectoryError::Referral { dn: pdn, server });
        }
        self.entries.get(&key(dn)).ok_or_else(|| DirectoryError::NoSuchEntry(dn.clone()))
    }

    /// Applies a closure to an entry, revalidating afterwards.
    pub fn modify(
        &mut self,
        dn: &Dn,
        f: impl FnOnce(&mut Entry),
    ) -> Result<(), DirectoryError> {
        if let Some((pdn, server)) = self.partition_for(dn) {
            return Err(DirectoryError::Referral { dn: pdn, server });
        }
        let entry = self
            .entries
            .get_mut(&key(dn))
            .ok_or_else(|| DirectoryError::NoSuchEntry(dn.clone()))?;
        let mut copy = entry.clone();
        f(&mut copy);
        copy.validate(&self.registry)?;
        *entry = copy;
        self.generation += 1;
        Ok(())
    }

    /// Deletes a leaf entry.
    pub fn delete(&mut self, dn: &Dn) -> Result<Entry, DirectoryError> {
        let k = key(dn);
        if !self.entries.contains_key(&k) {
            return Err(DirectoryError::NoSuchEntry(dn.clone()));
        }
        let has_children = self
            .entries
            .range(next_range(&k))
            .next()
            .is_some_and(|(ck, _)| ck.starts_with(&k));
        if has_children {
            return Err(DirectoryError::NotLeaf(dn.clone()));
        }
        self.generation += 1;
        Ok(self.entries.remove(&k).expect("checked"))
    }

    /// Searches from `base` with the given scope and filter.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> SearchOutcome {
        let mut out = SearchOutcome::default();
        let bk = key(base);
        // Collect referrals for partitions under the base.
        for (pk, server) in &self.partitions {
            if pk.starts_with(&bk) {
                let rdns: Vec<_> = pk.iter().rev().cloned().collect();
                out.referrals.push((Dn { rdns }, server.clone()));
            }
        }
        let candidates: Vec<&Entry> = match scope {
            Scope::Base => self.entries.get(&bk).into_iter().collect(),
            Scope::OneLevel => self
                .entries
                .range(next_range(&bk))
                .take_while(|(k, _)| k.starts_with(&bk))
                .filter(|(k, _)| k.len() == bk.len() + 1)
                .map(|(_, e)| e)
                .collect(),
            Scope::Subtree => {
                let mut v: Vec<&Entry> = self.entries.get(&bk).into_iter().collect();
                v.extend(
                    self.entries
                        .range(next_range(&bk))
                        .take_while(|(k, _)| k.starts_with(&bk))
                        .map(|(_, e)| e),
                );
                v
            }
        };
        for e in candidates {
            if filter.eval(e, &self.registry) {
                out.hits.push(SearchResult { entry: e.clone() });
            }
        }
        out
    }

    /// Moves the subtree at `base` to another server: local entries under
    /// it are removed and returned, and future operations under `base`
    /// answer with a referral. This is the "move arbitrary sub-trees to
    /// different servers" scaling move of §6.
    pub fn partition_subtree(
        &mut self,
        base: &Dn,
        server: &str,
    ) -> Result<Vec<Entry>, DirectoryError> {
        let bk = key(base);
        let mut moved = Vec::new();
        let keys: Vec<_> = self
            .entries
            .range(bk.clone()..)
            .take_while(|(k, _)| k.starts_with(&bk))
            .map(|(k, _)| k.clone())
            .collect();
        for k in keys {
            moved.push(self.entries.remove(&k).expect("listed"));
        }
        self.partitions.insert(bk, server.to_string());
        self.generation += 1;
        Ok(moved)
    }

    /// Bulk-load entries without parent checks (used when receiving a
    /// partitioned subtree). Entries are still validated.
    pub fn load(&mut self, entries: Vec<Entry>) -> Result<(), DirectoryError> {
        for e in entries {
            e.validate(&self.registry)?;
            self.entries.insert(key(&e.dn), e);
        }
        self.generation += 1;
        Ok(())
    }
}

/// Range that starts strictly after `k` itself but includes all keys
/// prefixed by `k` (BTreeMap range trick: append a minimal extension).
fn next_range(
    k: &[(String, String)],
) -> std::ops::RangeFrom<Vec<(String, String)>> {
    let mut start = k.to_vec();
    start.push((String::new(), String::new()));
    start..
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Directory {
        let mut d = Directory::new();
        d.add(Entry::new(Dn::parse("o=lucent").unwrap(), &["organization"]).with("o", "lucent"))
            .unwrap();
        d.add(
            Entry::new(Dn::parse("ou=people,o=lucent").unwrap(), &["organizationalUnit"])
                .with("ou", "people"),
        )
        .unwrap();
        for (cn, phone) in [("alice", "908-582-1111"), ("bob", "908-582-2222"), ("carol", "973-111-3333")] {
            d.add(
                Entry::new(
                    Dn::parse(&format!("cn={cn},ou=people,o=lucent")).unwrap(),
                    &["inetOrgPerson"],
                )
                .with("cn", cn)
                .with("sn", format!("{cn}son"))
                .with("telephoneNumber", phone),
            )
            .unwrap();
        }
        d
    }

    fn f(s: &str) -> Filter {
        Filter::parse(s).unwrap()
    }

    #[test]
    fn add_get_roundtrip() {
        let d = populated();
        let e = d.get(&Dn::parse("cn=alice,ou=people,o=lucent").unwrap()).unwrap();
        assert_eq!(e.first("telephoneNumber"), Some("908-582-1111"));
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn duplicate_add_rejected() {
        let mut d = populated();
        let dup = Entry::new(Dn::parse("cn=alice,ou=people,o=lucent").unwrap(), &["person"])
            .with("cn", "alice")
            .with("sn", "x");
        assert!(matches!(d.add(dup), Err(DirectoryError::EntryExists(_))));
    }

    #[test]
    fn orphan_add_rejected() {
        let mut d = populated();
        let orphan = Entry::new(Dn::parse("cn=x,ou=ghost,o=lucent").unwrap(), &["person"])
            .with("cn", "x")
            .with("sn", "y");
        assert!(matches!(d.add(orphan), Err(DirectoryError::NoSuchParent(_))));
    }

    #[test]
    fn scopes() {
        let d = populated();
        let base = Dn::parse("ou=people,o=lucent").unwrap();
        assert_eq!(d.search(&base, Scope::Base, &f("(ou=*)")).hits.len(), 1);
        assert_eq!(d.search(&base, Scope::OneLevel, &f("(cn=*)")).hits.len(), 3);
        assert_eq!(d.search(&base, Scope::Subtree, &f("(cn=*)")).hits.len(), 3);
        assert_eq!(
            d.search(&Dn::parse("o=lucent").unwrap(), Scope::OneLevel, &f("(cn=*)")).hits.len(),
            0
        );
        assert_eq!(
            d.search(&Dn::root(), Scope::Subtree, &f("(objectClass=*)")).hits.len(),
            5
        );
    }

    #[test]
    fn search_with_phone_syntax() {
        let d = populated();
        let hits =
            d.search(&Dn::root(), Scope::Subtree, &f("(telephoneNumber=908.582.1111)"));
        assert_eq!(hits.hits.len(), 1);
        assert_eq!(hits.hits[0].entry.first("cn"), Some("alice"));
    }

    #[test]
    fn modify_revalidates() {
        let mut d = populated();
        let dn = Dn::parse("cn=alice,ou=people,o=lucent").unwrap();
        d.modify(&dn, |e| e.add("mail", "alice@lucent.com")).unwrap();
        assert_eq!(d.get(&dn).unwrap().first("mail"), Some("alice@lucent.com"));
        // Removing a required attribute is rejected and rolls back.
        let err = d.modify(&dn, |e| {
            e.remove("sn");
        });
        assert!(err.is_err());
        assert_eq!(d.get(&dn).unwrap().first("sn"), Some("aliceson"));
    }

    #[test]
    fn delete_leaf_only() {
        let mut d = populated();
        let people = Dn::parse("ou=people,o=lucent").unwrap();
        assert!(matches!(d.delete(&people), Err(DirectoryError::NotLeaf(_))));
        let alice = Dn::parse("cn=alice,ou=people,o=lucent").unwrap();
        d.delete(&alice).unwrap();
        assert!(d.get(&alice).is_err());
        assert!(matches!(d.delete(&alice), Err(DirectoryError::NoSuchEntry(_))));
    }

    #[test]
    fn partition_moves_subtree_and_refers() {
        let mut d = populated();
        let people = Dn::parse("ou=people,o=lucent").unwrap();
        let moved = d.partition_subtree(&people, "ldap://us-east.lucent.com").unwrap();
        assert_eq!(moved.len(), 4); // ou + 3 people
        assert_eq!(d.len(), 1);
        // Reads under the partition answer with a referral.
        let alice = Dn::parse("cn=alice,ou=people,o=lucent").unwrap();
        match d.get(&alice) {
            Err(DirectoryError::Referral { server, .. }) => {
                assert_eq!(server, "ldap://us-east.lucent.com")
            }
            other => panic!("expected referral, got {other:?}"),
        }
        // Searches report the referral.
        let out = d.search(&Dn::parse("o=lucent").unwrap(), Scope::Subtree, &f("(cn=*)"));
        assert_eq!(out.hits.len(), 0);
        assert_eq!(out.referrals.len(), 1);
        // The moved entries can be loaded into another server.
        let mut d2 = Directory::new();
        d2.load(moved).unwrap();
        assert_eq!(
            d2.search(&people, Scope::Subtree, &f("(cn=*)")).hits.len(),
            3
        );
    }

    #[test]
    fn generation_bumps_on_writes() {
        let mut d = populated();
        let g0 = d.generation();
        d.modify(&Dn::parse("cn=bob,ou=people,o=lucent").unwrap(), |e| {
            e.add("mail", "b@lucent.com")
        })
        .unwrap();
        assert!(d.generation() > g0);
    }
}
