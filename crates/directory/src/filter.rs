//! LDAP search filters (RFC 2254 string form, the useful subset).

use crate::entry::Entry;
use crate::error::DirectoryError;
use crate::objectclass::ObjectClassRegistry;

/// A search filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `(attr=value)` — syntax-aware equality.
    Eq(String, String),
    /// `(attr=*)` — presence.
    Present(String),
    /// `(attr=pre*mid*suf)` — substring.
    Substring {
        /// Attribute name.
        attr: String,
        /// Leading literal (may be empty).
        prefix: String,
        /// Inner literals in order.
        parts: Vec<String>,
        /// Trailing literal (may be empty).
        suffix: String,
    },
    /// `(attr>=value)`.
    Ge(String, String),
    /// `(attr<=value)`.
    Le(String, String),
    /// `(&(f1)(f2)…)`.
    And(Vec<Filter>),
    /// `(|(f1)(f2)…)`.
    Or(Vec<Filter>),
    /// `(!(f))`.
    Not(Box<Filter>),
}

impl Filter {
    /// Parses the RFC 2254 string form, e.g.
    /// `(&(objectClass=person)(cn=Ali*))`.
    pub fn parse(s: &str) -> Result<Filter, DirectoryError> {
        let mut p = FParser { s: s.trim().as_bytes(), pos: 0, src: s };
        let f = p.parse_filter()?;
        if p.pos != p.s.len() {
            return Err(DirectoryError::Malformed(format!("trailing input in filter: {s}")));
        }
        Ok(f)
    }

    /// Evaluates the filter against an entry, using the registry's
    /// attribute syntaxes for comparisons.
    pub fn eval(&self, entry: &Entry, registry: &ObjectClassRegistry) -> bool {
        match self {
            Filter::Eq(attr, value) => {
                let syn = registry.syntax(attr);
                entry.get(attr).iter().any(|v| syn.eq(v, value))
            }
            Filter::Present(attr) => !entry.get(attr).is_empty(),
            Filter::Substring { attr, prefix, parts, suffix } => {
                let syn = registry.syntax(attr);
                entry
                    .get(attr)
                    .iter()
                    .any(|v| syn.matches_substring(v, prefix, suffix, parts))
            }
            Filter::Ge(attr, value) => {
                let syn = registry.syntax(attr);
                entry.get(attr).iter().any(|v| syn.cmp(v, value) != std::cmp::Ordering::Less)
            }
            Filter::Le(attr, value) => {
                let syn = registry.syntax(attr);
                entry.get(attr).iter().any(|v| syn.cmp(v, value) != std::cmp::Ordering::Greater)
            }
            Filter::And(fs) => fs.iter().all(|f| f.eval(entry, registry)),
            Filter::Or(fs) => fs.iter().any(|f| f.eval(entry, registry)),
            Filter::Not(f) => !f.eval(entry, registry),
        }
    }
}

struct FParser<'a> {
    s: &'a [u8],
    pos: usize,
    src: &'a str,
}

impl<'a> FParser<'a> {
    fn err(&self, msg: &str) -> DirectoryError {
        DirectoryError::Malformed(format!("{msg} at {} in '{}'", self.pos, self.src))
    }

    fn expect(&mut self, b: u8) -> Result<(), DirectoryError> {
        if self.s.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_filter(&mut self) -> Result<Filter, DirectoryError> {
        self.expect(b'(')?;
        let f = match self.s.get(self.pos) {
            Some(b'&') => {
                self.pos += 1;
                Filter::And(self.parse_list()?)
            }
            Some(b'|') => {
                self.pos += 1;
                Filter::Or(self.parse_list()?)
            }
            Some(b'!') => {
                self.pos += 1;
                Filter::Not(Box::new(self.parse_filter()?))
            }
            Some(_) => self.parse_simple()?,
            None => return Err(self.err("unexpected end of filter")),
        };
        self.expect(b')')?;
        Ok(f)
    }

    fn parse_list(&mut self) -> Result<Vec<Filter>, DirectoryError> {
        let mut fs = Vec::new();
        while self.s.get(self.pos) == Some(&b'(') {
            fs.push(self.parse_filter()?);
        }
        if fs.is_empty() {
            return Err(self.err("empty filter list"));
        }
        Ok(fs)
    }

    fn parse_simple(&mut self) -> Result<Filter, DirectoryError> {
        let start = self.pos;
        while self
            .s
            .get(self.pos)
            .is_some_and(|b| !matches!(b, b'=' | b'>' | b'<' | b'(' | b')'))
        {
            self.pos += 1;
        }
        let attr = self.src[start..self.pos].trim().to_string();
        if attr.is_empty() {
            return Err(self.err("empty attribute in filter"));
        }
        let op = match self.s.get(self.pos) {
            Some(b'>') => {
                self.pos += 1;
                self.expect(b'=')?;
                b'>'
            }
            Some(b'<') => {
                self.pos += 1;
                self.expect(b'=')?;
                b'<'
            }
            Some(b'=') => {
                self.pos += 1;
                b'='
            }
            _ => return Err(self.err("expected comparison operator")),
        };
        let vstart = self.pos;
        while self.s.get(self.pos).is_some_and(|b| *b != b')') {
            self.pos += 1;
        }
        let value = self.src[vstart..self.pos].to_string();
        match op {
            b'>' => Ok(Filter::Ge(attr, value)),
            b'<' => Ok(Filter::Le(attr, value)),
            _ => {
                if value == "*" {
                    Ok(Filter::Present(attr))
                } else if value.contains('*') {
                    let segs: Vec<&str> = value.split('*').collect();
                    let prefix = segs[0].to_string();
                    let suffix = segs[segs.len() - 1].to_string();
                    let parts =
                        segs[1..segs.len() - 1].iter().map(|s| s.to_string()).collect();
                    Ok(Filter::Substring { attr, prefix, parts, suffix })
                } else {
                    Ok(Filter::Eq(attr, value))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;
    use crate::objectclass::standard_classes;

    fn alice() -> Entry {
        Entry::new(Dn::parse("cn=alice,o=lucent").unwrap(), &["inetOrgPerson"])
            .with("cn", "Alice")
            .with("sn", "Smith")
            .with("telephoneNumber", "908-582-4393")
            .with("uid", "asmith")
    }

    fn holds(f: &str) -> bool {
        Filter::parse(f).unwrap().eval(&alice(), &standard_classes())
    }

    #[test]
    fn equality_with_syntax() {
        assert!(holds("(cn=alice)")); // case-ignore
        assert!(holds("(cn=Alice)"));
    }

    #[test]
    fn equality_phone_spaced() {
        assert!(holds("(telephoneNumber=908 582 4393)"));
        assert!(!holds("(telephoneNumber=908 582 4394)"));
        assert!(!holds("(uid=ASMITH)")); // case-exact
    }

    #[test]
    fn boolean_combinators() {
        assert!(holds("(&(cn=alice)(sn=smith))"));
        assert!(!holds("(&(cn=alice)(sn=jones))"));
        assert!(holds("(|(sn=jones)(sn=smith))"));
        assert!(holds("(!(sn=jones))"));
        assert!(holds("(&(objectClass=inetOrgPerson)(|(cn=ali*)(cn=bob*)))"));
    }

    #[test]
    fn presence_and_substring() {
        assert!(!holds("(mail=*)"));
        assert!(holds("(cn=*)"));
        assert!(holds("(cn=Ali*)"));
        assert!(holds("(cn=*ice)"));
        assert!(holds("(cn=A*c*)"));
        assert!(!holds("(cn=Bob*)"));
    }

    #[test]
    fn ordering_filters() {
        let e = Entry::new(Dn::parse("cn=s,o=x").unwrap(), &["top"]).with("serialNumber", "42");
        let mut r = standard_classes();
        r.set_syntax("serialNumber", crate::syntax::AttributeSyntax::Integer);
        assert!(Filter::parse("(serialNumber>=40)").unwrap().eval(&e, &r));
        assert!(Filter::parse("(serialNumber<=42)").unwrap().eval(&e, &r));
        assert!(!Filter::parse("(serialNumber>=43)").unwrap().eval(&e, &r));
    }

    #[test]
    fn malformed_rejected() {
        for bad in ["", "(cn=alice", "cn=alice", "(&)", "(=x)", "((cn=a))", "(cn=a)x"] {
            assert!(Filter::parse(bad).is_err(), "{bad}");
        }
    }
}
