//! # gupster-directory
//!
//! An LDAP-like directory substrate, built as the comparison baseline the
//! paper discusses in §6 ("LDAP-based approaches"):
//!
//! * a Directory Information Tree ([`Directory`]) keyed by distinguished
//!   names ([`Dn`]), with base/one-level/subtree search and LDAP-style
//!   filters ([`Filter`]),
//! * attribute **syntaxes** with comparison normalizers — including the
//!   telephone-number syntax the paper credits LDAP for ("908-582-4393
//!   and (908) 582-4393 should compare as equal"),
//! * standard object classes (person, inetOrgPerson, device, …) with
//!   required/optional attribute validation,
//! * **subtree partitioning** with referrals ("it is straightforward to
//!   move arbitrary sub-trees to different servers"),
//! * the **Netscape roaming profile** pattern ([`RoamingStore`]): nested
//!   data (address book, bookmarks) stored as an opaque blob in one
//!   attribute — whole-blob get/put only, which is exactly the drawback
//!   experiment E8 measures against GUPster's XML model.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dit;
mod dn;
mod entry;
mod error;
mod filter;
mod objectclass;
mod roaming;
mod syntax;

pub use dit::{Directory, Scope, SearchOutcome, SearchResult};
pub use dn::Dn;
pub use entry::Entry;
pub use error::DirectoryError;
pub use filter::Filter;
pub use objectclass::{standard_classes, ObjectClass, ObjectClassRegistry};
pub use roaming::{BlobKind, RoamingStore};
pub use syntax::AttributeSyntax;
