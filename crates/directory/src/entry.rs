//! Directory entries: flat bags of multi-valued attributes.
//!
//! "LDAP objects are very simple (and flat): each entry in the LDAP tree
//! is a set of name/value pairs. Each of the values can be set valued,
//! but only for atomic types." (§6)

use std::collections::BTreeMap;

use crate::dn::Dn;
use crate::error::DirectoryError;
use crate::objectclass::ObjectClassRegistry;

/// One directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The entry's distinguished name.
    pub dn: Dn,
    /// Attributes (names lowercased) to value sets.
    pub attrs: BTreeMap<String, Vec<String>>,
}

impl Entry {
    /// Creates an entry with the given DN and object classes.
    pub fn new(dn: Dn, object_classes: &[&str]) -> Self {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            "objectclass".to_string(),
            object_classes.iter().map(|s| s.to_string()).collect(),
        );
        Entry { dn, attrs }
    }

    /// Builder: adds a value to an attribute.
    pub fn with(mut self, attr: &str, value: impl Into<String>) -> Self {
        self.add(attr, value);
        self
    }

    /// Adds a value to an attribute (duplicates under byte equality are
    /// ignored, per LDAP set semantics).
    pub fn add(&mut self, attr: &str, value: impl Into<String>) {
        let value = value.into();
        let vs = self.attrs.entry(attr.to_ascii_lowercase()).or_default();
        if !vs.contains(&value) {
            vs.push(value);
        }
    }

    /// Replaces all values of an attribute.
    pub fn replace(&mut self, attr: &str, values: Vec<String>) {
        self.attrs.insert(attr.to_ascii_lowercase(), values);
    }

    /// Removes an attribute entirely; returns its values if present.
    pub fn remove(&mut self, attr: &str) -> Option<Vec<String>> {
        self.attrs.remove(&attr.to_ascii_lowercase())
    }

    /// All values of an attribute.
    pub fn get(&self, attr: &str) -> &[String] {
        self.attrs
            .get(&attr.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// First value of an attribute.
    pub fn first(&self, attr: &str) -> Option<&str> {
        self.get(attr).first().map(String::as_str)
    }

    /// The entry's object classes.
    pub fn object_classes(&self) -> &[String] {
        self.get("objectClass")
    }

    /// True if the entry carries the class (case-insensitive).
    pub fn has_class(&self, class: &str) -> bool {
        self.object_classes().iter().any(|c| c.eq_ignore_ascii_case(class))
    }

    /// Serialized size in bytes (names + values) — used by experiments
    /// to charge transfer costs for whole-entry reads.
    pub fn byte_size(&self) -> usize {
        self.attrs
            .iter()
            .map(|(k, vs)| vs.iter().map(|v| k.len() + v.len() + 2).sum::<usize>())
            .sum()
    }

    /// Validates required attributes for every object class the entry
    /// carries.
    pub fn validate(&self, registry: &ObjectClassRegistry) -> Result<(), DirectoryError> {
        for class in self.object_classes() {
            if registry.class(class).is_none() {
                return Err(DirectoryError::SchemaViolation {
                    dn: self.dn.clone(),
                    detail: format!("unknown objectClass '{class}'"),
                });
            }
            for req in registry.required_attrs(class) {
                if self.get(&req).is_empty() {
                    return Err(DirectoryError::SchemaViolation {
                        dn: self.dn.clone(),
                        detail: format!("missing required attribute '{req}' for class '{class}'"),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectclass::standard_classes;

    fn alice() -> Entry {
        Entry::new(Dn::parse("cn=alice,ou=people,o=lucent").unwrap(), &["inetOrgPerson"])
            .with("cn", "alice")
            .with("sn", "Smith")
            .with("telephoneNumber", "908-582-4393")
            .with("mail", "alice@lucent.com")
    }

    #[test]
    fn multivalued_set_semantics() {
        let mut e = alice();
        e.add("telephoneNumber", "908-582-4393"); // duplicate
        e.add("telephoneNumber", "908-555-0000");
        assert_eq!(e.get("telephoneNumber").len(), 2);
        assert_eq!(e.first("cn"), Some("alice"));
        assert!(e.get("nonexistent").is_empty());
    }

    #[test]
    fn case_insensitive_attr_names() {
        let e = alice();
        assert_eq!(e.get("TelephoneNumber").len(), 1);
        assert!(e.has_class("INETORGPERSON"));
    }

    #[test]
    fn validation_ok() {
        assert!(alice().validate(&standard_classes()).is_ok());
    }

    #[test]
    fn validation_missing_required() {
        let e = Entry::new(Dn::parse("cn=x,o=y").unwrap(), &["person"]).with("cn", "x");
        let err = e.validate(&standard_classes()).unwrap_err();
        assert!(matches!(err, DirectoryError::SchemaViolation { .. }));
    }

    #[test]
    fn validation_unknown_class() {
        let e = Entry::new(Dn::parse("cn=x,o=y").unwrap(), &["martian"]);
        assert!(e.validate(&standard_classes()).is_err());
    }

    #[test]
    fn replace_and_remove() {
        let mut e = alice();
        e.replace("mail", vec!["new@lucent.com".into()]);
        assert_eq!(e.first("mail"), Some("new@lucent.com"));
        assert_eq!(e.remove("mail"), Some(vec!["new@lucent.com".to_string()]));
        assert!(e.first("mail").is_none());
    }

    #[test]
    fn byte_size_counts_values() {
        let e = alice();
        assert!(e.byte_size() > 40);
    }
}
