//! Netscape roaming profiles: nested data as opaque LDAP blobs.
//!
//! §6 of the paper: "The workaround used by Netscape is to create new
//! LDAP objectclasses that store the information as binary objects. …
//! these opaque objects can only be accessed (retrieved or updated) as a
//! whole", and "it is not possible to combine information from two
//! separate objects". [`RoamingStore`] implements exactly that contract:
//! experiment E8 measures its whole-blob costs against GUPster's
//! fine-grained XML access.

use crate::dit::Directory;
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::DirectoryError;

/// The blob slots a roaming profile offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlobKind {
    /// The serialized address book.
    AddressBook,
    /// The serialized bookmarks.
    Bookmarks,
    /// Serialized preferences.
    Prefs,
    /// "I can store my MP3 play list in my roaming profile" (§6).
    Mp3Playlist,
}

impl BlobKind {
    fn attr(self) -> &'static str {
        match self {
            BlobKind::AddressBook => "nsAddressBookBlob",
            BlobKind::Bookmarks => "nsBookmarksBlob",
            BlobKind::Prefs => "nsPrefsBlob",
            BlobKind::Mp3Playlist => "nsMp3PlaylistBlob",
        }
    }
}

/// A roaming-profile server backed by a [`Directory`].
#[derive(Debug, Clone)]
pub struct RoamingStore {
    dir: Directory,
    base: Dn,
    /// Bytes read from / written to blob attributes (whole-blob traffic),
    /// recorded so experiments can compare against GUPster's partial
    /// access.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl RoamingStore {
    /// Creates a roaming store with base `ou=profiles,o=<org>`.
    pub fn new(org: &str) -> Self {
        let mut dir = Directory::new();
        let base_o = Dn::parse(&format!("o={org}")).expect("static dn");
        dir.add(Entry::new(base_o.clone(), &["organization"]).with("o", org)).expect("fresh");
        let base = base_o.child("ou", "profiles");
        dir.add(Entry::new(base.clone(), &["organizationalUnit"]).with("ou", "profiles"))
            .expect("fresh");
        RoamingStore { dir, base, bytes_read: 0, bytes_written: 0 }
    }

    fn user_dn(&self, uid: &str) -> Dn {
        self.base.child("uid", uid)
    }

    /// Creates the profile entry for a user.
    pub fn create_user(&mut self, uid: &str) -> Result<(), DirectoryError> {
        self.dir
            .add(Entry::new(self.user_dn(uid), &["nsRoamingProfile"]).with("uid", uid))
    }

    /// Stores a blob — the *whole* serialized object, every time.
    pub fn put_blob(
        &mut self,
        uid: &str,
        kind: BlobKind,
        blob: &str,
    ) -> Result<(), DirectoryError> {
        self.bytes_written += blob.len() as u64;
        self.dir.modify(&self.user_dn(uid), |e| e.replace(kind.attr(), vec![blob.to_string()]))
    }

    /// Fetches a blob — again, only as a whole.
    pub fn get_blob(&mut self, uid: &str, kind: BlobKind) -> Result<String, DirectoryError> {
        let e = self.dir.get(&self.user_dn(uid))?;
        let blob = e
            .first(kind.attr())
            .ok_or_else(|| DirectoryError::NoSuchEntry(self.user_dn(uid)))?
            .to_string();
        self.bytes_read += blob.len() as u64;
        Ok(blob)
    }

    /// Updating one entry inside the blob requires read-modify-write of
    /// the entire object; this helper performs it and returns the total
    /// bytes moved, making the E8 cost model explicit.
    pub fn update_within_blob(
        &mut self,
        uid: &str,
        kind: BlobKind,
        edit: impl FnOnce(&str) -> String,
    ) -> Result<u64, DirectoryError> {
        let before_r = self.bytes_read;
        let before_w = self.bytes_written;
        let blob = self.get_blob(uid, kind)?;
        let new = edit(&blob);
        self.put_blob(uid, kind, &new)?;
        Ok((self.bytes_read - before_r) + (self.bytes_written - before_w))
    }

    /// The underlying directory (for inspection).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_blob_roundtrip() {
        let mut s = RoamingStore::new("netscape");
        s.create_user("arnaud").unwrap();
        s.put_blob("arnaud", BlobKind::AddressBook, "<book>…</book>").unwrap();
        assert_eq!(s.get_blob("arnaud", BlobKind::AddressBook).unwrap(), "<book>…</book>");
    }

    #[test]
    fn missing_blob_errors() {
        let mut s = RoamingStore::new("netscape");
        s.create_user("arnaud").unwrap();
        assert!(s.get_blob("arnaud", BlobKind::Bookmarks).is_err());
        assert!(s.get_blob("ghost", BlobKind::AddressBook).is_err());
    }

    #[test]
    fn mp3_playlist_is_supported_opaquely() {
        // The §6 anecdote: any binary format fits, LDAP knows nothing.
        let mut s = RoamingStore::new("netscape");
        s.create_user("arnaud").unwrap();
        s.put_blob("arnaud", BlobKind::Mp3Playlist, "RIFF\u{1}\u{2}...").unwrap();
        assert!(s.get_blob("arnaud", BlobKind::Mp3Playlist).unwrap().starts_with("RIFF"));
    }

    #[test]
    fn update_costs_whole_object_both_ways() {
        let mut s = RoamingStore::new("netscape");
        s.create_user("arnaud").unwrap();
        let big: String = "x".repeat(10_000);
        s.put_blob("arnaud", BlobKind::AddressBook, &big).unwrap();
        let (r0, w0) = (s.bytes_read, s.bytes_written);
        // A one-character logical change…
        let moved = s
            .update_within_blob("arnaud", BlobKind::AddressBook, |b| {
                let mut b = b.to_string();
                b.replace_range(0..1, "y");
                b
            })
            .unwrap();
        // …moves the whole blob twice.
        assert_eq!(moved, 20_000);
        assert_eq!(s.bytes_read - r0, 10_000);
        assert_eq!(s.bytes_written - w0, 10_000);
    }
}
