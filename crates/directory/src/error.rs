//! Error type for directory operations.

use std::fmt;

use crate::dn::Dn;

/// Errors raised by directory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// The target entry does not exist.
    NoSuchEntry(Dn),
    /// An entry already exists at the DN.
    EntryExists(Dn),
    /// The parent of the DN does not exist (LDAP requires tree growth
    /// one level at a time).
    NoSuchParent(Dn),
    /// The entry has children and cannot be deleted.
    NotLeaf(Dn),
    /// Object-class validation failed.
    SchemaViolation {
        /// The offending DN.
        dn: Dn,
        /// Why.
        detail: String,
    },
    /// A malformed DN or filter string.
    Malformed(String),
    /// The operation crossed into a partitioned-away subtree; chase the
    /// referral.
    Referral {
        /// The DN at which the partition was crossed.
        dn: Dn,
        /// Opaque server locator (host name in our simulation).
        server: String,
    },
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::NoSuchEntry(dn) => write!(f, "no such entry: {dn}"),
            DirectoryError::EntryExists(dn) => write!(f, "entry already exists: {dn}"),
            DirectoryError::NoSuchParent(dn) => write!(f, "no such parent for: {dn}"),
            DirectoryError::NotLeaf(dn) => write!(f, "entry has children: {dn}"),
            DirectoryError::SchemaViolation { dn, detail } => {
                write!(f, "schema violation at {dn}: {detail}")
            }
            DirectoryError::Malformed(s) => write!(f, "malformed input: {s}"),
            DirectoryError::Referral { dn, server } => {
                write!(f, "referral at {dn} to {server}")
            }
        }
    }
}

impl std::error::Error for DirectoryError {}
