//! Distinguished names.

use std::fmt;

use crate::error::DirectoryError;

/// A distinguished name: a chain of `attr=value` RDNs, leaf first,
/// e.g. `cn=alice,ou=people,o=lucent`.
///
/// Comparison is case-insensitive on attribute names and trims
/// whitespace, per LDAP convention. Multi-valued RDNs are not supported
/// (they are rare and add nothing to the reproduction).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dn {
    /// RDNs, leaf (most specific) first. Attribute names lowercased.
    pub rdns: Vec<(String, String)>,
}

impl Dn {
    /// The empty (root) DN.
    pub fn root() -> Self {
        Dn { rdns: Vec::new() }
    }

    /// Parses `cn=alice,ou=people,o=lucent`. An empty string is the root.
    pub fn parse(s: &str) -> Result<Dn, DirectoryError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let mut rdns = Vec::new();
        for part in s.split(',') {
            let (a, v) = part
                .split_once('=')
                .ok_or_else(|| DirectoryError::Malformed(format!("RDN without '=': {part}")))?;
            let a = a.trim().to_ascii_lowercase();
            let v = v.trim().to_string();
            if a.is_empty() || v.is_empty() {
                return Err(DirectoryError::Malformed(format!("empty RDN component: {part}")));
            }
            rdns.push((a, v));
        }
        Ok(Dn { rdns })
    }

    /// Builds a child DN: `attr=value,self`.
    pub fn child(&self, attr: &str, value: &str) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push((attr.to_ascii_lowercase(), value.to_string()));
        rdns.extend(self.rdns.iter().cloned());
        Dn { rdns }
    }

    /// The parent DN (None for the root).
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn { rdns: self.rdns[1..].to_vec() })
        }
    }

    /// The leaf RDN.
    pub fn rdn(&self) -> Option<(&str, &str)> {
        self.rdns.first().map(|(a, v)| (a.as_str(), v.as_str()))
    }

    /// Depth (number of RDNs).
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// True if `self` equals `base` or lies beneath it.
    pub fn is_under(&self, base: &Dn) -> bool {
        let (n, m) = (self.rdns.len(), base.rdns.len());
        n >= m && self.rdns[n - m..] == base.rdns[..]
    }

    /// True if `self` is a direct child of `base`.
    pub fn is_child_of(&self, base: &Dn) -> bool {
        self.rdns.len() == base.rdns.len() + 1 && self.is_under(base)
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rdns.is_empty() {
            return f.write_str("<root>");
        }
        let parts: Vec<String> = self.rdns.iter().map(|(a, v)| format!("{a}={v}")).collect();
        f.write_str(&parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let dn = Dn::parse("CN=Alice , ou=people, o=lucent").unwrap();
        assert_eq!(dn.to_string(), "cn=Alice,ou=people,o=lucent");
        assert_eq!(dn.depth(), 3);
        assert_eq!(dn.rdn(), Some(("cn", "Alice")));
    }

    #[test]
    fn root_parse() {
        assert_eq!(Dn::parse("").unwrap(), Dn::root());
        assert_eq!(Dn::root().to_string(), "<root>");
        assert!(Dn::root().parent().is_none());
    }

    #[test]
    fn malformed_rejected() {
        assert!(Dn::parse("no-equals").is_err());
        assert!(Dn::parse("cn=,o=x").is_err());
        assert!(Dn::parse("=v,o=x").is_err());
    }

    #[test]
    fn hierarchy_relations() {
        let base = Dn::parse("ou=people,o=lucent").unwrap();
        let alice = base.child("cn", "alice");
        let deep = alice.child("deviceid", "d1");
        assert!(alice.is_under(&base));
        assert!(alice.is_child_of(&base));
        assert!(deep.is_under(&base));
        assert!(!deep.is_child_of(&base));
        assert!(base.is_under(&base));
        assert!(!base.is_under(&alice));
        assert_eq!(alice.parent().unwrap(), base);
        let other = Dn::parse("ou=people,o=yahoo").unwrap();
        assert!(!alice.is_under(&other));
    }

    #[test]
    fn everything_under_root() {
        let dn = Dn::parse("cn=x,o=y").unwrap();
        assert!(dn.is_under(&Dn::root()));
    }
}
