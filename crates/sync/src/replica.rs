//! A synchronizable replica of a profile component.

use std::collections::HashSet;

use gupster_xml::{EditOp, Element, MergeKeys, XmlError};

use crate::anchor::Anchors;
use crate::changelog::ChangeLog;
use crate::intern::ActorId;

/// One replica: a site id, the component document, a change log, a
/// Lamport clock and per-peer anchors.
///
/// A phone's address book and the portal's copy of it are two
/// [`Replica`]s of the same component (Req. 4: "telephone book may be
/// stored in the end-user's phone, with a primary copy held by an
/// internet portal").
#[derive(Debug, Clone)]
pub struct Replica {
    /// Site id, e.g. `phone` or `gup.yahoo.com`.
    pub id: String,
    /// The site id interned once at construction — log appends and
    /// dedup-set probes copy 4 bytes instead of cloning the string.
    pub actor: ActorId,
    /// The component document.
    pub doc: Element,
    /// Edits made here since the last baseline.
    pub log: ChangeLog,
    /// Per-peer sync anchors.
    pub anchors: Anchors,
    /// Lamport clock.
    pub clock: u64,
    /// Merge keys for the component (drive diff/merge identity).
    pub keys: MergeKeys,
    /// Identities `(actor, timestamp)` of every edit incorporated here —
    /// the dedup set that lets a hub **relay** edits between devices
    /// without echoing them back to their originator.
    pub seen: HashSet<(ActorId, u64)>,
}

impl Replica {
    /// Creates a replica holding `doc`.
    pub fn new(id: &str, doc: Element, keys: MergeKeys) -> Self {
        Replica {
            id: id.to_string(),
            actor: ActorId::intern(id),
            doc,
            log: ChangeLog::new(),
            anchors: Anchors::new(),
            clock: 0,
            keys,
            seen: HashSet::new(),
        }
    }

    /// Applies a local edit: mutates the document and logs the op.
    pub fn edit(&mut self, op: EditOp) -> Result<u64, XmlError> {
        op.apply(&mut self.doc)?;
        self.clock += 1;
        self.seen.insert((self.actor, self.clock));
        Ok(self.log.append(op, self.actor, self.clock))
    }

    /// Applies a remote edit during sync: mutates the document,
    /// **re-logs the op under its original actor/timestamp** (so a hub
    /// replica relays device edits to other devices on later syncs),
    /// marks it seen, and advances the Lamport clock past the remote
    /// timestamp.
    pub(crate) fn apply_remote(
        &mut self,
        op: &EditOp,
        actor: ActorId,
        remote_ts: u64,
    ) -> Result<(), XmlError> {
        op.apply(&mut self.doc)?;
        self.record_remote(op, actor, remote_ts);
        Ok(())
    }

    /// The bookkeeping half of [`Replica::apply_remote`] — log, dedup
    /// set and clock — for callers that applied the op to a different
    /// document representation (the delta path applies through the
    /// arena and writes the owned tree back once per session).
    pub(crate) fn record_remote(&mut self, op: &EditOp, actor: ActorId, remote_ts: u64) {
        self.clock = self.clock.max(remote_ts) + 1;
        self.seen.insert((actor, remote_ts));
        self.log.append(op.clone(), actor, remote_ts);
    }

    /// Marks an op incorporated without applying it (the losing side of
    /// a resolved conflict): the peer must not re-ship it later.
    pub(crate) fn mark_seen(&mut self, actor: ActorId, remote_ts: u64) {
        self.seen.insert((actor, remote_ts));
    }

    /// Establishes a new baseline after a slow sync: replaces the
    /// document, clears the log and the dedup set.
    pub(crate) fn rebase(&mut self, doc: Element) {
        self.doc = doc;
        self.log.clear();
        self.seen.clear();
        self.clock += 1;
    }

    /// Compacts this replica's change log against `anchors` (every live
    /// peer's last-incorporated seq — see [`ChangeLog::compact`]).
    pub fn compact_log(&mut self, anchors: &[u64]) -> crate::changelog::CompactStats {
        let keys = self.keys.clone();
        self.log.compact(anchors, &keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::{parse, NodePath};

    #[test]
    fn edit_logs_and_mutates() {
        let doc = parse(r#"<address-book><item id="1"><name>Mom</name></item></address-book>"#)
            .unwrap();
        let mut r = Replica::new("phone", doc, MergeKeys::new().with_key("item", "id"));
        let op = EditOp::SetText {
            path: NodePath::root().keyed("item", "id", "1").child("name", 0),
            text: "Mother".into(),
        };
        let seq = r.edit(op).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(r.doc.child("item").unwrap().child("name").unwrap().text(), "Mother");
        assert_eq!(r.clock, 1);
    }

    #[test]
    fn failed_edit_not_logged() {
        let mut r = Replica::new("phone", parse("<b/>").unwrap(), MergeKeys::new());
        let op = EditOp::SetText { path: NodePath::root().child("ghost", 0), text: "x".into() };
        assert!(r.edit(op).is_err());
        assert!(r.log.is_empty());
        assert_eq!(r.clock, 0);
    }

    #[test]
    fn remote_apply_advances_clock_and_relays() {
        let mut r = Replica::new("phone", parse("<b><v>1</v></b>").unwrap(), MergeKeys::new());
        let op = EditOp::SetText { path: NodePath::root().child("v", 0), text: "2".into() };
        let portal = ActorId::intern("portal");
        r.apply_remote(&op, portal, 41).unwrap();
        assert_eq!(r.clock, 42);
        // The op is re-logged under its ORIGINAL actor, so this replica
        // relays it onward — and the dedup set prevents echo.
        assert_eq!(r.log.len(), 1);
        assert_eq!(r.log.since(0)[0].actor_str(), "portal");
        assert_eq!(r.log.since(0)[0].timestamp, 41);
        assert!(r.seen.contains(&(portal, 41)));
    }
}
