//! SyncML-style sync anchors.
//!
//! Each side of a sync pair remembers how far into the *peer's* change
//! log it has already incorporated. If a replica's log was rebased
//! (cleared) since the recorded anchor, the anchors no longer line up
//! and the pair must fall back to a slow sync — the same role SyncML's
//! last/next anchors play.

use std::collections::HashMap;

/// Anchor store for one replica: peer id → last incorporated peer seq.
#[derive(Debug, Clone, Default)]
pub struct Anchors {
    seen: HashMap<String, u64>,
}

impl Anchors {
    /// Fresh anchors (never synced with anyone).
    pub fn new() -> Self {
        Self::default()
    }

    /// How far into `peer`'s log this replica has synced (0 = never).
    pub fn last_seen(&self, peer: &str) -> u64 {
        self.seen.get(peer).copied().unwrap_or(0)
    }

    /// Records that this replica has incorporated `peer`'s log up to
    /// `seq`.
    pub fn advance(&mut self, peer: &str, seq: u64) {
        self.seen.insert(peer.to_string(), seq);
    }

    /// Resets the anchor for a peer (forces the next sync to be slow).
    pub fn reset(&mut self, peer: &str) {
        self.seen.remove(peer);
    }

    /// True if the recorded anchor is consistent with the peer's current
    /// log head (an anchor *beyond* the head means the peer rebased).
    pub fn consistent_with(&self, peer: &str, peer_head: u64) -> bool {
        self.last_seen(peer) <= peer_head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_track_peers_independently() {
        let mut a = Anchors::new();
        assert_eq!(a.last_seen("phone"), 0);
        a.advance("phone", 5);
        a.advance("portal", 2);
        assert_eq!(a.last_seen("phone"), 5);
        assert_eq!(a.last_seen("portal"), 2);
        a.reset("phone");
        assert_eq!(a.last_seen("phone"), 0);
    }

    #[test]
    fn consistency_detects_rebase() {
        let mut a = Anchors::new();
        a.advance("phone", 5);
        assert!(a.consistent_with("phone", 7));
        assert!(a.consistent_with("phone", 5));
        assert!(!a.consistent_with("phone", 3)); // peer log shrank: rebase
    }
}
