//! # gupster-sync
//!
//! Data synchronization and reconciliation (Requirements 6 and 7 of the
//! paper). 3GPP GUP picked SyncML as the transport, but "SyncML is only
//! a transport protocol. Issues like synchronization semantics need to
//! be addressed" (§5.3) — this crate implements those semantics:
//!
//! * per-replica **change logs** ([`ChangeLog`]) carrying the edit
//!   operations of `gupster-xml`,
//! * **sync anchors** ([`Anchors`]) in the SyncML style: each side
//!   remembers how far into the peer's log it has synced; anchor
//!   mismatch forces a *slow sync* (full-state compare),
//! * **two-way sync sessions** ([`two_way_sync`]) with conflict
//!   detection (overlapping edits since the last anchors),
//! * **traced sessions** ([`two_way_sync_traced`]): the same session
//!   under a `gupster-telemetry` tracer — ship/reconcile/apply/slow
//!   phases become spans with deterministic simulated costs, and the
//!   hub's sync counters advance,
//! * **reconciliation policies** ([`ReconcilePolicy`]): site priority,
//!   last-writer-wins, or a manual queue — "end-users should be able to
//!   provision the policies used to reconcile profile data" (Req. 6),
//! * the **write path at scale** (DESIGN.md §13): interned actor ids and
//!   paths ([`ActorId`], [`PathId`]), anchor-safe **changelog
//!   compaction** ([`ChangeLog::compact`]), and **delta-encoded
//!   sessions** ([`delta_two_way_sync`]) — a touched-path trie replaces
//!   the pairwise conflict scan, dictionary encoding replaces
//!   owned-path framing, and accepted ops replay through the arena.
//!   [`two_way_sync`] is retained as the byte-identical differential
//!   oracle.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod anchor;
mod changelog;
mod delta;
mod intern;
mod reconcile;
mod replica;
mod session;

pub use anchor::Anchors;
pub use changelog::{ChangeLog, CompactStats, LogEntry};
pub use delta::{
    compact_traced, delta_two_way_sync, delta_two_way_sync_traced, naive_batch_bytes, DeltaCodec,
    TouchedIndex,
};
pub use intern::{ActorId, PathId};
pub use reconcile::ReconcilePolicy;
pub use replica::Replica;
pub use session::{two_way_sync, two_way_sync_traced, SyncError, SyncReport};
