//! Delta-encoded sync sessions.
//!
//! [`crate::two_way_sync`] reconciles with a pairwise `|a| × |b|` scan,
//! ships every op with its full owned path string, and applies through
//! the owned tree. Under a 10k-edit write storm all three hurt. This
//! module rebuilds the fast path:
//!
//! * **Touched-path index** ([`TouchedIndex`]) — a trie keyed by
//!   [`NodePath`] steps over one side's new ops. A conflicting pair
//!   requires one target path to be a step-prefix of the other, so the
//!   candidates for an op are exactly the ops on its root-walk plus the
//!   subtree below its target: `O(n + m + matches·depth)` instead of
//!   `n × m`. The candidate set provably contains every pair
//!   [`crate::session::ops_conflict`] accepts, and candidate pairs are
//!   examined in the oracle's `(i, j)` order, so conflict counts,
//!   winners and the manual queue come out identical.
//! * **Dictionary delta encoding** ([`DeltaCodec`]) — each distinct
//!   path is shipped once per session; every op after that carries a
//!   fixed-size header plus a dictionary reference and its payload.
//!   [`SyncReport::bytes_exchanged`] measures the saving against the
//!   oracle's owned-path framing.
//! * **Arena application** — accepted remote ops replay through
//!   [`ArenaDoc`] ([`gupster_xml::apply_arena`]), append-range
//!   structural sharing instead of owned-tree mutation; the owned
//!   document is written back once per session.
//!
//! [`two_way_sync`](crate::two_way_sync) is retained untouched as the
//! byte-identical differential oracle (`tests/sync_differential.rs`).

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use gupster_telemetry::{stage, SimTime, Tracer};
use gupster_xml::{apply_arena, ArenaDoc, EditOp, NodePath, Step};

use crate::changelog::{CompactStats, LogEntry};
use crate::intern::PathId;
use crate::reconcile::ReconcilePolicy;
use crate::replica::Replica;
use crate::session::{canonicalize, op_bytes, ops_conflict, run_slow_sync, SyncError, SyncReport};

/// A trie over [`NodePath`] steps indexing one side's new ops by target
/// path. Conflict candidates for a probe path are the ops at every node
/// along the walk to it (ancestor targets) plus every op in the subtree
/// below it (descendant targets) — precisely the pairs with a
/// step-prefix relation between targets.
pub struct TouchedIndex {
    nodes: Vec<TrieNode>,
}

#[derive(Default)]
struct TrieNode {
    kids: HashMap<Step, usize>,
    ops: Vec<usize>,
}

impl TouchedIndex {
    /// Indexes `ops` by target path.
    pub fn build(ops: &[LogEntry]) -> Self {
        let mut ix = TouchedIndex { nodes: vec![TrieNode::default()] };
        for (j, e) in ops.iter().enumerate() {
            let mut cur = 0usize;
            for step in &e.op.target().steps {
                cur = match ix.nodes[cur].kids.get(step) {
                    Some(&n) => n,
                    None => {
                        let n = ix.nodes.len();
                        ix.nodes.push(TrieNode::default());
                        ix.nodes[cur].kids.insert(step.clone(), n);
                        n
                    }
                };
            }
            ix.nodes[cur].ops.push(j);
        }
        ix
    }

    /// Collects (ascending) the indexed ops whose target is a prefix of
    /// `path` or has `path` as a prefix.
    pub fn candidates(&self, path: &NodePath, out: &mut Vec<usize>) {
        out.clear();
        let mut cur = 0usize;
        let mut complete = true;
        for step in &path.steps {
            out.extend_from_slice(&self.nodes[cur].ops);
            match self.nodes[cur].kids.get(step) {
                Some(&n) => cur = n,
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            // Everything at and below the probe target.
            let mut stack = vec![cur];
            while let Some(n) = stack.pop() {
                out.extend_from_slice(&self.nodes[n].ops);
                stack.extend(self.nodes[n].kids.values());
            }
        }
        out.sort_unstable();
    }
}

/// Session-scoped delta encoder: a path dictionary shared by both
/// directions of one session (the SyncML-style session handshake
/// carries one path table) plus per-op framing.
#[derive(Default)]
pub struct DeltaCodec {
    dict: HashMap<PathId, u16>,
}

/// Fixed per-op framing: one byte op kind + flags, a 2-byte dictionary
/// reference, and a varint-class timestamp/actor field.
const OP_HEADER_BYTES: usize = 8;

impl DeltaCodec {
    /// Bytes this op costs on the wire under delta encoding: the fixed
    /// header, the payload, and — first time only — the dictionary
    /// entry for its path.
    pub fn encode(&mut self, op: &EditOp) -> usize {
        let pid = PathId::intern(op.target());
        let mut bytes = OP_HEADER_BYTES;
        let next = self.dict.len() as u16;
        if self.dict.try_insert_like(pid, next) {
            // Dictionary entry: the path string plus a 2-byte ref.
            bytes += op.target().to_string().len() + 2;
        }
        bytes += match op {
            // The inserted subtree must ship whole either way.
            EditOp::Insert { element, .. } => element.byte_size(),
            EditOp::Delete { .. } => 0,
            EditOp::SetText { text, .. } => text.len(),
            EditOp::SetAttr { name, value, .. } => name.len() + value.len() + 2,
            EditOp::RemoveAttr { name, .. } => name.len() + 2,
        };
        bytes
    }
}

/// `HashMap::try_insert` is unstable; this is `insert`-if-absent
/// returning whether an insert happened.
trait TryInsertLike {
    fn try_insert_like(&mut self, k: PathId, v: u16) -> bool;
}

impl TryInsertLike for HashMap<PathId, u16> {
    fn try_insert_like(&mut self, k: PathId, v: u16) -> bool {
        use std::collections::hash_map::Entry;
        match self.entry(k) {
            Entry::Vacant(e) => {
                e.insert(v);
                true
            }
            Entry::Occupied(_) => false,
        }
    }
}

/// [`crate::two_way_sync`] on the delta fast path: indexed conflict
/// detection, dictionary-encoded shipping, arena application.
///
/// Semantics are identical to the oracle — same conflicts, same
/// winners under every [`ReconcilePolicy`], same queued pairs, same
/// converged documents (byte-identical; `tests/sync_differential.rs`
/// holds this under seeded random storms). Only the *measured work*
/// differs: [`SyncReport::compared`] counts candidate pairs actually
/// examined instead of `|a| × |b|`, and
/// [`SyncReport::bytes_exchanged`] reflects delta framing.
pub fn delta_two_way_sync(
    a: &mut Replica,
    b: &mut Replica,
    policy: ReconcilePolicy,
) -> Result<SyncReport, SyncError> {
    if a.doc.name != b.doc.name {
        return Err(SyncError::ComponentMismatch(a.doc.name.clone(), b.doc.name.clone()));
    }
    let mut report = SyncReport { fast_path: true, ..Default::default() };

    let anchors_ok = a.anchors.consistent_with(&b.id, b.log.head())
        && b.anchors.consistent_with(&a.id, a.log.head());

    if anchors_ok {
        let a_new: Vec<LogEntry> = a
            .log
            .since(b.anchors.last_seen(&a.id))
            .iter()
            .filter(|e| !b.seen.contains(&(e.actor, e.timestamp)))
            .cloned()
            .collect();
        let b_new: Vec<LogEntry> = b
            .log
            .since(a.anchors.last_seen(&b.id))
            .iter()
            .filter(|e| !a.seen.contains(&(e.actor, e.timestamp)))
            .cloned()
            .collect();

        // Indexed conflict detection: probe each a-op against the trie
        // of b-ops. Candidate pairs are a superset of conflicting pairs
        // and are examined in the oracle's (i, j) order.
        let index = TouchedIndex::build(&b_new);
        let mut a_drop = vec![false; a_new.len()];
        let mut b_drop = vec![false; b_new.len()];
        let mut cands: Vec<usize> = Vec::new();
        for (i, ea) in a_new.iter().enumerate() {
            index.candidates(ea.op.target(), &mut cands);
            report.compared += cands.len();
            for &j in &cands {
                let eb = &b_new[j];
                if ops_conflict(&ea.op, &eb.op, &a.keys) {
                    report.conflicts += 1;
                    match policy {
                        ReconcilePolicy::Manual => {
                            a_drop[i] = true;
                            b_drop[j] = true;
                            report.queued.push((ea.op.clone(), eb.op.clone()));
                        }
                        _ => {
                            if policy.first_wins(
                                ea.timestamp,
                                ea.actor_str(),
                                eb.timestamp,
                                eb.actor_str(),
                            ) {
                                report.first_wins += 1;
                                b_drop[j] = true;
                            } else {
                                a_drop[i] = true;
                            }
                        }
                    }
                }
            }
        }

        // Ship surviving ops as dictionary-encoded delta batches and
        // apply them through the arena; the owned doc is written back
        // once per direction.
        let mut codec = DeltaCodec::default();
        let mut diverged = false;
        if b_new.iter().enumerate().any(|(j, _)| !b_drop[j]) {
            let mut arena = ArenaDoc::from_element(&a.doc);
            for (j, eb) in b_new.iter().enumerate() {
                if b_drop[j] {
                    a.mark_seen(eb.actor, eb.timestamp);
                    continue;
                }
                report.bytes_exchanged += codec.encode(&eb.op);
                if apply_arena(&eb.op, &mut arena).is_err() {
                    diverged = true;
                } else {
                    a.record_remote(&eb.op, eb.actor, eb.timestamp);
                    report.shipped_to_first += 1;
                }
            }
            a.doc = arena.root_element();
        } else {
            for (j, eb) in b_new.iter().enumerate() {
                debug_assert!(b_drop[j] || b_new.is_empty());
                if b_drop[j] {
                    a.mark_seen(eb.actor, eb.timestamp);
                }
            }
        }
        if a_new.iter().enumerate().any(|(i, _)| !a_drop[i]) {
            let mut arena = ArenaDoc::from_element(&b.doc);
            for (i, ea) in a_new.iter().enumerate() {
                if a_drop[i] {
                    b.mark_seen(ea.actor, ea.timestamp);
                    continue;
                }
                report.bytes_exchanged += codec.encode(&ea.op);
                if apply_arena(&ea.op, &mut arena).is_err() {
                    diverged = true;
                } else {
                    b.record_remote(&ea.op, ea.actor, ea.timestamp);
                    report.shipped_to_second += 1;
                }
            }
            b.doc = arena.root_element();
        } else {
            for (i, ea) in a_new.iter().enumerate() {
                if a_drop[i] {
                    b.mark_seen(ea.actor, ea.timestamp);
                }
            }
        }

        a.anchors.advance(&b.id, b.log.head());
        b.anchors.advance(&a.id, a.log.head());

        canonicalize(&mut a.doc, &a.keys);
        canonicalize(&mut b.doc, &b.keys);

        if !diverged && a.doc == b.doc {
            report.converged = true;
            return Ok(report);
        }
        if policy == ReconcilePolicy::Manual && !report.queued.is_empty() {
            report.converged = a.doc == b.doc;
            return Ok(report);
        }
    }

    run_slow_sync(a, b, policy, &mut report);
    Ok(report)
}

/// What the oracle would have charged for the same surviving ops under
/// owned-path framing — kept on the report path so experiments can
/// print the bytes saving without a second full run.
pub fn naive_batch_bytes(ops: &[&EditOp]) -> usize {
    ops.iter().map(|op| op_bytes(op)).sum()
}

/// [`delta_two_way_sync`] under a telemetry [`Tracer`], charging the
/// **same simulated cost model** as
/// [`crate::two_way_sync_traced`] — 5µs + 10µs/KB shipped, 2µs per
/// pair compared + 3µs per conflict, 5µs per op applied, 20µs + 20µs/KB
/// on the slow path — plus a [`stage::SYNC_DELTA`] span of 1µs + 1µs
/// per (pair examined + op shipped) for index build/probe and
/// dictionary encoding. Because `compared` and `bytes_exchanged` are
/// the *measured smaller* values, the charged session time is where
/// the delta win shows up in experiments.
pub fn delta_two_way_sync_traced(
    a: &mut Replica,
    b: &mut Replica,
    policy: ReconcilePolicy,
    tracer: &mut Tracer,
) -> Result<SyncReport, SyncError> {
    tracer.enter(stage::SYNC_SESSION);
    let result = delta_two_way_sync(a, b, policy);
    if let Ok(report) = &result {
        let kb_us = |bytes: usize, per_kb: u64| (bytes as u64 * per_kb) / 1024;
        let shipped = (report.shipped_to_first + report.shipped_to_second) as u64;
        tracer.span(stage::SYNC_SHIP, SimTime::micros(5 + kb_us(report.bytes_exchanged, 10)));
        tracer.span(
            stage::SYNC_RECONCILE,
            SimTime::micros(2 * report.compared as u64 + 3 * report.conflicts as u64),
        );
        tracer.span(stage::SYNC_DELTA, SimTime::micros(1 + report.compared as u64 + shipped));
        tracer.span(stage::SYNC_APPLY, SimTime::micros(5 * shipped));
        if report.slow_sync {
            tracer.span(stage::SYNC_SLOW, SimTime::micros(20 + kb_us(report.bytes_exchanged, 20)));
        }
        let counters = tracer.hub().counters();
        counters.sync_sessions.fetch_add(1, Ordering::Relaxed);
        counters.sync_ops_shipped.fetch_add(shipped, Ordering::Relaxed);
        counters.sync_conflicts.fetch_add(report.conflicts as u64, Ordering::Relaxed);
        counters.sync_slow_paths.fetch_add(report.slow_sync as u64, Ordering::Relaxed);
    }
    tracer.exit();
    result
}

/// Compacts `r`'s change log against `anchors` under a telemetry
/// [`Tracer`]: a [`stage::SYNC_COMPACT`] span charged 1µs per entry
/// examined, and the fleet `compacted_ops` counter advanced by the
/// number of entries removed.
pub fn compact_traced(r: &mut Replica, anchors: &[u64], tracer: &mut Tracer) -> CompactStats {
    let examined = r.log.len() as u64;
    let stats = r.compact_log(anchors);
    tracer.span(stage::SYNC_COMPACT, SimTime::micros(1 + examined));
    tracer
        .hub()
        .counters()
        .compacted_ops
        .fetch_add(stats.dropped() as u64, Ordering::Relaxed);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_way_sync;
    use gupster_xml::{parse, Element, MergeKeys};

    fn keys() -> MergeKeys {
        MergeKeys::new().with_key("item", "id")
    }

    fn pair() -> (Replica, Replica) {
        let base = parse(
            r#"<address-book><item id="1"><name>Mom</name><phone>111</phone></item><item id="2"><name>Bob</name></item></address-book>"#,
        )
        .unwrap();
        (Replica::new("phone", base.clone(), keys()), Replica::new("portal", base, keys()))
    }

    fn set_name(id: &str, v: &str) -> EditOp {
        EditOp::SetText {
            path: NodePath::root().keyed("item", "id", id).child("name", 0),
            text: v.into(),
        }
    }

    fn insert_item(id: &str, name: &str) -> EditOp {
        EditOp::Insert {
            parent: NodePath::root(),
            element: Element::new("item")
                .with_attr("id", id)
                .with_child(Element::new("name").with_text(name)),
        }
    }

    /// Runs the same session through the oracle and the delta path on
    /// independent replica pairs; asserts identical semantics.
    fn check_against_oracle(edits_a: &[EditOp], edits_b: &[EditOp], policy: ReconcilePolicy) {
        let (mut oa, mut ob) = pair();
        let (mut da, mut db) = pair();
        for op in edits_a {
            let _ = oa.edit(op.clone());
            let _ = da.edit(op.clone());
        }
        for op in edits_b {
            let _ = ob.edit(op.clone());
            let _ = db.edit(op.clone());
        }
        let ro = two_way_sync(&mut oa, &mut ob, policy).unwrap();
        let rd = delta_two_way_sync(&mut da, &mut db, policy).unwrap();
        assert_eq!(oa.doc, da.doc, "first replica diverged from oracle");
        assert_eq!(ob.doc, db.doc, "second replica diverged from oracle");
        assert_eq!(ro.conflicts, rd.conflicts);
        assert_eq!(ro.first_wins, rd.first_wins);
        assert_eq!(ro.queued, rd.queued);
        assert_eq!(ro.shipped_to_first, rd.shipped_to_first);
        assert_eq!(ro.shipped_to_second, rd.shipped_to_second);
        assert_eq!(ro.converged, rd.converged);
        assert_eq!(ro.fast_path, rd.fast_path);
        assert_eq!(ro.slow_sync, rd.slow_sync);
        assert!(rd.compared <= ro.compared, "{} > {}", rd.compared, ro.compared);
        assert!(
            rd.bytes_exchanged <= ro.bytes_exchanged,
            "{} > {}",
            rd.bytes_exchanged,
            ro.bytes_exchanged
        );
    }

    #[test]
    fn matches_oracle_on_disjoint_edits() {
        check_against_oracle(
            &[insert_item("3", "Carol")],
            &[insert_item("4", "Dave")],
            ReconcilePolicy::LastWriterWins,
        );
    }

    #[test]
    fn matches_oracle_on_conflicts_under_every_policy() {
        for policy in [
            ReconcilePolicy::PreferFirst,
            ReconcilePolicy::PreferSecond,
            ReconcilePolicy::LastWriterWins,
            ReconcilePolicy::Manual,
        ] {
            check_against_oracle(
                &[set_name("1", "A"), insert_item("7", "Eve")],
                &[set_name("1", "B"), set_name("2", "Robert"), insert_item("7", "Eva")],
                policy,
            );
        }
    }

    #[test]
    fn matches_oracle_on_insert_delete_conflicts() {
        check_against_oracle(
            &[EditOp::Delete { path: NodePath::root().keyed("item", "id", "2") }],
            &[EditOp::Insert {
                parent: NodePath::root().keyed("item", "id", "2"),
                element: Element::new("phone").with_text("222"),
            }],
            ReconcilePolicy::LastWriterWins,
        );
    }

    #[test]
    fn compared_and_bytes_shrink_on_wide_storms() {
        let (mut da, mut db) = pair();
        let (mut oa, mut ob) = pair();
        // Disjoint hot-path edits: naive compares n×m, index ~0 pairs.
        for i in 0..20 {
            let op = set_name("1", &format!("a{i}"));
            da.edit(op.clone()).unwrap();
            oa.edit(op).unwrap();
            let op = set_name("2", &format!("b{i}"));
            db.edit(op.clone()).unwrap();
            ob.edit(op).unwrap();
        }
        let ro = two_way_sync(&mut oa, &mut ob, ReconcilePolicy::LastWriterWins).unwrap();
        let rd = delta_two_way_sync(&mut da, &mut db, ReconcilePolicy::LastWriterWins).unwrap();
        assert_eq!(ro.compared, 400);
        assert_eq!(rd.compared, 0, "disjoint paths should produce no candidate pairs");
        // Dictionary encoding ships each hot path once.
        assert!(
            rd.bytes_exchanged * 2 <= ro.bytes_exchanged,
            "delta {} vs naive {}",
            rd.bytes_exchanged,
            ro.bytes_exchanged
        );
        assert_eq!(da.doc, oa.doc);
    }

    #[test]
    fn touched_index_candidates_are_supersets_of_conflicts() {
        let (mut a, _) = pair();
        let ops = [
            set_name("1", "x"),
            insert_item("9", "Z"),
            EditOp::Delete { path: NodePath::root().keyed("item", "id", "2") },
            EditOp::SetAttr {
                path: NodePath::root().keyed("item", "id", "1"),
                name: "vip".into(),
                value: "1".into(),
            },
        ];
        for op in &ops {
            let _ = a.edit(op.clone());
        }
        let entries: Vec<LogEntry> = a.log.since(0).to_vec();
        let index = TouchedIndex::build(&entries);
        let mut cands = Vec::new();
        for ea in &entries {
            index.candidates(ea.op.target(), &mut cands);
            for (j, eb) in entries.iter().enumerate() {
                if ops_conflict(&ea.op, &eb.op, &a.keys) {
                    assert!(cands.contains(&j), "missing candidate {j} for {:?}", ea.op);
                }
            }
        }
    }

    #[test]
    fn traced_delta_records_delta_stage() {
        use std::sync::Arc;

        use gupster_telemetry::TelemetryHub;

        let hub = Arc::new(TelemetryHub::new());
        let (mut a, mut b) = pair();
        a.edit(set_name("1", "A")).unwrap();
        b.edit(set_name("1", "B")).unwrap();
        let mut tracer = hub.tracer("sync.round");
        let r = delta_two_way_sync_traced(&mut a, &mut b, ReconcilePolicy::LastWriterWins, &mut tracer)
            .unwrap();
        drop(tracer);
        assert!(r.converged);
        assert!(hub.stage_stats(stage::SYNC_DELTA).is_some());
        assert_eq!(hub.counter_snapshot().sync_sessions, 1);
    }

    #[test]
    fn traced_compaction_counts_dropped_ops() {
        use std::sync::Arc;

        use gupster_telemetry::TelemetryHub;

        let hub = Arc::new(TelemetryHub::new());
        let (mut a, _) = pair();
        for i in 0..10 {
            a.edit(set_name("1", &format!("v{i}"))).unwrap();
        }
        let mut tracer = hub.tracer("compact");
        let stats = compact_traced(&mut a, &[0], &mut tracer);
        drop(tracer);
        assert_eq!(stats.coalesced, 9);
        assert_eq!(hub.counter_snapshot().compacted_ops, 9);
        assert!(hub.stage_stats(stage::SYNC_COMPACT).is_some());
    }
}
