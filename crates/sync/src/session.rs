//! Two-way sync sessions.

use std::fmt;
use std::sync::atomic::Ordering;

use gupster_telemetry::{stage, SimTime, Tracer};
use gupster_xml::{diff, merge, EditOp};

use crate::reconcile::ReconcilePolicy;
use crate::replica::Replica;

/// Why a sync failed outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The replicas hold different components (root tags differ).
    ComponentMismatch(String, String),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::ComponentMismatch(a, b) => {
                write!(f, "cannot sync <{a}> with <{b}>")
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// What a sync session did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Edits shipped first → second.
    pub shipped_to_second: usize,
    /// Edits shipped second → first.
    pub shipped_to_first: usize,
    /// Conflicting edit pairs detected.
    pub conflicts: usize,
    /// Conflicts where the first replica's edit won.
    pub first_wins: usize,
    /// Conflicts queued for manual resolution (policy `Manual`).
    pub queued: Vec<(EditOp, EditOp)>,
    /// Edit pairs examined during conflict detection (`|a_new| × |b_new|`
    /// on the fast path) — the work the reconcile phase actually did,
    /// which the traced variant charges simulated time for.
    pub compared: usize,
    /// Whether the fast (log-based) path sufficed.
    pub fast_path: bool,
    /// Whether a slow sync (full-state) ran.
    pub slow_sync: bool,
    /// Whether the replicas ended byte-identical.
    pub converged: bool,
    /// Approximate bytes exchanged (ops on the fast path, documents on
    /// the slow path) — experiments compare this against whole-document
    /// shipping.
    pub bytes_exchanged: usize,
}

/// Runs a two-way synchronization between two replicas of the same
/// component.
///
/// Fast path: exchange the change-log suffixes past each side's anchors,
/// drop losing halves of conflicting pairs per the policy, apply. If the
/// anchors are inconsistent (a rebase happened), or applying diverged
/// (ops no longer fit the peer's state), fall back to a **slow sync**:
/// deep-merge both documents (union of entries; conflicting scalar
/// fields resolved per the policy by preferring the winning side's
/// document order) and rebase both replicas on the result.
pub fn two_way_sync(
    a: &mut Replica,
    b: &mut Replica,
    policy: ReconcilePolicy,
) -> Result<SyncReport, SyncError> {
    if a.doc.name != b.doc.name {
        return Err(SyncError::ComponentMismatch(a.doc.name.clone(), b.doc.name.clone()));
    }
    let mut report = SyncReport { fast_path: true, ..Default::default() };

    let anchors_ok =
        a.anchors.consistent_with(&b.id, b.log.head()) && b.anchors.consistent_with(&a.id, a.log.head());

    if anchors_ok {
        // Ship log suffixes past the peer's anchor, minus anything the
        // peer has already incorporated (hub relay would otherwise echo
        // a device's own edits back to it).
        let a_new: Vec<_> = a
            .log
            .since(b.anchors.last_seen(&a.id))
            .iter()
            .filter(|e| !b.seen.contains(&(e.actor, e.timestamp)))
            .cloned()
            .collect();
        let b_new: Vec<_> = b
            .log
            .since(a.anchors.last_seen(&b.id))
            .iter()
            .filter(|e| !a.seen.contains(&(e.actor, e.timestamp)))
            .cloned()
            .collect();

        // Conflict detection: overlapping targets across the two sets.
        report.compared = a_new.len() * b_new.len();
        let mut a_drop = vec![false; a_new.len()];
        let mut b_drop = vec![false; b_new.len()];
        for (i, ea) in a_new.iter().enumerate() {
            for (j, eb) in b_new.iter().enumerate() {
                if ops_conflict(&ea.op, &eb.op, &a.keys) {
                    report.conflicts += 1;
                    match policy {
                        ReconcilePolicy::Manual => {
                            a_drop[i] = true;
                            b_drop[j] = true;
                            report.queued.push((ea.op.clone(), eb.op.clone()));
                        }
                        _ => {
                            if policy
                                .first_wins(ea.timestamp, ea.actor_str(), eb.timestamp, eb.actor_str())
                            {
                                report.first_wins += 1;
                                b_drop[j] = true;
                            } else {
                                a_drop[i] = true;
                            }
                        }
                    }
                }
            }
        }

        // Apply surviving edits cross-wise; losing halves are marked
        // seen so they are never re-shipped.
        let mut diverged = false;
        for (j, eb) in b_new.iter().enumerate() {
            if b_drop[j] {
                a.mark_seen(eb.actor, eb.timestamp);
                continue;
            }
            report.bytes_exchanged += op_bytes(&eb.op);
            if a.apply_remote(&eb.op, eb.actor, eb.timestamp).is_err() {
                diverged = true;
            } else {
                report.shipped_to_first += 1;
            }
        }
        for (i, ea) in a_new.iter().enumerate() {
            if a_drop[i] {
                b.mark_seen(ea.actor, ea.timestamp);
                continue;
            }
            report.bytes_exchanged += op_bytes(&ea.op);
            if b.apply_remote(&ea.op, ea.actor, ea.timestamp).is_err() {
                diverged = true;
            } else {
                report.shipped_to_second += 1;
            }
        }

        a.anchors.advance(&b.id, b.log.head());
        b.anchors.advance(&a.id, a.log.head());

        // Concurrent inserts land in different orders on the two sides;
        // canonicalize keyed-children order so equality is structural.
        canonicalize(&mut a.doc, &a.keys);
        canonicalize(&mut b.doc, &b.keys);

        if !diverged && a.doc == b.doc {
            report.converged = true;
            return Ok(report);
        }
        if policy == ReconcilePolicy::Manual && !report.queued.is_empty() {
            // Divergence is expected while conflicts await the user.
            report.converged = a.doc == b.doc;
            return Ok(report);
        }
    }

    run_slow_sync(a, b, policy, &mut report);
    Ok(report)
}

/// The slow (full-state) sync: deep-merge document states; on merge
/// conflict, take the winning side's subtree by diffing the loser onto
/// the winner. Shared by the oracle and the delta path — the documents
/// being shipped whole, there is nothing to delta-encode here.
pub(crate) fn run_slow_sync(
    a: &mut Replica,
    b: &mut Replica,
    policy: ReconcilePolicy,
    report: &mut SyncReport,
) {
    report.fast_path = false;
    report.slow_sync = true;
    report.bytes_exchanged += a.doc.byte_size() + b.doc.byte_size();
    let (winner, loser) = if policy.first_wins(a.clock, &a.id, b.clock, &b.id) {
        (&a.doc, &b.doc)
    } else {
        (&b.doc, &a.doc)
    };
    let mut merged = match merge(loser, winner, &a.keys) {
        Ok(m) => m,
        Err(_) => {
            // Conflicting scalars: winner's state, plus loser's entries
            // that don't conflict (apply loser→winner diff inserts only).
            let mut m = winner.clone();
            for op in diff(winner, loser, &a.keys) {
                if let EditOp::Insert { .. } = op {
                    let _ = op.apply(&mut m);
                }
            }
            m
        }
    };
    // The baseline must be order-canonical, or a replica that reached
    // the same *content* through a different op order would compare
    // unequal on the next fast sync and trigger needless slow syncs.
    canonicalize(&mut merged, &a.keys);
    a.rebase(merged.clone());
    b.rebase(merged);
    a.anchors.advance(&b.id, 0);
    b.anchors.advance(&a.id, 0);
    report.converged = a.doc == b.doc;
}

/// [`two_way_sync`] under a telemetry [`Tracer`]: the session becomes a
/// [`stage::SYNC_SESSION`] span with per-phase children, charged from a
/// deterministic simulated cost model (the sync path has no wall clocks,
/// like the rest of the pipeline):
///
/// * [`stage::SYNC_SHIP`] — wire time for the changelog-suffix (or, on
///   the slow path, whole-document) exchange: 5µs handshake plus 10µs
///   per KB of [`SyncReport::bytes_exchanged`].
/// * [`stage::SYNC_RECONCILE`] — conflict detection: 2µs per edit pair
///   compared plus 3µs per conflict resolved.
/// * [`stage::SYNC_APPLY`] — 5µs per accepted remote op applied.
/// * [`stage::SYNC_SLOW`] — only when the slow path ran: 20µs plus 20µs
///   per KB for the full-document deep merge and rebase.
///
/// Also bumps the hub's `sync_sessions`, `sync_ops_shipped`,
/// `sync_conflicts` and `sync_slow_paths` counters. The returned report
/// is identical to the untraced call's.
pub fn two_way_sync_traced(
    a: &mut Replica,
    b: &mut Replica,
    policy: ReconcilePolicy,
    tracer: &mut Tracer,
) -> Result<SyncReport, SyncError> {
    tracer.enter(stage::SYNC_SESSION);
    let result = two_way_sync(a, b, policy);
    if let Ok(report) = &result {
        let kb_us = |bytes: usize, per_kb: u64| (bytes as u64 * per_kb) / 1024;
        let shipped = (report.shipped_to_first + report.shipped_to_second) as u64;
        tracer.span(stage::SYNC_SHIP, SimTime::micros(5 + kb_us(report.bytes_exchanged, 10)));
        tracer.span(
            stage::SYNC_RECONCILE,
            SimTime::micros(2 * report.compared as u64 + 3 * report.conflicts as u64),
        );
        tracer.span(stage::SYNC_APPLY, SimTime::micros(5 * shipped));
        if report.slow_sync {
            tracer.span(stage::SYNC_SLOW, SimTime::micros(20 + kb_us(report.bytes_exchanged, 20)));
        }
        let counters = tracer.hub().counters();
        counters.sync_sessions.fetch_add(1, Ordering::Relaxed);
        counters.sync_ops_shipped.fetch_add(shipped, Ordering::Relaxed);
        counters.sync_conflicts.fetch_add(report.conflicts as u64, Ordering::Relaxed);
        counters.sync_slow_paths.fetch_add(report.slow_sync as u64, Ordering::Relaxed);
    }
    tracer.exit();
    result
}

/// Refined conflict test. [`EditOp::overlaps`] is necessary but too
/// coarse: concurrent *inserts* into the same container are additive
/// (two people adding different contacts to the same address book must
/// both survive, Req. 6's "merging of address books"). Inserts conflict
/// only when they add the same logical entry; an insert conflicts with
/// a delete of its container; everything else falls back to path
/// overlap.
pub(crate) fn ops_conflict(a: &EditOp, b: &EditOp, keys: &gupster_xml::MergeKeys) -> bool {
    use EditOp::*;
    match (a, b) {
        (Insert { parent: pa, element: ea }, Insert { parent: pb, element: eb }) => {
            if pa != pb {
                return false;
            }
            match (keys.identity(ea), keys.identity(eb)) {
                (Some(ia), Some(ib)) => ia == ib,
                _ => ea == eb,
            }
        }
        (Insert { parent, .. }, Delete { path }) | (Delete { path }, Insert { parent, .. }) => {
            path.is_prefix_of(parent)
        }
        (Insert { .. }, _) | (_, Insert { .. }) => false,
        _ => a.overlaps(b),
    }
}

/// Stable-sorts element children by (tag, identity key) at every level.
/// Only applies to element-content nodes (mixed content keeps order).
pub(crate) fn canonicalize(e: &mut gupster_xml::Element, keys: &gupster_xml::MergeKeys) {
    use gupster_xml::Node;
    for ch in e.child_elements_mut() {
        canonicalize(ch, keys);
    }
    let all_elements = e.children.iter().all(|c| matches!(c, Node::Element(_)));
    if all_elements {
        e.children.sort_by(|x, y| {
            let key = |n: &Node| match n {
                Node::Element(el) => {
                    (el.name.clone(), keys.identity(el).map(|(_, k)| k).unwrap_or_default())
                }
                Node::Text(_) => unreachable!("all_elements checked"),
            };
            key(x).cmp(&key(y))
        });
    }
}

pub(crate) fn op_bytes(op: &EditOp) -> usize {
    match op {
        EditOp::Insert { element, .. } => 32 + element.byte_size(),
        EditOp::Delete { path } => 16 + path.to_string().len(),
        EditOp::SetText { path, text } => 16 + path.to_string().len() + text.len(),
        EditOp::SetAttr { path, name, value } => {
            16 + path.to_string().len() + name.len() + value.len()
        }
        EditOp::RemoveAttr { path, name } => 16 + path.to_string().len() + name.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::{parse, Element, MergeKeys, NodePath};

    fn keys() -> MergeKeys {
        MergeKeys::new().with_key("item", "id")
    }

    fn book(xml: &str) -> Element {
        parse(xml).unwrap()
    }

    fn pair() -> (Replica, Replica) {
        let base = book(
            r#"<address-book><item id="1"><name>Mom</name><phone>111</phone></item></address-book>"#,
        );
        (
            Replica::new("phone", base.clone(), keys()),
            Replica::new("gup.yahoo.com", base, keys()),
        )
    }

    fn set_name(id: &str, v: &str) -> EditOp {
        EditOp::SetText {
            path: NodePath::root().keyed("item", "id", id).child("name", 0),
            text: v.into(),
        }
    }

    fn insert_item(id: &str, name: &str) -> EditOp {
        EditOp::Insert {
            parent: NodePath::root(),
            element: Element::new("item")
                .with_attr("id", id)
                .with_child(Element::new("name").with_text(name)),
        }
    }

    #[test]
    fn disjoint_edits_converge_fast() {
        let (mut a, mut b) = pair();
        a.edit(insert_item("2", "Bob")).unwrap();
        b.edit(insert_item("3", "Carol")).unwrap();
        let r = two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        assert!(r.fast_path && r.converged && !r.slow_sync);
        assert_eq!(r.conflicts, 0);
        assert_eq!(a.doc.children_named("item").count(), 3);
        assert_eq!(a.doc, b.doc);
    }

    #[test]
    fn conflicting_edit_lww() {
        let (mut a, mut b) = pair();
        a.edit(set_name("1", "Mother")).unwrap(); // ts 1 @ phone
        b.edit(set_name("1", "Mum")).unwrap(); // ts 1 @ yahoo
        b.edit(insert_item("9", "Zed")).unwrap(); // bump b's clock
        b.edit(set_name("1", "Mummy")).unwrap(); // ts 3 @ yahoo — latest
        let r = two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        assert!(r.converged);
        assert_eq!(
            a.doc.child("item").unwrap().child("name").unwrap().text(),
            "Mummy"
        );
        assert_eq!(a.doc, b.doc);
    }

    #[test]
    fn site_priority_policies() {
        let (mut a, mut b) = pair();
        a.edit(set_name("1", "PhoneWins")).unwrap();
        b.edit(set_name("1", "PortalWins")).unwrap();
        let r = two_way_sync(&mut a, &mut b, ReconcilePolicy::PreferFirst).unwrap();
        assert!(r.converged);
        assert_eq!(a.doc.child("item").unwrap().child("name").unwrap().text(), "PhoneWins");

        let (mut a, mut b) = pair();
        a.edit(set_name("1", "PhoneWins")).unwrap();
        b.edit(set_name("1", "PortalWins")).unwrap();
        two_way_sync(&mut a, &mut b, ReconcilePolicy::PreferSecond).unwrap();
        assert_eq!(a.doc.child("item").unwrap().child("name").unwrap().text(), "PortalWins");
    }

    #[test]
    fn manual_policy_queues_and_defers() {
        let (mut a, mut b) = pair();
        a.edit(set_name("1", "A")).unwrap();
        b.edit(set_name("1", "B")).unwrap();
        let r = two_way_sync(&mut a, &mut b, ReconcilePolicy::Manual).unwrap();
        assert_eq!(r.queued.len(), 1);
        assert!(!r.converged);
        // Neither side applied the other's conflicting edit.
        assert_eq!(a.doc.child("item").unwrap().child("name").unwrap().text(), "A");
        assert_eq!(b.doc.child("item").unwrap().child("name").unwrap().text(), "B");
    }

    #[test]
    fn repeated_syncs_are_incremental() {
        let (mut a, mut b) = pair();
        a.edit(insert_item("2", "Bob")).unwrap();
        let r1 = two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        assert_eq!(r1.shipped_to_second, 1);
        // Nothing new: second sync ships nothing.
        let r2 = two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        assert_eq!(r2.shipped_to_second, 0);
        assert_eq!(r2.shipped_to_first, 0);
        assert!(r2.converged);
    }

    #[test]
    fn rebase_forces_slow_sync() {
        let (mut a, mut b) = pair();
        a.edit(insert_item("2", "Bob")).unwrap();
        two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        // b rebases (e.g. restored from backup) with extra data.
        b.rebase(book(
            r#"<address-book><item id="1"><name>Mom</name><phone>111</phone></item><item id="7"><name>Eve</name></item></address-book>"#,
        ));
        b.anchors.reset(&a.id);
        a.edit(insert_item("3", "Carol")).unwrap();
        let r = two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        assert!(r.slow_sync);
        assert!(r.converged);
        let ids: Vec<_> = a
            .doc
            .children_named("item")
            .map(|i| i.attr("id").unwrap().to_string())
            .collect();
        assert!(ids.contains(&"1".to_string()));
        assert!(ids.contains(&"7".to_string()));
        // Carol ("3") was inserted after the last fast sync and survives
        // the slow-sync merge.
        assert!(ids.contains(&"3".to_string()), "{ids:?}");
        assert_eq!(a.doc, b.doc);
    }

    #[test]
    fn traced_sync_records_stages_and_counters() {
        use std::sync::Arc;

        use gupster_telemetry::TelemetryHub;

        let hub = Arc::new(TelemetryHub::new());
        let (mut a, mut b) = pair();
        a.edit(set_name("1", "A")).unwrap();
        b.edit(set_name("1", "B")).unwrap();
        b.edit(insert_item("2", "Bob")).unwrap();
        let mut tracer = hub.tracer("sync.round");
        let r =
            two_way_sync_traced(&mut a, &mut b, ReconcilePolicy::LastWriterWins, &mut tracer)
                .unwrap();
        drop(tracer);

        // The report matches an untraced run of the same session.
        let (mut a2, mut b2) = pair();
        a2.edit(set_name("1", "A")).unwrap();
        b2.edit(set_name("1", "B")).unwrap();
        b2.edit(insert_item("2", "Bob")).unwrap();
        let plain = two_way_sync(&mut a2, &mut b2, ReconcilePolicy::LastWriterWins).unwrap();
        assert_eq!(r, plain);
        assert_eq!(r.compared, 2); // |a_new| × |b_new| = 1 × 2

        let counters = hub.counter_snapshot();
        assert_eq!(counters.sync_sessions, 1);
        assert_eq!(counters.sync_conflicts, 1);
        assert_eq!(
            counters.sync_ops_shipped as usize,
            r.shipped_to_first + r.shipped_to_second
        );
        assert_eq!(counters.sync_slow_paths, 0);
        // Every fast-path phase shows up in the stage histograms; the
        // slow path was not taken, so its stage stays silent.
        for st in [stage::SYNC_SESSION, stage::SYNC_SHIP, stage::SYNC_RECONCILE, stage::SYNC_APPLY]
        {
            assert!(hub.stage_stats(st).is_some(), "missing stage {st}");
        }
        assert!(hub.stage_stats(stage::SYNC_SLOW).is_none());
    }

    #[test]
    fn traced_slow_sync_charges_the_slow_stage() {
        use std::sync::Arc;

        use gupster_telemetry::TelemetryHub;

        let hub = Arc::new(TelemetryHub::new());
        let (mut a, mut b) = pair();
        a.edit(insert_item("2", "Bob")).unwrap();
        two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        b.rebase(book(
            r#"<address-book><item id="1"><name>Mom</name></item><item id="7"><name>Eve</name></item></address-book>"#,
        ));
        b.anchors.reset(&a.id);
        let mut tracer = hub.tracer("sync.round");
        let r = two_way_sync_traced(&mut a, &mut b, ReconcilePolicy::LastWriterWins, &mut tracer)
            .unwrap();
        drop(tracer);
        assert!(r.slow_sync);
        assert_eq!(hub.counter_snapshot().sync_slow_paths, 1);
        let slow = hub.stage_stats(stage::SYNC_SLOW).expect("slow stage recorded");
        assert!(slow.max >= SimTime::micros(20));
    }

    #[test]
    fn component_mismatch_rejected() {
        let mut a = Replica::new("x", book("<address-book/>"), keys());
        let mut b = Replica::new("y", book("<calendar/>"), keys());
        assert!(two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).is_err());
    }

    #[test]
    fn fast_path_cheaper_than_whole_document() {
        let mut base = Element::new("address-book");
        for i in 0..100 {
            base.push_child(
                Element::new("item")
                    .with_attr("id", i.to_string())
                    .with_child(Element::new("name").with_text(format!("Contact {i}"))),
            );
        }
        let mut a = Replica::new("phone", base.clone(), keys());
        let mut b = Replica::new("portal", base.clone(), keys());
        // Prime anchors.
        two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        a.edit(set_name("5", "Renamed")).unwrap();
        let r = two_way_sync(&mut a, &mut b, ReconcilePolicy::LastWriterWins).unwrap();
        assert!(r.fast_path);
        assert!(
            r.bytes_exchanged < base.byte_size() / 10,
            "one-edit sync should be far cheaper than shipping the book: {} vs {}",
            r.bytes_exchanged,
            base.byte_size()
        );
    }
}
