//! Reconciliation policies (Req. 6: "End-users should be able to
//! provision the policies used to reconcile profile data").

/// How conflicting concurrent edits are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconcilePolicy {
    /// The first replica in the session wins ("prioritizing sites",
    /// §5.3 — e.g. the network's primary copy beats the handset).
    PreferFirst,
    /// The second replica wins.
    PreferSecond,
    /// The edit with the larger Lamport timestamp wins; ties break by
    /// actor id (deterministic on both sides).
    LastWriterWins,
    /// Neither side applies conflicting edits; they are queued for the
    /// user ("or by some more sophisticated method").
    Manual,
}

impl ReconcilePolicy {
    /// Decides the winner of one conflict: returns `true` when the
    /// *first* replica's edit wins.
    pub fn first_wins(
        self,
        first_ts: u64,
        first_actor: &str,
        second_ts: u64,
        second_actor: &str,
    ) -> bool {
        match self {
            ReconcilePolicy::PreferFirst => true,
            ReconcilePolicy::PreferSecond => false,
            ReconcilePolicy::LastWriterWins => {
                (first_ts, first_actor) > (second_ts, second_actor)
            }
            ReconcilePolicy::Manual => true, // unused; session queues instead
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_priority() {
        assert!(ReconcilePolicy::PreferFirst.first_wins(1, "a", 99, "b"));
        assert!(!ReconcilePolicy::PreferSecond.first_wins(99, "a", 1, "b"));
    }

    #[test]
    fn lww_with_deterministic_ties() {
        let p = ReconcilePolicy::LastWriterWins;
        assert!(p.first_wins(5, "a", 3, "b"));
        assert!(!p.first_wins(3, "a", 5, "b"));
        // Tie: actor id decides, the same way on both sides.
        assert!(p.first_wins(5, "z", 5, "a"));
        assert!(!p.first_wins(5, "a", 5, "z"));
    }
}
