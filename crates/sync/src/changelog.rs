//! Per-replica change logs, with compaction.
//!
//! A log under a sustained write storm grows without bound, and most of
//! what it holds is dead weight: a presence field set 500 times only
//! ever ships its latest value, and a contact added then deleted ships
//! nothing at all. [`ChangeLog::compact`] drops that dead weight while
//! keeping every answer [`ChangeLog::since`] can give to a **live peer
//! anchor** replay-equivalent — the contract the sync session depends
//! on. Sequence numbers survive compaction (the log becomes sparse, and
//! `since` binary-searches instead of slicing), so anchors taken before
//! a compaction remain valid after it.

use gupster_xml::{EditOp, MergeKeys, NodePath};

use crate::intern::{ActorId, PathId};

/// One logged edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Sequence number within this replica's log (1-based, ascending;
    /// sparse after a [`ChangeLog::compact`]).
    pub seq: u64,
    /// The edit.
    pub op: EditOp,
    /// Who made it (an interned replica/site id).
    pub actor: ActorId,
    /// Logical timestamp (Lamport-style: max(local, seen) + 1).
    pub timestamp: u64,
}

impl LogEntry {
    /// The actor id as a string (resolved from the interner).
    pub fn actor_str(&self) -> &'static str {
        self.actor.as_str()
    }
}

/// What one [`ChangeLog::compact`] call removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Entries below the compaction floor (seen by every live peer).
    pub truncated: usize,
    /// Superseded `SetText`/`SetAttr` entries coalesced away.
    pub coalesced: usize,
    /// Entries removed by insert+delete annihilation (the pair plus any
    /// intervening edits inside the dying subtree).
    pub annihilated: usize,
}

impl CompactStats {
    /// Total entries removed.
    pub fn dropped(&self) -> usize {
        self.truncated + self.coalesced + self.annihilated
    }
}

/// An append-mostly log of edits to one replica.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    entries: Vec<LogEntry>,
    /// Highest sequence number ever issued. Tracked separately from
    /// `entries.len()` because compaction leaves gaps.
    head: u64,
}

impl ChangeLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an edit; returns its sequence number. The actor is an
    /// interned id, so nothing is cloned per append.
    pub fn append(&mut self, op: EditOp, actor: ActorId, timestamp: u64) -> u64 {
        self.head += 1;
        let seq = self.head;
        self.entries.push(LogEntry { seq, op, actor, timestamp });
        seq
    }

    /// Entries with `seq > after` (i.e. everything the peer hasn't
    /// seen). Binary-searches by sequence number — entry seqs are
    /// ascending but sparse once the log has been compacted.
    pub fn since(&self, after: u64) -> &[LogEntry] {
        let start = self.entries.partition_point(|e| e.seq <= after);
        &self.entries[start..]
    }

    /// Highest sequence number ever issued (0 when never appended).
    /// Unchanged by compaction, so peer anchors stay comparable.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Empties the log **and restarts sequence numbering from zero** —
    /// used after a slow sync establishes a fresh baseline, at which
    /// point peers' anchors into this log are reset anyway.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.head = 0;
    }

    /// Drops every entry with `seq <= seq`, keeping sequence numbering
    /// intact (unlike [`ChangeLog::clear`]). Safe whenever every live
    /// peer's anchor into this log is at least `seq`: such entries can
    /// never again appear in a [`ChangeLog::since`] answer. Returns the
    /// number of entries dropped.
    pub fn truncate_through(&mut self, seq: u64) -> usize {
        let cut = self.entries.partition_point(|e| e.seq <= seq);
        self.entries.drain(..cut);
        cut
    }

    /// Compacts the log against the anchors of every live peer.
    ///
    /// `anchors` must contain, for **every** peer that syncs against
    /// this log, that peer's last-incorporated seq (0 for a peer that
    /// has never synced). Three reductions run, each preserving the
    /// final document state produced by replaying `since(a)` for every
    /// `a` in `anchors` (and for any future anchor `>= head()`):
    ///
    /// 1. **Truncation** — entries at or below `min(anchors)` have been
    ///    incorporated by every live peer and are dropped outright.
    /// 2. **Coalescing** — of several `SetText`s to the same path, only
    ///    the last survives (a replay ends on the same text either
    ///    way); likewise `SetAttr` per `(path, attribute)`, unless an
    ///    intervening entry's path resolves through a step keyed on
    ///    that attribute (its resolution could depend on the
    ///    intermediate value).
    /// 3. **Annihilation** — an `Insert` later removed by a keyed
    ///    `Delete` of the same element vanishes, along with every
    ///    intervening edit inside the dying subtree, provided no live
    ///    anchor falls between the pair (a peer holding the insert but
    ///    not the delete still needs the delete shipped). Like `merge`
    ///    and `diff`, this assumes keyed identities are unique within a
    ///    container — the invariant the whole identity-matching layer
    ///    rests on.
    ///
    /// A peer not listed in `anchors` (e.g. one that first appears
    /// after compaction, or one that receives this log's ops relayed
    /// through a third replica) may find the suffix insufficient and
    /// fall back to a slow sync — correct, just slower. The hub
    /// reconciliation plane always lists every device anchor.
    pub fn compact(&mut self, anchors: &[u64], keys: &MergeKeys) -> CompactStats {
        let mut stats = CompactStats::default();
        let floor = anchors.iter().copied().min().unwrap_or(0);
        stats.truncated = self.truncate_through(floor);

        let n = self.entries.len();
        let mut drop = vec![false; n];

        // Coalesce superseded SetText / SetAttr entries (last wins).
        use std::collections::HashMap;
        let mut last_text: HashMap<PathId, usize> = HashMap::new();
        let mut last_attr: HashMap<(PathId, String), usize> = HashMap::new();
        for i in 0..n {
            match &self.entries[i].op {
                EditOp::SetText { path, .. } => {
                    let pid = PathId::intern(path);
                    if let Some(prev) = last_text.insert(pid, i) {
                        drop[prev] = true;
                        stats.coalesced += 1;
                    }
                }
                EditOp::SetAttr { path, name, .. } => {
                    let pid = PathId::intern(path);
                    if let Some(prev) = last_attr.insert((pid, name.clone()), i) {
                        // A step keyed on this attribute in an entry
                        // between the pair may resolve through the
                        // intermediate value — keep the earlier write.
                        let keyed_between = self.entries[prev + 1..i]
                            .iter()
                            .any(|e| path_keys_on(e.op.target(), name));
                        if !keyed_between {
                            drop[prev] = true;
                            stats.coalesced += 1;
                        }
                    }
                }
                _ => {}
            }
        }

        // Insert + keyed Delete annihilation.
        for j in 0..n {
            if drop[j] {
                continue;
            }
            let EditOp::Delete { path } = &self.entries[j].op else { continue };
            let Some((last, prefix)) = path.steps.split_last() else { continue };
            let Some((ka, kv)) = &last.key else { continue };
            let parent = NodePath { steps: prefix.to_vec() };
            // Latest surviving insert of the same logical element.
            let Some(i) = (0..j).rev().find(|&i| {
                if drop[i] {
                    return false;
                }
                let EditOp::Insert { parent: ip, element } = &self.entries[i].op else {
                    return false;
                };
                *ip == parent
                    && element.name == last.name
                    && element.attr(ka) == Some(kv.as_str())
                    && keys.identity(element).is_some()
            }) else {
                continue;
            };
            let (si, sj) = (self.entries[i].seq, self.entries[j].seq);
            // A peer anchored between the pair already holds the insert
            // and still needs the delete shipped — leave both alone.
            if anchors.iter().any(|&a| a >= si && a < sj) {
                continue;
            }
            drop[i] = true;
            drop[j] = true;
            stats.annihilated += 2;
            // Everything between the pair that edits the dying subtree
            // dies with it (and would not apply without the insert).
            for (k, dead) in drop.iter_mut().enumerate().take(j).skip(i + 1) {
                if !*dead && path.is_prefix_of(self.entries[k].op.target()) {
                    *dead = true;
                    stats.annihilated += 1;
                }
            }
        }

        if stats.coalesced + stats.annihilated > 0 {
            let mut keep = Vec::with_capacity(n - stats.coalesced - stats.annihilated);
            for (i, e) in self.entries.drain(..).enumerate() {
                if !drop[i] {
                    keep.push(e);
                }
            }
            self.entries = keep;
        }
        stats
    }
}

/// True if any step of `p` is keyed on attribute `attr`.
fn path_keys_on(p: &NodePath, attr: &str) -> bool {
    p.steps.iter().any(|s| s.key.as_ref().is_some_and(|(a, _)| a == attr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::Element;

    fn aid() -> ActorId {
        ActorId::intern("phone")
    }

    fn op(text: &str) -> EditOp {
        EditOp::SetText { path: NodePath::root().child("presence", 0), text: text.into() }
    }

    fn op_at(path: NodePath, text: &str) -> EditOp {
        EditOp::SetText { path, text: text.into() }
    }

    fn keys() -> MergeKeys {
        MergeKeys::new().with_key("item", "id")
    }

    #[test]
    fn append_and_since() {
        let mut log = ChangeLog::new();
        assert_eq!(log.append(op("a"), aid(), 1), 1);
        assert_eq!(log.append(op("b"), aid(), 2), 2);
        assert_eq!(log.append(op("c"), aid(), 3), 3);
        assert_eq!(log.head(), 3);
        assert_eq!(log.since(0).len(), 3);
        assert_eq!(log.since(2).len(), 1);
        assert_eq!(log.since(2)[0].seq, 3);
        assert!(log.since(3).is_empty());
        assert!(log.since(99).is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut log = ChangeLog::new();
        log.append(op("a"), aid(), 1);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.head(), 0);
        // Sequence numbers restart after a new baseline.
        assert_eq!(log.append(op("b"), aid(), 2), 1);
    }

    #[test]
    fn truncate_through_keeps_numbering() {
        let mut log = ChangeLog::new();
        for i in 0..5 {
            log.append(op(&format!("v{i}")), aid(), i + 1);
        }
        assert_eq!(log.truncate_through(3), 3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.head(), 5);
        // Remaining seqs are untouched and since() still lines up.
        assert_eq!(log.since(3).len(), 2);
        assert_eq!(log.since(3)[0].seq, 4);
        assert_eq!(log.since(4).len(), 1);
        // Appends continue the original numbering.
        assert_eq!(log.append(op("f"), aid(), 9), 6);
        assert_eq!(log.truncate_through(0), 0);
    }

    #[test]
    fn since_handles_sparse_seqs() {
        let mut log = ChangeLog::new();
        let p1 = NodePath::root().child("a", 0);
        let p2 = NodePath::root().child("b", 0);
        log.append(op_at(p1.clone(), "1"), aid(), 1); // seq 1
        log.append(op_at(p2.clone(), "2"), aid(), 2); // seq 2
        log.append(op_at(p1.clone(), "3"), aid(), 3); // seq 3 supersedes 1
        log.compact(&[0], &keys());
        // seq 1 coalesced away: the log holds seqs {2, 3}.
        assert_eq!(log.len(), 2);
        assert_eq!(log.since(0).len(), 2);
        assert_eq!(log.since(1).len(), 2);
        assert_eq!(log.since(2).len(), 1);
        assert_eq!(log.since(2)[0].seq, 3);
        assert!(log.since(3).is_empty());
    }

    #[test]
    fn compact_truncates_below_every_anchor() {
        let mut log = ChangeLog::new();
        for i in 0..6 {
            // Distinct paths so coalescing can't interfere.
            log.append(op_at(NodePath::root().child(format!("f{i}"), 0), "x"), aid(), i + 1);
        }
        let stats = log.compact(&[3, 5], &keys());
        assert_eq!(stats.truncated, 3);
        assert_eq!(log.len(), 3);
        // Both live anchors still get exactly their suffixes.
        assert_eq!(log.since(3).len(), 3);
        assert_eq!(log.since(5).len(), 1);
    }

    #[test]
    fn compact_coalesces_last_settext() {
        let mut log = ChangeLog::new();
        let p = NodePath::root().child("presence", 0);
        log.append(op_at(p.clone(), "online"), aid(), 1);
        log.append(op_at(p.clone(), "away"), aid(), 2);
        log.append(op_at(p.clone(), "offline"), aid(), 3);
        let stats = log.compact(&[0], &keys());
        assert_eq!(stats.coalesced, 2);
        assert_eq!(log.len(), 1);
        let last = &log.since(0)[0];
        assert_eq!(last.seq, 3);
        assert!(matches!(&last.op, EditOp::SetText { text, .. } if text == "offline"));
    }

    #[test]
    fn compact_annihilates_insert_delete_pairs() {
        let mut log = ChangeLog::new();
        let item = NodePath::root().keyed("item", "id", "9");
        log.append(
            EditOp::Insert {
                parent: NodePath::root(),
                element: Element::new("item").with_attr("id", "9"),
            },
            aid(),
            1,
        );
        // Edit inside the doomed subtree dies with it.
        log.append(op_at(item.clone().child("name", 0), "Tmp"), aid(), 2);
        log.append(EditOp::Delete { path: item }, aid(), 3);
        // Unrelated survivor.
        log.append(op_at(NodePath::root().child("presence", 0), "on"), aid(), 4);
        let stats = log.compact(&[0], &keys());
        assert_eq!(stats.annihilated, 3);
        assert_eq!(log.len(), 1);
        assert_eq!(log.since(0)[0].seq, 4);
    }

    #[test]
    fn annihilation_respects_anchors_between_the_pair() {
        let mut log = ChangeLog::new();
        let item = NodePath::root().keyed("item", "id", "9");
        log.append(
            EditOp::Insert {
                parent: NodePath::root(),
                element: Element::new("item").with_attr("id", "9"),
            },
            aid(),
            1,
        );
        log.append(EditOp::Delete { path: item }, aid(), 2);
        // A live peer anchored at 1 holds the insert and still needs
        // the delete — the pair must survive.
        let stats = log.compact(&[1], &keys());
        assert_eq!(stats.annihilated, 0);
        assert_eq!(log.since(1).len(), 1);
    }

    #[test]
    fn setattr_keeps_writes_a_keyed_step_depends_on() {
        let mut log = ChangeLog::new();
        let p = NodePath::root().child("item", 0);
        log.append(
            EditOp::SetAttr { path: p.clone(), name: "id".into(), value: "5".into() },
            aid(),
            1,
        );
        // This entry resolves through item[@id='5'] — it needs the
        // intermediate attribute value during replay.
        log.append(op_at(NodePath::root().keyed("item", "id", "5").child("n", 0), "x"), aid(), 2);
        log.append(
            EditOp::SetAttr { path: p.clone(), name: "id".into(), value: "6".into() },
            aid(),
            3,
        );
        let stats = log.compact(&[0], &keys());
        assert_eq!(stats.coalesced, 0);
        assert_eq!(log.len(), 3);

        // Without the dependent entry, the earlier write coalesces.
        let mut log = ChangeLog::new();
        log.append(
            EditOp::SetAttr { path: p.clone(), name: "id".into(), value: "5".into() },
            aid(),
            1,
        );
        log.append(EditOp::SetAttr { path: p, name: "id".into(), value: "6".into() }, aid(), 2);
        assert_eq!(log.compact(&[0], &keys()).coalesced, 1);
    }
}
