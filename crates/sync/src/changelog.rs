//! Per-replica change logs.

use gupster_xml::EditOp;

/// One logged edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Sequence number within this replica's log (1-based, dense).
    pub seq: u64,
    /// The edit.
    pub op: EditOp,
    /// Who made it (a replica/site id).
    pub actor: String,
    /// Logical timestamp (Lamport-style: max(local, seen) + 1).
    pub timestamp: u64,
}

/// An append-only log of edits to one replica.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    entries: Vec<LogEntry>,
}

impl ChangeLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an edit; returns its sequence number.
    pub fn append(&mut self, op: EditOp, actor: &str, timestamp: u64) -> u64 {
        let seq = self.entries.len() as u64 + 1;
        self.entries.push(LogEntry { seq, op, actor: actor.to_string(), timestamp });
        seq
    }

    /// Entries with `seq > after` (i.e. everything the peer hasn't seen).
    pub fn since(&self, after: u64) -> &[LogEntry] {
        let start = (after as usize).min(self.entries.len());
        &self.entries[start..]
    }

    /// Highest sequence number (0 when empty).
    pub fn head(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Truncates the log, keeping only entries after `seq` baseline
    /// zero — used after a slow sync establishes a fresh baseline.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::NodePath;

    fn op(text: &str) -> EditOp {
        EditOp::SetText { path: NodePath::root().child("presence", 0), text: text.into() }
    }

    #[test]
    fn append_and_since() {
        let mut log = ChangeLog::new();
        assert_eq!(log.append(op("a"), "phone", 1), 1);
        assert_eq!(log.append(op("b"), "phone", 2), 2);
        assert_eq!(log.append(op("c"), "phone", 3), 3);
        assert_eq!(log.head(), 3);
        assert_eq!(log.since(0).len(), 3);
        assert_eq!(log.since(2).len(), 1);
        assert_eq!(log.since(2)[0].seq, 3);
        assert!(log.since(3).is_empty());
        assert!(log.since(99).is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut log = ChangeLog::new();
        log.append(op("a"), "x", 1);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.head(), 0);
        // Sequence numbers restart after a new baseline.
        assert_eq!(log.append(op("b"), "x", 2), 1);
    }
}
