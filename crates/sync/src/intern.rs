//! Process-wide interning of actor ids and node paths.
//!
//! PR 4 interned XPath segments (`gupster-xpath`'s `PathInterner`) and
//! PR 7 interned XML names (`gupster-xml`'s `NameInterner`). The sync
//! write path extends the same idiom to its own two hot vocabularies:
//!
//! * **actor ids** ([`ActorId`]) — every log entry and every element of
//!   a replica's dedup set carries the actor that made the edit. A
//!   fleet has a handful of sites; cloning a `String` per append (and
//!   per `seen` probe) is pure waste. Interning makes a log entry's
//!   actor a 4-byte copyable id and the dedup set a `(u32, u64)` set.
//! * **node paths** ([`PathId`]) — compaction groups a log's entries by
//!   touched [`NodePath`], and delta encoding ships each distinct path
//!   once per session. Both want a cheap, hashable path handle.
//!
//! Interned values are leaked into `'static` storage so `resolve` hands
//! back a reference without cloning or holding the table lock across
//! the caller's use. Site ids and profile paths are schema/deployment
//! bounded, so the leak is a small, bounded arena.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

use gupster_xml::NodePath;

/// An interned actor (site) id. Two `ActorId`s are equal iff the ids
/// they were interned from are equal, so dedup-set probes and LWW
/// tie-breaks compare integers, not strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

#[derive(Default)]
struct ActorTable {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn actors() -> &'static RwLock<ActorTable> {
    static GLOBAL: OnceLock<RwLock<ActorTable>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(ActorTable::default()))
}

impl ActorId {
    /// Interns `s`, returning its stable [`ActorId`]. Idempotent.
    pub fn intern(s: &str) -> ActorId {
        if let Some(id) = Self::lookup(s) {
            return id;
        }
        let mut g = actors().write().expect("actor interner lock");
        if let Some(&id) = g.map.get(s) {
            return ActorId(id);
        }
        let id = g.names.len() as u32;
        let stored: &'static str = Box::leak(s.to_string().into_boxed_str());
        g.names.push(stored);
        g.map.insert(stored, id);
        ActorId(id)
    }

    /// The [`ActorId`] of `s` if it was ever interned.
    pub fn lookup(s: &str) -> Option<ActorId> {
        actors().read().expect("actor interner lock").map.get(s).copied().map(ActorId)
    }

    /// The actor id string this [`ActorId`] was interned from.
    pub fn as_str(self) -> &'static str {
        actors().read().expect("actor interner lock").names[self.0 as usize]
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An interned [`NodePath`]. Equality of ids is equality of paths, so
/// compaction's per-path grouping and the delta codec's dictionary both
/// hash a `u32` instead of a step vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

#[derive(Default)]
struct PathTable {
    map: HashMap<&'static NodePath, u32>,
    paths: Vec<&'static NodePath>,
}

fn paths() -> &'static RwLock<PathTable> {
    static GLOBAL: OnceLock<RwLock<PathTable>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(PathTable::default()))
}

impl PathId {
    /// Interns `p`, returning its stable [`PathId`]. Idempotent.
    pub fn intern(p: &NodePath) -> PathId {
        {
            let g = paths().read().expect("path interner lock");
            if let Some(&id) = g.map.get(p) {
                return PathId(id);
            }
        }
        let mut g = paths().write().expect("path interner lock");
        if let Some(&id) = g.map.get(p) {
            return PathId(id);
        }
        let id = g.paths.len() as u32;
        let stored: &'static NodePath = Box::leak(Box::new(p.clone()));
        g.paths.push(stored);
        g.map.insert(stored, id);
        PathId(id)
    }

    /// The path this [`PathId`] was interned from.
    pub fn resolve(self) -> &'static NodePath {
        paths().read().expect("path interner lock").paths[self.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_interning_is_stable() {
        let a = ActorId::intern("phone");
        let b = ActorId::intern("phone");
        let c = ActorId::intern("sync-intern-test-distinct");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "phone");
        assert_eq!(ActorId::lookup("phone"), Some(a));
        assert_eq!(a.to_string(), "phone");
    }

    #[test]
    fn path_interning_is_stable() {
        let p = NodePath::root().keyed("item", "id", "7").child("name", 0);
        let q = NodePath::root().keyed("item", "id", "8");
        let a = PathId::intern(&p);
        let b = PathId::intern(&p);
        let c = PathId::intern(&q);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.resolve(), &p);
        assert_eq!(c.resolve(), &q);
    }
}
