//! Multi-replica synchronization: Alice's phone, PDA and the portal's
//! primary copy (Req. 4: "telephone book may be stored in the end-user's
//! phone, with a 'primary' copy held by an internet portal"; GUP's
//! terminal management includes "between terminals (e.g., phone ↔
//! laptop)"). The portal is the hub of a star: devices sync with it, not
//! with each other.

use gupster_sync::{two_way_sync, ReconcilePolicy, Replica, SyncReport};
use gupster_xml::{parse, EditOp, Element, MergeKeys, NodePath};

fn keys() -> MergeKeys {
    MergeKeys::new().with_key("item", "id")
}

fn base() -> Element {
    parse(
        r#"<address-book><item id="1"><name>Mom</name></item><item id="2"><name>Rick</name></item></address-book>"#,
    )
    .unwrap()
}

fn insert(id: &str, name: &str) -> EditOp {
    EditOp::Insert {
        parent: NodePath::root(),
        element: Element::new("item")
            .with_attr("id", id)
            .with_child(Element::new("name").with_text(name)),
    }
}

fn rename(id: &str, name: &str) -> EditOp {
    EditOp::SetText {
        path: NodePath::root().keyed("item", "id", id).child("name", 0),
        text: name.into(),
    }
}

fn sync(a: &mut Replica, b: &mut Replica) -> SyncReport {
    two_way_sync(a, b, ReconcilePolicy::LastWriterWins).unwrap()
}

#[test]
fn star_propagates_edits_between_devices_via_portal() {
    let mut portal = Replica::new("portal", base(), keys());
    let mut phone = Replica::new("phone", base(), keys());
    let mut pda = Replica::new("pda", base(), keys());

    // Edit on the phone.
    phone.edit(insert("3", "Bob")).unwrap();
    // Phone syncs with the hub; PDA syncs afterwards.
    sync(&mut phone, &mut portal);
    let r = sync(&mut pda, &mut portal);
    assert!(r.converged);
    assert_eq!(pda.doc.children_named("item").count(), 3);
    assert_eq!(phone.doc, portal.doc);
    assert_eq!(pda.doc, portal.doc);
}

#[test]
fn concurrent_device_edits_converge_through_hub() {
    let mut portal = Replica::new("portal", base(), keys());
    let mut phone = Replica::new("phone", base(), keys());
    let mut pda = Replica::new("pda", base(), keys());
    // Prime anchors.
    sync(&mut phone, &mut portal);
    sync(&mut pda, &mut portal);

    // Disjoint concurrent edits on both devices.
    phone.edit(insert("10", "PhoneContact")).unwrap();
    pda.edit(insert("20", "PdaContact")).unwrap();
    pda.edit(rename("1", "Mother")).unwrap();

    // Two rounds of star sync reach global convergence.
    sync(&mut phone, &mut portal);
    sync(&mut pda, &mut portal);
    sync(&mut phone, &mut portal);
    assert_eq!(phone.doc, portal.doc);
    assert_eq!(pda.doc, portal.doc);
    assert_eq!(portal.doc.children_named("item").count(), 4);
    let mom = portal
        .doc
        .children_named("item")
        .into_iter()
        .find(|i| i.attr("id") == Some("1"))
        .unwrap()
        .child("name")
        .unwrap()
        .text();
    assert_eq!(mom, "Mother");
}

#[test]
fn conflicting_device_edits_resolve_consistently_everywhere() {
    let mut portal = Replica::new("portal", base(), keys());
    let mut phone = Replica::new("phone", base(), keys());
    let mut pda = Replica::new("pda", base(), keys());
    sync(&mut phone, &mut portal);
    sync(&mut pda, &mut portal);

    // Both devices rename the same contact concurrently.
    phone.edit(rename("1", "PhoneName")).unwrap();
    pda.edit(rename("1", "PdaName")).unwrap();
    pda.edit(rename("2", "bump")).unwrap(); // pda's clock runs ahead

    sync(&mut phone, &mut portal);
    sync(&mut pda, &mut portal);
    sync(&mut phone, &mut portal);

    // Everyone agrees on one winner.
    assert_eq!(phone.doc, portal.doc);
    assert_eq!(pda.doc, portal.doc);
    let name = portal
        .doc
        .children_named("item")
        .into_iter()
        .find(|i| i.attr("id") == Some("1"))
        .unwrap()
        .child("name")
        .unwrap()
        .text();
    assert!(name == "PhoneName" || name == "PdaName");
}

#[test]
fn device_restored_from_backup_slow_syncs_and_rejoins() {
    let mut portal = Replica::new("portal", base(), keys());
    let mut phone = Replica::new("phone", base(), keys());
    sync(&mut phone, &mut portal);
    portal.edit(insert("5", "New")).unwrap();
    sync(&mut phone, &mut portal);

    // The phone is wiped and restored from an old backup.
    let mut phone = Replica::new("phone", base(), keys());
    let r = sync(&mut phone, &mut portal);
    // Anchors are gone on the phone side but the portal remembers a
    // newer anchor for "phone" than the fresh log head → slow sync.
    assert!(r.slow_sync);
    assert!(r.converged);
    assert_eq!(phone.doc, portal.doc);
    assert_eq!(phone.doc.children_named("item").count(), 3);
}

#[test]
fn hub_sequences_many_devices() {
    let mut portal = Replica::new("portal", base(), keys());
    let mut devices: Vec<Replica> =
        (0..6).map(|i| Replica::new(format!("dev{i}").as_str(), base(), keys())).collect();
    for d in &mut devices {
        sync(d, &mut portal);
    }
    for (i, d) in devices.iter_mut().enumerate() {
        d.edit(insert(&format!("d{i}"), &format!("FromDevice{i}"))).unwrap();
    }
    // Two passes around the star.
    for _ in 0..2 {
        for d in &mut devices {
            sync(d, &mut portal);
        }
    }
    for d in &devices {
        assert_eq!(d.doc, portal.doc, "{} diverged", d.id);
    }
    assert_eq!(portal.doc.children_named("item").count(), 2 + devices.len());
}
