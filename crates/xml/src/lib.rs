//! # gupster-xml
//!
//! A from-scratch XML value model for GUPster, the user-profile meta-data
//! manager of *"Enter Once, Share Everywhere"* (CIDR 2003).
//!
//! The paper mandates XML as the common data model for profile components
//! (§4.4, §6): profile data is deeply nested, must be partially accessed
//! and updated, and components fetched from different data stores must be
//! **merged** on the way back to the client (Figs. 8 & 9). This crate
//! provides:
//!
//! * an owned tree value model ([`Element`], [`Node`]),
//! * an XML 1.0 subset parser ([`parse`]),
//! * a serializer with compact and pretty modes ([`Element::to_xml`],
//!   [`Element::to_pretty_xml`]),
//! * **deep-union merge** in the style of Buneman et al.'s deterministic
//!   model for semistructured data ([`merge`]),
//! * a structural diff used by the synchronization subsystem ([`diff`]),
//! * the **zero-copy hot path** (DESIGN.md §10): arena documents with
//!   interned names and value slices over the retained input
//!   ([`ArenaDoc`]), and structural-sharing merge that grafts unchanged
//!   subtrees instead of cloning them ([`merge_arena`], [`MergeOut`]).
//!   The owned tree is retained as the differential oracle — the arena
//!   path must stay byte-identical through parse/merge/serialize.
//!
//! No external XML crate is used: the data model *is* part of the system
//! being reproduced.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod arena;
mod arena_apply;
mod arena_merge;
mod error;
mod escape;
mod intern;
mod merge;
mod node;
mod parser;
mod path;
mod tree_diff;
mod writer;

pub use arena::{ArenaChild, ArenaDoc, NodeId};
pub use arena_apply::{apply_arena, resolve_arena};
pub use arena_merge::{merge_arena, merge_arena_all, MergeOut, MergeStats};
pub use error::{ParseError, XmlError};
pub use intern::{NameId, NameInterner};
pub use merge::{merge, merge_all, MergeKeys};
pub use node::{Element, Node};
pub use parser::parse;
pub use path::{NodePath, Step};
pub use tree_diff::{diff, EditOp};
