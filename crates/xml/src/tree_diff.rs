//! Structural diff between two profile trees.
//!
//! The synchronization subsystem (Req. 6/7 of the paper) ships *changes*,
//! not whole documents, between replicas. [`diff`] computes a minimal-ish
//! edit script of [`EditOp`]s that transforms tree `a` into tree `b`;
//! [`EditOp::apply`] replays one op. Keyed children (per [`MergeKeys`])
//! are matched by identity so that reordering an address book does not
//! produce spurious inserts/deletes.

use std::collections::HashMap;

use crate::error::XmlError;
use crate::merge::MergeKeys;
use crate::node::Element;
use crate::path::{NodePath, Step};

/// One edit operation against a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Insert `element` as a child of the element at `parent`.
    Insert {
        /// Path of the parent under which to insert.
        parent: NodePath,
        /// The subtree to insert.
        element: Element,
    },
    /// Remove the element at `path`.
    Delete {
        /// Path of the element to remove.
        path: NodePath,
    },
    /// Replace the direct text content of the element at `path`.
    SetText {
        /// Path of the element whose text changes.
        path: NodePath,
        /// New text value.
        text: String,
    },
    /// Set (or add) an attribute on the element at `path`.
    SetAttr {
        /// Path of the element whose attribute changes.
        path: NodePath,
        /// Attribute name.
        name: String,
        /// New attribute value.
        value: String,
    },
    /// Remove an attribute from the element at `path`.
    RemoveAttr {
        /// Path of the element whose attribute is removed.
        path: NodePath,
        /// Attribute name.
        name: String,
    },
}

impl EditOp {
    /// The path this operation touches (the parent path for inserts).
    pub fn target(&self) -> &NodePath {
        match self {
            EditOp::Insert { parent, .. } => parent,
            EditOp::Delete { path }
            | EditOp::SetText { path, .. }
            | EditOp::SetAttr { path, .. }
            | EditOp::RemoveAttr { path, .. } => path,
        }
    }

    /// Applies this operation to `root`.
    pub fn apply(&self, root: &mut Element) -> Result<(), XmlError> {
        match self {
            EditOp::Insert { parent, element } => {
                let p = parent
                    .resolve_mut(root)
                    .ok_or_else(|| XmlError::PathNotFound(parent.to_string()))?;
                p.push_child(element.clone());
                Ok(())
            }
            EditOp::Delete { path } => path.remove(root).map(|_| ()),
            EditOp::SetText { path, text } => {
                let e = path
                    .resolve_mut(root)
                    .ok_or_else(|| XmlError::PathNotFound(path.to_string()))?;
                e.set_text(text.clone());
                Ok(())
            }
            EditOp::SetAttr { path, name, value } => {
                let e = path
                    .resolve_mut(root)
                    .ok_or_else(|| XmlError::PathNotFound(path.to_string()))?;
                e.set_attr(name.clone(), value.clone());
                Ok(())
            }
            EditOp::RemoveAttr { path, name } => {
                let e = path
                    .resolve_mut(root)
                    .ok_or_else(|| XmlError::PathNotFound(path.to_string()))?;
                e.remove_attr(name);
                Ok(())
            }
        }
    }

    /// True if two operations touch overlapping paths (one a prefix of
    /// the other) — the conflict test used by sync reconciliation.
    pub fn overlaps(&self, other: &EditOp) -> bool {
        let (a, b) = (self.target(), other.target());
        a.is_prefix_of(b) || b.is_prefix_of(a)
    }
}

/// Computes an edit script turning `a` into `b`.
///
/// Both roots must share a tag name (else a single whole-tree replace is
/// meaningless; callers diff per component). Keyed children are matched
/// by identity, unkeyed children by exact equality.
pub fn diff(a: &Element, b: &Element, keys: &MergeKeys) -> Vec<EditOp> {
    let mut ops = Vec::new();
    diff_into(a, b, keys, NodePath::root(), &mut ops);
    ops
}

fn key_of(e: &Element, keys: &MergeKeys) -> Option<(String, String)> {
    // Mirror MergeKeys::identity: explicit key first, then defaults.
    if let Some(attr) = keys.explicit_key(&e.name) {
        return e.attr(&attr).map(|v| (attr, v.to_string()));
    }
    if keys.use_default_keys {
        for attr in ["id", "name", "type"] {
            if let Some(v) = e.attr(attr) {
                return Some((attr.to_string(), v.to_string()));
            }
        }
    }
    None
}

fn diff_into(a: &Element, b: &Element, keys: &MergeKeys, at: NodePath, ops: &mut Vec<EditOp>) {
    // Attributes.
    for (n, v) in &b.attrs {
        if a.attr(n) != Some(v.as_str()) {
            ops.push(EditOp::SetAttr { path: at.clone(), name: n.clone(), value: v.clone() });
        }
    }
    for (n, _) in &a.attrs {
        if b.attr(n).is_none() {
            ops.push(EditOp::RemoveAttr { path: at.clone(), name: n.clone() });
        }
    }

    // Text.
    let (ta, tb) = (a.text(), b.text());
    if ta.trim() != tb.trim() && !(ta.trim().is_empty() && tb.trim().is_empty()) {
        ops.push(EditOp::SetText { path: at.clone(), text: tb.into_owned() });
    }

    // Children: match keyed by identity, unkeyed by equality.
    #[derive(Default)]
    struct SideIndex<'e> {
        keyed: HashMap<(String, String, String), &'e Element>,
        unkeyed: Vec<&'e Element>,
    }
    fn index<'e>(e: &'e Element, keys: &MergeKeys) -> SideIndex<'e> {
        let mut ix = SideIndex::default();
        for ch in e.child_elements() {
            match key_of(ch, keys) {
                Some((ka, kv)) => {
                    ix.keyed.insert((ch.name.clone(), ka, kv), ch);
                }
                None => ix.unkeyed.push(ch),
            }
        }
        ix
    }

    let ia = index(a, keys);
    let ib = index(b, keys);

    // Keyed: present in both → recurse; only in a → delete; only in b → insert.
    for (k, ea) in &ia.keyed {
        let step = Step::keyed(k.0.clone(), k.1.clone(), k.2.clone());
        let mut child_path = at.clone();
        child_path.steps.push(step);
        match ib.keyed.get(k) {
            Some(eb) => diff_into(ea, eb, keys, child_path, ops),
            None => ops.push(EditOp::Delete { path: child_path }),
        }
    }
    for (k, eb) in &ib.keyed {
        if !ia.keyed.contains_key(k) {
            ops.push(EditOp::Insert { parent: at.clone(), element: (*eb).clone() });
        }
    }

    // Unkeyed children that occur exactly once per side under the same
    // tag are the same logical singleton field — recurse into them.
    // Everything else is a multiset difference by equality. Deletions are
    // emitted deepest-index-first so earlier removals don't shift later
    // occurrence indices.
    let count_tag = |side: &[&Element], tag: &str| side.iter().filter(|e| e.name == tag).count();
    let singleton = |tag: &str| count_tag(&ia.unkeyed, tag) == 1 && count_tag(&ib.unkeyed, tag) == 1;

    for ea in &ia.unkeyed {
        if singleton(&ea.name) {
            let eb = ib.unkeyed.iter().find(|e| e.name == ea.name).expect("counted");
            let mut child_path = at.clone();
            child_path.steps.push(Step::indexed(ea.name.clone(), 0));
            diff_into(ea, eb, keys, child_path, ops);
        }
    }

    let mut b_remaining: Vec<&Element> =
        ib.unkeyed.iter().copied().filter(|e| !singleton(&e.name)).collect();
    let mut deletions: Vec<NodePath> = Vec::new();
    let mut occurrence: HashMap<&str, usize> = HashMap::new();
    for ea in &ia.unkeyed {
        let occ = occurrence.entry(ea.name.as_str()).or_insert(0);
        let this_occ = *occ;
        *occ += 1;
        if singleton(&ea.name) {
            continue;
        }
        if let Some(pos) = b_remaining.iter().position(|eb| *eb == *ea) {
            b_remaining.remove(pos);
        } else {
            let mut p = at.clone();
            p.steps.push(Step::indexed(ea.name.clone(), this_occ));
            deletions.push(p);
        }
    }
    // Reverse so higher occurrence indices are removed first.
    for p in deletions.into_iter().rev() {
        ops.push(EditOp::Delete { path: p });
    }
    for eb in b_remaining {
        ops.push(EditOp::Insert { parent: at.clone(), element: eb.clone() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn keys() -> MergeKeys {
        MergeKeys::new().with_key("item", "id")
    }

    fn apply_all(mut tree: Element, ops: &[EditOp]) -> Element {
        for op in ops {
            op.apply(&mut tree).unwrap_or_else(|e| panic!("apply {op:?}: {e}"));
        }
        tree
    }

    #[test]
    fn identical_trees_empty_diff() {
        let a = parse(r#"<b><item id="1"><n>Bob</n></item></b>"#).unwrap();
        assert!(diff(&a, &a, &keys()).is_empty());
    }

    #[test]
    fn text_change() {
        let a = parse(r#"<b><item id="1"><n>Bob</n></item></b>"#).unwrap();
        let b = parse(r#"<b><item id="1"><n>Robert</n></item></b>"#).unwrap();
        let ops = diff(&a, &b, &keys());
        assert_eq!(ops.len(), 1);
        assert_eq!(apply_all(a, &ops), b);
    }

    #[test]
    fn keyed_insert_delete() {
        let a = parse(r#"<b><item id="1"/><item id="2"/></b>"#).unwrap();
        let b = parse(r#"<b><item id="2"/><item id="3"/></b>"#).unwrap();
        let ops = diff(&a, &b, &keys());
        let got = apply_all(a, &ops);
        // Order-insensitive comparison of items.
        let mut gx: Vec<_> = got.children_named("item").map(|e| e.to_xml()).collect();
        let mut bx: Vec<_> = b.children_named("item").map(|e| e.to_xml()).collect();
        gx.sort();
        bx.sort();
        assert_eq!(gx, bx);
    }

    #[test]
    fn reorder_of_keyed_children_is_noop() {
        let a = parse(r#"<b><item id="1"><n>A</n></item><item id="2"><n>B</n></item></b>"#).unwrap();
        let b = parse(r#"<b><item id="2"><n>B</n></item><item id="1"><n>A</n></item></b>"#).unwrap();
        assert!(diff(&a, &b, &keys()).is_empty());
    }

    #[test]
    fn attribute_changes() {
        let a = parse(r#"<e x="1" y="2"/>"#).unwrap();
        let b = parse(r#"<e x="9" z="3"/>"#).unwrap();
        let ops = diff(&a, &b, &keys());
        assert_eq!(apply_all(a, &ops), b);
    }

    #[test]
    fn unkeyed_multiset_diff_applies() {
        let a = parse(r#"<l><v>1</v><v>2</v><v>2</v></l>"#).unwrap();
        let b = parse(r#"<l><v>2</v><v>3</v></l>"#).unwrap();
        let ops = diff(&a, &b, &MergeKeys::new());
        let got = apply_all(a, &ops);
        let mut gx: Vec<_> = got.children_named("v").map(|e| e.text()).collect();
        let mut bx: Vec<_> = b.children_named("v").map(|e| e.text()).collect();
        gx.sort();
        bx.sort();
        assert_eq!(gx, bx);
    }

    #[test]
    fn nested_recursion() {
        let a = parse(r#"<b><item id="1"><phones><v>111</v></phones></item></b>"#).unwrap();
        let b = parse(r#"<b><item id="1"><phones><v>111</v><v>222</v></phones></item></b>"#).unwrap();
        let ops = diff(&a, &b, &keys());
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], EditOp::Insert { .. }));
        assert_eq!(apply_all(a, &ops), b);
    }

    #[test]
    fn overlap_detection() {
        let p1 = EditOp::SetText {
            path: NodePath::root().keyed("item", "id", "1"),
            text: "x".into(),
        };
        let p2 = EditOp::Delete { path: NodePath::root().keyed("item", "id", "1").child("n", 0) };
        let p3 = EditOp::Delete { path: NodePath::root().keyed("item", "id", "2") };
        assert!(p1.overlaps(&p2));
        assert!(!p1.overlaps(&p3));
    }

    #[test]
    fn apply_to_missing_path_errors() {
        let mut t = parse("<a/>").unwrap();
        let op = EditOp::SetText { path: NodePath::root().child("x", 0), text: "v".into() };
        assert!(op.apply(&mut t).is_err());
    }
}
