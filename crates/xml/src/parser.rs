//! A recursive-descent parser for the XML 1.0 subset GUPster exchanges.
//!
//! Supported: elements, attributes (single- or double-quoted), character
//! data with the five predefined entities plus numeric references, CDATA
//! sections, comments, an optional XML declaration and processing
//! instructions (both skipped). Not supported (rejected or ignored by
//! design): DTDs, namespaces, entity definitions.

use crate::error::ParseError;
use crate::escape::resolve_entity;
use crate::node::{Element, Node};

/// Parses a complete XML document and returns its root element.
///
/// Whitespace-only text between elements is preserved inside mixed
/// content but dropped when an element contains only element children —
/// "pretty printed" profile documents round-trip to the same value.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos < p.input.len() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, self.input, msg)
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, comments, PIs and whitespace before the
    /// document element.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err("DTDs are not supported"));
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments/PIs/whitespace after the document element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_comment().is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_pi().is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.starts_with("<?"));
        match self.rest().find("?>") {
            Some(end) => {
                self.bump(end + 2);
                Ok(())
            }
            None => Err(self.err("unterminated processing instruction")),
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.starts_with("<!--"));
        match self.rest()[4..].find("-->") {
            Some(end) => {
                self.bump(4 + end + 3);
                Ok(())
            }
            None => Err(self.err("unterminated comment")),
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.pos >= bytes.len() || !is_name_start(bytes[self.pos]) {
            return Err(self.err("expected a name"));
        }
        while self.pos < bytes.len() && is_name_char(bytes[self.pos]) {
            self.pos += 1;
        }
        Ok(&self.input[start..self.pos])
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.bump(1);
        let name = self.parse_name()?.to_owned();
        let mut elem = Element::new(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(self.err("expected '/>'"));
                    }
                    self.bump(2);
                    return Ok(elem);
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let (an, av) = self.parse_attribute()?;
                    if elem.attr(&an).is_some() {
                        return Err(self.err(format!("duplicate attribute '{an}'")));
                    }
                    elem.attrs.push((an, av));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        self.parse_content(&mut elem)?;

        // Closing tag: parse_content stops right before "</".
        self.bump(2);
        let close = self.parse_name()?;
        if close != elem.name {
            return Err(self.err(format!(
                "mismatched closing tag: expected </{}>, found </{close}>",
                elem.name
            )));
        }
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(self.err("expected '>' to end closing tag"));
        }
        self.bump(1);
        normalize_whitespace(&mut elem);
        Ok(elem)
    }

    fn parse_attribute(&mut self) -> Result<(String, String), ParseError> {
        let name = self.parse_name()?.to_owned();
        self.skip_ws();
        if self.peek() != Some(b'=') {
            return Err(self.err("expected '=' after attribute name"));
        }
        self.bump(1);
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump(1);
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.bump(1);
                    return Ok((name, value));
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => {
                    self.bump(1);
                    match resolve_entity(self.rest()) {
                        Some((c, n)) => {
                            value.push(c);
                            self.bump(n);
                        }
                        None => return Err(self.err("malformed entity reference")),
                    }
                }
                Some(_) => {
                    let c = self.rest().chars().next().expect("peeked");
                    value.push(c);
                    self.bump(c.len_utf8());
                }
            }
        }
    }

    fn parse_content(&mut self, elem: &mut Element) -> Result<(), ParseError> {
        let mut text = String::new();
        loop {
            if self.starts_with("</") {
                flush_text(&mut text, elem);
                return Ok(());
            }
            match self.peek() {
                None => return Err(self.err(format!("unclosed element <{}>", elem.name))),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        self.bump(9);
                        match self.rest().find("]]>") {
                            Some(end) => {
                                text.push_str(&self.rest()[..end]);
                                self.bump(end + 3);
                            }
                            None => return Err(self.err("unterminated CDATA section")),
                        }
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else {
                        flush_text(&mut text, elem);
                        let child = self.parse_element()?;
                        elem.children.push(Node::Element(child));
                    }
                }
                Some(b'&') => {
                    self.bump(1);
                    match resolve_entity(self.rest()) {
                        Some((c, n)) => {
                            text.push(c);
                            self.bump(n);
                        }
                        None => return Err(self.err("malformed entity reference")),
                    }
                }
                Some(_) => {
                    let c = self.rest().chars().next().expect("peeked");
                    text.push(c);
                    self.bump(c.len_utf8());
                }
            }
        }
    }
}

fn flush_text(text: &mut String, elem: &mut Element) {
    if !text.is_empty() {
        elem.children.push(Node::Text(std::mem::take(text)));
    }
}

/// Drops whitespace-only text children from elements that also contain
/// element children ("element content" indentation); an element whose
/// only children are whitespace text keeps them (it is genuine data).
fn normalize_whitespace(elem: &mut Element) {
    let has_elem = elem.children.iter().any(|c| matches!(c, Node::Element(_)));
    if has_elem {
        elem.children.retain(|c| match c {
            Node::Text(t) => !t.chars().all(char::is_whitespace),
            Node::Element(_) => true,
        });
    }
}

pub(crate) fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

pub(crate) fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.' || b == b':'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.children.is_empty());
    }

    #[test]
    fn declaration_and_comments() {
        let e = parse("<?xml version=\"1.0\"?>\n<!-- hi -->\n<a><!-- in --><b/></a>\n<!-- post -->").unwrap();
        assert_eq!(e.child_elements().count(), 1);
    }

    #[test]
    fn attributes_both_quotes() {
        let e = parse(r#"<a x="1" y='2 "quoted"'/>"#).unwrap();
        assert_eq!(e.attr("x"), Some("1"));
        assert_eq!(e.attr("y"), Some(r#"2 "quoted""#));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let e = parse(r#"<a k="&lt;&amp;&gt;">&#65;&amp;B</a>"#).unwrap();
        assert_eq!(e.attr("k"), Some("<&>"));
        assert_eq!(e.text(), "A&B");
    }

    #[test]
    fn cdata() {
        let e = parse("<a><![CDATA[<raw> & stuff]]></a>").unwrap();
        assert_eq!(e.text(), "<raw> & stuff");
    }

    #[test]
    fn mixed_content_preserved() {
        let e = parse("<p>hello <b>world</b>!</p>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert_eq!(e.deep_text(), "hello world!");
    }

    #[test]
    fn pretty_printed_indentation_dropped() {
        let e = parse("<a>\n  <b>x</b>\n  <c/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 2);
    }

    #[test]
    fn whitespace_only_leaf_text_kept() {
        let e = parse("<a>   </a>").unwrap();
        assert_eq!(e.text(), "   ");
    }

    #[test]
    fn mismatched_close_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn unclosed_rejected() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn doctype_rejected() {
        assert!(parse("<!DOCTYPE html><a/>").is_err());
    }

    #[test]
    fn error_position_reported() {
        let err = parse("<a>\n<b x=></b></a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn utf8_names_and_text() {
        let e = parse("<café note=\"déjà\">vü</café>").unwrap();
        assert_eq!(e.name, "café");
        assert_eq!(e.attr("note"), Some("déjà"));
        assert_eq!(e.text(), "vü");
    }

    #[test]
    fn roundtrip_compact() {
        let src = r#"<user id="arnaud"><address-book><item type="personal"><name>Bob &amp; Carol</name></item></address-book></user>"#;
        let e = parse(src).unwrap();
        assert_eq!(e.to_xml(), src);
        assert_eq!(parse(&e.to_pretty_xml()).unwrap(), e);
    }
}
