//! Process-wide interning of element and attribute names.
//!
//! PR 4 interned XPath *segments* ([`gupster-xpath`]'s `PathInterner`)
//! so the coverage trie and rule index compare integers instead of
//! strings. The arena document representation ([`crate::ArenaDoc`])
//! extends the same pattern down to the XML layer: every element and
//! attribute name is interned once into a [`NameInterner`], and arena
//! nodes carry a 4-byte [`NameId`] instead of an owned `String`.
//!
//! Interned strings are leaked into `'static` storage so
//! [`NameInterner::resolve`] can hand back a `&'static str` without
//! taking an allocation or holding the table lock across the caller's
//! use. Profile vocabularies are schema-bounded (tag and attribute
//! names, not values), so the leak is a small, bounded arena — values
//! are never interned.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned element/attribute name. Two `NameId`s are equal iff the
/// names they were interned from are equal, so tag comparison on the
/// merge hot path is `u32` equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// The process-wide name interner. All methods are associated
/// functions over a global table behind an `RwLock`: interning (rare —
/// first sight of a schema name) takes the write lock; `lookup` and
/// `resolve` on the hot path take the read lock only, and `resolve`
/// returns `&'static str` so no clone escapes the lock.
#[derive(Debug, Default)]
pub struct NameInterner {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn global() -> &'static RwLock<NameInterner> {
    static GLOBAL: OnceLock<RwLock<NameInterner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(NameInterner::default()))
}

impl NameInterner {
    /// Interns `s`, returning its stable [`NameId`]. Idempotent.
    pub fn intern(s: &str) -> NameId {
        if let Some(id) = Self::lookup(s) {
            return id;
        }
        let mut g = global().write().expect("name interner lock");
        if let Some(&id) = g.map.get(s) {
            return NameId(id);
        }
        let id = g.names.len() as u32;
        let stored: &'static str = Box::leak(s.to_string().into_boxed_str());
        g.names.push(stored);
        g.map.insert(stored, id);
        NameId(id)
    }

    /// The [`NameId`] of `s` if it was ever interned. Read-lock only —
    /// an attribute name that was never interned cannot appear on any
    /// arena node.
    pub fn lookup(s: &str) -> Option<NameId> {
        global().read().expect("name interner lock").map.get(s).copied().map(NameId)
    }

    /// The name a [`NameId`] was interned from.
    pub fn resolve(id: NameId) -> &'static str {
        global().read().expect("name interner lock").names[id.0 as usize]
    }

    /// Number of distinct names interned so far.
    pub fn len() -> usize {
        global().read().expect("name interner lock").names.len()
    }
}

impl fmt::Display for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(NameInterner::resolve(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_comparable() {
        let a = NameInterner::intern("address-book");
        let b = NameInterner::intern("address-book");
        let c = NameInterner::intern("name-intern-test-distinct");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(NameInterner::resolve(a), "address-book");
        assert_eq!(NameInterner::lookup("address-book"), Some(a));
        assert_eq!(a.to_string(), "address-book");
        assert!(NameInterner::len() >= 2);
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        let before = NameInterner::len();
        assert_eq!(NameInterner::lookup("never-interned-name-xyzzy"), None);
        assert_eq!(NameInterner::len(), before);
    }

    #[test]
    fn resolve_is_static_and_lock_free_to_hold() {
        let id = NameInterner::intern("held-across-interning");
        let held: &'static str = NameInterner::resolve(id);
        // Interning more names must not invalidate the held reference.
        for i in 0..64 {
            NameInterner::intern(&format!("churn-{i}"));
        }
        assert_eq!(held, "held-across-interning");
    }
}
