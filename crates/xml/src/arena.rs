//! Arena XML documents: the zero-copy hot-path representation.
//!
//! The owned [`Element`] tree allocates a `String` for every tag name,
//! attribute and text run, and a `Vec` for every child list — at
//! millions of fetches that is the dominant cost of the read path once
//! lookups are indexed (DESIGN.md §10). An [`ArenaDoc`] stores the
//! same document as flat `Vec`s addressed by [`NodeId`]:
//!
//! * element and attribute **names** are interned through
//!   [`NameInterner`] and stored as 4-byte [`NameId`]s;
//! * **text and attribute values** are byte-range slices over the
//!   retained input buffer — parsing copies character data only when
//!   the source bytes are not literal (entity references, CDATA, or a
//!   text run interrupted by a comment);
//! * **child lists and attribute lists** are contiguous ranges in two
//!   shared vectors, so a document is five allocations regardless of
//!   node count.
//!
//! The owned tree remains the differential oracle: for every input,
//! [`ArenaDoc::parse`] must accept/reject exactly as [`crate::parse`]
//! does, [`ArenaDoc::to_element`] must equal the owned parse, and
//! [`ArenaDoc::to_xml`] must be byte-identical to the owned
//! serializer. `tests/xml_differential.rs` enforces this over seeded
//! random documents.

use std::borrow::Cow;

use crate::error::ParseError;
use crate::escape::{escape_attr, escape_text, resolve_entity};
use crate::intern::{NameId, NameInterner};
use crate::node::{Element, Node};
use crate::parser::{is_name_char, is_name_start};

/// Index of an element node inside an [`ArenaDoc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A text or attribute value: either a byte range over the retained
/// input buffer (the zero-copy case) or an owned string (entities,
/// CDATA, comment-interrupted runs, synthesized documents).
#[derive(Debug, Clone)]
enum AVal {
    Slice(u32, u32),
    Owned(String),
}

/// One element: interned name plus contiguous ranges into the shared
/// attribute and child vectors.
#[derive(Debug, Clone, Copy)]
struct AElem {
    name: NameId,
    attr_start: u32,
    attr_end: u32,
    kid_start: u32,
    kid_end: u32,
}

/// One slot in the flat child vector.
#[derive(Debug, Clone, Copy)]
enum AKid {
    Elem(NodeId),
    Text(u32),
}

/// A child of an arena element, as seen through [`ArenaDoc::children`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaChild<'d> {
    /// A nested element, addressed by id.
    Elem(NodeId),
    /// A run of character data (entities already resolved).
    Text(&'d str),
}

/// A parsed XML document in arena form. See the module docs for the
/// representation; the public surface mirrors the read-only half of
/// [`Element`] (names, attributes, children, text) plus lossless
/// conversions to and from the owned tree.
#[derive(Debug, Clone)]
pub struct ArenaDoc {
    /// The retained input buffer value slices point into. Empty for
    /// documents built via [`ArenaDoc::from_element`].
    buf: String,
    elems: Vec<AElem>,
    attrs: Vec<(NameId, AVal)>,
    kids: Vec<AKid>,
    texts: Vec<AVal>,
    root: NodeId,
}

impl ArenaDoc {
    /// Parses a complete XML document into arena form, retaining a copy
    /// of the input as the value buffer. Accepts and rejects exactly
    /// the same inputs as the owned [`crate::parse`], and applies the
    /// same whitespace normalization.
    pub fn parse(input: &str) -> Result<ArenaDoc, ParseError> {
        Self::parse_owned(input.to_string())
    }

    /// Like [`ArenaDoc::parse`] but takes ownership of the input
    /// buffer, so nothing is copied at all on the clean path.
    pub fn parse_owned(input: String) -> Result<ArenaDoc, ParseError> {
        let mut p = ArenaParser {
            input: &input,
            pos: 0,
            elems: Vec::new(),
            attrs: Vec::new(),
            kids: Vec::new(),
            texts: Vec::new(),
            scratch: Vec::new(),
        };
        p.skip_prolog()?;
        let root = p.parse_element()?;
        p.skip_misc();
        if p.pos < p.input.len() {
            return Err(p.err("trailing content after document element"));
        }
        let ArenaParser { elems, attrs, kids, texts, .. } = p;
        Ok(ArenaDoc { buf: input, elems, attrs, kids, texts, root })
    }

    /// Converts an owned tree into arena form, losslessly (no
    /// whitespace normalization — the tree is taken as-is). Names are
    /// interned; values are held owned since there is no source buffer.
    pub fn from_element(e: &Element) -> ArenaDoc {
        let mut doc = ArenaDoc {
            buf: String::new(),
            elems: Vec::new(),
            attrs: Vec::new(),
            kids: Vec::new(),
            texts: Vec::new(),
            root: NodeId(0),
        };
        let mut scratch: Vec<AKid> = Vec::new();
        let root = doc.add_element(e, &mut scratch);
        doc.root = root;
        doc
    }

    fn add_element(&mut self, e: &Element, scratch: &mut Vec<AKid>) -> NodeId {
        let name = NameInterner::intern(&e.name);
        let attr_start = self.attrs.len() as u32;
        for (n, v) in &e.attrs {
            self.attrs.push((NameInterner::intern(n), AVal::Owned(v.clone())));
        }
        let attr_end = self.attrs.len() as u32;
        let id = NodeId(self.elems.len() as u32);
        self.elems.push(AElem { name, attr_start, attr_end, kid_start: 0, kid_end: 0 });
        let mark = scratch.len();
        for ch in &e.children {
            match ch {
                Node::Element(c) => {
                    let cid = self.add_element(c, scratch);
                    scratch.push(AKid::Elem(cid));
                }
                Node::Text(t) => {
                    let ti = self.texts.len() as u32;
                    self.texts.push(AVal::Owned(t.clone()));
                    scratch.push(AKid::Text(ti));
                }
            }
        }
        let kid_start = self.kids.len() as u32;
        self.kids.extend(scratch.drain(mark..));
        let kid_end = self.kids.len() as u32;
        let slot = &mut self.elems[id.0 as usize];
        slot.kid_start = kid_start;
        slot.kid_end = kid_end;
        id
    }

    /// The document element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The interned name of `id`.
    pub fn name_id(&self, id: NodeId) -> NameId {
        self.elems[id.0 as usize].name
    }

    /// The tag name of `id`.
    pub fn name(&self, id: NodeId) -> &'static str {
        NameInterner::resolve(self.name_id(id))
    }

    fn val<'d>(&'d self, v: &'d AVal) -> &'d str {
        match v {
            AVal::Slice(s, e) => &self.buf[*s as usize..*e as usize],
            AVal::Owned(s) => s,
        }
    }

    /// The attributes of `id` in document order.
    pub fn attrs(&self, id: NodeId) -> impl Iterator<Item = (&'static str, &str)> {
        let e = &self.elems[id.0 as usize];
        self.attrs[e.attr_start as usize..e.attr_end as usize]
            .iter()
            .map(|(n, v)| (NameInterner::resolve(*n), self.val(v)))
    }

    /// The value of the named attribute of `id`, if present.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        // A name that was never interned cannot be on any node.
        let nid = NameInterner::lookup(name)?;
        self.attr_by_id(id, nid)
    }

    /// [`ArenaDoc::attr`] with a pre-interned name — integer probes
    /// only, for the merge hot path.
    pub fn attr_by_id(&self, id: NodeId, name: NameId) -> Option<&str> {
        let e = &self.elems[id.0 as usize];
        self.attrs[e.attr_start as usize..e.attr_end as usize]
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| self.val(v))
    }

    /// Number of attributes on `id`.
    pub fn attr_count(&self, id: NodeId) -> usize {
        let e = &self.elems[id.0 as usize];
        (e.attr_end - e.attr_start) as usize
    }

    /// The children of `id` in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = ArenaChild<'_>> {
        let e = &self.elems[id.0 as usize];
        self.kids[e.kid_start as usize..e.kid_end as usize].iter().map(|k| match k {
            AKid::Elem(c) => ArenaChild::Elem(*c),
            AKid::Text(t) => ArenaChild::Text(self.val(&self.texts[*t as usize])),
        })
    }

    /// The element children of `id`, skipping text.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter_map(|k| match k {
            ArenaChild::Elem(c) => Some(c),
            ArenaChild::Text(_) => None,
        })
    }

    /// The concatenation of the direct text children of `id`. Borrows
    /// straight from the arena when there is at most one text child
    /// (the overwhelmingly common case for profile leaves).
    pub fn text(&self, id: NodeId) -> Cow<'_, str> {
        let mut texts = self.children(id).filter_map(|k| match k {
            ArenaChild::Text(t) => Some(t),
            ArenaChild::Elem(_) => None,
        });
        let Some(first) = texts.next() else { return Cow::Borrowed("") };
        match texts.next() {
            None => Cow::Borrowed(first),
            Some(second) => {
                let mut out = String::with_capacity(first.len() + second.len());
                out.push_str(first);
                out.push_str(second);
                for t in texts {
                    out.push_str(t);
                }
                Cow::Owned(out)
            }
        }
    }

    /// Total number of element nodes in the document.
    pub fn node_count(&self) -> usize {
        self.elems.len()
    }

    /// Number of element nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        1 + self.child_elements(id).map(|c| self.subtree_size(c)).sum::<usize>()
    }

    /// Bytes of character data that had to be copied out of the input
    /// (entity/CDATA/comment-interrupted runs and synthesized values).
    /// Zero for a clean parse — the zero-copy claim, measurable.
    pub fn owned_value_bytes(&self) -> usize {
        let owned = |v: &AVal| match v {
            AVal::Slice(..) => 0,
            AVal::Owned(s) => s.len(),
        };
        self.texts.iter().map(owned).sum::<usize>()
            + self.attrs.iter().map(|(_, v)| owned(v)).sum::<usize>()
    }

    /// Renames every element tagged `from` to `to`, in place.
    ///
    /// A pure interned-name rewrite over the flat element table — no
    /// node is visited twice and no subtree is cloned. Mirrors the
    /// recursive owned `RenameTag` mediator rule exactly.
    pub fn rename_tags(&mut self, from: &str, to: &str) {
        // A tag that was never interned cannot be on any node.
        let Some(f) = NameInterner::lookup(from) else { return };
        let t = NameInterner::intern(to);
        for e in &mut self.elems {
            if e.name == f {
                e.name = t;
            }
        }
    }

    /// Renames attribute `from` to `to` on every element tagged `on`,
    /// mirroring the owned mediator rule (`remove_attr` then
    /// `set_attr`): the renamed attribute keeps `to`'s position if `to`
    /// already existed, and otherwise moves to the end of the list.
    pub fn rename_attr(&mut self, on: &str, from: &str, to: &str) {
        let (Some(on_id), Some(from_id)) =
            (NameInterner::lookup(on), NameInterner::lookup(from))
        else {
            return;
        };
        if !self
            .elems
            .iter()
            .any(|e| e.name == on_id && self.attrs[e.attr_start as usize..e.attr_end as usize].iter().any(|(n, _)| *n == from_id))
        {
            return;
        }
        let to_id = NameInterner::intern(to);
        // Attribute counts can change (a rename onto an existing `to`
        // collapses two attributes into one), so rebuild the flat table.
        let mut rebuilt: Vec<(NameId, AVal)> = Vec::with_capacity(self.attrs.len());
        for e in &mut self.elems {
            let slice = &self.attrs[e.attr_start as usize..e.attr_end as usize];
            let start = rebuilt.len() as u32;
            let moved = (e.name == on_id)
                .then(|| slice.iter().position(|(n, _)| *n == from_id))
                .flatten();
            match moved {
                Some(fi) => {
                    let val = slice[fi].1.clone();
                    let mut replaced = false;
                    for (i, (n, v)) in slice.iter().enumerate() {
                        if i == fi {
                            continue;
                        }
                        if !replaced && *n == to_id {
                            rebuilt.push((to_id, val.clone()));
                            replaced = true;
                        } else {
                            rebuilt.push((*n, v.clone()));
                        }
                    }
                    if !replaced {
                        rebuilt.push((to_id, val));
                    }
                }
                None => rebuilt.extend_from_slice(slice),
            }
            e.attr_start = start;
            e.attr_end = rebuilt.len() as u32;
        }
        self.attrs = rebuilt;
    }

    /// Converts the subtree at `id` back into an owned [`Element`].
    pub fn to_element(&self, id: NodeId) -> Element {
        let e = &self.elems[id.0 as usize];
        Element {
            name: self.name(id).to_string(),
            attrs: self.attrs[e.attr_start as usize..e.attr_end as usize]
                .iter()
                .map(|(n, v)| (NameInterner::resolve(*n).to_string(), self.val(v).to_string()))
                .collect(),
            children: self.kids[e.kid_start as usize..e.kid_end as usize]
                .iter()
                .map(|k| match k {
                    AKid::Elem(c) => Node::Element(self.to_element(*c)),
                    AKid::Text(t) => Node::Text(self.val(&self.texts[*t as usize]).to_string()),
                })
                .collect(),
        }
    }

    /// The whole document as an owned [`Element`].
    pub fn root_element(&self) -> Element {
        self.to_element(self.root)
    }

    /// Serializes the subtree at `id` in compact form, byte-identical
    /// to [`Element::to_xml`] of the same tree. Values are stored
    /// unescaped, so escaping happens on the way out.
    pub fn serialize_node(&self, id: NodeId, out: &mut String) {
        let e = &self.elems[id.0 as usize];
        out.push('<');
        out.push_str(self.name(id));
        for (n, v) in &self.attrs[e.attr_start as usize..e.attr_end as usize] {
            out.push(' ');
            out.push_str(NameInterner::resolve(*n));
            out.push_str("=\"");
            escape_attr(self.val(v), out);
            out.push('"');
        }
        if e.kid_start == e.kid_end {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for k in &self.kids[e.kid_start as usize..e.kid_end as usize] {
            match k {
                AKid::Elem(c) => self.serialize_node(*c, out),
                AKid::Text(t) => escape_text(self.val(&self.texts[*t as usize]), out),
            }
        }
        out.push_str("</");
        out.push_str(self.name(id));
        out.push('>');
    }

    /// Compact serialization of the whole document.
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(self.buf.len());
        self.serialize_node(self.root, &mut out);
        out
    }

    /// Structural equality of two subtrees, possibly across documents,
    /// with the same semantics as `Element == Element`: attribute
    /// *sets* (order-insensitive), children order-sensitive.
    pub fn node_eq(&self, id: NodeId, other: &ArenaDoc, oid: NodeId) -> bool {
        if self.name_id(id) != other.name_id(oid) || self.attr_count(id) != other.attr_count(oid)
        {
            return false;
        }
        let e = &self.elems[id.0 as usize];
        for (n, v) in &self.attrs[e.attr_start as usize..e.attr_end as usize] {
            if other.attr_by_id(oid, *n) != Some(self.val(v)) {
                return false;
            }
        }
        let mut a = self.children(id);
        let mut b = other.children(oid);
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(ArenaChild::Text(x)), Some(ArenaChild::Text(y))) if x == y => {}
                (Some(ArenaChild::Elem(x)), Some(ArenaChild::Elem(y))) => {
                    if !self.node_eq(x, other, y) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
}

/// In-place edits. The sync delta path applies accepted remote ops
/// through the arena instead of the owned tree ([`crate::apply_arena`]).
///
/// Edits are **append-range**: a mutated element gets a fresh attribute
/// or child range appended to the flat tables and its header repointed,
/// while every untouched node keeps its rows — the same structural-
/// sharing discipline as [`crate::MergeOut`]. Superseded rows become
/// arena garbage; a long-lived document under heavy editing should be
/// rebuilt occasionally (e.g. at a sync rebase) via
/// [`ArenaDoc::from_element`]`(&doc.root_element())`.
impl ArenaDoc {
    /// Converts `e` into arena rows, returning the fresh subtree's root
    /// id. The subtree is unattached until a [`ArenaDoc::push_child`].
    pub fn graft_element(&mut self, e: &Element) -> NodeId {
        let mut scratch: Vec<AKid> = Vec::new();
        self.add_element(e, &mut scratch)
    }

    fn rewrite_kids(&mut self, id: NodeId, new: Vec<AKid>) {
        let start = self.kids.len() as u32;
        self.kids.extend(new);
        let end = self.kids.len() as u32;
        let e = &mut self.elems[id.0 as usize];
        e.kid_start = start;
        e.kid_end = end;
    }

    /// Replaces all text children of `id` with a single text node at
    /// the end of the child list — exactly [`Element::set_text`].
    pub fn set_text(&mut self, id: NodeId, text: &str) {
        let e = self.elems[id.0 as usize];
        let mut kids: Vec<AKid> = self.kids[e.kid_start as usize..e.kid_end as usize]
            .iter()
            .filter(|k| matches!(k, AKid::Elem(_)))
            .copied()
            .collect();
        let ti = self.texts.len() as u32;
        self.texts.push(AVal::Owned(text.to_string()));
        kids.push(AKid::Text(ti));
        self.rewrite_kids(id, kids);
    }

    /// Sets an attribute on `id`, replacing any existing value for the
    /// same name (in place, keeping its position) or appending —
    /// exactly [`Element::set_attr`].
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        let nid = NameInterner::intern(name);
        let e = self.elems[id.0 as usize];
        for slot in e.attr_start as usize..e.attr_end as usize {
            if self.attrs[slot].0 == nid {
                self.attrs[slot].1 = AVal::Owned(value.to_string());
                return;
            }
        }
        let start = self.attrs.len() as u32;
        for slot in e.attr_start as usize..e.attr_end as usize {
            let copied = self.attrs[slot].clone();
            self.attrs.push(copied);
        }
        self.attrs.push((nid, AVal::Owned(value.to_string())));
        let end = self.attrs.len() as u32;
        let slot = &mut self.elems[id.0 as usize];
        slot.attr_start = start;
        slot.attr_end = end;
    }

    /// Removes the named attribute from `id`, preserving the order of
    /// the rest. Returns whether it was present.
    pub fn remove_attr(&mut self, id: NodeId, name: &str) -> bool {
        let Some(nid) = NameInterner::lookup(name) else { return false };
        let e = self.elems[id.0 as usize];
        let range = e.attr_start as usize..e.attr_end as usize;
        if !self.attrs[range.clone()].iter().any(|(n, _)| *n == nid) {
            return false;
        }
        let start = self.attrs.len() as u32;
        for slot in range {
            if self.attrs[slot].0 != nid {
                let copied = self.attrs[slot].clone();
                self.attrs.push(copied);
            }
        }
        let end = self.attrs.len() as u32;
        let slot = &mut self.elems[id.0 as usize];
        slot.attr_start = start;
        slot.attr_end = end;
        true
    }

    /// Appends `child` (a node of this document, typically fresh from
    /// [`ArenaDoc::graft_element`]) to `parent`'s child list.
    pub fn push_child(&mut self, parent: NodeId, child: NodeId) {
        let e = self.elems[parent.0 as usize];
        let mut kids: Vec<AKid> =
            self.kids[e.kid_start as usize..e.kid_end as usize].to_vec();
        kids.push(AKid::Elem(child));
        self.rewrite_kids(parent, kids);
    }

    /// Removes element `child` from `parent`'s child list, preserving
    /// the order of the rest. Returns whether it was present. The
    /// removed subtree's rows become arena garbage.
    pub fn remove_child(&mut self, parent: NodeId, child: NodeId) -> bool {
        let e = self.elems[parent.0 as usize];
        let range = e.kid_start as usize..e.kid_end as usize;
        if !self.kids[range.clone()].iter().any(|k| matches!(k, AKid::Elem(c) if *c == child)) {
            return false;
        }
        let kids: Vec<AKid> = self.kids[range]
            .iter()
            .filter(|k| !matches!(k, AKid::Elem(c) if *c == child))
            .copied()
            .collect();
        self.rewrite_kids(parent, kids);
        true
    }
}

/// In-progress text run during content parsing. Tracks whether the run
/// is still a single contiguous raw segment (→ [`AVal::Slice`]) or has
/// been forced owned by an entity, CDATA section, or an interrupting
/// comment/PI splitting it into several segments.
struct TextRun {
    seg_start: usize,
    slice: Option<(usize, usize)>,
    acc: String,
}

impl TextRun {
    fn new(pos: usize) -> Self {
        TextRun { seg_start: pos, slice: None, acc: String::new() }
    }

    /// Closes the raw segment `[seg_start, upto)` into the run.
    fn close_seg(&mut self, input: &str, upto: usize) {
        if upto <= self.seg_start {
            return;
        }
        if self.slice.is_none() && self.acc.is_empty() {
            self.slice = Some((self.seg_start, upto));
        } else {
            self.force_owned(input);
            self.acc.push_str(&input[self.seg_start..upto]);
        }
        self.seg_start = upto;
    }

    fn force_owned(&mut self, input: &str) {
        if let Some((s, e)) = self.slice.take() {
            self.acc.push_str(&input[s..e]);
        }
    }

    /// An entity reference: raw bytes up to `at` close the segment, the
    /// resolved char goes into the owned accumulator, raw scanning
    /// resumes at `resume`.
    fn push_char(&mut self, input: &str, at: usize, c: char, resume: usize) {
        self.close_seg(input, at);
        self.force_owned(input);
        self.acc.push(c);
        self.seg_start = resume;
    }

    /// A CDATA section: like [`TextRun::push_char`] for a raw slice.
    fn push_str(&mut self, input: &str, at: usize, s: &str, resume: usize) {
        self.close_seg(input, at);
        self.force_owned(input);
        self.acc.push_str(s);
        self.seg_start = resume;
    }

    /// A comment or PI inside character data: contributes nothing, but
    /// splits the raw run into segments (which forces the owned form
    /// only if text actually continues on both sides).
    fn interrupt(&mut self, input: &str, at: usize, resume: usize) {
        self.close_seg(input, at);
        self.seg_start = resume;
    }

    /// Ends the run at a node boundary, yielding its value if any text
    /// accumulated.
    fn finish(&mut self, input: &str, at: usize) -> Option<AVal> {
        self.close_seg(input, at);
        self.seg_start = at;
        if let Some((s, e)) = self.slice.take() {
            debug_assert!(self.acc.is_empty());
            Some(AVal::Slice(s as u32, e as u32))
        } else if self.acc.is_empty() {
            None
        } else {
            Some(AVal::Owned(std::mem::take(&mut self.acc)))
        }
    }
}

/// The arena parser: same grammar and error behavior as the owned
/// [`crate::parse`], but emitting flat vectors and value slices.
struct ArenaParser<'a> {
    input: &'a str,
    pos: usize,
    elems: Vec<AElem>,
    attrs: Vec<(NameId, AVal)>,
    kids: Vec<AKid>,
    texts: Vec<AVal>,
    /// Pending children of open elements; each element drains its own
    /// suffix into the flat `kids` vector when it closes, so child
    /// ranges end up contiguous.
    scratch: Vec<AKid>,
}

impl<'a> ArenaParser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, self.input, msg)
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err("DTDs are not supported"));
            } else {
                return Ok(());
            }
        }
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_comment().is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_pi().is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.starts_with("<?"));
        match self.rest().find("?>") {
            Some(end) => {
                self.bump(end + 2);
                Ok(())
            }
            None => Err(self.err("unterminated processing instruction")),
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.starts_with("<!--"));
        match self.rest()[4..].find("-->") {
            Some(end) => {
                self.bump(4 + end + 3);
                Ok(())
            }
            None => Err(self.err("unterminated comment")),
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.pos >= bytes.len() || !is_name_start(bytes[self.pos]) {
            return Err(self.err("expected a name"));
        }
        while self.pos < bytes.len() && is_name_char(bytes[self.pos]) {
            self.pos += 1;
        }
        Ok(&self.input[start..self.pos])
    }

    fn parse_element(&mut self) -> Result<NodeId, ParseError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.bump(1);
        let name = NameInterner::intern(self.parse_name()?);
        let attr_start = self.attrs.len() as u32;

        let self_closing = loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(self.err("expected '/>'"));
                    }
                    self.bump(2);
                    break true;
                }
                Some(b'>') => {
                    self.bump(1);
                    break false;
                }
                Some(_) => {
                    let (an, av) = self.parse_attribute()?;
                    let dup = self.attrs[attr_start as usize..].iter().any(|(n, _)| *n == an);
                    if dup {
                        let an = NameInterner::resolve(an);
                        return Err(self.err(format!("duplicate attribute '{an}'")));
                    }
                    self.attrs.push((an, av));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        };
        let attr_end = self.attrs.len() as u32;
        let id = NodeId(self.elems.len() as u32);
        self.elems.push(AElem { name, attr_start, attr_end, kid_start: 0, kid_end: 0 });
        let mark = self.scratch.len();

        if !self_closing {
            self.parse_content(name)?;
            // Closing tag: parse_content stops right before "</".
            self.bump(2);
            let close = self.parse_name()?;
            if close != NameInterner::resolve(name) {
                let open = NameInterner::resolve(name);
                return Err(self.err(format!(
                    "mismatched closing tag: expected </{open}>, found </{close}>"
                )));
            }
            self.skip_ws();
            if self.peek() != Some(b'>') {
                return Err(self.err("expected '>' to end closing tag"));
            }
            self.bump(1);
            self.normalize_whitespace(mark);
        }

        let kid_start = self.kids.len() as u32;
        self.kids.extend(self.scratch.drain(mark..));
        let kid_end = self.kids.len() as u32;
        let slot = &mut self.elems[id.0 as usize];
        slot.kid_start = kid_start;
        slot.kid_end = kid_end;
        Ok(id)
    }

    /// Same rule as the owned parser: whitespace-only text children are
    /// dropped from elements that also contain element children.
    fn normalize_whitespace(&mut self, mark: usize) {
        let has_elem = self.scratch[mark..].iter().any(|k| matches!(k, AKid::Elem(_)));
        if !has_elem {
            return;
        }
        let mut write = mark;
        for i in mark..self.scratch.len() {
            let k = self.scratch[i];
            let keep = match k {
                AKid::Elem(_) => true,
                AKid::Text(t) => {
                    let s = match &self.texts[t as usize] {
                        AVal::Slice(s, e) => &self.input[*s as usize..*e as usize],
                        AVal::Owned(s) => s.as_str(),
                    };
                    !s.chars().all(char::is_whitespace)
                }
            };
            if keep {
                self.scratch[write] = k;
                write += 1;
            }
        }
        self.scratch.truncate(write);
    }

    fn parse_attribute(&mut self) -> Result<(NameId, AVal), ParseError> {
        let name = NameInterner::intern(self.parse_name()?);
        self.skip_ws();
        if self.peek() != Some(b'=') {
            return Err(self.err("expected '=' after attribute name"));
        }
        self.bump(1);
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump(1);
        let vstart = self.pos;
        // Fast scan: a value with no entity reference is a pure slice.
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                q if q == quote => {
                    let v = AVal::Slice(vstart as u32, self.pos as u32);
                    self.bump(1);
                    return Ok((name, v));
                }
                b'<' => return Err(self.err("'<' not allowed in attribute value")),
                b'&' => break,
                _ => self.pos += 1,
            }
        }
        if self.pos >= bytes.len() {
            return Err(self.err("unterminated attribute value"));
        }
        // Slow path: entity seen — fall back to an owned value.
        let mut value = self.input[vstart..self.pos].to_string();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.bump(1);
                    return Ok((name, AVal::Owned(value)));
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => {
                    self.bump(1);
                    match resolve_entity(self.rest()) {
                        Some((c, n)) => {
                            value.push(c);
                            self.bump(n);
                        }
                        None => return Err(self.err("malformed entity reference")),
                    }
                }
                Some(_) => {
                    let c = self.rest().chars().next().expect("peeked");
                    value.push(c);
                    self.bump(c.len_utf8());
                }
            }
        }
    }

    fn parse_content(&mut self, elem_name: NameId) -> Result<(), ParseError> {
        let mut run = TextRun::new(self.pos);
        loop {
            if self.starts_with("</") {
                if let Some(v) = run.finish(self.input, self.pos) {
                    self.push_text(v);
                }
                return Ok(());
            }
            match self.peek() {
                None => {
                    let name = NameInterner::resolve(elem_name);
                    return Err(self.err(format!("unclosed element <{name}>")));
                }
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        let at = self.pos;
                        self.skip_comment()?;
                        run.interrupt(self.input, at, self.pos);
                    } else if self.starts_with("<![CDATA[") {
                        let at = self.pos;
                        self.bump(9);
                        match self.rest().find("]]>") {
                            Some(end) => {
                                let cdata = &self.rest()[..end];
                                self.bump(end + 3);
                                run.push_str(self.input, at, cdata, self.pos);
                            }
                            None => return Err(self.err("unterminated CDATA section")),
                        }
                    } else if self.starts_with("<?") {
                        let at = self.pos;
                        self.skip_pi()?;
                        run.interrupt(self.input, at, self.pos);
                    } else {
                        if let Some(v) = run.finish(self.input, self.pos) {
                            self.push_text(v);
                        }
                        let child = self.parse_element()?;
                        self.scratch.push(AKid::Elem(child));
                        run = TextRun::new(self.pos);
                    }
                }
                Some(b'&') => {
                    let at = self.pos;
                    self.bump(1);
                    match resolve_entity(self.rest()) {
                        Some((c, n)) => {
                            self.bump(n);
                            run.push_char(self.input, at, c, self.pos);
                        }
                        None => return Err(self.err("malformed entity reference")),
                    }
                }
                Some(_) => {
                    // Raw character data: extend the current segment.
                    let c = self.rest().chars().next().expect("peeked");
                    self.bump(c.len_utf8());
                }
            }
        }
    }

    fn push_text(&mut self, v: AVal) {
        let ti = self.texts.len() as u32;
        self.texts.push(v);
        self.scratch.push(AKid::Text(ti));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn agree(src: &str) -> ArenaDoc {
        let owned = parse(src).expect("owned parse");
        let arena = ArenaDoc::parse(src).expect("arena parse");
        assert_eq!(arena.root_element(), owned, "tree mismatch for {src}");
        assert_eq!(arena.to_xml(), owned.to_xml(), "serialization mismatch for {src}");
        arena
    }

    #[test]
    fn clean_parse_is_zero_copy() {
        let d = agree(r#"<user id="arnaud"><presence>online</presence><n note="x"/></user>"#);
        assert_eq!(d.owned_value_bytes(), 0);
        assert_eq!(d.node_count(), 3);
    }

    #[test]
    fn entities_and_cdata_fall_back_to_owned() {
        let d = agree(r#"<a k="&lt;x">A&amp;B<![CDATA[<raw>]]></a>"#);
        assert!(d.owned_value_bytes() > 0);
        assert_eq!(d.text(d.root()), "A&B<raw>");
        assert_eq!(d.attr(d.root(), "k"), Some("<x"));
    }

    #[test]
    fn comment_splits_text_without_breaking_value() {
        // The owned parser yields ONE text node "ab" here.
        let d = agree("<a>a<!-- c -->b</a>");
        assert_eq!(d.text(d.root()), "ab");
        let d2 = agree("<a><!-- c -->b</a>");
        // Text entirely after the comment is still a single raw slice.
        assert_eq!(d2.owned_value_bytes(), 0);
    }

    #[test]
    fn whitespace_normalization_matches() {
        agree("<a>\n  <b>x</b>\n  <c/>\n</a>");
        agree("<a>   </a>");
        agree("<p>hello <b>world</b>!</p>");
    }

    #[test]
    fn prolog_misc_and_utf8 () {
        agree("<?xml version=\"1.0\"?>\n<!-- hi -->\n<a><b/></a>\n<!-- post -->");
        agree("<café note=\"déjà\">vü</café>");
    }

    #[test]
    fn rejects_what_owned_rejects() {
        for bad in [
            "",
            "<a",
            "<a><b>",
            "<a></b>",
            "<a/><b/>",
            "<a/>junk",
            "<!DOCTYPE html><a/>",
            r#"<a x="1" x="2"/>"#,
            "<a k=<></a>",
            "<a>&bogus;</a>",
            "<a><![CDATA[x</a>",
        ] {
            assert_eq!(
                parse(bad).is_err(),
                ArenaDoc::parse(bad).is_err(),
                "accept/reject disagreement on {bad:?}"
            );
            assert!(ArenaDoc::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn from_element_is_lossless() {
        let e = Element::new("a")
            .with_attr("id", "1")
            .with_text("  ")
            .with_child(Element::new("b").with_text("x"))
            .with_text("tail");
        // Note: `e` is NOT in normalized form; from_element must keep it.
        let d = ArenaDoc::from_element(&e);
        assert_eq!(d.root_element(), e);
        assert_eq!(d.to_xml(), e.to_xml());
    }

    #[test]
    fn accessors() {
        let d = ArenaDoc::parse(r#"<u a="1" b="2"><x/>t<y/></u>"#).unwrap();
        let r = d.root();
        assert_eq!(d.name(r), "u");
        assert_eq!(d.attr_count(r), 2);
        assert_eq!(d.attr(r, "b"), Some("2"));
        assert_eq!(d.attr(r, "zz-never-interned"), None);
        assert_eq!(d.attrs(r).count(), 2);
        assert_eq!(d.child_elements(r).count(), 2);
        assert_eq!(d.children(r).count(), 3);
        assert_eq!(d.subtree_size(r), 3);
        assert_eq!(d.text(r), "t");
    }

    #[test]
    fn node_eq_matches_element_eq() {
        let a = ArenaDoc::parse(r#"<e x="1" y="2"><c>t</c></e>"#).unwrap();
        let b = ArenaDoc::parse(r#"<e y="2" x="1"><c>t</c></e>"#).unwrap();
        let c = ArenaDoc::parse(r#"<e x="1" y="3"><c>t</c></e>"#).unwrap();
        assert!(a.node_eq(a.root(), &b, b.root()));
        assert!(!a.node_eq(a.root(), &c, c.root()));
        assert_eq!(a.root_element(), b.root_element());
    }
}
