//! Structural-sharing deep-union merge over arena documents.
//!
//! The owned [`crate::merge`] deep-clones both inputs into the result:
//! merging k fragments of n nodes copies O(k·n) nodes even when the
//! fragments are disjoint. [`MergeOut`] keeps the Buneman deep-union
//! semantics (it must stay *byte-identical* to the owned oracle — the
//! seeded differential suite enforces it) but replaces copying with
//! **grafting**: a child subtree that only one side contributes is
//! recorded as an id-reference into its source [`ArenaDoc`], and new
//! nodes ([`MNode`]) are allocated only along the changed spine where
//! the two sides actually meet. The writer serializes straight out of
//! the arenas, following grafts, so a merged document is never
//! materialized as an owned tree unless the caller asks for one.
//!
//! [`MergeStats`] counts fresh spine nodes vs. shared subtree nodes;
//! the bench harness (E19) and the fetch pipeline's simulated
//! `xml.merge` stage cost both derive from these deterministic counts.

use std::collections::HashMap;

use crate::arena::{ArenaChild, ArenaDoc, NodeId};
use crate::error::XmlError;
use crate::escape::{escape_attr, escape_text};
use crate::intern::{NameId, NameInterner};
use crate::merge::MergeKeys;
use crate::node::{Element, Node};

/// Deterministic work counters for a structural-sharing merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Spine nodes allocated by the merge (the only allocations).
    pub fresh_nodes: u64,
    /// Subtrees grafted by id-reference instead of being copied.
    pub shared_subtrees: u64,
    /// Total element nodes inside those grafted subtrees — what the
    /// owned merge would have cloned.
    pub shared_nodes: u64,
}

/// A merge result over one or more source [`ArenaDoc`]s: freshly
/// allocated spine nodes plus id-references into the sources.
#[derive(Debug, Clone)]
pub struct MergeOut<'a> {
    docs: Vec<&'a ArenaDoc>,
    nodes: Vec<MNode>,
    root: MKid,
    stats: MergeStats,
}

/// A freshly allocated merge-spine node.
#[derive(Debug, Clone)]
struct MNode {
    name: NameId,
    attrs: Vec<(NameId, String)>,
    kids: Vec<MKid>,
}

/// A child slot in the merge result.
#[derive(Debug, Clone)]
enum MKid {
    /// A spine node allocated by this merge.
    New(u32),
    /// An unchanged subtree grafted from `docs[d]` at the given node.
    Shared(u32, NodeId),
    /// A text run (merged text is always materialized — it is tiny).
    Text(String),
}

/// A handle over either representation during the recursive merge.
#[derive(Debug, Clone, Copy)]
enum H {
    Arena(u32, NodeId),
    M(u32),
}

/// A child handle: element or text, for oracle-equality checks.
enum KidH {
    Elem(H),
    Text(String),
}

impl<'a> MergeOut<'a> {
    /// Wraps a single document as a merge result: the whole tree is one
    /// graft, nothing is allocated.
    pub fn from_doc(doc: &'a ArenaDoc) -> MergeOut<'a> {
        let mut out = MergeOut {
            docs: vec![doc],
            nodes: Vec::new(),
            root: MKid::Shared(0, doc.root()),
            stats: MergeStats::default(),
        };
        out.stats.shared_subtrees = 1;
        out.stats.shared_nodes = doc.subtree_size(doc.root()) as u64;
        out
    }

    /// Deep-union merges `doc` into this result, returning the merged
    /// result. Transactional: on a [`XmlError::MergeConflict`] the
    /// existing result is untouched (the fetch pipeline's
    /// keep-both-on-conflict fallback depends on this).
    pub fn merge_with(&self, doc: &'a ArenaDoc, keys: &MergeKeys) -> Result<MergeOut<'a>, XmlError> {
        let mut next = self.clone();
        next.docs.push(doc);
        let d = (next.docs.len() - 1) as u32;
        let root = next.kid_handle(&next.root.clone());
        let merged = next.merge_h(root, H::Arena(d, doc.root()), keys)?;
        next.root = MKid::New(merged);
        Ok(next)
    }

    /// The interned tag name of the result root.
    pub fn root_name(&self) -> NameId {
        let h = self.kid_handle(&self.root);
        self.name_of(h)
    }

    /// The merge identity of the result root under `keys` — same
    /// precedence as [`MergeKeys::identity`], with the tag as a
    /// [`NameId`].
    pub fn root_identity(&self, keys: &MergeKeys) -> Option<(NameId, String)> {
        let h = self.kid_handle(&self.root);
        self.identity_of(h, keys)
    }

    /// Work counters accumulated across every `merge_with`.
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Materializes the result as an owned [`Element`] — byte-identical
    /// to what the owned [`crate::merge`] would have produced.
    pub fn to_element(&self) -> Element {
        match self.kid_node(&self.root) {
            Node::Element(e) => e,
            Node::Text(_) => unreachable!("merge root is an element"),
        }
    }

    /// Serializes the result in compact form straight out of the
    /// arenas, following grafts — no owned tree is built.
    pub fn serialize_into(&self, out: &mut String) {
        self.write_kid(&self.root, out);
    }

    /// Compact serialization of the result.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.serialize_into(&mut out);
        out
    }

    fn write_kid(&self, k: &MKid, out: &mut String) {
        match k {
            MKid::Shared(d, n) => self.docs[*d as usize].serialize_node(*n, out),
            MKid::Text(t) => escape_text(t, out),
            MKid::New(i) => {
                let node = &self.nodes[*i as usize];
                out.push('<');
                out.push_str(NameInterner::resolve(node.name));
                for (n, v) in &node.attrs {
                    out.push(' ');
                    out.push_str(NameInterner::resolve(*n));
                    out.push_str("=\"");
                    escape_attr(v, out);
                    out.push('"');
                }
                if node.kids.is_empty() {
                    out.push_str("/>");
                    return;
                }
                out.push('>');
                for kid in &node.kids {
                    self.write_kid(kid, out);
                }
                out.push_str("</");
                out.push_str(NameInterner::resolve(node.name));
                out.push('>');
            }
        }
    }

    fn kid_node(&self, k: &MKid) -> Node {
        match k {
            MKid::Shared(d, n) => Node::Element(self.docs[*d as usize].to_element(*n)),
            MKid::Text(t) => Node::Text(t.clone()),
            MKid::New(i) => {
                let node = &self.nodes[*i as usize];
                Node::Element(Element {
                    name: NameInterner::resolve(node.name).to_string(),
                    attrs: node
                        .attrs
                        .iter()
                        .map(|(n, v)| (NameInterner::resolve(*n).to_string(), v.clone()))
                        .collect(),
                    children: node.kids.iter().map(|k| self.kid_node(k)).collect(),
                })
            }
        }
    }

    fn kid_handle(&self, k: &MKid) -> H {
        match k {
            MKid::Shared(d, n) => H::Arena(*d, *n),
            MKid::New(i) => H::M(*i),
            MKid::Text(_) => unreachable!("text kid has no element handle"),
        }
    }

    fn name_of(&self, h: H) -> NameId {
        match h {
            H::Arena(d, n) => self.docs[d as usize].name_id(n),
            H::M(i) => self.nodes[i as usize].name,
        }
    }

    fn attrs_of(&self, h: H) -> Vec<(NameId, String)> {
        match h {
            H::Arena(d, n) => {
                let doc = self.docs[d as usize];
                doc.attrs(n)
                    .map(|(name, v)| (NameInterner::intern(name), v.to_string()))
                    .collect()
            }
            H::M(i) => self.nodes[i as usize].attrs.clone(),
        }
    }

    fn attr_of(&self, h: H, name: &str) -> Option<String> {
        match h {
            H::Arena(d, n) => self.docs[d as usize].attr(n, name).map(str::to_string),
            H::M(i) => {
                let nid = NameInterner::lookup(name)?;
                self.nodes[i as usize]
                    .attrs
                    .iter()
                    .find(|(n, _)| *n == nid)
                    .map(|(_, v)| v.clone())
            }
        }
    }

    /// Direct-text concatenation, matching [`Element::text`].
    fn text_of(&self, h: H) -> String {
        match h {
            H::Arena(d, n) => self.docs[d as usize].text(n).into_owned(),
            H::M(i) => {
                let mut out = String::new();
                for k in &self.nodes[i as usize].kids {
                    if let MKid::Text(t) = k {
                        out.push_str(t);
                    }
                }
                out
            }
        }
    }

    fn elem_kids(&self, h: H) -> Vec<H> {
        match h {
            H::Arena(d, n) => {
                self.docs[d as usize].child_elements(n).map(|c| H::Arena(d, c)).collect()
            }
            H::M(i) => self.nodes[i as usize]
                .kids
                .iter()
                .filter(|k| !matches!(k, MKid::Text(_)))
                .map(|k| self.kid_handle(k))
                .collect(),
        }
    }

    fn all_kids(&self, h: H) -> Vec<KidH> {
        match h {
            H::Arena(d, n) => self.docs[d as usize]
                .children(n)
                .map(|k| match k {
                    ArenaChild::Elem(c) => KidH::Elem(H::Arena(d, c)),
                    ArenaChild::Text(t) => KidH::Text(t.to_string()),
                })
                .collect(),
            H::M(i) => self.nodes[i as usize]
                .kids
                .iter()
                .map(|k| match k {
                    MKid::Text(t) => KidH::Text(t.clone()),
                    other => KidH::Elem(self.kid_handle(other)),
                })
                .collect(),
        }
    }

    /// Identity under `keys`: explicit key first (and *only* that
    /// attribute if the tag has one), then the default `id`/`name`/
    /// `type` fallback — the exact precedence of [`MergeKeys::identity`].
    fn identity_of(&self, h: H, keys: &MergeKeys) -> Option<(NameId, String)> {
        let name = self.name_of(h);
        let tag = NameInterner::resolve(name);
        if let Some(attr) = keys.key_attr(tag) {
            return self.attr_of(h, attr).map(|v| (name, format!("{attr}={v}")));
        }
        if keys.use_default_keys {
            for attr in ["id", "name", "type"] {
                if let Some(v) = self.attr_of(h, attr) {
                    return Some((name, format!("{attr}={v}")));
                }
            }
        }
        None
    }

    /// Structural equality with `Element == Element` semantics:
    /// attribute sets order-insensitive, children order-sensitive.
    fn eq_h(&self, a: H, b: H) -> bool {
        if self.name_of(a) != self.name_of(b) {
            return false;
        }
        let aa = self.attrs_of(a);
        let ba = self.attrs_of(b);
        if aa.len() != ba.len() {
            return false;
        }
        if !aa
            .iter()
            .all(|(n, v)| ba.iter().find(|(bn, _)| bn == n).map(|(_, bv)| bv) == Some(v))
        {
            return false;
        }
        let ak = self.all_kids(a);
        let bk = self.all_kids(b);
        ak.len() == bk.len()
            && ak.iter().zip(bk.iter()).all(|(x, y)| match (x, y) {
                (KidH::Text(t), KidH::Text(u)) => t == u,
                (KidH::Elem(e), KidH::Elem(f)) => self.eq_h(*e, *f),
                _ => false,
            })
    }

    /// Records `h` as a result child without copying: arena subtrees
    /// graft by reference, already-fresh spine nodes pass through.
    fn share_kid(&mut self, h: H) -> MKid {
        match h {
            H::Arena(d, n) => {
                self.stats.shared_subtrees += 1;
                self.stats.shared_nodes += self.docs[d as usize].subtree_size(n) as u64;
                MKid::Shared(d, n)
            }
            H::M(i) => MKid::New(i),
        }
    }

    fn count_unkeyed(&self, side: &[H], tag: NameId, keys: &MergeKeys) -> usize {
        side.iter()
            .filter(|h| self.name_of(**h) == tag && self.identity_of(**h, keys).is_none())
            .count()
    }

    /// The recursive deep union. Mirrors the owned [`crate::merge`]
    /// case-for-case (same conflicts, same messages, same ordering) —
    /// the only difference is that untouched subtrees are grafted.
    fn merge_h(&mut self, a: H, b: H, keys: &MergeKeys) -> Result<u32, XmlError> {
        let an = self.name_of(a);
        let bn = self.name_of(b);
        if an != bn {
            let (at, bt) = (NameInterner::resolve(an), NameInterner::resolve(bn));
            return Err(XmlError::MergeConflict {
                tag: at.to_string(),
                detail: format!("cannot merge <{at}> with <{bt}>"),
            });
        }
        let tag = NameInterner::resolve(an);

        // Attribute union.
        let mut attrs = self.attrs_of(a);
        for (n, v) in self.attrs_of(b) {
            match attrs.iter().find(|(en, _)| *en == n) {
                None => attrs.push((n, v)),
                Some((_, existing)) if *existing == v => {}
                Some((_, existing)) => {
                    return Err(XmlError::MergeConflict {
                        tag: tag.to_string(),
                        detail: format!(
                            "attribute '{}' differs: '{existing}' vs '{v}'",
                            NameInterner::resolve(n)
                        ),
                    })
                }
            }
        }

        // Text: non-whitespace direct text must agree.
        let ta = self.text_of(a);
        let tb = self.text_of(b);
        let (ta_t, tb_t) = (ta.trim().to_string(), tb.trim().to_string());
        let merged_text = if ta_t.is_empty() {
            tb
        } else if tb_t.is_empty() || ta_t == tb_t {
            ta
        } else {
            return Err(XmlError::MergeConflict {
                tag: tag.to_string(),
                detail: format!("text differs: '{ta_t}' vs '{tb_t}'"),
            });
        };

        // Children: identical two-pass structure to the owned merge.
        let a_kids = self.elem_kids(a);
        let b_kids = self.elem_kids(b);
        let mut merged: Vec<MKid> = Vec::new();
        let mut index: HashMap<(NameId, String), usize> = HashMap::new();
        self.add_side(&a_kids, &b_kids, true, keys, &mut merged, &mut index)?;
        self.add_side(&b_kids, &a_kids, false, keys, &mut merged, &mut index)?;

        if !merged_text.trim().is_empty() {
            merged.push(MKid::Text(merged_text));
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(MNode { name: an, attrs, kids: merged });
        self.stats.fresh_nodes += 1;
        Ok(idx)
    }

    fn add_side(
        &mut self,
        side: &[H],
        other: &[H],
        first_pass: bool,
        keys: &MergeKeys,
        merged: &mut Vec<MKid>,
        index: &mut HashMap<(NameId, String), usize>,
    ) -> Result<(), XmlError> {
        for &ch in side {
            match self.identity_of(ch, keys) {
                Some(idn) => {
                    if let Some(&at) = index.get(&idn) {
                        let existing = self.kid_handle(&merged[at]);
                        let m = self.merge_h(existing, ch, keys)?;
                        merged[at] = MKid::New(m);
                    } else {
                        index.insert(idn, merged.len());
                        let kid = self.share_kid(ch);
                        merged.push(kid);
                    }
                }
                None => {
                    let tag = self.name_of(ch);
                    let singleton = self.count_unkeyed(side, tag, keys) == 1
                        && self.count_unkeyed(other, tag, keys) == 1;
                    if singleton {
                        if first_pass {
                            let peer = *other
                                .iter()
                                .find(|h| {
                                    self.name_of(**h) == tag
                                        && self.identity_of(**h, keys).is_none()
                                })
                                .expect("counted above");
                            let m = self.merge_h(ch, peer, keys)?;
                            merged.push(MKid::New(m));
                        }
                        // Second pass: already merged during the first.
                    } else {
                        // Unkeyed: suppress exact duplicates, keep both
                        // otherwise.
                        let dup = merged.iter().any(|m| match m {
                            MKid::Text(_) => false,
                            k => {
                                let h = self.kid_handle(k);
                                self.eq_h(h, ch)
                            }
                        });
                        if !dup {
                            let kid = self.share_kid(ch);
                            merged.push(kid);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Structural-sharing counterpart of [`crate::merge`]: deep-union of
/// two arena documents denoting the same logical node.
pub fn merge_arena<'a>(
    a: &'a ArenaDoc,
    b: &'a ArenaDoc,
    keys: &MergeKeys,
) -> Result<MergeOut<'a>, XmlError> {
    MergeOut::from_doc(a).merge_with(b, keys)
}

/// Structural-sharing counterpart of [`crate::merge_all`]: left fold
/// over a non-empty sequence of fragments.
pub fn merge_arena_all<'a>(
    parts: &[&'a ArenaDoc],
    keys: &MergeKeys,
) -> Result<MergeOut<'a>, XmlError> {
    let (first, rest) = parts.split_first().ok_or_else(|| XmlError::MergeConflict {
        tag: String::new(),
        detail: "merge_all of zero fragments".into(),
    })?;
    let mut acc = MergeOut::from_doc(first);
    for p in rest {
        acc = acc.merge_with(p, keys)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{merge, merge_all};
    use crate::parse;

    fn keys() -> MergeKeys {
        MergeKeys::new().with_key("item", "id")
    }

    /// Oracle check: the arena merge must agree with the owned merge
    /// byte-for-byte, including on whether it errors at all.
    fn agree(a_src: &str, b_src: &str, keys: &MergeKeys) {
        let (ea, eb) = (parse(a_src).unwrap(), parse(b_src).unwrap());
        let (da, db) = (ArenaDoc::parse(a_src).unwrap(), ArenaDoc::parse(b_src).unwrap());
        let owned = merge(&ea, &eb, keys);
        let arena = merge_arena(&da, &db, keys);
        match (owned, arena) {
            (Ok(o), Ok(m)) => {
                assert_eq!(m.to_element(), o, "tree mismatch: {a_src} + {b_src}");
                assert_eq!(m.to_xml(), o.to_xml(), "bytes mismatch: {a_src} + {b_src}");
            }
            (Err(oe), Err(me)) => assert_eq!(oe, me, "error mismatch: {a_src} + {b_src}"),
            (o, m) => panic!("divergence on {a_src} + {b_src}: owned {o:?} vs arena {m:?}"),
        }
    }

    #[test]
    fn mirrors_owned_merge() {
        let k = keys();
        agree(
            r#"<b><item id="1" type="personal"><name>Mom</name></item></b>"#,
            r#"<b><item id="2" type="corporate"><name>Rick</name></item></b>"#,
            &k,
        );
        agree(
            r#"<b><item id="1"><name>Bob</name></item></b>"#,
            r#"<b><item id="1"><phone>555</phone></item></b>"#,
            &k,
        );
        agree(
            r#"<b><item id="1"><name>Bob</name></item></b>"#,
            r#"<b><item id="1"><name>Robert</name></item></b>"#,
            &k,
        );
        agree(r#"<e x="1"/>"#, r#"<e y="2"/>"#, &k);
        agree(r#"<e x="1"/>"#, r#"<e x="9"/>"#, &k);
        agree("<a/>", "<b/>", &k);
        agree("<n>Bob</n>", "<n>Bob</n>", &k);
        let plain = MergeKeys::new();
        agree("<l><v>1</v><v>2</v></l>", "<l><v>2</v><v>3</v></l>", &plain);
        agree(
            r#"<l><entry id="x"><a>1</a></entry></l>"#,
            r#"<l><entry id="x"><b>2</b></entry></l>"#,
            &plain,
        );
    }

    #[test]
    fn disjoint_merge_allocates_only_the_spine() {
        let a = ArenaDoc::parse(
            r#"<b><item id="1"><n>A</n><p>x</p></item><item id="2"><n>B</n></item></b>"#,
        )
        .unwrap();
        let b = ArenaDoc::parse(r#"<b><item id="3"><n>C</n><q>y</q></item></b>"#).unwrap();
        let m = merge_arena(&a, &b, &keys()).unwrap();
        let s = m.stats();
        // Only the <b> root is fresh; every <item> subtree is grafted.
        assert_eq!(s.fresh_nodes, 1, "{s:?}");
        assert_eq!(s.shared_subtrees, 1 + 3, "{s:?}"); // initial doc + 3 items
        assert!(s.shared_nodes > s.fresh_nodes);
    }

    #[test]
    fn merge_all_matches_owned_fold() {
        let srcs: Vec<String> = (1..=4)
            .map(|i| format!(r#"<b><item id="{i}"><n>N{i}</n></item></b>"#))
            .collect();
        let owned: Vec<Element> = srcs.iter().map(|s| parse(s).unwrap()).collect();
        let arena: Vec<ArenaDoc> = srcs.iter().map(|s| ArenaDoc::parse(s).unwrap()).collect();
        let refs: Vec<&ArenaDoc> = arena.iter().collect();
        let o = merge_all(&owned, &keys()).unwrap();
        let m = merge_arena_all(&refs, &keys()).unwrap();
        assert_eq!(m.to_element(), o);
        assert_eq!(m.to_xml(), o.to_xml());
        assert!(merge_arena_all(&[], &keys()).is_err());
    }

    #[test]
    fn conflict_leaves_receiver_usable() {
        let a = ArenaDoc::parse(r#"<e x="1"/>"#).unwrap();
        let b = ArenaDoc::parse(r#"<e x="9"/>"#).unwrap();
        let c = ArenaDoc::parse(r#"<e y="2"/>"#).unwrap();
        let acc = MergeOut::from_doc(&a);
        assert!(acc.merge_with(&b, &keys()).is_err());
        // The failed merge must not have corrupted `acc`.
        let ok = acc.merge_with(&c, &keys()).unwrap();
        assert_eq!(ok.to_xml(), r#"<e x="1" y="2"/>"#);
    }

    #[test]
    fn root_identity_tracks_merged_attrs() {
        let k = MergeKeys::new();
        let a = ArenaDoc::parse("<u><n>x</n></u>").unwrap();
        let b = ArenaDoc::parse(r#"<u id="7"><m>y</m></u>"#).unwrap();
        let acc = MergeOut::from_doc(&a);
        assert_eq!(acc.root_identity(&k), None);
        let m = acc.merge_with(&b, &k).unwrap();
        // After the union the root carries id=7, and identity sees it.
        let (name, idv) = m.root_identity(&k).unwrap();
        assert_eq!(NameInterner::resolve(name), "u");
        assert_eq!(idv, "id=7");
        assert_eq!(m.root_name(), name);
    }

    #[test]
    fn serializer_follows_grafts() {
        let a = ArenaDoc::parse(r#"<b><item id="1"><n>A &amp; B</n></item></b>"#).unwrap();
        let b = ArenaDoc::parse(r#"<b><item id="2"/></b>"#).unwrap();
        let m = merge_arena(&a, &b, &keys()).unwrap();
        assert_eq!(
            m.to_xml(),
            r#"<b><item id="1"><n>A &amp; B</n></item><item id="2"/></b>"#
        );
        assert_eq!(m.to_xml(), m.to_element().to_xml());
    }
}
