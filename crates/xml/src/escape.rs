//! Entity escaping and unescaping for text and attribute values.
//!
//! Both escape directions are scan-first: a byte scan (escapable
//! characters are all ASCII, so scanning bytes is UTF-8 safe) decides
//! whether anything needs escaping at all, and the overwhelmingly
//! common clean string is appended in one `push_str` — the [`Cow`]
//! variants hand it back borrowed without touching an output buffer.

use std::borrow::Cow;

/// Escapes the predefined XML entities for text content, returning the
/// input borrowed when nothing needs escaping.
pub(crate) fn escape_text_cow(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Escapes for a double-quoted attribute value, returning the input
/// borrowed when nothing needs escaping.
pub(crate) fn escape_attr_cow(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Escapes the five predefined XML entities for use in text content.
pub(crate) fn escape_text(s: &str, out: &mut String) {
    out.push_str(&escape_text_cow(s));
}

/// Escapes for a double-quoted attribute value.
pub(crate) fn escape_attr(s: &str, out: &mut String) {
    out.push_str(&escape_attr_cow(s));
}

/// Resolves one entity reference starting *after* the `&`. Returns the
/// decoded char and the number of input bytes consumed (excluding `&`),
/// or `None` if the reference is malformed.
pub(crate) fn resolve_entity(rest: &str) -> Option<(char, usize)> {
    let semi = rest.find(';')?;
    if semi == 0 || semi > 10 {
        return None;
    }
    let name = &rest[..semi];
    let ch = match name {
        "amp" => '&',
        "lt" => '<',
        "gt" => '>',
        "quot" => '"',
        "apos" => '\'',
        _ => {
            let code = if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                u32::from_str_radix(hex, 16).ok()?
            } else if let Some(dec) = name.strip_prefix('#') {
                dec.parse::<u32>().ok()?
            } else {
                return None;
            };
            char::from_u32(code)?
        }
    };
    Some((ch, semi + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip_chars() {
        let mut s = String::new();
        escape_text("a<b&c>d", &mut s);
        assert_eq!(s, "a&lt;b&amp;c&gt;d");
        let mut a = String::new();
        escape_attr(r#"say "hi" & 'bye'"#, &mut a);
        assert_eq!(a, "say &quot;hi&quot; &amp; &apos;bye&apos;");
    }

    #[test]
    fn clean_strings_borrow() {
        assert!(matches!(escape_text_cow("plain text"), std::borrow::Cow::Borrowed(_)));
        assert!(matches!(escape_attr_cow("plain attr"), std::borrow::Cow::Borrowed(_)));
        // Attribute escaping is stricter than text escaping.
        assert!(matches!(escape_text_cow(r#"has "quotes""#), std::borrow::Cow::Borrowed(_)));
        assert!(matches!(escape_attr_cow(r#"has "quotes""#), std::borrow::Cow::Owned(_)));
        // UTF-8 passes the byte scan untouched.
        assert!(matches!(escape_text_cow("déjà vü"), std::borrow::Cow::Borrowed(_)));
    }

    #[test]
    fn entities_resolve() {
        assert_eq!(resolve_entity("amp;x"), Some(('&', 4)));
        assert_eq!(resolve_entity("lt;"), Some(('<', 3)));
        assert_eq!(resolve_entity("#65;"), Some(('A', 4)));
        assert_eq!(resolve_entity("#x41;"), Some(('A', 5)));
        assert_eq!(resolve_entity("bogus;"), None);
        assert_eq!(resolve_entity("noend"), None);
        assert_eq!(resolve_entity(";"), None);
    }
}
