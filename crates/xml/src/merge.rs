//! Deep-union merge of profile components.
//!
//! Figure 9 of the paper splits Arnaud's address book across Yahoo!
//! (personal entries) and Lucent (corporate entries); a request for the
//! whole book returns referrals to both stores **"as well as a way to
//! merge the two XML fragments"**. The paper cites Buneman et al.'s
//! *deep union* for deterministic semistructured data as the relevant
//! operator (§6). This module implements it.
//!
//! The merge is driven by a [`MergeKeys`] specification: for each tag
//! name it names the attribute that identifies an element among its
//! siblings. Two sibling elements with the same tag and the same key
//! value denote *the same logical node* and are merged recursively;
//! elements whose tag has no key are matched positionally when their
//! content is identical, otherwise both are kept (set union). Text
//! content conflicts surface as [`XmlError::MergeConflict`].

use std::collections::HashMap;

use crate::error::XmlError;
use crate::node::{Element, Node};

/// Per-tag key attributes driving [`merge`].
///
/// `id` and `name` are treated as default keys: if a tag has no explicit
/// entry but the element carries an `id` (or, failing that, `name`)
/// attribute, that attribute is used.
#[derive(Debug, Clone, Default)]
pub struct MergeKeys {
    keys: HashMap<String, String>,
    /// When true (default), fall back to `id`/`name` attributes for tags
    /// without an explicit key.
    pub use_default_keys: bool,
}

impl MergeKeys {
    /// An empty specification with default-key fallback enabled.
    pub fn new() -> Self {
        MergeKeys { keys: HashMap::new(), use_default_keys: true }
    }

    /// Builder: declares `attr` as the key attribute for `tag`.
    pub fn with_key(mut self, tag: impl Into<String>, attr: impl Into<String>) -> Self {
        self.keys.insert(tag.into(), attr.into());
        self
    }

    /// Returns the explicitly configured key attribute for `tag`, if any.
    pub fn explicit_key(&self, tag: &str) -> Option<String> {
        self.keys.get(tag).cloned()
    }

    /// Borrowed form of [`MergeKeys::explicit_key`] for the arena merge
    /// hot path: no clone per identity probe.
    pub fn key_attr(&self, tag: &str) -> Option<&str> {
        self.keys.get(tag).map(String::as_str)
    }

    /// Returns the identity of `e` among its siblings: `(tag, key-value)`
    /// when a key attribute applies and is present. Two siblings with
    /// equal identity denote the same logical node.
    pub fn identity(&self, e: &Element) -> Option<(String, String)> {
        if let Some(attr) = self.keys.get(&e.name) {
            return e.attr(attr).map(|v| (e.name.clone(), format!("{attr}={v}")));
        }
        if self.use_default_keys {
            for attr in ["id", "name", "type"] {
                if let Some(v) = e.attr(attr) {
                    return Some((e.name.clone(), format!("{attr}={v}")));
                }
            }
        }
        None
    }
}

/// Deep-union merge of two elements denoting the same logical node.
///
/// Requirements: `a.name == b.name`. Attributes are unioned (conflicting
/// values for the same attribute are an error). Keyed children with equal
/// identity merge recursively; all other children are unioned with
/// duplicate suppression. If both sides have (non-whitespace) text and it
/// differs, the merge conflicts.
///
/// ```
/// use gupster_xml::{merge, parse, MergeKeys};
///
/// // The Figure-9 scenario: personal entries at Yahoo!, corporate at
/// // Lucent — merged back into one address book by the client.
/// let yahoo = parse(r#"<address-book><item id="1"><name>Mom</name></item></address-book>"#).unwrap();
/// let lucent = parse(r#"<address-book><item id="2"><name>Rick</name></item></address-book>"#).unwrap();
/// let keys = MergeKeys::new().with_key("item", "id");
/// let book = merge(&yahoo, &lucent, &keys).unwrap();
/// assert_eq!(book.children_named("item").count(), 2);
/// ```
pub fn merge(a: &Element, b: &Element, keys: &MergeKeys) -> Result<Element, XmlError> {
    if a.name != b.name {
        return Err(XmlError::MergeConflict {
            tag: a.name.clone(),
            detail: format!("cannot merge <{}> with <{}>", a.name, b.name),
        });
    }
    let mut out = Element::new(a.name.clone());

    // Attribute union.
    for (n, v) in &a.attrs {
        out.attrs.push((n.clone(), v.clone()));
    }
    for (n, v) in &b.attrs {
        match out.attr(n) {
            None => out.attrs.push((n.clone(), v.clone())),
            Some(existing) if existing == v => {}
            Some(existing) => {
                return Err(XmlError::MergeConflict {
                    tag: a.name.clone(),
                    detail: format!("attribute '{n}' differs: '{existing}' vs '{v}'"),
                })
            }
        }
    }

    // Text: non-whitespace direct text must agree.
    let ta = a.text();
    let tb = b.text();
    let (ta_t, tb_t) = (ta.trim(), tb.trim());
    let merged_text = if ta_t.is_empty() {
        tb
    } else if tb_t.is_empty() || ta_t == tb_t {
        ta
    } else {
        return Err(XmlError::MergeConflict {
            tag: a.name.clone(),
            detail: format!("text differs: '{ta_t}' vs '{tb_t}'"),
        });
    };

    // Children. Keyed children merge by identity. Unkeyed children that
    // appear exactly once per side under the same tag denote the same
    // logical singleton field (e.g. `<name>`) and merge recursively —
    // conflicting singleton values surface as errors rather than being
    // silently duplicated. All other unkeyed children are unioned with
    // exact-duplicate suppression.
    let mut merged: Vec<Node> = Vec::new();
    let mut index: HashMap<(String, String), usize> = HashMap::new();

    let count_unkeyed = |side: &Element, tag: &str| {
        side.child_elements()
            .filter(|c| c.name == tag && keys.identity(c).is_none())
            .count()
    };

    let add_side = |side: &Element,
                        other: &Element,
                        first_pass: bool,
                        merged: &mut Vec<Node>,
                        index: &mut HashMap<(String, String), usize>|
     -> Result<(), XmlError> {
        for ch in side.child_elements() {
            match keys.identity(ch) {
                Some(idn) => {
                    if let Some(&at) = index.get(&idn) {
                        let existing = match &merged[at] {
                            Node::Element(e) => e.clone(),
                            Node::Text(_) => unreachable!(),
                        };
                        merged[at] = Node::Element(merge(&existing, ch, keys)?);
                    } else {
                        index.insert(idn, merged.len());
                        merged.push(Node::Element(ch.clone()));
                    }
                }
                None => {
                    let singleton = count_unkeyed(side, &ch.name) == 1
                        && count_unkeyed(other, &ch.name) == 1;
                    if singleton {
                        if first_pass {
                            let peer = other
                                .child_elements()
                                .find(|c| c.name == ch.name && keys.identity(c).is_none())
                                .expect("counted above");
                            merged.push(Node::Element(merge(ch, peer, keys)?));
                        }
                        // Second pass: already merged during the first.
                    } else {
                        // Unkeyed: suppress exact duplicates, keep both otherwise.
                        let dup =
                            merged.iter().any(|m| matches!(m, Node::Element(e) if e == ch));
                        if !dup {
                            merged.push(Node::Element(ch.clone()));
                        }
                    }
                }
            }
        }
        Ok(())
    };

    add_side(a, b, true, &mut merged, &mut index)?;
    add_side(b, a, false, &mut merged, &mut index)?;

    if !merged_text.trim().is_empty() {
        merged.push(Node::Text(merged_text.into_owned()));
    }
    out.children = merged;
    Ok(out)
}

/// Merges a non-empty sequence of fragments left to right.
pub fn merge_all(parts: &[Element], keys: &MergeKeys) -> Result<Element, XmlError> {
    let (first, rest) = parts.split_first().ok_or_else(|| XmlError::MergeConflict {
        tag: String::new(),
        detail: "merge_all of zero fragments".into(),
    })?;
    let mut acc = first.clone();
    for p in rest {
        acc = merge(&acc, p, keys)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn keys() -> MergeKeys {
        MergeKeys::new().with_key("item", "id")
    }

    #[test]
    fn split_address_book_merges() {
        // The Figure 9 scenario: personal at Yahoo!, corporate at Lucent.
        let yahoo = parse(
            r#"<address-book><item id="1" type="personal"><name>Mom</name></item></address-book>"#,
        )
        .unwrap();
        let lucent = parse(
            r#"<address-book><item id="2" type="corporate"><name>Rick</name></item></address-book>"#,
        )
        .unwrap();
        let m = merge(&yahoo, &lucent, &keys()).unwrap();
        assert_eq!(m.children_named("item").count(), 2);
    }

    #[test]
    fn same_identity_merges_recursively() {
        let a = parse(r#"<book><item id="1"><name>Bob</name></item></book>"#).unwrap();
        let b = parse(r#"<book><item id="1"><phone>555</phone></item></book>"#).unwrap();
        let m = merge(&a, &b, &keys()).unwrap();
        let items: Vec<_> = m.children_named("item").collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].child("name").unwrap().text(), "Bob");
        assert_eq!(items[0].child("phone").unwrap().text(), "555");
    }

    #[test]
    fn conflicting_text_is_error() {
        let a = parse(r#"<book><item id="1"><name>Bob</name></item></book>"#).unwrap();
        let b = parse(r#"<book><item id="1"><name>Robert</name></item></book>"#).unwrap();
        let err = merge(&a, &b, &keys()).unwrap_err();
        assert!(matches!(err, XmlError::MergeConflict { .. }));
    }

    #[test]
    fn agreeing_text_is_fine() {
        let a = parse(r#"<n>Bob</n>"#).unwrap();
        let b = parse(r#"<n>Bob</n>"#).unwrap();
        assert_eq!(merge(&a, &b, &keys()).unwrap().text(), "Bob");
    }

    #[test]
    fn attribute_union_and_conflict() {
        let a = parse(r#"<e x="1"/>"#).unwrap();
        let b = parse(r#"<e y="2"/>"#).unwrap();
        let m = merge(&a, &b, &keys()).unwrap();
        assert_eq!(m.attr("x"), Some("1"));
        assert_eq!(m.attr("y"), Some("2"));
        let c = parse(r#"<e x="9"/>"#).unwrap();
        assert!(merge(&a, &c, &keys()).is_err());
    }

    #[test]
    fn unkeyed_duplicates_suppressed() {
        let a = parse(r#"<l><v>1</v><v>2</v></l>"#).unwrap();
        let b = parse(r#"<l><v>2</v><v>3</v></l>"#).unwrap();
        // <v> carries no key attr; exact duplicates collapse.
        let m = merge(&a, &b, &MergeKeys::new()).unwrap();
        assert_eq!(m.children_named("v").count(), 3);
    }

    #[test]
    fn default_id_key_applies() {
        let a = parse(r#"<l><entry id="x"><a>1</a></entry></l>"#).unwrap();
        let b = parse(r#"<l><entry id="x"><b>2</b></entry></l>"#).unwrap();
        let m = merge(&a, &b, &MergeKeys::new()).unwrap();
        assert_eq!(m.children_named("entry").count(), 1);
    }

    #[test]
    fn mismatched_roots_rejected() {
        let a = parse("<a/>").unwrap();
        let b = parse("<b/>").unwrap();
        assert!(merge(&a, &b, &keys()).is_err());
    }

    #[test]
    fn merge_idempotent() {
        let a = parse(r#"<book><item id="1"><name>Bob</name></item></book>"#).unwrap();
        assert_eq!(merge(&a, &a, &keys()).unwrap(), a);
    }

    #[test]
    fn merge_commutative_on_disjoint() {
        let a = parse(r#"<b><item id="1"><n>A</n></item></b>"#).unwrap();
        let b = parse(r#"<b><item id="2"><n>B</n></item></b>"#).unwrap();
        let ab = merge(&a, &b, &keys()).unwrap();
        let ba = merge(&b, &a, &keys()).unwrap();
        // Same multiset of items (order may differ).
        let mut xs: Vec<String> = ab.children_named("item").map(|e| e.to_xml()).collect();
        let mut ys: Vec<String> = ba.children_named("item").map(|e| e.to_xml()).collect();
        xs.sort();
        ys.sort();
        assert_eq!(xs, ys);
    }

    #[test]
    fn merge_all_three_fragments() {
        let parts: Vec<_> = ["1", "2", "3"]
            .iter()
            .map(|i| parse(&format!(r#"<b><item id="{i}"/></b>"#)).unwrap())
            .collect();
        let m = merge_all(&parts, &keys()).unwrap();
        assert_eq!(m.children_named("item").count(), 3);
        assert!(merge_all(&[], &keys()).is_err());
    }
}
