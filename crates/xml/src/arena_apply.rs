//! Applying edit operations to arena documents.
//!
//! The sync fast path ships [`EditOp`]s between replicas. PR 7 moved
//! the fetch/merge hot path onto [`ArenaDoc`]; this module does the
//! same for the *write* hot path: [`apply_arena`] replays one op
//! against an arena document with **exactly** the semantics of
//! [`EditOp::apply`] on the owned tree — same resolution rules, same
//! child/attribute ordering, same error conditions — so the owned
//! apply can serve as a byte-identical differential oracle.

use crate::arena::{ArenaDoc, NodeId};
use crate::error::XmlError;
use crate::path::{NodePath, Step};
use crate::tree_diff::EditOp;

fn step_matches(doc: &ArenaDoc, id: NodeId, step: &Step) -> bool {
    if doc.name(id) != step.name {
        return false;
    }
    match &step.key {
        Some((a, v)) => doc.attr(id, a) == Some(v.as_str()),
        None => true,
    }
}

/// Resolves a [`NodePath`] against an arena document, mirroring
/// [`NodePath::resolve`]: each step selects the `index`-th child
/// element matching the step's name (and key attribute, if any).
pub fn resolve_arena(doc: &ArenaDoc, path: &NodePath) -> Option<NodeId> {
    let mut cur = doc.root();
    for step in &path.steps {
        cur = doc.child_elements(cur).filter(|&c| step_matches(doc, c, step)).nth(step.index)?;
    }
    Some(cur)
}

/// Removes the element addressed by `path`, mirroring
/// [`NodePath::remove`]: errors if the path does not resolve; the root
/// cannot be removed. Returns the removed node's id (its rows become
/// arena garbage).
fn remove_arena(doc: &mut ArenaDoc, path: &NodePath) -> Result<NodeId, XmlError> {
    let Some((last, prefix)) = path.steps.split_last() else {
        return Err(XmlError::PathNotFound("cannot remove the root".into()));
    };
    let parent = resolve_arena(doc, &NodePath { steps: prefix.to_vec() })
        .ok_or_else(|| XmlError::PathNotFound(path.to_string()))?;
    let target = doc
        .child_elements(parent)
        .filter(|&c| step_matches(doc, c, last))
        .nth(last.index)
        .ok_or_else(|| XmlError::PathNotFound(path.to_string()))?;
    doc.remove_child(parent, target);
    Ok(target)
}

/// Applies one [`EditOp`] to an arena document. Semantics (including
/// failure cases) match [`EditOp::apply`] on the owned tree exactly.
pub fn apply_arena(op: &EditOp, doc: &mut ArenaDoc) -> Result<(), XmlError> {
    match op {
        EditOp::Insert { parent, element } => {
            let p = resolve_arena(doc, parent)
                .ok_or_else(|| XmlError::PathNotFound(parent.to_string()))?;
            let child = doc.graft_element(element);
            doc.push_child(p, child);
            Ok(())
        }
        EditOp::Delete { path } => remove_arena(doc, path).map(|_| ()),
        EditOp::SetText { path, text } => {
            let e = resolve_arena(doc, path)
                .ok_or_else(|| XmlError::PathNotFound(path.to_string()))?;
            doc.set_text(e, text);
            Ok(())
        }
        EditOp::SetAttr { path, name, value } => {
            let e = resolve_arena(doc, path)
                .ok_or_else(|| XmlError::PathNotFound(path.to_string()))?;
            doc.set_attr(e, name, value);
            Ok(())
        }
        EditOp::RemoveAttr { path, name } => {
            let e = resolve_arena(doc, path)
                .ok_or_else(|| XmlError::PathNotFound(path.to_string()))?;
            doc.remove_attr(e, name);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Element;
    use crate::parse;

    fn sample() -> Element {
        parse(
            r#"<book><item id="a"><n>A</n></item><item id="b"><n>B</n></item><note>x</note></book>"#,
        )
        .unwrap()
    }

    /// Applies `op` both ways and asserts identical outcomes (success
    /// and resulting tree, or failure on both).
    fn check(op: EditOp) {
        let mut owned = sample();
        let mut arena = ArenaDoc::from_element(&owned);
        let r_owned = op.apply(&mut owned);
        let r_arena = apply_arena(&op, &mut arena);
        assert_eq!(r_owned.is_ok(), r_arena.is_ok(), "op {op:?}");
        assert_eq!(owned, arena.root_element(), "op {op:?}");
    }

    #[test]
    fn ops_mirror_owned_apply() {
        let item_a = NodePath::root().keyed("item", "id", "a");
        check(EditOp::SetText { path: item_a.clone().child("n", 0), text: "A2".into() });
        check(EditOp::SetText { path: NodePath::root().child("note", 0), text: "y".into() });
        check(EditOp::SetText { path: NodePath::root(), text: "top".into() });
        check(EditOp::SetAttr { path: item_a.clone(), name: "id".into(), value: "z".into() });
        check(EditOp::SetAttr { path: item_a.clone(), name: "fresh".into(), value: "1".into() });
        check(EditOp::RemoveAttr { path: item_a.clone(), name: "id".into() });
        check(EditOp::RemoveAttr { path: item_a.clone(), name: "absent".into() });
        check(EditOp::Delete { path: item_a.clone() });
        check(EditOp::Delete { path: NodePath::root().child("note", 0) });
        check(EditOp::Insert {
            parent: NodePath::root(),
            element: Element::new("item")
                .with_attr("id", "c")
                .with_child(Element::new("n").with_text("C")),
        });
        check(EditOp::Insert { parent: item_a, element: Element::new("tag").with_text("t") });
    }

    #[test]
    fn failures_mirror_owned_apply() {
        check(EditOp::SetText { path: NodePath::root().child("ghost", 0), text: "x".into() });
        check(EditOp::Delete { path: NodePath::root().keyed("item", "id", "zz") });
        check(EditOp::Delete { path: NodePath::root() });
        check(EditOp::Insert {
            parent: NodePath::root().child("ghost", 0),
            element: Element::new("e"),
        });
    }

    #[test]
    fn sequences_keep_mirroring() {
        // Edits whose applicability depends on earlier edits.
        let mut owned = sample();
        let mut arena = ArenaDoc::from_element(&owned);
        let ops = [
            EditOp::Insert {
                parent: NodePath::root(),
                element: Element::new("item").with_attr("id", "c"),
            },
            EditOp::SetText {
                path: NodePath::root().keyed("item", "id", "c"),
                text: "fresh".into(),
            },
            EditOp::SetAttr {
                path: NodePath::root().keyed("item", "id", "c"),
                name: "id".into(),
                value: "d".into(),
            },
            // Old key no longer resolves.
            EditOp::SetText { path: NodePath::root().keyed("item", "id", "c"), text: "!".into() },
            EditOp::Delete { path: NodePath::root().keyed("item", "id", "d") },
        ];
        for op in &ops {
            let r_owned = op.apply(&mut owned);
            let r_arena = apply_arena(op, &mut arena);
            assert_eq!(r_owned.is_ok(), r_arena.is_ok(), "op {op:?}");
        }
        assert_eq!(owned, arena.root_element());
    }

    #[test]
    fn resolve_mirrors_owned_resolution() {
        let owned = sample();
        let arena = ArenaDoc::from_element(&owned);
        for path in [
            NodePath::root(),
            NodePath::root().keyed("item", "id", "b"),
            NodePath::root().child("item", 1),
            NodePath::root().keyed("item", "id", "zz"),
            NodePath::root().child("nope", 0),
        ] {
            let o = path.resolve(&owned);
            let a = resolve_arena(&arena, &path);
            assert_eq!(o.is_some(), a.is_some(), "path {path}");
            if let (Some(o), Some(a)) = (o, a) {
                assert_eq!(*o, arena.to_element(a), "path {path}");
            }
        }
    }
}
