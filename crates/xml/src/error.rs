//! Error types for the XML subsystem.

use std::fmt;

/// A parse error with byte offset and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// 1-based line number of the error.
    pub line: usize,
    /// 1-based column (in bytes) of the error.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, input: &str, message: impl Into<String>) -> Self {
        let mut line = 1usize;
        let mut col = 1usize;
        for b in input.as_bytes()[..offset.min(input.len())].iter() {
            if *b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError { offset, line, column: col, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors raised by non-parsing XML operations (merge, diff application).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Two elements could not be merged because their keyed identities
    /// collide with incompatible content.
    MergeConflict {
        /// Tag name of the conflicting element.
        tag: String,
        /// Description of the conflict.
        detail: String,
    },
    /// A [`crate::NodePath`] did not resolve in the target tree.
    PathNotFound(String),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::MergeConflict { tag, detail } => {
                write!(f, "merge conflict on <{tag}>: {detail}")
            }
            XmlError::PathNotFound(p) => write!(f, "node path not found: {p}"),
        }
    }
}

impl std::error::Error for XmlError {}
