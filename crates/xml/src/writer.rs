//! XML serialization (compact and pretty).

use crate::escape::{escape_attr, escape_text};
use crate::node::{Element, Node};

pub(crate) fn write_compact(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_attr(v, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for ch in &e.children {
        match ch {
            Node::Element(c) => write_compact(c, out),
            Node::Text(t) => escape_text(t, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

pub(crate) fn write_pretty(e: &Element, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_attr(v, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    let only_text = e.children.iter().all(|c| matches!(c, Node::Text(_)));
    out.push('>');
    if only_text {
        for ch in &e.children {
            if let Node::Text(t) = ch {
                escape_text(t, out);
            }
        }
    } else {
        for ch in &e.children {
            out.push('\n');
            match ch {
                Node::Element(c) => write_pretty(c, indent + 1, out),
                Node::Text(t) => {
                    out.push_str(&"  ".repeat(indent + 1));
                    escape_text(t, out);
                }
            }
        }
        out.push('\n');
        out.push_str(&pad);
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use crate::node::Element;
    use crate::parse;

    #[test]
    fn pretty_shape() {
        let e = Element::new("a")
            .with_child(Element::new("b").with_text("x"))
            .with_child(Element::new("c"));
        let p = e.to_pretty_xml();
        assert_eq!(p, "<a>\n  <b>x</b>\n  <c/>\n</a>");
    }

    #[test]
    fn pretty_roundtrips_to_same_value() {
        let e = Element::new("root")
            .with_attr("id", "u1")
            .with_child(
                Element::new("inner")
                    .with_child(Element::new("leaf").with_text("v < 3 & more")),
            );
        assert_eq!(parse(&e.to_pretty_xml()).unwrap(), e);
        assert_eq!(parse(&e.to_xml()).unwrap(), e);
    }
}
