//! The owned XML tree value model.

use std::fmt;

use crate::writer;

/// A child of an [`Element`]: either a nested element or a text run.
///
/// Comments and processing instructions are dropped at parse time — they
/// carry no profile data and the paper's coverage language (§4.5) only
/// addresses elements and attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A run of character data (entity references already resolved).
    Text(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Returns the contained element mutably, if this node is one.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Returns the contained text, if this node is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Element(_) => None,
            Node::Text(t) => Some(t),
        }
    }
}

/// An XML element: a tag name, ordered attributes, and ordered children.
///
/// Attribute order is preserved for deterministic serialization, but
/// equality and hashing treat attributes as a set keyed by name (XML
/// semantics: attribute order is not significant). Duplicate attribute
/// names are rejected by the parser and by [`Element::set_attr`].
#[derive(Debug, Clone, Default)]
pub struct Element {
    /// Tag name (no namespace handling; GUP schema names are plain).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Children in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builder: adds (or replaces) an attribute and returns `self`.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder: appends a child element and returns `self`.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: appends a text child and returns `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Returns the value of the named attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Sets an attribute, replacing any existing value for the same name.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        match self.attrs.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.attrs.push((name, value)),
        }
    }

    /// Removes the named attribute, returning its value if it was present.
    pub fn remove_attr(&mut self, name: &str) -> Option<String> {
        let idx = self.attrs.iter().position(|(n, _)| n == name)?;
        Some(self.attrs.remove(idx).1)
    }

    /// Iterates over child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Iterates mutably over child elements (skipping text nodes).
    pub fn child_elements_mut(&mut self) -> impl Iterator<Item = &mut Element> {
        self.children.iter_mut().filter_map(Node::as_element_mut)
    }

    /// Returns the first child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Returns the first child element with the given tag name, mutably.
    pub fn child_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.child_elements_mut().find(|e| e.name == name)
    }

    /// Iterates over child elements with the given tag name. Borrowing
    /// and lazy — no `Vec` is allocated on this (hot) path.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Appends a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Appends a text child.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// The concatenation of all *direct* text children. Borrows when
    /// there is at most one text child (the overwhelmingly common case
    /// for profile leaves) — no allocation on that fast path.
    pub fn text(&self) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        let mut texts = self.children.iter().filter_map(Node::as_text);
        let Some(first) = texts.next() else { return Cow::Borrowed("") };
        match texts.next() {
            None => Cow::Borrowed(first),
            Some(second) => {
                let mut out = String::with_capacity(first.len() + second.len());
                out.push_str(first);
                out.push_str(second);
                for t in texts {
                    out.push_str(t);
                }
                Cow::Owned(out)
            }
        }
    }

    /// The concatenation of all text in the subtree, document order.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        fn walk(e: &Element, out: &mut String) {
            for ch in &e.children {
                match ch {
                    Node::Text(t) => out.push_str(t),
                    Node::Element(c) => walk(c, out),
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Replaces all text children with a single text node.
    pub fn set_text(&mut self, text: impl Into<String>) {
        self.children.retain(|c| matches!(c, Node::Element(_)));
        self.children.push(Node::Text(text.into()));
    }

    /// True if the element has no children at all.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of element nodes in the subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self.child_elements().map(Element::subtree_size).sum::<usize>()
    }

    /// Depth of the subtree (a leaf element has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.child_elements().map(Element::depth).max().unwrap_or(0)
    }

    /// Serialized size in bytes of the compact form. Used by the network
    /// simulator to charge transfer time for profile payloads.
    pub fn byte_size(&self) -> usize {
        self.to_xml().len()
    }

    /// Compact (single-line) XML serialization.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        writer::write_compact(self, &mut out);
        out
    }

    /// Indented XML serialization (two spaces per level).
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::new();
        writer::write_pretty(self, 0, &mut out);
        out
    }

    /// Follows a chain of child tag names, returning the first match at
    /// each step. Convenience for digging into profile documents:
    /// `profile.get_path(&["MyContacts", "address-book"])`.
    pub fn get_path(&self, path: &[&str]) -> Option<&Element> {
        let mut cur = self;
        for seg in path {
            cur = cur.child(seg)?;
        }
        Some(cur)
    }

    /// Like [`Element::get_path`] but creates missing intermediate
    /// elements along the way.
    pub fn get_or_create_path(&mut self, path: &[&str]) -> &mut Element {
        let mut cur = self;
        for seg in path {
            // Two-phase to satisfy the borrow checker on older NLL.
            let pos = cur.children.iter().position(
                |c| matches!(c, Node::Element(e) if e.name == *seg),
            );
            let idx = match pos {
                Some(i) => i,
                None => {
                    cur.children.push(Node::Element(Element::new(*seg)));
                    cur.children.len() - 1
                }
            };
            cur = match &mut cur.children[idx] {
                Node::Element(e) => e,
                Node::Text(_) => unreachable!("position matched an element"),
            };
        }
        cur
    }
}

impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        if self.name != other.name
            || self.attrs.len() != other.attrs.len()
            || self.children != other.children
        {
            return false;
        }
        // Attribute *sets* must match regardless of order.
        self.attrs
            .iter()
            .all(|(n, v)| other.attr(n) == Some(v.as_str()))
    }
}

impl Eq for Element {}

impl std::hash::Hash for Element {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        // Order-insensitive attribute hash: XOR of per-pair hashes.
        let mut acc: u64 = 0;
        for (n, v) in &self.attrs {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::hash::Hash::hash(&(n, v), &mut h);
            acc ^= std::hash::Hasher::finish(&h);
        }
        state.write_u64(acc);
        self.children.hash(state);
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let e = Element::new("user")
            .with_attr("id", "arnaud")
            .with_child(Element::new("presence").with_text("online"));
        assert_eq!(e.attr("id"), Some("arnaud"));
        assert_eq!(e.child("presence").unwrap().text(), "online");
        assert_eq!(e.to_xml(), r#"<user id="arnaud"><presence>online</presence></user>"#);
    }

    #[test]
    fn attr_set_replaces() {
        let mut e = Element::new("a").with_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attrs.len(), 1);
        assert_eq!(e.attr("k"), Some("2"));
    }

    #[test]
    fn remove_attr_returns_value() {
        let mut e = Element::new("a").with_attr("k", "1");
        assert_eq!(e.remove_attr("k"), Some("1".into()));
        assert_eq!(e.remove_attr("k"), None);
    }

    #[test]
    fn equality_ignores_attr_order() {
        let a = Element::new("e").with_attr("x", "1").with_attr("y", "2");
        let b = Element::new("e").with_attr("y", "2").with_attr("x", "1");
        assert_eq!(a, b);
        let c = Element::new("e").with_attr("x", "1").with_attr("y", "3");
        assert_ne!(a, c);
    }

    #[test]
    fn equality_respects_child_order() {
        let a = Element::new("e")
            .with_child(Element::new("p"))
            .with_child(Element::new("q"));
        let b = Element::new("e")
            .with_child(Element::new("q"))
            .with_child(Element::new("p"));
        assert_ne!(a, b);
    }

    #[test]
    fn hash_consistent_with_eq_across_attr_order() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Element::new("e").with_attr("x", "1").with_attr("y", "2");
        let b = Element::new("e").with_attr("y", "2").with_attr("x", "1");
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn text_and_deep_text() {
        let e = Element::new("a")
            .with_text("x")
            .with_child(Element::new("b").with_text("y"))
            .with_text("z");
        assert_eq!(e.text(), "xz");
        assert_eq!(e.deep_text(), "xyz");
    }

    #[test]
    fn set_text_preserves_element_children() {
        let mut e = Element::new("a")
            .with_text("old")
            .with_child(Element::new("b"));
        e.set_text("new");
        assert_eq!(e.text(), "new");
        assert!(e.child("b").is_some());
    }

    #[test]
    fn get_path_and_create() {
        let mut root = Element::new("MyProfile");
        root.get_or_create_path(&["MyContacts", "address-book"]).set_text("x");
        assert_eq!(root.get_path(&["MyContacts", "address-book"]).unwrap().text(), "x");
        assert!(root.get_path(&["Nope"]).is_none());
        // Re-walking must not duplicate intermediates.
        root.get_or_create_path(&["MyContacts", "address-book"]);
        assert_eq!(root.children_named("MyContacts").count(), 1);
    }

    #[test]
    fn size_and_depth() {
        let e = Element::new("a")
            .with_child(Element::new("b").with_child(Element::new("c")))
            .with_child(Element::new("d"));
        assert_eq!(e.subtree_size(), 4);
        assert_eq!(e.depth(), 3);
    }
}
