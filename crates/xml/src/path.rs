//! Stable node addressing for updates, diffs and change logs.
//!
//! A [`NodePath`] names one element inside a tree by a chain of steps.
//! Each step selects a child element by tag name plus either a *key
//! attribute* (preferred — stable under reordering, which matters for
//! synchronizing address books whose entries move around) or an
//! occurrence index among same-named siblings.

use std::fmt;

use crate::error::XmlError;
use crate::node::{Element, Node};

/// One step in a [`NodePath`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    /// Child tag name to descend into.
    pub name: String,
    /// If set, select the child whose attribute `key.0` equals `key.1`.
    pub key: Option<(String, String)>,
    /// Occurrence index (0-based) among children matching name (and key,
    /// if set). Almost always 0 when a key is given.
    pub index: usize,
}

impl Step {
    /// A step selecting the `index`-th child named `name`.
    pub fn indexed(name: impl Into<String>, index: usize) -> Self {
        Step { name: name.into(), key: None, index }
    }

    /// A step selecting the child named `name` whose attribute `attr`
    /// equals `value`.
    pub fn keyed(
        name: impl Into<String>,
        attr: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        Step { name: name.into(), key: Some((attr.into(), value.into())), index: 0 }
    }

    fn matches(&self, e: &Element) -> bool {
        if e.name != self.name {
            return false;
        }
        match &self.key {
            Some((a, v)) => e.attr(a) == Some(v.as_str()),
            None => true,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some((a, v)) = &self.key {
            write!(f, "[@{a}='{v}']")?;
        }
        if self.index != 0 {
            write!(f, "[{}]", self.index + 1)?;
        }
        Ok(())
    }
}

/// A path from a tree's root element to one descendant element.
///
/// The root element itself is the empty path; steps descend from there.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NodePath {
    /// Steps from the root, outermost first.
    pub steps: Vec<Step>,
}

impl NodePath {
    /// The empty path (the root element).
    pub fn root() -> Self {
        NodePath::default()
    }

    /// Builder: appends an indexed step.
    pub fn child(mut self, name: impl Into<String>, index: usize) -> Self {
        self.steps.push(Step::indexed(name, index));
        self
    }

    /// Builder: appends a keyed step.
    pub fn keyed(
        mut self,
        name: impl Into<String>,
        attr: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        self.steps.push(Step::keyed(name, attr, value));
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the root path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &NodePath) -> bool {
        other.steps.len() >= self.steps.len()
            && self.steps.iter().zip(&other.steps).all(|(a, b)| a == b)
    }

    /// Resolves the path against `root`, returning the addressed element.
    pub fn resolve<'a>(&self, root: &'a Element) -> Option<&'a Element> {
        let mut cur = root;
        for step in &self.steps {
            cur = cur
                .child_elements()
                .filter(|e| step.matches(e))
                .nth(step.index)?;
        }
        Some(cur)
    }

    /// Resolves the path mutably.
    pub fn resolve_mut<'a>(&self, root: &'a mut Element) -> Option<&'a mut Element> {
        let mut cur = root;
        for step in &self.steps {
            cur = cur
                .child_elements_mut()
                .filter(|e| step.matches(e))
                .nth(step.index)?;
        }
        Some(cur)
    }

    /// Resolves the path, creating missing elements along the way (keyed
    /// steps create an element carrying the key attribute).
    pub fn ensure<'a>(&self, root: &'a mut Element) -> &'a mut Element {
        let mut cur = root;
        for step in &self.steps {
            let mut seen = 0usize;
            let pos = cur.children.iter().position(|c| match c {
                Node::Element(e) if step.matches(e) => {
                    if seen == step.index {
                        true
                    } else {
                        seen += 1;
                        false
                    }
                }
                _ => false,
            });
            let idx = match pos {
                Some(i) => i,
                None => {
                    let mut fresh = Element::new(step.name.clone());
                    if let Some((a, v)) = &step.key {
                        fresh.set_attr(a.clone(), v.clone());
                    }
                    cur.children.push(Node::Element(fresh));
                    cur.children.len() - 1
                }
            };
            cur = match &mut cur.children[idx] {
                Node::Element(e) => e,
                Node::Text(_) => unreachable!("position only matches elements"),
            };
        }
        cur
    }

    /// Removes the addressed element from the tree. Errors if the path
    /// does not resolve. The root itself cannot be removed.
    pub fn remove(&self, root: &mut Element) -> Result<Element, XmlError> {
        let Some((last, prefix)) = self.steps.split_last() else {
            return Err(XmlError::PathNotFound("cannot remove the root".into()));
        };
        let parent = NodePath { steps: prefix.to_vec() }
            .resolve_mut(root)
            .ok_or_else(|| XmlError::PathNotFound(self.to_string()))?;
        let mut seen = 0usize;
        let pos = parent.children.iter().position(|c| match c {
            Node::Element(e) if last.matches(e) => {
                if seen == last.index {
                    true
                } else {
                    seen += 1;
                    false
                }
            }
            _ => false,
        });
        match pos {
            Some(i) => match parent.children.remove(i) {
                Node::Element(e) => Ok(e),
                Node::Text(_) => unreachable!(),
            },
            None => Err(XmlError::PathNotFound(self.to_string())),
        }
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return f.write_str("/");
        }
        for step in &self.steps {
            write!(f, "/{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sample() -> Element {
        parse(
            r#"<user id="alice"><book><item id="a"><n>A</n></item><item id="b"><n>B</n></item><item><n>C</n></item></book></user>"#,
        )
        .unwrap()
    }

    #[test]
    fn keyed_resolution() {
        let root = sample();
        let p = NodePath::root().child("book", 0).keyed("item", "id", "b");
        assert_eq!(p.resolve(&root).unwrap().child("n").unwrap().text(), "B");
    }

    #[test]
    fn indexed_resolution() {
        let root = sample();
        let p = NodePath::root().child("book", 0).child("item", 2);
        assert_eq!(p.resolve(&root).unwrap().child("n").unwrap().text(), "C");
    }

    #[test]
    fn missing_resolution_is_none() {
        let root = sample();
        assert!(NodePath::root().child("nope", 0).resolve(&root).is_none());
        assert!(NodePath::root()
            .child("book", 0)
            .keyed("item", "id", "zz")
            .resolve(&root)
            .is_none());
    }

    #[test]
    fn ensure_creates_with_key() {
        let mut root = Element::new("user");
        let p = NodePath::root().child("book", 0).keyed("item", "id", "x");
        p.ensure(&mut root).push_text("hi");
        assert_eq!(p.resolve(&root).unwrap().text(), "hi");
        assert_eq!(p.resolve(&root).unwrap().attr("id"), Some("x"));
        // Idempotent.
        p.ensure(&mut root);
        assert_eq!(root.child("book").unwrap().child_elements().count(), 1);
    }

    #[test]
    fn remove_keyed() {
        let mut root = sample();
        let p = NodePath::root().child("book", 0).keyed("item", "id", "a");
        let removed = p.remove(&mut root).unwrap();
        assert_eq!(removed.child("n").unwrap().text(), "A");
        assert!(p.resolve(&root).is_none());
        assert!(p.remove(&mut root).is_err());
    }

    #[test]
    fn remove_root_rejected() {
        let mut root = sample();
        assert!(NodePath::root().remove(&mut root).is_err());
    }

    #[test]
    fn display_format() {
        let p = NodePath::root().child("book", 0).keyed("item", "id", "b").child("n", 1);
        assert_eq!(p.to_string(), "/book/item[@id='b']/n[2]");
        assert_eq!(NodePath::root().to_string(), "/");
    }

    #[test]
    fn prefix_check() {
        let a = NodePath::root().child("book", 0);
        let b = NodePath::root().child("book", 0).child("item", 1);
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(NodePath::root().is_prefix_of(&a));
    }
}
