//! Randomized invariant tests local to the XML crate: parser robustness
//! (no panics on arbitrary input), escaping totality, and NodePath laws.
//! Deterministic — see `gupster_rng::check`.

use gupster_rng::check::{self, cases};
use gupster_rng::Rng;
use gupster_xml::{parse, Element, NodePath};

/// The parser must never panic, whatever bytes arrive (stores parse
/// fragments received from untrusted peers).
#[test]
fn parser_never_panics() {
    cases(256, 0x1ab1, |rng| {
        let input = check::printable(rng, 0, 200);
        let _ = parse(&input);
    });
}

/// Fuzzing *around* valid documents: random single-byte mutations
/// either parse or error, but never panic, and a successful parse
/// never produces an element with an empty name.
#[test]
fn mutated_documents_never_panic() {
    cases(512, 0x1ab2, |rng| {
        let base = r#"<user id="a"><book><item id="1"><n>Bob</n></item></book></user>"#;
        let mut bytes = base.as_bytes().to_vec();
        let pos = rng.gen_range(0usize..60);
        let byte = (rng.gen_range(0u32..=255)) as u8;
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        if let Ok(s) = String::from_utf8(bytes) {
            if let Ok(doc) = parse(&s) {
                assert!(!doc.name.is_empty());
            }
        }
    });
}

/// Attribute values with arbitrary printable content round-trip.
#[test]
fn attr_values_roundtrip() {
    cases(256, 0x1ab3, |rng| {
        let value = check::printable(rng, 0, 40);
        let e = Element::new("e").with_attr("k", value.clone());
        let back = parse(&e.to_xml()).unwrap();
        assert_eq!(back.attr("k"), Some(value.as_str()));
    });
}

/// set_attr then attr is the identity; remove_attr removes.
#[test]
fn attr_store_laws() {
    cases(256, 0x1ab4, |rng| {
        let k = check::lowercase(rng, 1, 8);
        let v1 = check::printable(rng, 0, 10);
        let v2 = check::printable(rng, 0, 10);
        let mut e = Element::new("x");
        e.set_attr(k.clone(), v1);
        e.set_attr(k.clone(), v2.clone());
        assert_eq!(e.attr(&k), Some(v2.as_str()));
        assert_eq!(e.attrs.len(), 1);
        assert_eq!(e.remove_attr(&k), Some(v2));
        assert_eq!(e.attr(&k), None);
    });
}

/// ensure() then resolve() round-trips for arbitrary keyed paths,
/// and is idempotent on the tree shape.
#[test]
fn nodepath_ensure_resolve() {
    cases(256, 0x1ab5, |rng| {
        let segs = check::vec_of(rng, 1, 4, |r| {
            let name = check::lowercase(r, 1, 6);
            let key = r.gen_bool(0.5).then(|| check::alnum(r, 1, 4));
            (name, key)
        });
        let mut path = NodePath::root();
        for (name, key) in &segs {
            path = match key {
                Some(k) => path.keyed(name.clone(), "id", k.clone()),
                None => path.child(name.clone(), 0),
            };
        }
        let mut tree = Element::new("root");
        path.ensure(&mut tree).set_text("payload");
        assert_eq!(path.resolve(&tree).unwrap().text(), "payload");
        let size_before = tree.subtree_size();
        path.ensure(&mut tree);
        assert_eq!(tree.subtree_size(), size_before, "ensure must be idempotent");
        // And removal empties it.
        assert!(path.remove(&mut tree).is_ok());
        assert!(path.resolve(&tree).is_none());
    });
}

/// Deep text concatenation equals the sum of the parts.
#[test]
fn deep_text_is_document_order() {
    cases(256, 0x1ab6, |rng| {
        let t1 = check::lowercase(rng, 0, 6);
        let t2 = check::lowercase(rng, 0, 6);
        let t3 = check::lowercase(rng, 0, 6);
        let e = Element::new("a")
            .with_text(t1.clone())
            .with_child(Element::new("b").with_text(t2.clone()))
            .with_text(t3.clone());
        assert_eq!(e.deep_text(), format!("{t1}{t2}{t3}"));
        assert_eq!(e.text(), format!("{t1}{t3}"));
    });
}
