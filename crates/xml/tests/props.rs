//! Property tests local to the XML crate: parser robustness (no panics
//! on arbitrary input), escaping totality, and NodePath laws.

use proptest::prelude::*;

use gupster_xml::{parse, Element, NodePath};

proptest! {
    /// The parser must never panic, whatever bytes arrive (stores parse
    /// fragments received from untrusted peers).
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Fuzzing *around* valid documents: random single-byte mutations
    /// either parse or error, but never panic, and a successful parse
    /// never produces an element with an empty name.
    #[test]
    fn mutated_documents_never_panic(pos in 0usize..60, byte in 0u8..=255) {
        let base = r#"<user id="a"><book><item id="1"><n>Bob</n></item></book></user>"#;
        let mut bytes = base.as_bytes().to_vec();
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        if let Ok(s) = String::from_utf8(bytes) {
            if let Ok(doc) = parse(&s) {
                prop_assert!(!doc.name.is_empty());
            }
        }
    }

    /// Attribute values with arbitrary printable content round-trip.
    #[test]
    fn attr_values_roundtrip(value in "[ -~]{0,40}") {
        let e = Element::new("e").with_attr("k", value.clone());
        let back = parse(&e.to_xml()).unwrap();
        prop_assert_eq!(back.attr("k"), Some(value.as_str()));
    }

    /// set_attr then attr is the identity; remove_attr removes.
    #[test]
    fn attr_store_laws(k in "[a-z]{1,8}", v1 in "[ -~]{0,10}", v2 in "[ -~]{0,10}") {
        let mut e = Element::new("x");
        e.set_attr(k.clone(), v1);
        e.set_attr(k.clone(), v2.clone());
        prop_assert_eq!(e.attr(&k), Some(v2.as_str()));
        prop_assert_eq!(e.attrs.len(), 1);
        prop_assert_eq!(e.remove_attr(&k), Some(v2));
        prop_assert_eq!(e.attr(&k), None);
    }

    /// ensure() then resolve() round-trips for arbitrary keyed paths,
    /// and is idempotent on the tree shape.
    #[test]
    fn nodepath_ensure_resolve(
        segs in prop::collection::vec(("[a-z]{1,6}", prop::option::of("[a-z0-9]{1,4}")), 1..5)
    ) {
        let mut path = NodePath::root();
        for (name, key) in &segs {
            path = match key {
                Some(k) => path.keyed(name.clone(), "id", k.clone()),
                None => path.child(name.clone(), 0),
            };
        }
        let mut tree = Element::new("root");
        path.ensure(&mut tree).set_text("payload");
        prop_assert_eq!(path.resolve(&tree).unwrap().text(), "payload");
        let size_before = tree.subtree_size();
        path.ensure(&mut tree);
        prop_assert_eq!(tree.subtree_size(), size_before, "ensure must be idempotent");
        // And removal empties it.
        prop_assert!(path.remove(&mut tree).is_ok());
        prop_assert!(path.resolve(&tree).is_none());
    }

    /// Deep text concatenation equals the sum of the parts.
    #[test]
    fn deep_text_is_document_order(t1 in "[a-z]{0,6}", t2 in "[a-z]{0,6}", t3 in "[a-z]{0,6}") {
        let e = Element::new("a")
            .with_text(t1.clone())
            .with_child(Element::new("b").with_text(t2.clone()))
            .with_text(t3.clone());
        prop_assert_eq!(e.deep_text(), format!("{t1}{t2}{t3}"));
        prop_assert_eq!(e.text(), format!("{t1}{t3}"));
    }
}
