//! Property tests local to the XPath crate: parser robustness, AST
//! display/parse round trips including `//` and `*`, and containment
//! partial-order sanity.

use proptest::prelude::*;

use gupster_xpath::{contains, covers, may_overlap, Axis, LocStep, NameTest, Path, Predicate};

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        ("[a-z]{1,4}", "[a-z0-9]{1,4}").prop_map(|(a, v)| Predicate::AttrEq(a, v)),
        "[a-z]{1,4}".prop_map(Predicate::AttrExists),
        ("[a-z]{1,4}", "[a-z0-9]{1,4}").prop_map(|(c, v)| Predicate::ChildEq(c, v)),
        "[a-z]{1,4}".prop_map(Predicate::ChildExists),
        (1usize..5).prop_map(Predicate::Position),
    ]
}

fn arb_step(last: bool) -> impl Strategy<Value = LocStep> {
    let axis = if last {
        prop_oneof![
            2 => Just(Axis::Child),
            1 => Just(Axis::Descendant),
            1 => Just(Axis::Attribute),
        ]
        .boxed()
    } else {
        prop_oneof![3 => Just(Axis::Child), 1 => Just(Axis::Descendant)].boxed()
    };
    let test = prop_oneof![
        3 => "[a-z]{1,6}".prop_map(NameTest::Name),
        1 => Just(NameTest::Any),
    ];
    (axis, test, prop::collection::vec(arb_predicate(), 0..3)).prop_map(|(axis, test, preds)| {
        let predicates = if axis == Axis::Attribute { vec![] } else { preds };
        LocStep { axis, test, predicates }
    })
}

fn arb_path() -> impl Strategy<Value = Path> {
    prop::collection::vec(arb_step(false), 1..4).prop_flat_map(|steps| {
        arb_step(true).prop_map(move |last| {
            let mut steps = steps.clone();
            steps.push(last);
            // '//@attr' is not in the fragment; demote to child axis.
            if let Some(s) = steps.last_mut() {
                if s.axis == Axis::Attribute {
                    // fine: display uses '/@name'
                }
            }
            Path { steps }
        })
    })
}

proptest! {
    /// The parser must never panic on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = Path::parse(&input);
    }

    /// Display → parse is the identity on generated ASTs.
    #[test]
    fn display_parse_roundtrip(p in arb_path()) {
        let s = p.to_string();
        let back = Path::parse(&s).unwrap_or_else(|e| panic!("reparse {s}: {e}"));
        prop_assert_eq!(back, p);
    }

    /// Containment is reflexive, and both covers/overlap are consistent
    /// with it.
    #[test]
    fn partial_order_sanity(p in arb_path(), q in arb_path()) {
        prop_assert!(contains(&p, &p));
        prop_assert!(covers(&p, &p));
        prop_assert!(may_overlap(&p, &p));
        if contains(&p, &q) {
            // p ⊑ q implies q's subtree covers p's nodes.
            prop_assert!(covers(&q, &p), "p={p} q={q}");
            prop_assert!(may_overlap(&p, &q), "p={p} q={q}");
        }
        if covers(&q, &p) {
            prop_assert!(may_overlap(&p, &q), "p={p} q={q}");
        }
    }

    /// Adding a predicate never enlarges the selected set: p' ⊑ p.
    #[test]
    fn predicates_only_narrow(p in arb_path(), pred in arb_predicate()) {
        let mut narrowed = p.clone();
        if let Some(step) = narrowed.steps.first_mut() {
            if step.axis != Axis::Attribute {
                step.predicates.push(pred);
                prop_assert!(contains(&narrowed, &p), "narrowed={narrowed} p={p}");
            }
        }
    }

    /// Joining paths adds lengths and preserves the prefix's steps.
    #[test]
    fn join_is_concatenation(a in arb_path(), b in arb_path()) {
        // Only join when `a` doesn't end in an attribute step.
        if !a.targets_attribute() {
            let j = a.join(&b);
            prop_assert_eq!(j.len(), a.len() + b.len());
            prop_assert_eq!(&j.steps[..a.len()], &a.steps[..]);
        }
    }
}
