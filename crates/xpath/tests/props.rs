//! Randomized invariant tests local to the XPath crate: parser
//! robustness, AST display/parse round trips including `//` and `*`,
//! and containment partial-order sanity. Deterministic — see
//! `gupster_rng::check`.

use gupster_rng::check::{self, cases};
use gupster_rng::{Rng, StdRng};
use gupster_xpath::{contains, covers, may_overlap, Axis, LocStep, NameTest, Path, Predicate};

fn arb_predicate(rng: &mut StdRng) -> Predicate {
    match rng.gen_range(0u32..5) {
        0 => Predicate::AttrEq(check::lowercase(rng, 1, 4), check::alnum(rng, 1, 4)),
        1 => Predicate::AttrExists(check::lowercase(rng, 1, 4)),
        2 => Predicate::ChildEq(check::lowercase(rng, 1, 4), check::alnum(rng, 1, 4)),
        3 => Predicate::ChildExists(check::lowercase(rng, 1, 4)),
        _ => Predicate::Position(rng.gen_range(1usize..5)),
    }
}

fn arb_step(rng: &mut StdRng, last: bool) -> LocStep {
    let axis = if last {
        match rng.gen_range(0u32..4) {
            0 | 1 => Axis::Child,
            2 => Axis::Descendant,
            _ => Axis::Attribute,
        }
    } else if rng.gen_range(0u32..4) < 3 {
        Axis::Child
    } else {
        Axis::Descendant
    };
    let test = if rng.gen_range(0u32..4) < 3 {
        NameTest::Name(check::lowercase(rng, 1, 6))
    } else {
        NameTest::Any
    };
    let preds = check::vec_of(rng, 0, 2, arb_predicate);
    let predicates = if axis == Axis::Attribute { vec![] } else { preds };
    LocStep { axis, test, predicates }
}

fn arb_path(rng: &mut StdRng) -> Path {
    let mut steps = check::vec_of(rng, 1, 3, |r| arb_step(r, false));
    steps.push(arb_step(rng, true));
    Path { steps }
}

/// The parser must never panic on arbitrary input.
#[test]
fn parser_never_panics() {
    cases(512, 0xa7_01, |rng| {
        let input = check::printable(rng, 0, 80);
        let _ = Path::parse(&input);
    });
}

/// Display → parse is the identity on generated ASTs.
#[test]
fn display_parse_roundtrip() {
    cases(512, 0xa7_02, |rng| {
        let p = arb_path(rng);
        let s = p.to_string();
        let back = Path::parse(&s).unwrap_or_else(|e| panic!("reparse {s}: {e}"));
        assert_eq!(back, p);
    });
}

/// Containment is reflexive, and both covers/overlap are consistent
/// with it.
#[test]
fn partial_order_sanity() {
    cases(512, 0xa7_03, |rng| {
        let p = arb_path(rng);
        let q = arb_path(rng);
        assert!(contains(&p, &p));
        assert!(covers(&p, &p));
        assert!(may_overlap(&p, &p));
        if contains(&p, &q) {
            // p ⊑ q implies q's subtree covers p's nodes.
            assert!(covers(&q, &p), "p={p} q={q}");
            assert!(may_overlap(&p, &q), "p={p} q={q}");
        }
        if covers(&q, &p) {
            assert!(may_overlap(&p, &q), "p={p} q={q}");
        }
    });
}

/// Adding a predicate never enlarges the selected set: p' ⊑ p.
#[test]
fn predicates_only_narrow() {
    cases(512, 0xa7_04, |rng| {
        let p = arb_path(rng);
        let pred = arb_predicate(rng);
        let mut narrowed = p.clone();
        if let Some(step) = narrowed.steps.first_mut() {
            if step.axis != Axis::Attribute {
                step.predicates.push(pred);
                assert!(contains(&narrowed, &p), "narrowed={narrowed} p={p}");
            }
        }
    });
}

/// Joining paths adds lengths and preserves the prefix's steps.
#[test]
fn join_is_concatenation() {
    cases(512, 0xa7_05, |rng| {
        let a = arb_path(rng);
        let b = arb_path(rng);
        // Only join when `a` doesn't end in an attribute step.
        if !a.targets_attribute() {
            let j = a.join(&b);
            assert_eq!(j.len(), a.len() + b.len());
            assert_eq!(&j.steps[..a.len()], &a.steps[..]);
        }
    });
}
