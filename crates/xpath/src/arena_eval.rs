//! Evaluation of path expressions over arena documents.
//!
//! Mirrors [`eval`](crate::ast::Path::select) step for step, but walks a
//! [`gupster_xml::ArenaDoc`] by [`NodeId`] instead of chasing `&Element`
//! pointers. Selection never clones a subtree: the result is a set of
//! node ids into the arena, and context deduplication compares ids
//! directly (the arena analogue of pointer identity).

use gupster_xml::{ArenaDoc, NodeId};

use crate::ast::{Axis, NameTest, Path, Predicate};

impl Path {
    /// Selects the element nodes addressed by this path within `doc`.
    ///
    /// Arena counterpart of [`Path::select`]: the first step is matched
    /// against the document root, and for a path whose final step is an
    /// attribute step the *owner elements* of matching attributes are
    /// returned (use [`Path::select_strings_arena`] for the values).
    pub fn select_arena(&self, doc: &ArenaDoc) -> Vec<NodeId> {
        let mut contexts: Vec<ACtx> = vec![ACtx::Document];
        for step in &self.steps {
            if step.axis == Axis::Attribute {
                return contexts
                    .into_iter()
                    .filter_map(ACtx::node)
                    .filter(|&n| match &step.test {
                        NameTest::Any => doc.attr_count(n) > 0,
                        NameTest::Name(a) => doc.attr(n, a).is_some(),
                    })
                    .collect();
            }
            let mut next: Vec<ACtx> = Vec::new();
            for ctx in &contexts {
                let mut candidates: Vec<NodeId> = Vec::new();
                match step.axis {
                    Axis::Child => match ctx {
                        ACtx::Document => {
                            if step.test.accepts(doc.name(doc.root())) {
                                candidates.push(doc.root());
                            }
                        }
                        ACtx::Node(e) => {
                            candidates.extend(
                                doc.child_elements(*e).filter(|&c| step.test.accepts(doc.name(c))),
                            );
                        }
                    },
                    Axis::Descendant => match ctx {
                        ACtx::Document => {
                            collect_self_and_descendants(doc, doc.root(), &step.test, &mut candidates)
                        }
                        ACtx::Node(e) => collect_descendants(doc, *e, &step.test, &mut candidates),
                    },
                    Axis::Attribute => unreachable!("handled above"),
                }
                apply_predicates(doc, &step.predicates, &mut candidates);
                next.extend(candidates.into_iter().map(ACtx::Node));
            }
            dedup_ids(&mut next);
            contexts = next;
            if contexts.is_empty() {
                break;
            }
        }
        contexts.into_iter().filter_map(ACtx::node).collect()
    }

    /// Arena counterpart of [`Path::select_strings`]: attribute values if
    /// the path targets an attribute, otherwise trimmed direct text.
    pub fn select_strings_arena(&self, doc: &ArenaDoc) -> Vec<String> {
        if let Some(last) = self.steps.last() {
            if last.axis == Axis::Attribute {
                return self
                    .select_arena(doc)
                    .into_iter()
                    .flat_map(|n| match &last.test {
                        NameTest::Any => {
                            doc.attrs(n).map(|(_, v)| v.to_string()).collect::<Vec<_>>()
                        }
                        NameTest::Name(a) => {
                            doc.attr(n, a).map(|v| vec![v.to_string()]).unwrap_or_default()
                        }
                    })
                    .collect();
            }
        }
        self.select_arena(doc).into_iter().map(|n| doc.text(n).trim().to_string()).collect()
    }

    /// True if the path selects at least one node in `doc`.
    pub fn matches_arena(&self, doc: &ArenaDoc) -> bool {
        !self.select_arena(doc).is_empty()
    }
}

#[derive(Clone, Copy)]
enum ACtx {
    /// The virtual document node above the root element.
    Document,
    /// A real element in the arena.
    Node(NodeId),
}

impl ACtx {
    fn node(self) -> Option<NodeId> {
        match self {
            ACtx::Document => None,
            ACtx::Node(n) => Some(n),
        }
    }
}

fn collect_descendants(doc: &ArenaDoc, e: NodeId, test: &NameTest, out: &mut Vec<NodeId>) {
    for c in doc.child_elements(e) {
        if test.accepts(doc.name(c)) {
            out.push(c);
        }
        collect_descendants(doc, c, test, out);
    }
}

fn collect_self_and_descendants(doc: &ArenaDoc, e: NodeId, test: &NameTest, out: &mut Vec<NodeId>) {
    if test.accepts(doc.name(e)) {
        out.push(e);
    }
    collect_descendants(doc, e, test, out);
}

fn apply_predicates(doc: &ArenaDoc, preds: &[Predicate], candidates: &mut Vec<NodeId>) {
    for p in preds {
        match p {
            Predicate::Position(n) => {
                let idx = n - 1;
                if idx < candidates.len() {
                    let kept = candidates[idx];
                    candidates.clear();
                    candidates.push(kept);
                } else {
                    candidates.clear();
                }
            }
            Predicate::AttrEq(a, v) => {
                candidates.retain(|&e| doc.attr(e, a) == Some(v.as_str()))
            }
            Predicate::AttrExists(a) => candidates.retain(|&e| doc.attr(e, a).is_some()),
            Predicate::ChildEq(c, v) => candidates.retain(|&e| {
                doc.child_elements(e).any(|ch| doc.name(ch) == c && doc.text(ch).trim() == v)
            }),
            Predicate::ChildExists(c) => {
                candidates.retain(|&e| doc.child_elements(e).any(|ch| doc.name(ch) == c))
            }
        }
    }
}

/// Contexts are deduplicated by node id — within one arena, equal ids
/// *are* the same node, so this matches the owned evaluator's
/// pointer-identity dedup exactly.
fn dedup_ids(ctxs: &mut Vec<ACtx>) {
    let mut seen: Vec<Option<NodeId>> = Vec::new();
    ctxs.retain(|c| {
        let key = c.node();
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::Element;

    const DOC: &str = r#"<user id="arnaud">
                 <address-book>
                   <item id="1" type="personal"><name>Mom</name><phone>111</phone></item>
                   <item id="2" type="corporate"><name>Rick</name><phone>222</phone></item>
                   <item id="3" type="personal"><name>Bob</name></item>
                 </address-book>
                 <presence>online</presence>
                 <devices>
                   <device kind="phone"><name>SprintPCS</name></device>
                   <device kind="pda"><name>Palm</name></device>
                 </devices>
               </user>"#;

    /// Asserts the arena evaluator agrees with the owned one on `path`
    /// over `src`, node for node (compared through serialization) and
    /// string for string.
    fn agree(src: &str, path: &str) {
        let owned: Element = gupster_xml::parse(src).unwrap();
        let doc = ArenaDoc::parse(src).unwrap();
        let p = Path::parse(path).unwrap();
        let a: Vec<String> = p.select(&owned).iter().map(|e| e.to_xml()).collect();
        let b: Vec<String> =
            p.select_arena(&doc).iter().map(|&n| doc.to_element(n).to_xml()).collect();
        assert_eq!(a, b, "select disagreement on {path}");
        assert_eq!(
            p.select_strings(&owned),
            p.select_strings_arena(&doc),
            "select_strings disagreement on {path}"
        );
        assert_eq!(p.matches(&owned), p.matches_arena(&doc), "matches disagreement on {path}");
    }

    #[test]
    fn mirrors_owned_eval() {
        for path in [
            "/user",
            "/nope",
            "/user[@id='arnaud']",
            "/user[@id='rick']",
            "/user[@id='arnaud']/presence",
            "/user/address-book/item[@type='personal']",
            "/user/address-book/item[@type='corporate']",
            "/user/@id",
            "/user/devices/device/@kind",
            "/user/@missing",
            "//item",
            "//name",
            "//user",
            "/user//name",
            "/user/address-book//name",
            "/user/*",
            "/*",
            "/user/address-book/item[2]/name",
            "/user/address-book/item[9]",
            "/user/address-book/item[@type='personal'][2]/name",
            "/user/address-book/item[name='Rick']",
            "/user/address-book/item[phone]",
            "/user/address-book/item[name='Nobody']",
            "/user/devices/device/@*",
            "/",
        ] {
            agree(DOC, path);
        }
    }

    #[test]
    fn no_duplicate_results_from_descendant() {
        agree("<a><b><b><c/></b></b></a>", "//b//c");
        let doc = ArenaDoc::parse("<a><b><b><c/></b></b></a>").unwrap();
        assert_eq!(Path::parse("//b//c").unwrap().select_arena(&doc).len(), 1);
    }

    #[test]
    fn selection_is_zero_copy() {
        let doc = ArenaDoc::parse(DOC).unwrap();
        let hits = Path::parse("/user/address-book/item[@type='personal']")
            .unwrap()
            .select_arena(&doc);
        assert_eq!(hits.len(), 2);
        // The ids address straight into the arena — no tree was built.
        assert_eq!(doc.attr(hits[0], "id"), Some("1"));
        assert_eq!(doc.attr(hits[1], "id"), Some("3"));
    }
}
