//! Tokenizer for the XPath fragment.

use crate::parser::XPathError;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Token {
    Slash,
    DoubleSlash,
    At,
    Star,
    LBracket,
    RBracket,
    Eq,
    Name(String),
    Literal(String),
    Integer(usize),
}

pub(crate) fn tokenize(input: &str) -> Result<Vec<Token>, XPathError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    out.push(Token::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Token::Slash);
                    i += 1;
                }
            }
            b'@' => {
                out.push(Token::At);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            q @ (b'\'' | b'"') => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != q {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(XPathError::new(i, "unterminated string literal"));
                }
                out.push(Token::Literal(input[start..j].to_string()));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: usize = input[start..i]
                    .parse()
                    .map_err(|_| XPathError::new(start, "integer overflow in position"))?;
                out.push(Token::Integer(n));
            }
            b if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c >= 0x80
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Name(input[start..i].to_string()));
            }
            other => {
                return Err(XPathError::new(i, format!("unexpected character '{}'", other as char)))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("/user[@id='arnaud']//item[2]/@type").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Slash,
                Token::Name("user".into()),
                Token::LBracket,
                Token::At,
                Token::Name("id".into()),
                Token::Eq,
                Token::Literal("arnaud".into()),
                Token::RBracket,
                Token::DoubleSlash,
                Token::Name("item".into()),
                Token::LBracket,
                Token::Integer(2),
                Token::RBracket,
                Token::Slash,
                Token::At,
                Token::Name("type".into()),
            ]
        );
    }

    #[test]
    fn double_quoted_literal() {
        assert_eq!(tokenize(r#""x y""#).unwrap(), vec![Token::Literal("x y".into())]);
    }

    #[test]
    fn unterminated_literal_rejected() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn bad_char_rejected() {
        assert!(tokenize("/a|b").is_err());
    }

    #[test]
    fn whitespace_skipped() {
        assert_eq!(tokenize(" / a ").unwrap().len(), 2);
    }
}
