//! # gupster-xpath
//!
//! The XPath fragment GUPster uses as its *coverage language* (§4.5 of
//! the paper): child and attribute axes plus limited predicates, extended
//! with `//` (descendant-or-self) and `*` wildcards which the privacy
//! shield needs for policy scopes.
//!
//! The crate provides:
//!
//! * an AST ([`Path`], [`LocStep`], [`Predicate`]),
//! * a parser ([`Path::parse`]),
//! * an evaluator over [`gupster_xml::Element`] trees ([`Path::select`],
//!   [`Path::select_strings`]) and a zero-copy twin over
//!   [`gupster_xml::ArenaDoc`] ([`Path::select_arena`]) that returns node
//!   ids instead of cloned subtrees,
//! * **containment** ([`contains`]) and **overlap** ([`may_overlap`])
//!   decision procedures in the homomorphism style of Deutsch–Tannen /
//!   Miklau–Suciu, which the registry uses to match request paths against
//!   registered coverage (§6 "containment of XPath expressions").
//!
//! Containment is *sound* (never claims `p ⊑ q` falsely) and complete on
//! the fragment without a `//`–`*` interaction; overlap is conservative
//! (may report `true` for paths that never co-select, which only costs a
//! spurious referral — exactly the Napster trade-off the paper accepts).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod arena_eval;
mod ast;
mod containment;
mod eval;
mod intern;
mod lexer;
mod locate;
mod parser;

pub use ast::{Axis, LocStep, NameTest, Path, Predicate};
pub use containment::{contains, covers, may_overlap};
pub use intern::{InternedPath, InternedStep, PathCache, PathInterner, Sym};
pub use parser::XPathError;
