//! Evaluation of path expressions over XML trees.

use gupster_xml::Element;

use crate::ast::{Axis, NameTest, Path, Predicate};

impl Path {
    /// Selects the elements addressed by this path within the document
    /// rooted at `root`.
    ///
    /// The first step is matched against `root` itself (GUPster paths are
    /// absolute into a profile document, `/user[@id=…]/…`). For a path
    /// whose final step is an attribute step, the *owner elements* of the
    /// matching attributes are returned; use [`Path::select_strings`] to
    /// obtain the attribute values.
    pub fn select<'a>(&self, root: &'a Element) -> Vec<&'a Element> {
        // The virtual document node is the sole context at the start.
        let mut contexts: Vec<Ctx<'a>> = vec![Ctx::Document(root)];
        for step in &self.steps {
            if step.axis == Axis::Attribute {
                // Owner elements that actually carry a matching attribute.
                return contexts
                    .into_iter()
                    .filter_map(Ctx::element)
                    .filter(|e| match &step.test {
                        NameTest::Any => !e.attrs.is_empty(),
                        NameTest::Name(n) => e.attr(n).is_some(),
                    })
                    .collect();
            }
            let mut next: Vec<Ctx<'a>> = Vec::new();
            for ctx in &contexts {
                let mut candidates: Vec<&'a Element> = Vec::new();
                match step.axis {
                    Axis::Child => match ctx {
                        Ctx::Document(r) => {
                            if step.test.accepts(&r.name) {
                                candidates.push(r);
                            }
                        }
                        Ctx::Node(e) => {
                            candidates
                                .extend(e.child_elements().filter(|c| step.test.accepts(&c.name)));
                        }
                    },
                    Axis::Descendant => {
                        match ctx {
                            Ctx::Document(r) => collect_self_and_descendants(r, &step.test, &mut candidates),
                            Ctx::Node(e) => collect_descendants(e, &step.test, &mut candidates),
                        };
                    }
                    Axis::Attribute => unreachable!("handled above"),
                }
                apply_predicates(&step.predicates, &mut candidates);
                next.extend(candidates.into_iter().map(Ctx::Node));
            }
            dedup_by_identity(&mut next);
            contexts = next;
            if contexts.is_empty() {
                break;
            }
        }
        contexts.into_iter().filter_map(Ctx::element).collect()
    }

    /// Selects string values: attribute values if the path targets an
    /// attribute, otherwise the trimmed direct text of selected elements.
    pub fn select_strings(&self, root: &Element) -> Vec<String> {
        if let Some(last) = self.steps.last() {
            if last.axis == Axis::Attribute {
                return self
                    .select(root)
                    .into_iter()
                    .flat_map(|e| match &last.test {
                        NameTest::Any => {
                            e.attrs.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>()
                        }
                        NameTest::Name(n) => {
                            e.attr(n).map(|v| vec![v.to_string()]).unwrap_or_default()
                        }
                    })
                    .collect();
            }
        }
        self.select(root).into_iter().map(|e| e.text().trim().to_string()).collect()
    }

    /// True if the path selects at least one node in `root`.
    pub fn matches(&self, root: &Element) -> bool {
        !self.select(root).is_empty()
    }
}

#[derive(Clone, Copy)]
enum Ctx<'a> {
    /// The virtual document node above the root element.
    Document(&'a Element),
    /// A real element.
    Node(&'a Element),
}

impl<'a> Ctx<'a> {
    fn element(self) -> Option<&'a Element> {
        match self {
            Ctx::Document(_) => None,
            Ctx::Node(e) => Some(e),
        }
    }
}

fn collect_descendants<'a>(e: &'a Element, test: &NameTest, out: &mut Vec<&'a Element>) {
    for c in e.child_elements() {
        if test.accepts(&c.name) {
            out.push(c);
        }
        collect_descendants(c, test, out);
    }
}

fn collect_self_and_descendants<'a>(e: &'a Element, test: &NameTest, out: &mut Vec<&'a Element>) {
    if test.accepts(&e.name) {
        out.push(e);
    }
    collect_descendants(e, test, out);
}

fn apply_predicates(preds: &[Predicate], candidates: &mut Vec<&Element>) {
    for p in preds {
        match p {
            Predicate::Position(n) => {
                let idx = n - 1;
                if idx < candidates.len() {
                    let kept = candidates[idx];
                    candidates.clear();
                    candidates.push(kept);
                } else {
                    candidates.clear();
                }
            }
            Predicate::AttrEq(a, v) => candidates.retain(|e| e.attr(a) == Some(v.as_str())),
            Predicate::AttrExists(a) => candidates.retain(|e| e.attr(a).is_some()),
            Predicate::ChildEq(c, v) => candidates.retain(|e| {
                e.child_elements().any(|ch| ch.name == *c && ch.text().trim() == v)
            }),
            Predicate::ChildExists(c) => {
                candidates.retain(|e| e.child_elements().any(|ch| ch.name == *c))
            }
        }
    }
}

fn dedup_by_identity(ctxs: &mut Vec<Ctx<'_>>) {
    let mut seen: Vec<*const Element> = Vec::new();
    ctxs.retain(|c| {
        let ptr: *const Element = match c {
            Ctx::Document(e) | Ctx::Node(e) => *e,
        };
        if seen.contains(&ptr) {
            false
        } else {
            seen.push(ptr);
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::parse;

    fn doc() -> Element {
        parse(
            r#"<user id="arnaud">
                 <address-book>
                   <item id="1" type="personal"><name>Mom</name><phone>111</phone></item>
                   <item id="2" type="corporate"><name>Rick</name><phone>222</phone></item>
                   <item id="3" type="personal"><name>Bob</name></item>
                 </address-book>
                 <presence>online</presence>
                 <devices>
                   <device kind="phone"><name>SprintPCS</name></device>
                   <device kind="pda"><name>Palm</name></device>
                 </devices>
               </user>"#,
        )
        .unwrap()
    }

    fn sel(path: &str, root: &Element) -> Vec<String> {
        Path::parse(path).unwrap().select(root).iter().map(|e| e.to_xml()).collect()
    }

    #[test]
    fn root_step_matches_document_element() {
        let d = doc();
        assert_eq!(Path::parse("/user").unwrap().select(&d).len(), 1);
        assert_eq!(Path::parse("/nope").unwrap().select(&d).len(), 0);
        assert_eq!(Path::parse("/user[@id='arnaud']").unwrap().select(&d).len(), 1);
        assert_eq!(Path::parse("/user[@id='rick']").unwrap().select(&d).len(), 0);
    }

    #[test]
    fn paper_lookup_queries() {
        let d = doc();
        // "retrieve presence information for Alice"-style lookups (§2.3).
        assert_eq!(
            Path::parse("/user[@id='arnaud']/presence").unwrap().select_strings(&d),
            vec!["online"]
        );
        assert_eq!(sel("/user/address-book/item[@type='personal']", &d).len(), 2);
        assert_eq!(sel("/user/address-book/item[@type='corporate']", &d).len(), 1);
    }

    #[test]
    fn attribute_selection() {
        let d = doc();
        assert_eq!(Path::parse("/user/@id").unwrap().select_strings(&d), vec!["arnaud"]);
        assert_eq!(
            Path::parse("/user/devices/device/@kind").unwrap().select_strings(&d),
            vec!["phone", "pda"]
        );
        // Owner elements are returned by select().
        assert_eq!(Path::parse("/user/@id").unwrap().select(&d).len(), 1);
        assert!(Path::parse("/user/@missing").unwrap().select(&d).is_empty());
    }

    #[test]
    fn descendant_axis() {
        let d = doc();
        assert_eq!(sel("//item", &d).len(), 3);
        assert_eq!(sel("//name", &d).len(), 5);
        assert_eq!(sel("//user", &d).len(), 1); // includes the root itself
        assert_eq!(sel("/user//name", &d).len(), 5);
        assert_eq!(sel("/user/address-book//name", &d).len(), 3);
    }

    #[test]
    fn wildcard() {
        let d = doc();
        assert_eq!(sel("/user/*", &d).len(), 3);
        assert_eq!(sel("/*", &d).len(), 1);
    }

    #[test]
    fn position_predicate() {
        let d = doc();
        assert_eq!(
            Path::parse("/user/address-book/item[2]/name").unwrap().select_strings(&d),
            vec!["Rick"]
        );
        assert!(Path::parse("/user/address-book/item[9]").unwrap().select(&d).is_empty());
        // Successive filters: personal items, then second of those.
        assert_eq!(
            Path::parse("/user/address-book/item[@type='personal'][2]/name")
                .unwrap()
                .select_strings(&d),
            vec!["Bob"]
        );
    }

    #[test]
    fn child_eq_predicate() {
        let d = doc();
        assert_eq!(sel("/user/address-book/item[name='Rick']", &d).len(), 1);
        assert_eq!(sel("/user/address-book/item[phone]", &d).len(), 2);
        assert_eq!(sel("/user/address-book/item[name='Nobody']", &d).len(), 0);
    }

    #[test]
    fn no_duplicate_results_from_descendant() {
        let d = parse("<a><b><b><c/></b></b></a>").unwrap();
        // //b//c: both b's reach the same c.
        assert_eq!(sel("//b//c", &d).len(), 1);
    }

    #[test]
    fn empty_path_selects_nothing_but_matches_root_queries() {
        let d = doc();
        // "/" addresses the document; we return no element for it.
        assert!(Path::parse("/").unwrap().select(&d).is_empty());
    }
}
