//! Containment and overlap for the coverage language.
//!
//! The registry must decide, for a request path `r` and a registered
//! coverage path `c`, whether the store behind `c` (which holds the
//! *subtrees* rooted at the nodes `c` selects) can serve `r`:
//!
//! * [`contains`]`(p, q)` — node-set containment `p ⊑ q`: every node
//!   selected by `p` in any document is also selected by `q`. Decided by
//!   a homomorphism (alignment) search in the Deutsch–Tannen /
//!   Miklau–Suciu style. Sound always; complete on the paper's §4.5 core
//!   fragment (child + attribute axes, no wildcard interaction with `//`).
//! * [`covers`]`(c, r)` — subtree coverage: every node selected by `r`
//!   lies within the subtree of some node selected by `c`. This is the
//!   "store fully answers the request" test.
//! * [`may_overlap`]`(a, b)` — subtree intersection: the subtrees rooted
//!   at `a`-nodes and `b`-nodes may share nodes in some document. This is
//!   the "store holds *part* of the answer" test; conservative `true`
//!   when undecided, which only costs a spurious referral.

use crate::ast::{Axis, LocStep, Path};

/// Node-set containment: `p ⊑ q` — every node selected by `p` (in every
/// document) is also selected by `q`.
pub fn contains(p: &Path, q: &Path) -> bool {
    // Attribute targeting must agree: an attribute-step path selects
    // owner elements of attributes; mixing the two kinds is never a
    // containment in our semantics unless both target attributes with
    // subsuming tests, or neither does.
    match (p.targets_attribute(), q.targets_attribute()) {
        (true, true) | (false, false) => {}
        _ => return false,
    }
    if q.steps.is_empty() {
        // "/" selects only the document node: contains p iff p is "/".
        return p.steps.is_empty();
    }
    if p.steps.is_empty() {
        // p selects only the document node; q selects elements.
        return false;
    }
    // DP over alignment: can q's first i steps map onto p's first j steps
    // with q_i ↦ p_j? hom[i][j] with 1-based i, j; hom[0][0] is the
    // document-node anchor.
    let (np, nq) = (p.steps.len(), q.steps.len());
    let mut hom = vec![vec![false; np + 1]; nq + 1];
    hom[0][0] = true;
    for i in 1..=nq {
        let qs = &q.steps[i - 1];
        for j in 1..=np {
            let ps = &p.steps[j - 1];
            if !step_subsumes(qs, ps) {
                continue;
            }
            let reachable = match qs.axis {
                Axis::Child | Axis::Attribute => {
                    // Must advance exactly one edge, and that edge in p
                    // must also be a single level (child/attribute).
                    hom[i - 1][j - 1] && ps.axis != Axis::Descendant
                }
                Axis::Descendant => {
                    // May consume one or more edges in p.
                    (0..j).any(|j0| hom[i - 1][j0])
                }
            };
            if reachable {
                hom[i][j] = true;
            }
        }
    }
    hom[nq][np]
}

/// True if every predicate required by `q_step` is implied by `p_step`'s
/// predicates and `q_step`'s name test subsumes `p_step`'s.
fn step_subsumes(q_step: &LocStep, p_step: &LocStep) -> bool {
    if q_step.axis == Axis::Attribute && p_step.axis != Axis::Attribute {
        return false;
    }
    if q_step.axis != Axis::Attribute && p_step.axis == Axis::Attribute {
        return false;
    }
    if !q_step.test.subsumes(&p_step.test) {
        return false;
    }
    q_step
        .predicates
        .iter()
        .all(|qp| p_step.predicates.iter().any(|pp| qp.implied_by(pp)))
}

/// Subtree coverage: every node selected by `r` lies in the subtree of
/// some node selected by `c`. Used to decide that a data store registered
/// under coverage `c` can *fully* answer request `r`.
///
/// Complete for the core fragment; for paths with `//`/`*` it falls back
/// to plain containment of `r`'s prefix where possible and otherwise
/// answers `false` (the registry then treats the store as a partial
/// source via [`may_overlap`]).
pub fn covers(c: &Path, r: &Path) -> bool {
    if contains(r, c) {
        // r's nodes ⊆ c's nodes ⊆ subtrees of c's nodes.
        return true;
    }
    if c.targets_attribute() {
        // An attribute subtree is just the attribute; only exact
        // containment (handled above) counts.
        return false;
    }
    // Core-fragment prefix check: r = c' · suffix where c' ⊑ c.
    if !c.is_core_fragment() {
        return false;
    }
    let cl = c.steps.len();
    if r.steps.len() < cl {
        return false;
    }
    if r.steps[..cl].iter().any(|s| s.axis == Axis::Descendant) {
        // A descendant edge inside the prefix could escape c's subtree
        // only if it matched *above* c's depth; since lengths ≥ cl and
        // every descendant edge consumes ≥1 level, the prefix of r
        // reaches at least depth cl. But its nodes need not be under a
        // c-node. Be conservative.
        return false;
    }
    let prefix = Path { steps: r.steps[..cl].to_vec() };
    contains(&prefix, c)
}

/// Subtree intersection: can a document contain a node that lies both in
/// the subtree of an `a`-node and of a `b`-node? Equivalently (for
/// chains): is one of the paths' node sets reachable as ancestor-or-self
/// of the other's? Conservative: `true` when undecidable syntactically.
pub fn may_overlap(a: &Path, b: &Path) -> bool {
    if covers(a, b) || covers(b, a) {
        return true;
    }
    // If either path leaves the core fragment, stay conservative.
    if !a.is_core_fragment() || !b.is_core_fragment() {
        return true;
    }
    // Core fragment: subtrees intersect iff the shorter path's chain is
    // step-compatible with the longer's prefix.
    let (short, long) =
        if a.steps.len() <= b.steps.len() { (a, b) } else { (b, a) };
    short
        .steps
        .iter()
        .zip(&long.steps)
        .all(|(s, l)| step_compatible(s, l))
}

fn step_compatible(a: &LocStep, b: &LocStep) -> bool {
    if (a.axis == Axis::Attribute) != (b.axis == Axis::Attribute) {
        return false;
    }
    if !a.test.compatible(&b.test) {
        return false;
    }
    a.predicates
        .iter()
        .all(|pa| b.predicates.iter().all(|pb| pa.compatible(pb)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn reflexive() {
        for s in ["/user/book", "/user[@id='a']/book/item[@type='x']", "//item", "/"] {
            assert!(contains(&p(s), &p(s)), "{s} ⊑ {s}");
        }
    }

    #[test]
    fn predicate_weakening() {
        // More predicates ⇒ fewer nodes ⇒ contained in the weaker path.
        assert!(contains(&p("/user[@id='a']/book"), &p("/user/book")));
        assert!(!contains(&p("/user/book"), &p("/user[@id='a']/book")));
        assert!(contains(&p("/user[@id='a']/book"), &p("/user[@id]/book")));
        assert!(!contains(&p("/user[@id]/book"), &p("/user[@id='a']/book")));
        assert!(contains(&p("/b/i[name='x']"), &p("/b/i[name]")));
    }

    #[test]
    fn different_names_not_contained() {
        assert!(!contains(&p("/user/book"), &p("/user/calendar")));
        assert!(!contains(&p("/user"), &p("/user/book")));
        assert!(!contains(&p("/user/book"), &p("/user")));
    }

    #[test]
    fn wildcard_subsumption() {
        assert!(contains(&p("/user/book"), &p("/user/*")));
        assert!(contains(&p("/user/book"), &p("/*/*")));
        assert!(!contains(&p("/user/*"), &p("/user/book")));
    }

    #[test]
    fn descendant_subsumption() {
        assert!(contains(&p("/user/book/item"), &p("//item")));
        assert!(contains(&p("/user/book/item"), &p("/user//item")));
        assert!(contains(&p("//book/item"), &p("//item")));
        assert!(!contains(&p("//item"), &p("/user/book/item")));
        // Child in q requires single level in p.
        assert!(!contains(&p("/user//item"), &p("/user/item")));
        assert!(contains(&p("/user/book"), &p("//book")));
        // Descendant in q may span several child edges in p.
        assert!(contains(&p("/a/b/c/d"), &p("/a//d")));
        assert!(contains(&p("/a/b/c/d"), &p("//b//d")));
        assert!(!contains(&p("/a/b"), &p("/a//b/c")));
    }

    #[test]
    fn attribute_paths() {
        assert!(contains(&p("/user/@id"), &p("/user/@id")));
        assert!(!contains(&p("/user/@id"), &p("/user/@name")));
        assert!(!contains(&p("/user/@id"), &p("/user")));
        assert!(!contains(&p("/user"), &p("/user/@id")));
        assert!(contains(&p("/user[@x='1']/@id"), &p("/user/@id")));
    }

    #[test]
    fn paper_coverage_scenario() {
        // Fig. 9: request for the whole address book; stores hold the
        // personal and corporate splits.
        let request = p("/user[@id='arnaud']/address-book");
        let yahoo = p("/user[@id='arnaud']/address-book/item[@type='personal']");
        let lucent = p("/user[@id='arnaud']/address-book/item[@type='corporate']");
        // Neither split fully covers the request…
        assert!(!covers(&yahoo, &request));
        assert!(!covers(&lucent, &request));
        // …but both overlap it, so both referrals are returned.
        assert!(may_overlap(&yahoo, &request));
        assert!(may_overlap(&lucent, &request));
        // A request *for* the personal split is fully covered by Yahoo!.
        let personal_req = p("/user[@id='arnaud']/address-book/item[@type='personal']");
        assert!(covers(&yahoo, &personal_req));
        assert!(!covers(&lucent, &personal_req));
    }

    #[test]
    fn covers_prefix_semantics() {
        // The store registered at /user/address-book holds the whole
        // book subtree, so it covers any deeper request.
        let c = p("/user[@id='a']/address-book");
        assert!(covers(&c, &p("/user[@id='a']/address-book/item[@type='x']/name")));
        assert!(covers(&c, &p("/user[@id='a']/address-book")));
        assert!(!covers(&c, &p("/user[@id='b']/address-book")));
        assert!(!covers(&c, &p("/user[@id='a']/presence")));
        // Requests *above* the coverage are not fully covered.
        assert!(!covers(&c, &p("/user[@id='a']")));
    }

    #[test]
    fn overlap_of_disjoint_predicates() {
        let a = p("/u/book/item[@type='personal']");
        let b = p("/u/book/item[@type='corporate']");
        assert!(!may_overlap(&a, &b));
        let c = p("/u/book/item");
        assert!(may_overlap(&a, &c));
    }

    #[test]
    fn overlap_prefix_chains() {
        assert!(may_overlap(&p("/u"), &p("/u/book/item")));
        assert!(may_overlap(&p("/u/book/item"), &p("/u")));
        assert!(!may_overlap(&p("/u/book"), &p("/u/calendar")));
        assert!(!may_overlap(&p("/u[@id='x']/book"), &p("/u[@id='y']/book")));
    }

    #[test]
    fn overlap_conservative_on_descendant() {
        // Undecided syntactically → conservative true.
        assert!(may_overlap(&p("//item"), &p("/u/book/item")));
        assert!(may_overlap(&p("//a"), &p("//b")));
    }

    #[test]
    fn transitivity_spot_checks() {
        let a = p("/u[@id='1']/b[@k='2']/c");
        let b = p("/u[@id='1']/b/c");
        let c = p("/u/b/c");
        let d = p("//c");
        assert!(contains(&a, &b) && contains(&b, &c) && contains(&c, &d));
        assert!(contains(&a, &c) && contains(&a, &d) && contains(&b, &d));
    }
}
