//! Parser for the XPath fragment.

use std::fmt;

use crate::ast::{Axis, LocStep, NameTest, Path, Predicate};
use crate::lexer::{tokenize, Token};

/// A syntax error in a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Approximate byte/token offset of the error.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl XPathError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        XPathError { position, message: message.into() }
    }
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XPathError {}

impl Path {
    /// Parses an absolute path expression such as
    /// `/user[@id='arnaud']/address-book/item[@type='personal']`.
    ///
    /// ```
    /// use gupster_xpath::Path;
    ///
    /// let p = Path::parse("/user[@id='arnaud']/address-book").unwrap();
    /// assert_eq!(p.len(), 2);
    /// assert_eq!(p.to_string(), "/user[@id='arnaud']/address-book");
    /// assert!(Path::parse("not a path").is_err());
    /// ```
    pub fn parse(input: &str) -> Result<Path, XPathError> {
        let toks = tokenize(input)?;
        let mut p = P { toks: &toks, pos: 0 };
        let path = p.parse_path()?;
        if p.pos != p.toks.len() {
            return Err(XPathError::new(p.pos, "trailing tokens after path"));
        }
        Ok(path)
    }
}

struct P<'t> {
    toks: &'t [Token],
    pos: usize,
}

impl<'t> P<'t> {
    fn peek(&self) -> Option<&'t Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'t Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> XPathError {
        XPathError::new(self.pos, msg)
    }

    fn parse_path(&mut self) -> Result<Path, XPathError> {
        let mut steps = Vec::new();
        // "/" alone is the root path.
        if self.toks == [Token::Slash] {
            self.pos = 1;
            return Ok(Path { steps });
        }
        loop {
            let axis = match self.peek() {
                Some(Token::Slash) => {
                    self.pos += 1;
                    Axis::Child
                }
                Some(Token::DoubleSlash) => {
                    self.pos += 1;
                    Axis::Descendant
                }
                None if !steps.is_empty() => break,
                _ => return Err(self.err("expected '/' or '//'")),
            };
            let step = self.parse_step(axis)?;
            let is_attr = step.axis == Axis::Attribute;
            steps.push(step);
            if is_attr {
                if self.pos != self.toks.len() {
                    return Err(self.err("attribute step must be final"));
                }
                break;
            }
            if self.peek().is_none() {
                break;
            }
        }
        Ok(Path { steps })
    }

    fn parse_step(&mut self, axis: Axis) -> Result<LocStep, XPathError> {
        let (axis, test) = match self.next() {
            Some(Token::At) => {
                if axis == Axis::Descendant {
                    return Err(self.err("'//@attr' is not in the fragment"));
                }
                let test = match self.next() {
                    Some(Token::Name(n)) => NameTest::Name(n.clone()),
                    Some(Token::Star) => NameTest::Any,
                    _ => return Err(self.err("expected attribute name after '@'")),
                };
                (Axis::Attribute, test)
            }
            Some(Token::Name(n)) => (axis, NameTest::Name(n.clone())),
            Some(Token::Star) => (axis, NameTest::Any),
            _ => return Err(self.err("expected a name test")),
        };
        let mut predicates = Vec::new();
        while self.peek() == Some(&Token::LBracket) {
            if axis == Axis::Attribute {
                return Err(self.err("predicates not allowed on attribute steps"));
            }
            self.pos += 1;
            predicates.push(self.parse_predicate()?);
            match self.next() {
                Some(Token::RBracket) => {}
                _ => return Err(self.err("expected ']'")),
            }
        }
        Ok(LocStep { axis, test, predicates })
    }

    fn parse_predicate(&mut self) -> Result<Predicate, XPathError> {
        match self.next() {
            Some(Token::Integer(n)) => {
                if *n == 0 {
                    return Err(self.err("positions are 1-based"));
                }
                Ok(Predicate::Position(*n))
            }
            Some(Token::At) => {
                let name = match self.next() {
                    Some(Token::Name(n)) => n.clone(),
                    _ => return Err(self.err("expected attribute name after '@'")),
                };
                if self.peek() == Some(&Token::Eq) {
                    self.pos += 1;
                    match self.next() {
                        Some(Token::Literal(v)) => Ok(Predicate::AttrEq(name, v.clone())),
                        _ => Err(self.err("expected string literal after '='")),
                    }
                } else {
                    Ok(Predicate::AttrExists(name))
                }
            }
            Some(Token::Name(n)) => {
                let name = n.clone();
                if self.peek() == Some(&Token::Eq) {
                    self.pos += 1;
                    match self.next() {
                        Some(Token::Literal(v)) => Ok(Predicate::ChildEq(name, v.clone())),
                        _ => Err(self.err("expected string literal after '='")),
                    }
                } else {
                    Ok(Predicate::ChildExists(name))
                }
            }
            _ => Err(self.err("expected a predicate")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap_or_else(|e| panic!("parse {s}: {e}"))
    }

    #[test]
    fn paper_examples_parse() {
        // Exactly the expressions from §4.3 / Fig. 9.
        for s in [
            "/user[@id='arnaud']/address-book",
            "/user[@id='arnaud']/presence",
            "/user[@id='arnaud']/address-book/item[@type='personal']",
            "/user[@id='arnaud']/address-book/item[@type='corporate']",
        ] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn root_path() {
        assert!(p("/").is_empty());
    }

    #[test]
    fn descendant_and_wildcard() {
        let path = p("//item[@id='3']/*");
        assert_eq!(path.steps[0].axis, Axis::Descendant);
        assert_eq!(path.steps[1].test, NameTest::Any);
        assert_eq!(path.to_string(), "//item[@id='3']/*");
    }

    #[test]
    fn attribute_final_step() {
        let path = p("/user/@id");
        assert!(path.targets_attribute());
        assert_eq!(path.to_string(), "/user/@id");
    }

    #[test]
    fn attribute_must_be_final() {
        assert!(Path::parse("/user/@id/book").is_err());
    }

    #[test]
    fn predicates_variants() {
        let path = p("/a[b='1'][@c][d][2]");
        assert_eq!(
            path.steps[0].predicates,
            vec![
                Predicate::ChildEq("b".into(), "1".into()),
                Predicate::AttrExists("c".into()),
                Predicate::ChildExists("d".into()),
                Predicate::Position(2),
            ]
        );
    }

    #[test]
    fn relative_path_rejected() {
        assert!(Path::parse("user/book").is_err());
    }

    #[test]
    fn malformed_rejected() {
        for bad in ["/a[", "/a[@]", "/a[=1]", "/a]", "/a[0]", "", "/a[@x=y]", "//@id"] {
            assert!(Path::parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["/a/b/c", "//x", "/a[@k='v']//b[c='2'][3]/@attr", "/*", "/"] {
            assert_eq!(p(s).to_string(), s);
        }
    }
}
