//! Locating selected nodes as stable [`NodePath`]s.
//!
//! Data stores apply *updates* at XPath targets (Req. 11 provisioning).
//! Rust's ownership model makes returning `&mut` for several nodes at
//! once impossible, so updates resolve a path expression to a set of
//! [`NodePath`] addresses first, then mutate through each address.

use gupster_xml::{Element, NodePath};

use crate::ast::{Axis, NameTest, Path, Predicate};

impl Path {
    /// Returns a [`NodePath`] (indexed child steps from the root) for
    /// every element this expression selects in `root`. The addresses
    /// are returned in document order; the same invariant as
    /// [`Path::select`] holds: `path.select(root)` and resolving each
    /// returned address yield the same elements.
    pub fn select_node_paths(&self, root: &Element) -> Vec<NodePath> {
        let mut contexts: Vec<Located> = vec![Located::Document];
        for step in &self.steps {
            if step.axis == Axis::Attribute {
                // Attribute steps address their owner element.
                return contexts
                    .into_iter()
                    .filter_map(|c| match c {
                        Located::Document => None,
                        Located::Node(p) => {
                            let e = p.resolve(root).expect("address valid");
                            let ok = match &step.test {
                                NameTest::Any => !e.attrs.is_empty(),
                                NameTest::Name(n) => e.attr(n).is_some(),
                            };
                            ok.then_some(p)
                        }
                    })
                    .collect();
            }
            let mut next: Vec<NodePath> = Vec::new();
            for ctx in &contexts {
                let mut candidates: Vec<NodePath> = Vec::new();
                match (ctx, step.axis) {
                    (Located::Document, Axis::Child) => {
                        if step.test.accepts(&root.name) {
                            candidates.push(NodePath::root());
                        }
                    }
                    (Located::Document, Axis::Descendant) => {
                        if step.test.accepts(&root.name) {
                            candidates.push(NodePath::root());
                        }
                        collect_descendants(root, NodePath::root(), &step.test, &mut candidates);
                    }
                    (Located::Node(p), Axis::Child) => {
                        let e = p.resolve(root).expect("address valid");
                        push_children(e, p, &step.test, &mut candidates);
                    }
                    (Located::Node(p), Axis::Descendant) => {
                        let e = p.resolve(root).expect("address valid");
                        collect_descendants(e, p.clone(), &step.test, &mut candidates);
                    }
                    (_, Axis::Attribute) => unreachable!("handled above"),
                }
                apply_predicates(root, &step.predicates, &mut candidates);
                next.extend(candidates);
            }
            // Cross-context duplicates (possible with //): full dedup.
            let mut seen = std::collections::HashSet::new();
            next.retain(|p| seen.insert(p.clone()));
            contexts = next.into_iter().map(Located::Node).collect();
            if contexts.is_empty() {
                break;
            }
        }
        contexts
            .into_iter()
            .filter_map(|c| match c {
                Located::Document => None,
                Located::Node(p) => Some(p),
            })
            .collect()
    }
}

enum Located {
    Document,
    Node(NodePath),
}

fn push_children(e: &Element, at: &NodePath, test: &NameTest, out: &mut Vec<NodePath>) {
    let mut occurrence: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for c in e.child_elements() {
        let occ = occurrence.entry(c.name.as_str()).or_insert(0);
        let this = *occ;
        *occ += 1;
        if test.accepts(&c.name) {
            out.push(at.clone().child(c.name.clone(), this));
        }
    }
}

fn collect_descendants(e: &Element, at: NodePath, test: &NameTest, out: &mut Vec<NodePath>) {
    let mut occurrence: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for c in e.child_elements() {
        let occ = occurrence.entry(c.name.as_str()).or_insert(0);
        let this = *occ;
        *occ += 1;
        let cp = at.clone().child(c.name.clone(), this);
        if test.accepts(&c.name) {
            out.push(cp.clone());
        }
        collect_descendants(c, cp, test, out);
    }
}

fn apply_predicates(root: &Element, preds: &[Predicate], candidates: &mut Vec<NodePath>) {
    for p in preds {
        match p {
            Predicate::Position(n) => {
                let idx = n - 1;
                if idx < candidates.len() {
                    let kept = candidates[idx].clone();
                    candidates.clear();
                    candidates.push(kept);
                } else {
                    candidates.clear();
                }
            }
            Predicate::AttrEq(a, v) => candidates.retain(|p| {
                p.resolve(root).is_some_and(|e| e.attr(a) == Some(v.as_str()))
            }),
            Predicate::AttrExists(a) => {
                candidates.retain(|p| p.resolve(root).is_some_and(|e| e.attr(a).is_some()))
            }
            Predicate::ChildEq(c, v) => candidates.retain(|p| {
                p.resolve(root).is_some_and(|e| {
                    e.child_elements().any(|ch| ch.name == *c && ch.text().trim() == v)
                })
            }),
            Predicate::ChildExists(c) => candidates.retain(|p| {
                p.resolve(root).is_some_and(|e| e.child_elements().any(|ch| ch.name == *c))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupster_xml::parse;

    fn doc() -> Element {
        parse(
            r#"<user id="a"><book><item id="1" type="p"><n>A</n></item><item id="2" type="c"><n>B</n></item></book><book><item id="3" type="p"><n>C</n></item></book></user>"#,
        )
        .unwrap()
    }

    fn agrees(expr: &str) {
        let d = doc();
        let path = Path::parse(expr).unwrap();
        let by_ref: Vec<String> = path.select(&d).iter().map(|e| e.to_xml()).collect();
        let by_addr: Vec<String> = path
            .select_node_paths(&d)
            .iter()
            .map(|p| p.resolve(&d).expect("resolvable").to_xml())
            .collect();
        assert_eq!(by_ref, by_addr, "{expr}");
    }

    #[test]
    fn addresses_agree_with_select() {
        for expr in [
            "/user",
            "/user/book",
            "/user/book/item",
            "/user/book/item[@type='p']",
            "/user/book[2]/item",
            "//item",
            "//item[@id='3']",
            "/user/*",
            "//n",
            "/user/book/item[n='B']",
            "/user/@id",
            "/nothing",
        ] {
            agrees(expr);
        }
    }

    #[test]
    fn addresses_usable_for_mutation() {
        let mut d = doc();
        let addrs = Path::parse("//item[@type='p']").unwrap().select_node_paths(&d);
        assert_eq!(addrs.len(), 2);
        for a in &addrs {
            a.resolve_mut(&mut d).unwrap().set_attr("marked", "yes");
        }
        assert_eq!(
            Path::parse("//item[@marked='yes']").unwrap().select(&d).len(),
            2
        );
    }

    #[test]
    fn no_duplicate_addresses_from_descendant() {
        let d = parse("<a><b><b><c/></b></b></a>").unwrap();
        let addrs = Path::parse("//b//c").unwrap().select_node_paths(&d);
        assert_eq!(addrs.len(), 1);
    }
}
