//! Abstract syntax for the GUPster XPath fragment.

use std::fmt;

/// Navigation axis of a location step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::` — the default axis, written `/name`.
    Child,
    /// `descendant-or-self::node()/child::` — written `//name`.
    Descendant,
    /// `attribute::` — written `/@name`; only valid as the final step.
    Attribute,
}

/// Node test of a location step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NameTest {
    /// `*` — any element (or any attribute on the attribute axis).
    Any,
    /// A literal tag or attribute name.
    Name(String),
}

impl NameTest {
    /// True if this test accepts the given name.
    pub fn accepts(&self, name: &str) -> bool {
        match self {
            NameTest::Any => true,
            NameTest::Name(n) => n == name,
        }
    }

    /// True if every name accepted by `other` is accepted by `self`.
    pub fn subsumes(&self, other: &NameTest) -> bool {
        match (self, other) {
            (NameTest::Any, _) => true,
            (NameTest::Name(a), NameTest::Name(b)) => a == b,
            (NameTest::Name(_), NameTest::Any) => false,
        }
    }

    /// True if some name is accepted by both tests.
    pub fn compatible(&self, other: &NameTest) -> bool {
        match (self, other) {
            (NameTest::Name(a), NameTest::Name(b)) => a == b,
            _ => true,
        }
    }
}

/// A predicate qualifying a location step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `[@attr='value']`
    AttrEq(String, String),
    /// `[@attr]`
    AttrExists(String),
    /// `[child='value']` — compares the child element's trimmed text.
    ChildEq(String, String),
    /// `[child]`
    ChildExists(String),
    /// `[n]` — 1-based position among the nodes matched so far.
    Position(usize),
}

impl Predicate {
    /// True if `self` is implied by `other` (everything satisfying
    /// `other` satisfies `self`).
    pub fn implied_by(&self, other: &Predicate) -> bool {
        if self == other {
            return true;
        }
        match (self, other) {
            (Predicate::AttrExists(a), Predicate::AttrEq(b, _)) => a == b,
            (Predicate::ChildExists(a), Predicate::ChildEq(b, _)) => a == b,
            _ => false,
        }
    }

    /// True if `self` and `other` can hold of the same node. Conservative
    /// (only detects syntactic contradictions).
    pub fn compatible(&self, other: &Predicate) -> bool {
        match (self, other) {
            (Predicate::AttrEq(a, v), Predicate::AttrEq(b, w)) => a != b || v == w,
            (Predicate::ChildEq(a, v), Predicate::ChildEq(b, w)) => {
                // A node may have several children with the same tag, so
                // differing values are only a contradiction if we assumed
                // singleton fields; stay conservative.
                let _ = (a, b, v, w);
                true
            }
            (Predicate::Position(a), Predicate::Position(b)) => a == b,
            _ => true,
        }
    }
}

/// One location step: axis, name test and predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LocStep {
    /// Navigation axis.
    pub axis: Axis,
    /// Node test.
    pub test: NameTest,
    /// Conjunction of predicates.
    pub predicates: Vec<Predicate>,
}

impl LocStep {
    /// A child-axis step with no predicates.
    pub fn child(name: impl Into<String>) -> Self {
        LocStep { axis: Axis::Child, test: NameTest::Name(name.into()), predicates: Vec::new() }
    }

    /// Builder: adds an `[@attr='value']` predicate.
    pub fn with_attr_eq(mut self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.predicates.push(Predicate::AttrEq(attr.into(), value.into()));
        self
    }
}

/// A parsed path expression.
///
/// All GUPster paths are absolute (they address into a profile document
/// whose root is the user's `<MyProfile>`/`<user>` element); the first
/// step matches the root element itself when its test accepts the root's
/// name, mirroring how the paper writes `/user[@id='arnaud']/...`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// The location steps, outermost first.
    pub steps: Vec<LocStep>,
}

impl Path {
    /// Builds a simple child-axis path from tag names.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Self {
        Path { steps: names.iter().map(|n| LocStep::child(n.as_ref())).collect() }
    }

    /// The number of location steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the degenerate empty path (selects the root).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True if the path uses only child/attribute axes and no wildcards —
    /// the strict fragment of §4.5 for which containment is complete.
    pub fn is_core_fragment(&self) -> bool {
        self.steps.iter().all(|s| {
            !matches!(s.axis, Axis::Descendant) && !matches!(s.test, NameTest::Any)
        })
    }

    /// True if the final step is on the attribute axis.
    pub fn targets_attribute(&self) -> bool {
        matches!(self.steps.last(), Some(s) if s.axis == Axis::Attribute)
    }

    /// Returns a new path with `suffix`'s steps appended.
    pub fn join(&self, suffix: &Path) -> Path {
        let mut steps = self.steps.clone();
        steps.extend(suffix.steps.iter().cloned());
        Path { steps }
    }

    /// Static depth: number of element steps (attribute step excluded).
    pub fn element_depth(&self) -> usize {
        self.steps.iter().filter(|s| s.axis != Axis::Attribute).count()
    }
}

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Any => f.write_str("*"),
            NameTest::Name(n) => f.write_str(n),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::AttrEq(a, v) => write!(f, "[@{a}='{v}']"),
            Predicate::AttrExists(a) => write!(f, "[@{a}]"),
            Predicate::ChildEq(c, v) => write!(f, "[{c}='{v}']"),
            Predicate::ChildExists(c) => write!(f, "[{c}]"),
            Predicate::Position(n) => write!(f, "[{n}]"),
        }
    }
}

impl fmt::Display for LocStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.axis == Axis::Attribute {
            write!(f, "@{}", self.test)?;
        } else {
            write!(f, "{}", self.test)?;
        }
        for p in &self.predicates {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return f.write_str("/");
        }
        for step in &self.steps {
            f.write_str(if step.axis == Axis::Descendant { "//" } else { "/" })?;
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip_shape() {
        let p = Path {
            steps: vec![
                LocStep::child("user").with_attr_eq("id", "arnaud"),
                LocStep::child("address-book"),
                LocStep {
                    axis: Axis::Descendant,
                    test: NameTest::Any,
                    predicates: vec![Predicate::Position(2)],
                },
                LocStep {
                    axis: Axis::Attribute,
                    test: NameTest::Name("type".into()),
                    predicates: vec![],
                },
            ],
        };
        assert_eq!(p.to_string(), "/user[@id='arnaud']/address-book//*[2]/@type");
        assert!(p.targets_attribute());
        assert!(!p.is_core_fragment());
        assert_eq!(p.element_depth(), 3);
    }

    #[test]
    fn nametest_lattice() {
        let any = NameTest::Any;
        let a = NameTest::Name("a".into());
        let b = NameTest::Name("b".into());
        assert!(any.subsumes(&a));
        assert!(!a.subsumes(&any));
        assert!(a.subsumes(&a));
        assert!(!a.subsumes(&b));
        assert!(a.compatible(&any));
        assert!(!a.compatible(&b));
    }

    #[test]
    fn predicate_implication() {
        let eq = Predicate::AttrEq("id".into(), "x".into());
        let ex = Predicate::AttrExists("id".into());
        assert!(ex.implied_by(&eq));
        assert!(!eq.implied_by(&ex));
        assert!(eq.implied_by(&eq));
        let other = Predicate::AttrEq("id".into(), "y".into());
        assert!(!eq.compatible(&other));
        assert!(eq.compatible(&ex));
    }

    #[test]
    fn join_paths() {
        let a = Path::from_names(&["user", "book"]);
        let b = Path::from_names(&["item"]);
        assert_eq!(a.join(&b).to_string(), "/user/book/item");
    }
}
