//! Segment-level string interning and the compiled path representation
//! the indexed lookup fast path keys on.
//!
//! The registry's hot path compares path-step names millions of times
//! per second (coverage matching, rule bucketing). Interning every
//! segment once in a process-wide [`PathInterner`] turns those string
//! comparisons into integer equality on [`Sym`] ids, and lets the
//! coverage trie and the policy rule index use dense `HashMap<Sym, _>`
//! keys instead of hashing strings on every probe.
//!
//! [`InternedPath`] is the compiled form of a core-fragment [`Path`]:
//! each step carries its name `Sym`, its axis kind and the `Sym`-ized
//! first `[@attr='value']` predicate (the trie's discriminating edge
//! key). Paths outside the core fragment (`//`, `*`) do not compile —
//! the indexes place them in always-scanned wildcard buckets instead.
//!
//! [`PathCache`] is the client-side companion: a bounded memo of parsed
//! query strings, so a client replaying the same textual queries skips
//! the lexer/parser entirely.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

use crate::ast::{Axis, NameTest, Path, Predicate};
use crate::parser::XPathError;

/// An interned string id. Two `Sym`s are equal iff the strings they
/// were interned from are equal, so name comparison is `u32` equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// The process-wide segment interner. All methods are associated
/// functions over a global table behind an `RwLock`: interning (rare —
/// registration, rule provisioning) takes the write lock; lookups on
/// the query hot path take the read lock only.
#[derive(Debug, Default)]
pub struct PathInterner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

fn global() -> &'static RwLock<PathInterner> {
    static GLOBAL: OnceLock<RwLock<PathInterner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(PathInterner::default()))
}

impl PathInterner {
    /// Interns `s`, returning its stable [`Sym`]. Idempotent.
    pub fn intern(s: &str) -> Sym {
        if let Some(sym) = Self::lookup(s) {
            return sym;
        }
        let mut g = global().write().expect("interner lock");
        if let Some(&id) = g.map.get(s) {
            return Sym(id);
        }
        let id = g.names.len() as u32;
        g.names.push(s.to_string());
        g.map.insert(s.to_string(), id);
        Sym(id)
    }

    /// The [`Sym`] of `s` if it was ever interned. Read-lock only —
    /// this is the query-side probe: an unknown segment name means no
    /// registered path can possibly use it.
    pub fn lookup(s: &str) -> Option<Sym> {
        global().read().expect("interner lock").map.get(s).copied().map(Sym)
    }

    /// The string a [`Sym`] was interned from.
    pub fn resolve(sym: Sym) -> String {
        global().read().expect("interner lock").names[sym.0 as usize].clone()
    }

    /// Number of distinct segments interned so far.
    pub fn len() -> usize {
        global().read().expect("interner lock").names.len()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&PathInterner::resolve(*self))
    }
}

/// One compiled location step: the name as a [`Sym`], whether it rides
/// the attribute axis, and the `Sym`-ized first `[@attr='value']`
/// predicate (the discriminating edge key of the coverage trie).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InternedStep {
    /// Interned step name.
    pub name: Sym,
    /// True for `@name` (attribute axis) steps.
    pub attribute: bool,
    /// The first `[@attr='value']` predicate as `(attr, value)` syms,
    /// if the step has one. Other predicate kinds do not discriminate
    /// trie edges and stay on the retained [`Path`] for exact checks.
    pub pred_key: Option<(Sym, Sym)>,
}

/// A compiled core-fragment path: every step carries its [`Sym`] ids,
/// so spine walks compare integers, never strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternedPath {
    /// The compiled steps, outermost first.
    pub steps: Vec<InternedStep>,
}

impl InternedPath {
    /// Compiles a path, interning every segment. Returns `None` when
    /// the path leaves the core fragment (`//` or `*` anywhere) — such
    /// paths belong in the indexes' wildcard buckets.
    pub fn compile(path: &Path) -> Option<InternedPath> {
        if !path.is_core_fragment() {
            return None;
        }
        let mut steps = Vec::with_capacity(path.steps.len());
        for step in &path.steps {
            let NameTest::Name(name) = &step.test else { return None };
            let pred_key = step.predicates.iter().find_map(|p| match p {
                Predicate::AttrEq(a, v) => {
                    Some((PathInterner::intern(a), PathInterner::intern(v)))
                }
                _ => None,
            });
            steps.push(InternedStep {
                name: PathInterner::intern(name),
                attribute: step.axis == Axis::Attribute,
                pred_key,
            });
        }
        Some(InternedPath { steps })
    }
}

/// A bounded memo of parsed query strings: clients replaying the same
/// textual queries (HLR-style lookup storms) skip the lexer/parser.
/// Failures are not cached — bad queries stay cheap to re-reject.
#[derive(Debug)]
pub struct PathCache {
    capacity: usize,
    entries: HashMap<String, (Path, u64)>,
    tick: u64,
    /// Parse calls answered from the memo.
    pub hits: u64,
    /// Parse calls that ran the parser.
    pub misses: u64,
}

impl PathCache {
    /// A cache bounded to `capacity` parsed paths.
    pub fn new(capacity: usize) -> Self {
        PathCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Parses `s`, serving repeats from the memo. Least-recently-used
    /// entries are evicted at capacity.
    pub fn parse(&mut self, s: &str) -> Result<Path, XPathError> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((path, last_use)) = self.entries.get_mut(s) {
            *last_use = tick;
            self.hits += 1;
            return Ok(path.clone());
        }
        self.misses += 1;
        let path = Path::parse(s)?;
        if self.entries.len() >= self.capacity {
            if let Some(victim) =
                self.entries.iter().min_by_key(|(_, (_, t))| *t).map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(s.to_string(), (path.clone(), tick));
        Ok(path)
    }

    /// Number of memoized paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_comparable() {
        let a = PathInterner::intern("address-book");
        let b = PathInterner::intern("address-book");
        let c = PathInterner::intern("presence-intern-test");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(PathInterner::resolve(a), "address-book");
        assert_eq!(PathInterner::lookup("address-book"), Some(a));
        assert_eq!(a.to_string(), "address-book");
        assert!(PathInterner::len() >= 2);
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        let before = PathInterner::len();
        assert_eq!(PathInterner::lookup("never-interned-segment-xyzzy"), None);
        assert_eq!(PathInterner::len(), before);
    }

    #[test]
    fn compile_core_fragment() {
        let p = Path::parse("/user[@id='a']/address-book/item[@type='x'][@id='1']/@ref")
            .unwrap();
        let ip = InternedPath::compile(&p).unwrap();
        assert_eq!(ip.steps.len(), 4);
        assert_eq!(ip.steps[0].name, PathInterner::intern("user"));
        assert_eq!(
            ip.steps[0].pred_key,
            Some((PathInterner::intern("id"), PathInterner::intern("a")))
        );
        assert!(ip.steps[1].pred_key.is_none());
        // Only the FIRST AttrEq keys the edge.
        assert_eq!(
            ip.steps[2].pred_key,
            Some((PathInterner::intern("type"), PathInterner::intern("x")))
        );
        assert!(ip.steps[3].attribute);
        assert!(!ip.steps[2].attribute);
    }

    #[test]
    fn wildcards_do_not_compile() {
        for s in ["//item", "/user/*", "/user//presence"] {
            assert!(InternedPath::compile(&Path::parse(s).unwrap()).is_none(), "{s}");
        }
    }

    #[test]
    fn path_cache_hits_and_evicts() {
        let mut c = PathCache::new(2);
        let p1 = c.parse("/user/presence").unwrap();
        assert_eq!(p1.to_string(), "/user/presence");
        c.parse("/user/presence").unwrap();
        assert_eq!((c.hits, c.misses), (1, 1));
        c.parse("/user/calendar").unwrap();
        // Touch presence so calendar is the LRU victim.
        c.parse("/user/presence").unwrap();
        c.parse("/user/devices").unwrap();
        assert_eq!(c.len(), 2);
        c.parse("/user/calendar").unwrap();
        assert_eq!(c.misses, 4, "evicted entry re-parses");
        assert!(c.parse("not a path").is_err());
        assert!(c.parse("not a path").is_err(), "failures are not cached");
        assert!(!c.is_empty());
    }
}
